//! A network-attached memory node — the deployment the paper's
//! conclusion points at: a host that serves a key-value store with
//! **zero application CPU on the data path**.
//!
//! The node runs only the PRISM data plane (here: a pool of dispatch
//! workers standing in for the NIC). Every GET and PUT is a PRISM
//! chain; the only CPU-side application code is the control plane
//! (setup) and the reclamation daemon. The demo runs a multi-threaded
//! workload through the live server and then prints the data-plane /
//! control-plane operation split.
//!
//! Run with: `cargo run -p prism-harness --example memory_node`

use std::sync::atomic::Ordering;
use std::sync::Arc;

use prism_core::live::LiveServer;
use prism_core::msg::Reply;
use prism_kv::hash::key_bytes;
use prism_kv::prism_kv::{PrismKvConfig, PrismKvServer};
use prism_kv::{KvOutcome, KvStep};

fn main() {
    const KEYS: u64 = 1_024;
    const VALUE: usize = 256;

    // Control plane: lay out the store and register its memory.
    let store = Arc::new(PrismKvServer::new(&PrismKvConfig::paper(KEYS, VALUE)));
    // Data plane: 8 dispatch workers (the paper's dedicated cores; a
    // hardware PRISM NIC would replace them entirely, §4.2).
    let node = LiveServer::spawn(Arc::clone(store.server()), 8);
    println!("memory node up: {KEYS} keys x {VALUE} B, 8 data-plane workers");

    // Clients: 8 threads, each doing 1000 mixed operations. All traffic
    // is PRISM chains except the fire-and-forget buffer reclamation.
    let threads: Vec<_> = (0..8u64)
        .map(|t| {
            let store = Arc::clone(&store);
            let port = node.client();
            std::thread::spawn(move || {
                let client = store.open_client();
                let mut gets = 0u32;
                let mut puts = 0u32;
                for i in 0..1_000u64 {
                    let k = (t * 131 + i * 7) % KEYS;
                    let key = key_bytes(k);
                    if i % 2 == 0 {
                        let value = vec![(t as u8) ^ (i as u8); VALUE];
                        let (mut op, req) = client.put(&key, &value);
                        let mut reply: Reply = port.call(req);
                        loop {
                            match op.on_reply(&client, reply) {
                                KvStep::Send {
                                    request,
                                    background,
                                } => {
                                    if let Some(b) = background {
                                        port.cast(b);
                                    }
                                    reply = port.call(request);
                                }
                                KvStep::Done {
                                    outcome,
                                    background,
                                } => {
                                    if let Some(b) = background {
                                        port.cast(b);
                                    }
                                    assert_eq!(outcome, KvOutcome::Written);
                                    puts += 1;
                                    break;
                                }
                            }
                        }
                    } else {
                        let (mut op, req) = client.get(&key);
                        let mut reply: Reply = port.call(req);
                        loop {
                            match op.on_reply(&client, reply) {
                                KvStep::Send { request, .. } => reply = port.call(request),
                                KvStep::Done { outcome, .. } => {
                                    match outcome {
                                        KvOutcome::Value(Some(v)) => assert_eq!(v.len(), VALUE),
                                        KvOutcome::Value(None) => {}
                                        other => panic!("{other:?}"),
                                    }
                                    gets += 1;
                                    break;
                                }
                            }
                        }
                    }
                }
                (gets, puts)
            })
        })
        .collect();

    let mut gets = 0;
    let mut puts = 0;
    for t in threads {
        let (g, p) = t.join().unwrap();
        gets += g;
        puts += p;
    }
    println!("completed {gets} GETs and {puts} PUTs");

    let stats = node.stats();
    let chains = stats.chains.load(Ordering::Relaxed);
    let rpcs = stats.rpcs.load(Ordering::Relaxed);
    println!(
        "data-plane chains: {chains}   control-plane RPCs: {rpcs} \
         (reclamation only: {:.1}% of traffic)",
        100.0 * rpcs as f64 / (chains + rpcs) as f64
    );
    // Every overwrite frees exactly one buffer, so unbatched
    // reclamation is ~1 RPC per PUT. §3.2's client/server batching (as
    // the experiment harness applies, 16 buffers per message) divides
    // this by the batch size; either way the application CPU only ever
    // reposts buffers — it never touches a GET or PUT.
    assert!(
        rpcs <= puts as u64,
        "control-plane traffic must be bounded by reclamation"
    );

    // Verify with a couple of direct reads, then power down.
    let client = store.open_client();
    let port = node.client();
    let (mut op, req) = client.get(&key_bytes(0));
    let mut reply = port.call(req);
    loop {
        match op.on_reply(&client, reply) {
            KvStep::Send { request, .. } => reply = port.call(request),
            KvStep::Done { outcome, .. } => {
                println!(
                    "spot check key 0 -> {:?}",
                    matches!(outcome, KvOutcome::Value(_))
                );
                break;
            }
        }
    }
    node.shutdown();
    println!("node drained and shut down.");
}
