//! A sharded bank ledger on PRISM-TX (§8 of the paper).
//!
//! Accounts live on four shards; transfers are serializable multi-key
//! transactions whose execution, validation, and commit are all remote
//! operations — two round trips to commit, no server CPU on the data
//! path. Sixteen threads transfer money concurrently; the total balance
//! is conserved, which only holds if the OCC protocol is correct.
//!
//! Run with: `cargo run -p prism-harness --example bank_ledger`

use std::collections::HashMap;
use std::sync::Arc;

use prism_tx::prism_tx::{drive, run_rmw, TxCluster, TxConfig, TxOutcome};

const VALUE: u64 = 64;
const ACCOUNTS: u64 = 64;

fn balance_of(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[0..8].try_into().unwrap())
}

fn encode_balance(b: u64) -> Vec<u8> {
    let mut v = vec![0u8; VALUE as usize];
    v[0..8].copy_from_slice(&b.to_le_bytes());
    v
}

fn read_balances(cluster: &TxCluster, keys: &[u64]) -> HashMap<u64, u64> {
    let mut client = cluster.open_client();
    let (op, step) = client.begin(keys.to_vec(), vec![]);
    match drive(cluster, &mut client, op, step) {
        TxOutcome::Committed(vals) => vals.into_iter().map(|(k, v)| (k, balance_of(&v))).collect(),
        o => panic!("read-only txn must commit: {o:?}"),
    }
}

fn main() {
    // Four shards, 16 accounts each; key k lives on shard k % 4.
    let cluster = Arc::new(TxCluster::new(4, &TxConfig::paper(ACCOUNTS / 4, VALUE)));
    println!(
        "ledger: {} accounts over {} shards, serializable transfers",
        ACCOUNTS,
        cluster.n_shards()
    );

    // Seed every account with 1000 credits (blind writes).
    {
        let mut client = cluster.open_client();
        for k in 0..ACCOUNTS {
            let (op, step) = client.begin(vec![], vec![(k, encode_balance(1000))]);
            assert!(matches!(
                drive(&cluster, &mut client, op, step),
                TxOutcome::Committed(_)
            ));
        }
    }
    let initial: u64 = read_balances(&cluster, &(0..ACCOUNTS).collect::<Vec<_>>())
        .values()
        .sum();
    println!("initial total = {initial}");

    // 16 threads, each doing 100 random transfers of 1-10 credits.
    let threads: Vec<_> = (0..16)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                let mut client = cluster.open_client();
                let mut committed = 0u32;
                let mut attempts = 0u32;
                let mut x = 0x9E37_79B9u64.wrapping_mul(t + 1);
                let mut rand = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                while committed < 100 {
                    let from = rand() % ACCOUNTS;
                    let mut to = rand() % ACCOUNTS;
                    if to == from {
                        to = (to + 1) % ACCOUNTS;
                    }
                    let amount = 1 + rand() % 10;
                    let keys = if from < to { [from, to] } else { [to, from] };
                    let (o, tries) = run_rmw(
                        &cluster,
                        &mut client,
                        &keys,
                        move |k, vals| {
                            let a = balance_of(&vals[&from]);
                            let b = balance_of(&vals[&to]);
                            let (na, nb) = if a >= amount {
                                (a - amount, b + amount)
                            } else {
                                (a, b) // insufficient funds: no-op write
                            };
                            encode_balance(if k == from { na } else { nb })
                        },
                        10_000,
                    );
                    attempts += tries;
                    if matches!(o, TxOutcome::Committed(_)) {
                        committed += 1;
                    }
                }
                (committed, attempts)
            })
        })
        .collect();

    let mut total_committed = 0;
    let mut total_attempts = 0;
    for t in threads {
        let (c, a) = t.join().unwrap();
        total_committed += c;
        total_attempts += a;
    }
    println!(
        "{total_committed} transfers committed in {total_attempts} attempts \
         ({:.2} attempts/commit under contention)",
        total_attempts as f64 / total_committed as f64
    );

    // The invariant: money is neither created nor destroyed.
    let balances = read_balances(&cluster, &(0..ACCOUNTS).collect::<Vec<_>>());
    let total: u64 = balances.values().sum();
    println!("final total   = {total}");
    assert_eq!(total, initial, "serializability violation: total changed");

    // Spot-check a cross-shard read snapshot.
    let snap = read_balances(&cluster, &[0, 1, 2, 3]);
    println!(
        "accounts 0-3: {:?}",
        (0..4).map(|k| snap[&k]).collect::<Vec<_>>()
    );
    println!("done: the ledger balances.");
}
