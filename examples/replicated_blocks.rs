//! A fault-tolerant block device built on PRISM-RS (§7 of the paper).
//!
//! Three replicas, multi-writer ABD: every read and write completes in
//! two round trips to a majority, entirely with one-sided PRISM
//! operations. The example writes blocks, kills a replica, keeps
//! going, brings it "back", and shows the read-repair write-back phase
//! healing it.
//!
//! Run with: `cargo run -p prism-harness --example replicated_blocks`

use prism_rs::prism_rs::{drive, RsCluster, RsConfig, RsOutcome};
use prism_rs::Tag;

const BLOCK: usize = 512;

fn put(
    cl: &RsCluster,
    c: &prism_rs::RsClient,
    block: u64,
    value: Vec<u8>,
    crashed: &[bool],
) -> RsOutcome {
    let (op, step) = c.put(block, value);
    drive(cl, c, op, step, crashed)
}

fn get(cl: &RsCluster, c: &prism_rs::RsClient, block: u64, crashed: &[bool]) -> RsOutcome {
    let (op, step) = c.get(block);
    drive(cl, c, op, step, crashed)
}

fn block_of(byte: u8) -> Vec<u8> {
    vec![byte; BLOCK]
}

fn tag_at(cl: &RsCluster, replica: usize, block: u64) -> Tag {
    let v = cl.replica(replica).view().clone();
    let meta = cl
        .replica(replica)
        .server()
        .arena()
        .read(v.meta(block), 16)
        .unwrap();
    Tag::from_bytes(&meta[..8])
}

fn main() {
    // n = 3 replicas tolerate f = 1 failure.
    let cluster = RsCluster::new(3, &RsConfig::paper(1024, BLOCK as u64));
    let client = cluster.open_client();
    let all_up = [false; 3];
    println!(
        "cluster: {} replicas, {} blocks x {} B, quorum {}",
        cluster.n(),
        1024,
        BLOCK,
        client.quorum()
    );

    // Normal operation.
    assert_eq!(
        put(&cluster, &client, 7, block_of(0xAA), &all_up),
        RsOutcome::Written
    );
    match get(&cluster, &client, 7, &all_up) {
        RsOutcome::Value(v) => println!("block 7 = 0x{:02X}.. (len {})", v[0], v.len()),
        o => panic!("{o:?}"),
    }

    // Replica 2 crashes. Writes and reads keep succeeding through the
    // remaining majority {0, 1}.
    let r2_down = [false, false, true];
    println!("\n-- replica 2 crashes --");
    assert_eq!(
        put(&cluster, &client, 7, block_of(0xBB), &r2_down),
        RsOutcome::Written
    );
    match get(&cluster, &client, 7, &r2_down) {
        RsOutcome::Value(v) => println!("block 7 = 0x{:02X}.. (served by majority)", v[0]),
        o => panic!("{o:?}"),
    }
    println!(
        "replica tags: r0={} r1={} r2={} (r2 stale)",
        tag_at(&cluster, 0, 7),
        tag_at(&cluster, 1, 7),
        tag_at(&cluster, 2, 7)
    );

    // Replica 2 comes back. A GET's write-back phase (the second round
    // of ABD) repairs it without any dedicated recovery machinery.
    println!("\n-- replica 2 rejoins --");
    match get(&cluster, &client, 7, &all_up) {
        RsOutcome::Value(v) => println!("block 7 = 0x{:02X}.. (read with all replicas)", v[0]),
        o => panic!("{o:?}"),
    }
    println!(
        "replica tags: r0={} r1={} r2={} (r2 repaired by read write-back)",
        tag_at(&cluster, 0, 7),
        tag_at(&cluster, 1, 7),
        tag_at(&cluster, 2, 7)
    );

    // Now even the *other* quorum {1, 2} must serve the latest value:
    // quorum intersection is what makes ABD linearizable.
    let r0_down = [true, false, false];
    match get(&cluster, &client, 7, &r0_down) {
        RsOutcome::Value(v) => {
            assert_eq!(v[0], 0xBB);
            println!("block 7 = 0x{:02X}.. via the disjoint quorum {{1,2}}", v[0]);
        }
        o => panic!("{o:?}"),
    }

    // Two failures exceed f: the client cannot make progress — and says
    // so rather than returning stale data.
    let two_down = [true, true, false];
    match put(&cluster, &client, 7, block_of(0xCC), &two_down) {
        RsOutcome::Failed(why) => println!("\nwith 2 replicas down: PUT fails safe ({why})"),
        o => panic!("must not succeed: {o:?}"),
    }

    // Concurrent writers: tags order every update; all replicas converge.
    println!("\n-- 4 concurrent writers, 200 writes --");
    let cluster = std::sync::Arc::new(cluster);
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let cl = std::sync::Arc::clone(&cluster);
            std::thread::spawn(move || {
                let c = cl.open_client();
                for i in 0..50u8 {
                    assert_eq!(
                        put(&cl, &c, 9, block_of(t * 50 + i), &[false; 3]),
                        RsOutcome::Written
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let c = cluster.open_client();
    let a = get(&cluster, &c, 9, &[false, false, true]);
    let b = get(&cluster, &c, 9, &[true, false, false]);
    assert_eq!(a, b, "disjoint quorums agree");
    println!("disjoint quorums agree on block 9 after the race: linearizable.");
    println!("done.");
}
