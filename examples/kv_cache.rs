//! A session cache built on PRISM-KV (§6 of the paper).
//!
//! Demonstrates the store's full lifecycle: GETs that cost a single
//! bounded indirect READ, PUTs that install out-of-place in two round
//! trips with no server CPU, DELETEs, size classes, and client-driven
//! buffer reclamation — then hammers it from several threads.
//!
//! Run with: `cargo run -p prism-harness --example kv_cache`

use std::sync::Arc;

use prism_core::msg::{execute_local, Request};
use prism_kv::hash::HashScheme;
use prism_kv::prism_kv::{PrismKvClient, PrismKvConfig, PrismKvServer, SizeClass};
use prism_kv::{KvOutcome, KvStep};

/// Drives one KV state machine to completion against a local server,
/// counting round trips (in a real deployment each send is a network
/// round trip; here it is a direct call).
fn drive(
    server: &PrismKvServer,
    _client: &PrismKvClient,
    mut on_reply: impl FnMut(prism_core::msg::Reply) -> KvStep,
    first: Request,
) -> (KvOutcome, u32) {
    let mut rtts = 1;
    let mut reply = execute_local(server.server(), &first);
    loop {
        match on_reply(reply) {
            KvStep::Send {
                request,
                background,
            } => {
                if let Some(b) = background {
                    execute_local(server.server(), &b);
                }
                rtts += 1;
                reply = execute_local(server.server(), &request);
            }
            KvStep::Done {
                outcome,
                background,
            } => {
                if let Some(b) = background {
                    execute_local(server.server(), &b);
                }
                return (outcome, rtts);
            }
        }
    }
}

fn get(server: &PrismKvServer, client: &PrismKvClient, key: &[u8]) -> (KvOutcome, u32) {
    let (mut op, req) = client.get(key);
    drive(server, client, |r| op.on_reply(client, r), req)
}

fn put(server: &PrismKvServer, client: &PrismKvClient, key: &[u8], val: &[u8]) -> (KvOutcome, u32) {
    let (mut op, req) = client.put(key, val);
    drive(server, client, |r| op.on_reply(client, r), req)
}

fn main() {
    // A cache with two size classes: small session tokens and larger
    // profile blobs (powers of two bound the space overhead, §3.2).
    let config = PrismKvConfig {
        capacity: 4096,
        scheme: HashScheme::Fnv,
        max_entry_len: 2048,
        classes: vec![
            SizeClass {
                buf_len: 128,
                count: 4096,
            },
            SizeClass {
                buf_len: 2048,
                count: 512,
            },
        ],
    };
    let server = Arc::new(PrismKvServer::new(&config));
    let client = server.open_client();

    // Store a session and a profile.
    let (o, rtts) = put(&server, &client, b"session:alice", b"token-1234");
    println!("PUT session:alice  -> {o:?} in {rtts} round trips");
    let profile = vec![b'p'; 1500];
    let (o, _) = put(&server, &client, b"profile:alice", &profile);
    println!("PUT profile:alice  -> {o:?} (1500 B -> 2048 B class)");

    // Reads cost one round trip regardless of value size.
    let (o, rtts) = get(&server, &client, b"session:alice");
    match o {
        KvOutcome::Value(Some(v)) => {
            println!(
                "GET session:alice  -> {:?} in {rtts} round trip(s)",
                String::from_utf8_lossy(&v)
            )
        }
        other => panic!("unexpected: {other:?}"),
    }

    // Overwrite: the old buffer is reclaimed via the async free RPC.
    put(&server, &client, b"session:alice", b"token-5678");
    let (o, _) = get(&server, &client, b"session:alice");
    println!("after overwrite    -> {o:?}");

    // Expire the session.
    let (mut op, req) = client.delete(b"session:alice");
    let (o, _) = drive(&server, &client, |r| op.on_reply(&client, r), req);
    println!("DELETE             -> {o:?}");
    let (o, _) = get(&server, &client, b"session:alice");
    println!("GET after delete   -> {o:?}");

    // Concurrency: eight threads churn 512 keys; the CAS-install
    // protocol keeps every value internally consistent.
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let client = server.open_client();
                for i in 0..512u32 {
                    let key = format!("user:{}", i % 64);
                    let val = format!("state-{t}-{i}");
                    let (o, _) = put(&server, &client, key.as_bytes(), val.as_bytes());
                    assert_eq!(o, KvOutcome::Written);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let (o, _) = get(&server, &client, b"user:3");
    match o {
        KvOutcome::Value(Some(v)) => {
            let s = String::from_utf8_lossy(&v);
            assert!(s.starts_with("state-"), "torn value: {s}");
            println!("after 4096 racing PUTs, user:3 = {s:?} (consistent)");
        }
        other => panic!("unexpected: {other:?}"),
    }
    println!("done.");
}
