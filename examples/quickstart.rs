//! Quickstart: the four PRISM primitives, straight from Table 1.
//!
//! Sets up a PRISM-capable host, then walks through indirection,
//! allocation, the enhanced CAS, and operation chaining — ending with
//! the paper's signature pattern: an out-of-place update installed in a
//! single round trip (§3.5).
//!
//! Run with: `cargo run -p prism-harness --example quickstart`

use prism_core::builder::{ops, ChainBuilder};
use prism_core::op::{field_mask, full_mask, DataArg, FreeListId, Redirect};
use prism_core::server::PrismServer;
use prism_core::value::CasMode;
use prism_core::OpStatus;
use prism_rdma::region::AccessFlags;

fn main() {
    // A host with 1 MiB of registerable memory. In the paper this is a
    // machine with an RDMA NIC; here it is the simulated equivalent.
    let server = PrismServer::new(1 << 20);

    // Register a data region and a free list of 64-byte buffers — the
    // control-plane setup a real server performs once (§3.2).
    let (data, rkey) = server.carve_region(4096, 64, AccessFlags::FULL);
    let freelist = FreeListId(0);
    server.setup_freelist(freelist, 64, 16);
    let conn = server.open_connection();
    println!("host ready: data region at {data:#x}, rkey {}", rkey.0);

    // --- 1. Indirection (§3.1) -----------------------------------------
    // Store a value out of line and a pointer to it; one indirect READ
    // follows the pointer server-side instead of costing a round trip.
    let object = data + 1024;
    server.arena().write(object, b"hello, PRISM").unwrap();
    server.arena().write_u64(data, object).unwrap();

    let results = server.execute_chain(&[ops::read_indirect(data, 12, rkey.0)]);
    println!(
        "indirect READ  -> {:?}",
        String::from_utf8_lossy(results[0].expect_data().unwrap())
    );

    // Bounded pointers clamp variable-length reads: store (ptr, bound).
    server.arena().write_u64(data + 8, 5).unwrap(); // bound = 5
    let results = server.execute_chain(&[ops::read_indirect_bounded(data, 512, rkey.0)]);
    println!(
        "bounded READ   -> {:?} (asked for 512, bound said 5)",
        String::from_utf8_lossy(results[0].expect_data().unwrap())
    );

    // --- 2. Allocation (§3.2) ------------------------------------------
    let results = server.execute_chain(&[ops::allocate(freelist, b"fresh buffer".to_vec())]);
    let buf = u64::from_le_bytes(results[0].expect_data().unwrap().try_into().unwrap());
    println!("ALLOCATE       -> buffer at {buf:#x}");

    // --- 3. Enhanced CAS (§3.3) ----------------------------------------
    // A 16-byte versioned word: [version (BE) | payload]. Compare only
    // the version field with an arithmetic mode, swap the whole word.
    let word = data + 2048;
    let mut v1 = 1u64.to_be_bytes().to_vec();
    v1.extend_from_slice(b"payload1");
    server.arena().write(word, &v1).unwrap();

    let mut v2 = 2u64.to_be_bytes().to_vec();
    v2.extend_from_slice(b"payload2");
    let install_newer = ops::cas(
        CasMode::Lt, // succeed iff current version < new version
        word,
        rkey.0,
        v2.clone(),
        v2.clone(),
        16,
        field_mask(0, 8),
        full_mask(16),
    );
    let r = server.execute_chain(std::slice::from_ref(&install_newer));
    println!("CAS v1 -> v2   -> {:?}", r[0].status);
    let r = server.execute_chain(&[install_newer]);
    println!(
        "CAS v2 -> v2   -> {:?} (stale install rejected)",
        r[0].status
    );

    // --- 4. Chaining (§3.4 / §3.5) --------------------------------------
    // The one-round-trip out-of-place update: ALLOCATE a new version,
    // redirect its address into connection scratch, then conditionally
    // CAS the pointer slot if it still holds what we last saw.
    let slot = data + 3072;
    let old_ptr = 0u64; // slot starts empty
    let scratch = Redirect {
        addr: conn.scratch_addr,
        rkey: conn.scratch_rkey.0,
    };
    let chain = ChainBuilder::new()
        .then(ops::allocate(freelist, b"version-1 data".to_vec()).redirect(scratch))
        .then(
            ops::cas_args(
                CasMode::Eq,
                slot,
                rkey.0,
                DataArg::Inline(old_ptr.to_le_bytes().to_vec()),
                DataArg::Remote {
                    addr: scratch.addr,
                    rkey: scratch.rkey,
                },
                8,
                full_mask(8),
                full_mask(8),
            )
            .conditional(),
        )
        .build();
    let results = server.execute_chain(&chain);
    assert!(results.iter().all(|r| r.status == OpStatus::Ok));
    let installed = server.arena().read_u64(slot).unwrap();
    println!(
        "chained update -> slot now points at {installed:#x}: {:?}",
        String::from_utf8_lossy(&server.arena().read(installed, 14).unwrap())
    );

    // A losing race: the same chain with a stale expected pointer gets
    // its CAS skipped/failed and the slot is untouched.
    let results = server.execute_chain(&chain);
    println!(
        "racing update  -> CAS status {:?}, slot unchanged at {installed:#x}",
        results[1].status
    );
    assert_eq!(server.arena().read_u64(slot).unwrap(), installed);
    println!("done.");
}
