//! CPU cost of each PRISM primitive on the software data plane — the
//! reproduction's analogue of Figure 1's per-op execution component
//! (the transport component is modeled; this measures the real work).

use prism_bench::runner::{BatchSize, Criterion};
use prism_bench::{criterion_group, criterion_main};

use prism_core::builder::ops;
use prism_core::op::{field_mask, full_mask, DataArg, FreeListId, Redirect};
use prism_core::server::PrismServer;
use prism_core::value::CasMode;
use prism_core::wire;
use prism_rdma::region::AccessFlags;

struct Rig {
    server: PrismServer,
    data: u64,
    rkey: u32,
    scratch: u64,
    scratch_rkey: u32,
}

fn rig() -> Rig {
    let server = PrismServer::new(1 << 22);
    let (data, rkey) = server.carve_region(1 << 20, 64, AccessFlags::FULL);
    server.setup_freelist(FreeListId(0), 576, 1024);
    let conn = server.open_connection();
    // Seed an object and a pointer for the indirect paths.
    server.arena().write(data + 4096, &[7u8; 512]).unwrap();
    server.arena().write_u64(data, data + 4096).unwrap();
    server.arena().write_u64(data + 8, 512).unwrap();
    Rig {
        server,
        data,
        rkey: rkey.0,
        scratch: conn.scratch_addr,
        scratch_rkey: conn.scratch_rkey.0,
    }
}

fn bench_primitives(c: &mut Criterion) {
    let r = rig();
    let mut g = c.benchmark_group("primitive");

    g.bench_function("read_512", |b| {
        let op = [ops::read(r.data + 4096, 512, r.rkey)];
        b.iter(|| r.server.execute_chain(std::hint::black_box(&op)));
    });

    g.bench_function("write_512", |b| {
        let op = [ops::write(r.data + 8192, vec![1u8; 512], r.rkey)];
        b.iter(|| r.server.execute_chain(std::hint::black_box(&op)));
    });

    g.bench_function("read_512_into", |b| {
        // Zero-alloc chain path: the results vector (and its data
        // buffers) are reused across executions.
        let op = [ops::read(r.data + 4096, 512, r.rkey)];
        let mut results = Vec::new();
        b.iter(|| {
            r.server
                .execute_chain_into(std::hint::black_box(&op), &mut results);
            results[0].data.len()
        });
    });

    g.bench_function("indirect_read_512", |b| {
        let op = [ops::read_indirect_bounded(r.data, 512, r.rkey)];
        b.iter(|| r.server.execute_chain(std::hint::black_box(&op)));
    });

    g.bench_function("enhanced_cas_16", |b| {
        // Version-install CAS that always succeeds (version grows).
        let mut version = 0u64;
        b.iter(|| {
            version += 1;
            let mut word = version.to_be_bytes().to_vec();
            word.extend_from_slice(&[0u8; 8]);
            let op = [ops::cas(
                CasMode::Lt,
                r.data + 16384,
                r.rkey,
                word.clone(),
                word,
                16,
                field_mask(0, 8),
                full_mask(16),
            )];
            r.server.execute_chain(&op)
        });
    });

    g.bench_function("allocate_free_512", |b| {
        b.iter_batched(
            || (),
            |()| {
                let res = r
                    .server
                    .execute_chain(&[ops::allocate(FreeListId(0), vec![9u8; 512])]);
                let addr = u64::from_le_bytes(res[0].data.as_slice().try_into().unwrap());
                r.server.repost(FreeListId(0), [addr]).unwrap();
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("out_of_place_update_chain", |b| {
        // The §3.5 composite: WRITE + ALLOCATE(redirect) + CAS + READ.
        let slot = r.data + 32768;
        b.iter(|| {
            let old = r.server.arena().read(slot, 16).unwrap();
            let chain = vec![
                ops::write(r.scratch + 8, 576u64.to_le_bytes().to_vec(), r.scratch_rkey),
                ops::allocate(FreeListId(0), vec![3u8; 512]).redirect(Redirect {
                    addr: r.scratch,
                    rkey: r.scratch_rkey,
                }),
                ops::cas_args(
                    CasMode::Eq,
                    slot,
                    r.rkey,
                    DataArg::Inline(old),
                    DataArg::Remote {
                        addr: r.scratch,
                        rkey: r.scratch_rkey,
                    },
                    16,
                    full_mask(16),
                    full_mask(16),
                )
                .conditional(),
                ops::read(r.scratch, 8, r.scratch_rkey),
            ];
            let res = r.server.execute_chain(&chain);
            // Reclaim the previous buffer to keep the pool stable.
            if let Ok(d) = res[2].expect_data() {
                let old_ptr = u64::from_le_bytes(d[8..16].try_into().unwrap());
                if old_ptr != 0 {
                    r.server.repost(FreeListId(0), [old_ptr]).unwrap();
                }
            }
            res
        });
    });

    g.finish();

    let mut g = c.benchmark_group("wire");
    let chain = vec![
        ops::read_indirect_bounded(0x1000, 512, 1),
        ops::allocate(FreeListId(0), vec![0u8; 512]).redirect(Redirect {
            addr: 0x2000,
            rkey: 2,
        }),
        ops::cas(
            CasMode::Lt,
            0x3000,
            1,
            vec![0u8; 16],
            vec![1u8; 16],
            16,
            full_mask(16),
            full_mask(16),
        ),
    ];
    g.bench_function("encode_3op_chain", |b| {
        b.iter(|| wire::encode_chain(std::hint::black_box(&chain)).unwrap());
    });
    let bytes = wire::encode_chain(&chain).unwrap();
    g.bench_function("decode_3op_chain", |b| {
        b.iter(|| wire::decode_chain(std::hint::black_box(&bytes)).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
