//! Substrate costs: the DES kernel's event throughput (which bounds how
//! fast figures regenerate), workload generators, and Pilaf's CRC.

use prism_bench::runner::Criterion;
use prism_bench::{criterion_group, criterion_main};

use prism_kv::crc::crc32;
use prism_rdma::arena::MemoryArena;
use prism_simnet::engine::{Actor, Context, Simulation};
use prism_simnet::rng::SimRng;
use prism_simnet::time::SimDuration;
use prism_workload::dist::ZipfGen;

struct PingPong {
    peer_offset: isize,
    remaining: u32,
}

impl Actor<u32> for PingPong {
    fn on_message(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
        if self.remaining == 0 {
            ctx.stop();
            return;
        }
        self.remaining -= 1;
        let me = ctx.self_id().index() as isize;
        let dst = prism_simnet::engine::ActorId::from_index((me + self.peer_offset) as usize);
        ctx.send_in(dst, SimDuration::from_nanos(100), msg + 1);
    }
}

fn bench_des(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    g.bench_function("100k_events_ping_pong", |b| {
        b.iter(|| {
            let mut sim: Simulation<u32> = Simulation::new(1);
            let a = sim.add_actor(Box::new(PingPong {
                peer_offset: 1,
                remaining: 50_000,
            }));
            sim.add_actor(Box::new(PingPong {
                peer_offset: -1,
                remaining: 50_000,
            }));
            sim.post(a, 0);
            sim.run();
            sim.now()
        });
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    let zipf = ZipfGen::new(8_000_000, 0.99);
    let mut rng = SimRng::new(7);
    g.bench_function("zipf_sample_8M", |b| b.iter(|| zipf.sample(&mut rng)));
    g.bench_function("splitmix_next", |b| b.iter(|| rng.next_u64()));
    g.finish();
}

fn bench_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("memory");
    let arena = MemoryArena::new(1 << 20);
    let base = MemoryArena::BASE;
    arena.write(base, &[1u8; 4096]).unwrap();
    g.bench_function("arena_read_64", |b| {
        let mut buf = [0u8; 64];
        b.iter(|| arena.read_into(base, &mut buf).unwrap());
    });
    g.bench_function("arena_read_512", |b| {
        let mut buf = [0u8; 512];
        b.iter(|| arena.read_into(base, &mut buf).unwrap());
    });
    g.bench_function("arena_read_4k", |b| {
        let mut buf = vec![0u8; 4096];
        b.iter(|| arena.read_into(base, &mut buf).unwrap());
    });
    g.bench_function("arena_write_512", |b| {
        let data = [7u8; 512];
        b.iter(|| arena.write(base + 8192, &data).unwrap());
    });
    g.bench_function("arena_write_4k", |b| {
        let data = vec![7u8; 4096];
        b.iter(|| arena.write(base + 16384, &data).unwrap());
    });
    g.bench_function("arena_atomic_16", |b| {
        b.iter(|| {
            arena
                .atomic(base + 4096, 16, |bytes| bytes[0] = bytes[0].wrapping_add(1))
                .unwrap()
        });
    });
    let payload = vec![3u8; 512];
    g.bench_function("crc32_512", |b| {
        b.iter(|| crc32(std::hint::black_box(&payload)))
    });
    g.finish();
}

fn bench_verbs(c: &mut Criterion) {
    use prism_rdma::region::AccessFlags;
    use prism_rdma::RdmaNic;

    let mut g = c.benchmark_group("verbs");
    let nic = RdmaNic::new(1 << 20);
    let rkey = nic.register(MemoryArena::BASE, 1 << 20, AccessFlags::FULL);
    let base = MemoryArena::BASE;
    nic.arena().write(base, &[5u8; 16384]).unwrap();

    g.bench_function("read_512_alloc", |b| {
        b.iter(|| nic.read(rkey, base, 512).unwrap());
    });
    g.bench_function("read_512_into", |b| {
        // Zero-alloc verb path: caller-provided buffer.
        let mut buf = vec![0u8; 512];
        b.iter(|| nic.read_into(rkey, base, &mut buf).unwrap());
    });
    g.bench_function("read_512_x16_singly", |b| {
        // 16 dependent round trips: one verb per doorbell ring.
        let mut buf = vec![0u8; 512];
        b.iter(|| {
            for i in 0..16u64 {
                let _ = std::hint::black_box(nic.read(rkey, base + i * 512, 512));
                let _ = &mut buf;
            }
        });
    });
    g.bench_function("read_512_x16_doorbell", |b| {
        // The same 16 READs posted as one doorbell batch, draining one
        // completion queue whose buffers are reused across iterations.
        let wrs: Vec<prism_rdma::WorkRequest> = (0..16u64)
            .map(|i| prism_rdma::WorkRequest::Read {
                rkey,
                addr: base + i * 512,
                len: 512,
            })
            .collect();
        let mut cq = Vec::new();
        b.iter(|| {
            nic.post_batch_into(&wrs, &mut cq);
            std::hint::black_box(cq.len())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_des,
    bench_workload,
    bench_memory,
    bench_verbs
);
criterion_main!(benches);
