//! Substrate costs: the DES kernel's event throughput (which bounds how
//! fast figures regenerate), workload generators, and Pilaf's CRC.

use prism_bench::runner::Criterion;
use prism_bench::{criterion_group, criterion_main};

use prism_core::builder::ops;
use prism_core::msg::Request;
use prism_kv::crc::crc32;
use prism_rdma::arena::MemoryArena;
use prism_simnet::engine::{Actor, Context, QueueKind, Simulation};
use prism_simnet::rng::SimRng;
use prism_simnet::time::{SimDuration, SimTime};
use prism_workload::dist::ZipfGen;
use prism_workload::PoissonGen;

struct PingPong {
    peer_offset: isize,
    remaining: u32,
}

impl Actor<u32> for PingPong {
    fn on_message(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
        if self.remaining == 0 {
            ctx.stop();
            return;
        }
        self.remaining -= 1;
        let me = ctx.self_id().index() as isize;
        let dst = prism_simnet::engine::ActorId::from_index((me + self.peer_offset) as usize);
        ctx.send_in(dst, SimDuration::from_nanos(100), msg + 1);
    }
}

fn bench_des(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    g.bench_function("100k_events_ping_pong", |b| {
        b.iter(|| {
            let mut sim: Simulation<u32> = Simulation::new(1);
            let a = sim.add_actor(Box::new(PingPong {
                peer_offset: 1,
                remaining: 50_000,
            }));
            sim.add_actor(Box::new(PingPong {
                peer_offset: -1,
                remaining: 50_000,
            }));
            sim.post(a, 0);
            sim.run();
            sim.now()
        });
    });
    g.finish();
}

/// Holds a constant population of pending timers (seeded in `on_start`)
/// while every delivered event re-arms one at a pseudo-random offset —
/// the access pattern of open-loop load generation, where each of 10⁵+
/// logical clients keeps a timeout or arrival timer outstanding. At
/// this depth the O(log n) heap pays its worst constant per event; the
/// timer wheel stays O(1).
struct DeepChurn {
    pending: u32,
    remaining: u32,
    rng: SimRng,
}

impl DeepChurn {
    fn rearm(&mut self, ctx: &mut Context<'_, u8>) {
        let me = ctx.self_id();
        // Offsets up to ~16 µs: events stay spread over thousands of
        // distinct timestamps, so batched same-time dispatch can't hide
        // the queue's per-event cost.
        let d = 1 + (self.rng.next_u64() & 0x3FFF);
        ctx.send_in(me, SimDuration::from_nanos(d), 0);
    }
}

impl Actor<u8> for DeepChurn {
    fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
        for _ in 0..self.pending {
            self.rearm(ctx);
        }
    }

    fn on_message(&mut self, _msg: u8, ctx: &mut Context<'_, u8>) {
        if self.remaining == 0 {
            ctx.stop();
            return;
        }
        self.remaining -= 1;
        self.rearm(ctx);
    }
}

fn run_deep_churn(kind: QueueKind) -> SimTime {
    let mut sim: Simulation<u8> = Simulation::with_queue(9, kind);
    sim.add_actor(Box::new(DeepChurn {
        pending: 16_384,
        remaining: 65_536,
        rng: SimRng::new(5),
    }));
    sim.run();
    sim.now()
}

/// Event-queue throughput at open-loop depth: 64 k events dispatched
/// through a standing population of 16 k pending timers, wheel vs the
/// reference heap (results/BENCH_03.json tracks the ratio).
fn bench_deep_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    g.bench_function("64k_events_16k_timers_wheel", |b| {
        b.iter(|| run_deep_churn(QueueKind::Wheel));
    });
    g.bench_function("64k_events_16k_timers_heap", |b| {
        b.iter(|| run_deep_churn(QueueKind::Heap));
    });
    g.finish();
}

/// Borrowed-frame encode: `encode_into` appending to a reused buffer vs
/// the owned `encode` allocating per call, over a 4-op chain (the
/// per-message work of every simulated send).
fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let req = Request::Chain(
        (0..4u64)
            .map(|i| ops::read(0x1000 + i * 512, 512, 7))
            .collect(),
    );
    g.bench_function("chain4_encode_owned", |b| {
        b.iter(|| req.encode().unwrap());
    });
    g.bench_function("chain4_encode_into_reused", |b| {
        let mut buf = Vec::with_capacity(4096);
        b.iter(|| {
            buf.clear();
            req.encode_into(&mut buf).unwrap();
            buf.len()
        });
    });
    let bytes = req.encode().unwrap();
    g.bench_function("chain4_decode", |b| {
        b.iter(|| Request::decode(&bytes).unwrap());
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    let zipf = ZipfGen::new(8_000_000, 0.99);
    let mut rng = SimRng::new(7);
    g.bench_function("zipf_sample_8M", |b| b.iter(|| zipf.sample(&mut rng)));
    g.bench_function("splitmix_next", |b| b.iter(|| rng.next_u64()));
    let mut poisson = PoissonGen::new(1_000_000.0, 11);
    g.bench_function("poisson_next_arrival", |b| {
        b.iter(|| poisson.next_arrival())
    });
    g.finish();
}

fn bench_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("memory");
    let arena = MemoryArena::new(1 << 20);
    let base = MemoryArena::BASE;
    arena.write(base, &[1u8; 4096]).unwrap();
    g.bench_function("arena_read_64", |b| {
        let mut buf = [0u8; 64];
        b.iter(|| arena.read_into(base, &mut buf).unwrap());
    });
    g.bench_function("arena_read_512", |b| {
        let mut buf = [0u8; 512];
        b.iter(|| arena.read_into(base, &mut buf).unwrap());
    });
    g.bench_function("arena_read_4k", |b| {
        let mut buf = vec![0u8; 4096];
        b.iter(|| arena.read_into(base, &mut buf).unwrap());
    });
    g.bench_function("arena_write_512", |b| {
        let data = [7u8; 512];
        b.iter(|| arena.write(base + 8192, &data).unwrap());
    });
    g.bench_function("arena_write_4k", |b| {
        let data = vec![7u8; 4096];
        b.iter(|| arena.write(base + 16384, &data).unwrap());
    });
    g.bench_function("arena_atomic_16", |b| {
        b.iter(|| {
            arena
                .atomic(base + 4096, 16, |bytes| bytes[0] = bytes[0].wrapping_add(1))
                .unwrap()
        });
    });
    let payload = vec![3u8; 512];
    g.bench_function("crc32_512", |b| {
        b.iter(|| crc32(std::hint::black_box(&payload)))
    });
    g.finish();
}

fn bench_verbs(c: &mut Criterion) {
    use prism_rdma::region::AccessFlags;
    use prism_rdma::RdmaNic;

    let mut g = c.benchmark_group("verbs");
    let nic = RdmaNic::new(1 << 20);
    let rkey = nic.register(MemoryArena::BASE, 1 << 20, AccessFlags::FULL);
    let base = MemoryArena::BASE;
    nic.arena().write(base, &[5u8; 16384]).unwrap();

    g.bench_function("read_512_alloc", |b| {
        b.iter(|| nic.read(rkey, base, 512).unwrap());
    });
    g.bench_function("read_512_into", |b| {
        // Zero-alloc verb path: caller-provided buffer.
        let mut buf = vec![0u8; 512];
        b.iter(|| nic.read_into(rkey, base, &mut buf).unwrap());
    });
    g.bench_function("read_512_x16_singly", |b| {
        // 16 dependent round trips: one verb per doorbell ring.
        let mut buf = vec![0u8; 512];
        b.iter(|| {
            for i in 0..16u64 {
                let _ = std::hint::black_box(nic.read(rkey, base + i * 512, 512));
                let _ = &mut buf;
            }
        });
    });
    g.bench_function("read_512_x16_doorbell", |b| {
        // The same 16 READs posted as one doorbell batch, draining one
        // completion queue whose buffers are reused across iterations.
        let wrs: Vec<prism_rdma::WorkRequest> = (0..16u64)
            .map(|i| prism_rdma::WorkRequest::Read {
                rkey,
                addr: base + i * 512,
                len: 512,
            })
            .collect();
        let mut cq = Vec::new();
        b.iter(|| {
            nic.post_batch_into(&wrs, &mut cq);
            std::hint::black_box(cq.len())
        });
    });
    g.finish();
}

fn bench_recovery(c: &mut Criterion) {
    use prism_rs::prism_rs::{drive, RsCluster, RsConfig};
    use prism_rs::RsOutcome;

    const BLOCKS: u64 = 64;
    const VALUE: usize = 64;

    let mut g = c.benchmark_group("recovery");
    let config = RsConfig::paper(BLOCKS, VALUE as u64);
    let cluster = RsCluster::new(3, &config);
    let client = cluster.open_client();
    for b in 0..BLOCKS {
        let v: Vec<u8> = (0..VALUE)
            .map(|i| (b as u8).wrapping_add(i as u8))
            .collect();
        let (op, step) = client.put(b, v);
        assert_eq!(
            drive(&cluster, &client, op, step, &[false; 3]),
            RsOutcome::Written
        );
    }

    g.bench_function("replay_vs_resync_intact_log", |b| {
        // The new recovery path: an amnesia restart replays the local
        // segment log and the delta probe fetches nothing — the whole
        // block set comes back without touching a peer buffer.
        b.iter(|| {
            std::hint::black_box(cluster.amnesia_restart(1));
        });
    });
    g.bench_function("replay_vs_resync_wiped_disk", |b| {
        // The pre-durability baseline: every restart was this — no
        // local log, every block fetched from a peer quorum. The wipe
        // inside the loop keeps each iteration a cold, full resync
        // (rejoin re-logs what it adopts, which would otherwise turn
        // iteration two into a replay).
        b.iter(|| {
            cluster.replica(1).store().wipe();
            std::hint::black_box(cluster.amnesia_restart(1));
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_des,
    bench_deep_queue,
    bench_wire,
    bench_workload,
    bench_memory,
    bench_verbs,
    bench_recovery
);
criterion_main!(benches);
