//! Whole-operation costs of the three applications and their baselines,
//! in live mode (direct execution; no simulated network). These measure
//! the real CPU work per logical operation — the quantity the paper's
//! servers spend dedicated cores on.

use prism_bench::runner::Criterion;
use prism_bench::{criterion_group, criterion_main};

use prism_core::msg::execute_local;
use prism_kv::hash::key_bytes;
use prism_kv::pilaf::{PilafConfig, PilafServer};
use prism_kv::prism_kv::{PrismKvConfig, PrismKvServer};
use prism_kv::KvStep;
use prism_rs::prism_rs::{drive as rs_drive, RsCluster, RsConfig};
use prism_tx::farm::{self, FarmCluster, FarmConfig};
use prism_tx::prism_tx::{drive as tx_drive, TxCluster, TxConfig};

fn bench_kv(c: &mut Criterion) {
    let mut g = c.benchmark_group("kv");
    let prism = PrismKvServer::new(&PrismKvConfig::paper(1024, 512));
    let pc = prism.open_client();
    // Preload key 7.
    let val = vec![9u8; 512];
    let put = |value: &[u8]| {
        let (mut op, req) = pc.put(&key_bytes(7), value);
        let mut reply = execute_local(prism.server(), &req);
        loop {
            match op.on_reply(&pc, reply) {
                KvStep::Send {
                    request,
                    background,
                } => {
                    if let Some(b) = background {
                        execute_local(prism.server(), &b);
                    }
                    reply = execute_local(prism.server(), &request);
                }
                KvStep::Done { background, .. } => {
                    if let Some(b) = background {
                        execute_local(prism.server(), &b);
                    }
                    break;
                }
            }
        }
    };
    put(&val);

    g.bench_function("prism_kv_get_512", |b| {
        b.iter(|| {
            let (mut op, req) = pc.get(&key_bytes(7));
            let reply = execute_local(prism.server(), &req);
            op.on_reply(&pc, reply)
        });
    });
    g.bench_function("prism_kv_put_512", |b| b.iter(|| put(&val)));

    let pilaf = PilafServer::new(&PilafConfig::paper(1024, 512));
    let lc = pilaf.open_client();
    execute_local(pilaf.server(), &lc.put_request(&key_bytes(7), &val));
    g.bench_function("pilaf_get_512", |b| {
        b.iter(|| {
            let (mut op, req) = lc.get(&key_bytes(7));
            let mut reply = execute_local(pilaf.server(), &req);
            while let KvStep::Send { request, .. } = op.on_reply(&lc, reply) {
                reply = execute_local(pilaf.server(), &request);
            }
        });
    });
    g.bench_function("pilaf_put_rpc_512", |b| {
        let req = lc.put_request(&key_bytes(7), &val);
        b.iter(|| execute_local(pilaf.server(), &req));
    });
    g.finish();
}

fn bench_rs(c: &mut Criterion) {
    let mut g = c.benchmark_group("rs");
    let cluster = RsCluster::new(3, &RsConfig::paper(64, 512));
    let client = cluster.open_client();
    g.bench_function("prism_rs_put_512_3replicas", |b| {
        b.iter(|| {
            let (op, step) = client.put(3, vec![5u8; 512]);
            rs_drive(&cluster, &client, op, step, &[false; 3])
        });
    });
    g.bench_function("prism_rs_get_512_3replicas", |b| {
        b.iter(|| {
            let (op, step) = client.get(3);
            rs_drive(&cluster, &client, op, step, &[false; 3])
        });
    });
    g.finish();
}

fn bench_tx(c: &mut Criterion) {
    let mut g = c.benchmark_group("tx");
    let cluster = TxCluster::new(1, &TxConfig::paper(1024, 512));
    g.bench_function("prism_tx_rmw_commit", |b| {
        let mut client = cluster.open_client();
        b.iter(|| {
            let (op, step) = client.begin(vec![7], vec![(7, vec![1u8; 512])]);
            tx_drive(&cluster, &mut client, op, step)
        });
    });
    let fcluster = FarmCluster::new(
        1,
        &FarmConfig {
            keys_per_shard: 1024,
            value_len: 512,
        },
    );
    g.bench_function("farm_rmw_commit", |b| {
        let mut client = fcluster.open_client();
        b.iter(|| {
            let (op, step) = client.begin(vec![7], vec![(7, vec![1u8; 512])]);
            farm::drive(&fcluster, &client, op, step)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_kv, bench_rs, bench_tx);
criterion_main!(benches);
