//! Minimal `std::time::Instant` benchmark runner.
//!
//! Replaces Criterion (a registry dependency this hermetic workspace
//! cannot pull) with a deliberately small runner exposing the same
//! surface the bench files use — `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros — so the scenario code
//! is unchanged from the Criterion originals.
//!
//! Methodology: each benchmark is calibrated (iteration count doubled
//! until a batch takes ≥ ~10 ms), then measured over several samples of
//! that batch size; the reported figure is the *minimum* mean ns/iter
//! across samples, the conventional low-noise point estimate. Wall-clock
//! budget per benchmark is bounded by `PRISM_BENCH_MS` (default 300 ms
//! of measurement).
//!
//! CLI: a single positional argument filters benchmarks by substring
//! (`cargo bench -p prism-bench --bench primitives -- read`); flags
//! cargo passes through (`--bench`) are ignored.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measurement budget per benchmark, in milliseconds.
fn budget_ms() -> u64 {
    std::env::var("PRISM_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// When `PRISM_BENCH_JSON` names a file, each result is appended to it
/// as one JSON object per line (`{"bench": ..., "ns_per_iter": ...}`),
/// so `scripts/bench.sh` can collect machine-readable numbers across
/// bench binaries without parsing stdout.
fn append_json_line(name: &str, ns: f64) {
    let Ok(path) = std::env::var("PRISM_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(f, "{{\"bench\": \"{name}\", \"ns_per_iter\": {ns:.1}}}");
    }
}

/// Batch-size hint, kept for Criterion API compatibility. The runner
/// re-runs setup per batch regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; large batches are fine.
    SmallInput,
    /// Setup output is large; keep batches small.
    LargeInput,
}

/// Top-level runner handle, analogous to `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Builds a runner from CLI args: the first non-flag argument is a
    /// substring filter on benchmark names.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }

    /// Opens a named group; benchmark names are printed as
    /// `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup::new(name.to_string(), self.filter.clone())
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    filter: Option<String>,
    // Tie the group to the Criterion borrow like the real API does.
    _marker: std::marker::PhantomData<&'a ()>,
}

// Separate literal construction from the struct definition so the
// PhantomData field stays private.
impl BenchmarkGroup<'_> {
    fn new(prefix: String, filter: Option<String>) -> Self {
        BenchmarkGroup {
            prefix,
            filter,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs one benchmark if it passes the filter, printing its result.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.prefix, name);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            ns_per_iter: f64::NAN,
        };
        f(&mut b);
        if b.ns_per_iter.is_nan() {
            println!("{full:<44} (no measurement)");
        } else {
            println!("{full:<44} {:>12.1} ns/iter", b.ns_per_iter);
            append_json_line(&full, b.ns_per_iter);
        }
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the hot loop.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f` in calibrated batches, keeping the best (minimum) mean.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Calibrate: double the batch until it costs ≥ 10 ms (or a large
        // iteration count for ultra-cheap bodies).
        let mut batch: u64 = 1;
        let calibration_floor = Duration::from_millis(10);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= calibration_floor || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        // Measure: as many batches as the budget allows, at least 3.
        let budget = Duration::from_millis(budget_ms());
        let mut best = f64::INFINITY;
        let mut spent = Duration::ZERO;
        let mut samples = 0;
        while samples < 3 || (spent < budget && samples < 100) {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            spent += elapsed;
            samples += 1;
            let mean = elapsed.as_nanos() as f64 / batch as f64;
            if mean < best {
                best = mean;
            }
        }
        self.record(best);
    }

    /// Criterion's batched form: `setup` runs outside the timed region,
    /// `routine` inside. Used when the routine consumes its input or
    /// must not accumulate state effects into later iterations.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        let budget = Duration::from_millis(budget_ms());
        let mut best = f64::INFINITY;
        let mut spent = Duration::ZERO;
        let mut samples: u64 = 0;
        // Batch inputs in groups of 64 to amortize Instant overhead.
        const GROUP: usize = 64;
        while samples < 3 || (spent < budget && samples < 100) {
            let inputs: Vec<S> = (0..GROUP).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            spent += elapsed;
            samples += 1;
            let mean = elapsed.as_nanos() as f64 / GROUP as f64;
            if mean < best {
                best = mean;
            }
        }
        self.record(best);
    }

    fn record(&mut self, ns: f64) {
        if self.ns_per_iter.is_nan() || ns < self.ns_per_iter {
            self.ns_per_iter = ns;
        }
    }
}

/// Groups benchmark functions under one name, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::runner::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point running the named groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::runner::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something_positive() {
        // Keep the budget tiny so the test is fast.
        std::env::set_var("PRISM_BENCH_MS", "5");
        let mut b = Bencher {
            ns_per_iter: f64::NAN,
        };
        b.iter(|| std::hint::black_box(41u64) + 1);
        assert!(b.ns_per_iter.is_finite() && b.ns_per_iter > 0.0);
        std::env::remove_var("PRISM_BENCH_MS");
    }

    #[test]
    fn group_filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("zzz-no-such-bench".into()),
        };
        let mut g = c.benchmark_group("t");
        // Would hang for a long time if not filtered out.
        g.bench_function("slow", |b| {
            b.iter(|| std::thread::sleep(Duration::from_secs(1)))
        });
        g.finish();
    }
}
