//! Criterion benchmark crate for the PRISM reproduction (see the
//! `benches/` directory). The library itself is empty; everything lives
//! in the bench targets:
//!
//! * `primitives` — per-op CPU cost of the PRISM software data plane.
//! * `protocols` — full application operations (KV GET/PUT, ABD rounds,
//!   transaction commits) in live mode.
//! * `substrate` — the simulator itself: event throughput, Zipf
//!   sampling, wire codec, CRC.
