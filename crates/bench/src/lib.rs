//! Benchmark crate for the PRISM reproduction (see the `benches/`
//! directory), running on the in-repo [`runner`] — a minimal
//! `std::time::Instant` harness with a Criterion-compatible surface, so
//! the workspace builds with zero registry dependencies.
//!
//! * `primitives` — per-op CPU cost of the PRISM software data plane.
//! * `protocols` — full application operations (KV GET/PUT, ABD rounds,
//!   transaction commits) in live mode.
//! * `substrate` — the simulator itself: event throughput, Zipf
//!   sampling, wire codec, CRC.

pub mod runner;
