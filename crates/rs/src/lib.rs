//! PRISM-RS (§7 of the PRISM paper): a fault-tolerant, linearizable
//! replicated block store built entirely from PRISM operations, plus the
//! lock-based standard-RDMA baseline it is evaluated against.
//!
//! * [`prism_rs`] — multi-writer ABD over PRISM chains: indirect READs
//!   fetch `[tag | value]` atomically; the write phase installs
//!   out-of-place buffers with a single tag-guarded enhanced CAS. Two
//!   round trips per operation, no replica CPU on the data path.
//! * [`abdlock`] — the same ABD protocol over classic verbs with
//!   per-block spinlocks (§7.2): four round trips, lock contention, and
//!   possible livelock — the behaviour Figures 6 and 7 compare against.
//! * [`tag`] — `(timestamp, client)` tags whose big-endian byte order
//!   matches the enhanced CAS's arithmetic comparison.
//!
//! # Examples
//!
//! ```
//! use prism_rs::prism_rs::{drive, RsCluster, RsConfig, RsOutcome};
//!
//! // Three replicas tolerate one failure.
//! let cluster = RsCluster::new(3, &RsConfig::paper(16, 64));
//! let client = cluster.open_client();
//!
//! let (op, step) = client.put(3, vec![7u8; 64]);
//! assert_eq!(drive(&cluster, &client, op, step, &[false; 3]), RsOutcome::Written);
//!
//! // Reads succeed through any majority — here with replica 0 down.
//! let (op, step) = client.get(3);
//! let crashed = [true, false, false];
//! assert_eq!(
//!     drive(&cluster, &client, op, step, &crashed),
//!     RsOutcome::Value(vec![7u8; 64])
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abdlock;
pub mod prism_rs;
pub mod tag;

pub use abdlock::{AbdLockClient, AbdLockCluster, AbdLockConfig, AbdLockOp, AbdStep};
pub use prism_rs::{PrismRsServer, RsClient, RsCluster, RsConfig, RsOp, RsOutcome, RsStep};
pub use tag::Tag;
