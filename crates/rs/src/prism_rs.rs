//! PRISM-RS: linearizable replicated block storage over PRISM chains
//! (§7.3 of the paper).
//!
//! The protocol is multi-writer ABD (Attiya–Bar-Noy–Dolev, with the
//! Lynch–Shvartsman multi-writer extension, §7.1): values are replicated
//! at `n = 2f + 1` replicas, each tagged with a `(timestamp, client)`
//! pair; GETs and PUTs run a read phase then a write phase, each waiting
//! for `f + 1` replies.
//!
//! Replica layout (Figure 5): a metadata array whose entry for block `i`
//! is `[tag_i (8 B, big-endian) | addr_i (8 B)]`, where `addr_i` points
//! at a write-once buffer holding `[tag_i | value_i]`. The tag is
//! intentionally duplicated (§7.3): an indirect READ of `addr_i` fetches
//! tag and value atomically (the buffer is never modified after its
//! first write), and a single enhanced CAS on `tag_i|addr_i` orders
//! installs by tag.
//!
//! * **Read phase** — GETs: one indirect READ through `addr_i` per
//!   replica, returning `[tag | value]`. PUTs only need tags: one plain
//!   16-byte READ of the metadata entry.
//! * **Write phase** — the three-op chain of §7.3: WRITE the new tag
//!   into connection scratch, ALLOCATE `[tag | value]` redirecting the
//!   buffer address to scratch+8, then CAS_GT (expressed as mode `Lt`:
//!   *target < operand*) with the comparand *and* swap value loaded from
//!   scratch, compare mask over the tag field, swap mask over the whole
//!   entry. A trailing READ of scratch+8 recovers the allocated address
//!   so a losing client can reclaim its orphan.
//!
//! A replica acknowledging with `CasFailed` already stores a tag at
//! least as large — which satisfies the ABD write-phase obligation just
//! as an install does.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use prism_core::builder::ops;
use prism_core::crc::Crc32;
use prism_core::integrity::IntegrityStats;
use prism_core::msg::{Reply, Request};
use prism_core::op::{field_mask, full_mask, DataArg, FreeListId, Redirect};
use prism_core::server::ChainObserver;
use prism_core::value::CasMode;
use prism_core::{OpResult, OpStatus, PrismOp, PrismServer};
use prism_rdma::region::AccessFlags;
use prism_store::{DurableStats, Record, SegmentStore, SimDisk};

use crate::tag::Tag;

/// Metadata entry size: tag + buffer address.
pub const META: u64 = 16;

/// Buffer header preceding the value: `[tag 8 B | crc u32 | pad u32]`.
/// The checksum covers `tag || value`, binding the tag to the bytes it
/// vouches for — a buffer whose value rotted (or whose install tore)
/// fails verification under *its own* tag and is never adopted by a
/// reader, a resync, or a scrub.
pub const BUF_HDR: u64 = 16;

/// Builds the self-verifying buffer image for `tag` + `value`.
pub fn encode_block(tag: Tag, value: &[u8]) -> Vec<u8> {
    let tag_bytes = tag.to_bytes();
    let mut crc = Crc32::new();
    crc.update(&tag_bytes).update(value);
    let mut p = Vec::with_capacity(BUF_HDR as usize + value.len());
    p.extend_from_slice(&tag_bytes);
    p.extend_from_slice(&crc.finish().to_le_bytes());
    p.extend_from_slice(&[0u8; 4]);
    p.extend_from_slice(value);
    p
}

/// Verifies a buffer image: tag-bound checksum over `tag || value`.
pub fn block_crc_ok(buf: &[u8]) -> bool {
    if buf.len() < BUF_HDR as usize {
        return false;
    }
    let stored = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
    let mut crc = Crc32::new();
    crc.update(&buf[..8]).update(&buf[BUF_HDR as usize..]);
    crc.finish() == stored
}

const RPC_FREE: u8 = 0x01;
const RPC_FREE_BATCH: u8 = 0x04;

/// Per-replica store configuration.
#[derive(Debug, Clone)]
pub struct RsConfig {
    /// Number of blocks (registers).
    pub n_blocks: u64,
    /// Value bytes per block (512 in §7.4).
    pub block_size: u64,
    /// Extra buffers beyond one per block, for in-flight writes.
    pub spare_buffers: u64,
}

impl RsConfig {
    /// The paper's §7.4 configuration scaled to `n_blocks`.
    pub fn paper(n_blocks: u64, block_size: u64) -> Self {
        RsConfig {
            n_blocks,
            block_size,
            spare_buffers: (n_blocks / 8).max(64),
        }
    }
}

/// Client-visible layout of one replica.
#[derive(Debug, Clone)]
pub struct RsView {
    /// Base of the metadata array.
    pub meta_addr: u64,
    /// Rkey covering metadata and buffers.
    pub data_rkey: u32,
    /// Number of blocks.
    pub n_blocks: u64,
    /// Value bytes per block.
    pub block_size: u64,
    /// The buffer free list.
    pub freelist: FreeListId,
}

impl RsView {
    /// Address of block `i`'s metadata entry.
    pub fn meta(&self, i: u64) -> u64 {
        self.meta_addr + i * META
    }

    /// Buffer length: `[tag | crc | pad]` header + value.
    pub fn buf_len(&self) -> u64 {
        BUF_HDR + self.block_size
    }
}

/// Records between fsync barriers on the durable log. Coarse on
/// purpose: a crash tear can cost up to `RS_BARRIER_EVERY - 1` acked
/// installs of local log, which is safe for RS — every completed write
/// lives on a quorum, so whatever the tear cut is healed by the delta
/// resync. KV, which has no peers, syncs every record instead.
const RS_BARRIER_EVERY: u64 = 8;

/// Chain observer installed on every RS replica: watches for the
/// write-phase CAS install (the linearization point of a PUT's write
/// leg landing on this replica) and appends the installed block image
/// to the replica's segment log. Replay after an amnesia restart folds
/// these records back before any delta resync.
struct RsDurableTap {
    store: Arc<SegmentStore>,
    meta_addr: u64,
    n_blocks: u64,
    buf_len: u64,
    appended: AtomicU64,
}

impl ChainObserver for RsDurableTap {
    fn on_chain(&self, server: &PrismServer, chain: &[PrismOp], results: &[OpResult]) {
        for (op, res) in chain.iter().zip(results) {
            let PrismOp::Cas {
                mode: CasMode::Lt,
                target,
                len: 16,
                ..
            } = op
            else {
                continue;
            };
            let meta_end = self.meta_addr + self.n_blocks * META;
            if *target < self.meta_addr || *target >= meta_end || res.status != OpStatus::Ok {
                continue;
            }
            // The CAS succeeded: the metadata entry now points at the
            // freshly installed buffer. Log the buffer image — it is
            // self-verifying ([tag | crc | pad | value]), so replay can
            // re-check it independently of the segment framing.
            let Ok(meta) = server.arena().read(*target, META) else {
                continue;
            };
            let addr = u64::from_le_bytes(meta[8..16].try_into().expect("8 bytes"));
            if addr == 0 {
                continue; // fences are logged explicitly by the migrator
            }
            let Ok(buf) = server.arena().read(addr, self.buf_len) else {
                continue;
            };
            self.store.append(&Record {
                epoch: server.current_epoch(),
                inc: server.regions().current_incarnation(),
                key: (*target - self.meta_addr) / META,
                payload: buf,
            });
            let n = self.appended.fetch_add(1, Ordering::Relaxed) + 1;
            if n.is_multiple_of(RS_BARRIER_EVERY) {
                self.store.barrier();
            }
        }
    }
}

/// One PRISM-RS replica.
pub struct PrismRsServer {
    server: Arc<PrismServer>,
    pool_base: u64,
    stride: u64,
    count: u64,
    view: RsView,
    disk: Arc<SimDisk>,
    store: Arc<SegmentStore>,
}

impl PrismRsServer {
    /// Builds a replica: metadata array, buffer pool, initial version
    /// (tag 0, zeroed value) for every block, and the reclaim RPC.
    pub fn new(config: &RsConfig) -> Self {
        let meta_len = (config.n_blocks * META).next_multiple_of(64);
        let buf_len = BUF_HDR + config.block_size;
        let stride = buf_len.next_multiple_of(64);
        let count = config.n_blocks + config.spare_buffers;
        let pool_len = stride * count;
        let server = Arc::new(PrismServer::new(meta_len + pool_len + (1 << 20)));
        let (data_base, data_rkey) =
            server.carve_region(meta_len + pool_len, 64, AccessFlags::FULL);
        let meta_addr = data_base;
        let pool_base = data_base + meta_len;

        let freelist = FreeListId(0);
        server.freelists().register(freelist, buf_len);
        // Buffers [0, n_blocks) seed the initial block versions; the rest
        // go on the free list.
        server
            .freelists()
            .post(
                freelist,
                (config.n_blocks..count).map(|j| pool_base + j * stride),
            )
            .expect("fresh free list accepts posts");
        let seed_image = encode_block(Tag::ZERO, &vec![0u8; config.block_size as usize]);
        for b in 0..config.n_blocks {
            let buf = pool_base + b * stride;
            // Buffer: [tag 0 | crc | pad | zero value] — even the fresh
            // image is self-verifying, so rot on a never-written block is
            // detected like any other.
            server
                .arena()
                .write(buf, &seed_image)
                .expect("buffer in arena");
            let mut meta = Vec::with_capacity(16);
            meta.extend_from_slice(&Tag::ZERO.to_bytes());
            meta.extend_from_slice(&buf.to_le_bytes());
            server
                .arena()
                .write(meta_addr + b * META, &meta)
                .expect("metadata in arena");
        }

        // Reclaim RPC (same shape as PRISM-KV's).
        let freelists = Arc::clone(server.freelists());
        let pool_end = pool_base + pool_len;
        server.set_rpc_handler(Arc::new(move |req: &[u8]| {
            let free_one = |addr: u64| -> bool {
                if addr >= pool_base && addr < pool_end && (addr - pool_base).is_multiple_of(stride)
                {
                    freelists
                        .post(freelist, [addr])
                        .expect("freelist registered");
                    true
                } else {
                    false
                }
            };
            if req.len() == 9 && req[0] == RPC_FREE {
                let addr = u64::from_le_bytes(req[1..9].try_into().expect("9 bytes"));
                if free_one(addr) {
                    return vec![0];
                }
            } else if req.len() >= 3 && req[0] == RPC_FREE_BATCH {
                // Batched reclamation (§3.2).
                let n = u16::from_le_bytes(req[1..3].try_into().expect("2 bytes")) as usize;
                if req.len() == 3 + n * 8 {
                    let ok = (0..n).all(|i| {
                        let off = 3 + i * 8;
                        free_one(u64::from_le_bytes(
                            req[off..off + 8].try_into().expect("8 bytes"),
                        ))
                    });
                    return vec![if ok { 0 } else { 0xFF }];
                }
            }
            vec![0xFF]
        }));

        // Durable tier: a private simulated disk holding the replica's
        // segment log, fed by a chain observer at the install CAS.
        let disk = Arc::new(SimDisk::new());
        let store = Arc::new(SegmentStore::new(Arc::clone(&disk), "rs"));
        server.set_chain_observer(Arc::new(RsDurableTap {
            store: Arc::clone(&store),
            meta_addr,
            n_blocks: config.n_blocks,
            buf_len,
            appended: AtomicU64::new(0),
        }));

        PrismRsServer {
            server,
            pool_base,
            stride,
            count,
            view: RsView {
                meta_addr,
                data_rkey: data_rkey.0,
                n_blocks: config.n_blocks,
                block_size: config.block_size,
                freelist,
            },
            disk,
            store,
        }
    }

    /// Server-side garbage collection (§3.2's alternative to
    /// client-driven reclamation): scans the metadata array for
    /// reachable buffers and reposts every pool buffer that is neither
    /// reachable nor already free. Runs under the posting gate's
    /// exclusive side, so no chain is mid-allocation while it scans;
    /// chains allocate and install within a single chain, so any
    /// unreachable buffer at that point is genuinely leaked (e.g. its
    /// client died before sending the free notification). Returns the
    /// number of buffers reclaimed.
    pub fn gc_sweep(&self) -> usize {
        let _exclusive = self.server.freelists().gate_write();
        let mut reachable = std::collections::HashSet::new();
        for b in 0..self.view.n_blocks {
            let addr = self
                .server
                .arena()
                .read_u64(self.view.meta(b) + 8)
                .expect("metadata in arena");
            reachable.insert(addr);
        }
        let free: std::collections::HashSet<u64> = self
            .server
            .freelists()
            .snapshot(self.view.freelist)
            .into_iter()
            .collect();
        let mut reclaimed = 0;
        for i in 0..self.count {
            let buf = self.pool_base + i * self.stride;
            if !reachable.contains(&buf) && !free.contains(&buf) {
                // Safe under the exclusive gate (the repost path's own
                // locking is bypassed deliberately: we *are* the holder).
                self.server.freelists().repush_gc(self.view.freelist, buf);
                reclaimed += 1;
            }
        }
        reclaimed
    }

    /// The underlying host.
    pub fn server(&self) -> &Arc<PrismServer> {
        &self.server
    }

    /// The client-visible layout.
    pub fn view(&self) -> &RsView {
        &self.view
    }

    /// The buffer pool `(base, len)` — where at-rest bit rot lands.
    pub fn pool_range(&self) -> (u64, u64) {
        (self.pool_base, self.stride * self.count)
    }

    /// The replica's simulated disk (where crash tears and disk rot
    /// land).
    pub fn disk(&self) -> &Arc<SimDisk> {
        &self.disk
    }

    /// The replica's durable segment log.
    pub fn store(&self) -> &Arc<SegmentStore> {
        &self.store
    }

    /// Logs a migration fence for `block` durably: an empty-payload
    /// record meaning "this block's home moved at `epoch`". Replay
    /// treats it as `Tag::MAX` — nothing logged earlier (and nothing
    /// stale-epoch) can resurrect the fenced block. Synced immediately:
    /// fences are control-plane writes and must survive any tear.
    pub fn log_fence(&self, block: u64, epoch: u64) {
        self.store.append(&Record {
            epoch,
            inc: self.server.regions().current_incarnation(),
            key: block,
            payload: Vec::new(),
        });
        self.store.barrier();
    }
}

impl std::fmt::Debug for PrismRsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrismRsServer")
            .field("n_blocks", &self.view.n_blocks)
            .finish_non_exhaustive()
    }
}

/// An `n = 2f + 1` replica group.
pub struct RsCluster {
    replicas: Vec<PrismRsServer>,
    next_client: std::sync::atomic::AtomicU16,
    rejoins: std::sync::atomic::AtomicU64,
    resyncs: std::sync::atomic::AtomicU64,
    scrub_repairs: std::sync::atomic::AtomicU64,
    durable: Arc<DurableStats>,
}

impl RsCluster {
    /// Builds `n` identical replicas.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is odd and at least 3.
    pub fn new(n: usize, config: &RsConfig) -> Self {
        assert!(n >= 3 && n % 2 == 1, "ABD needs n = 2f+1 >= 3 replicas");
        RsCluster {
            replicas: (0..n).map(|_| PrismRsServer::new(config)).collect(),
            next_client: std::sync::atomic::AtomicU16::new(1),
            rejoins: std::sync::atomic::AtomicU64::new(0),
            resyncs: std::sync::atomic::AtomicU64::new(0),
            scrub_repairs: std::sync::atomic::AtomicU64::new(0),
            durable: Arc::new(DurableStats::new()),
        }
    }

    /// The group's durable-recovery counters (replayed / delta-resynced
    /// / truncated segments). The harness folds these into `RunResult`.
    pub fn durable_stats(&self) -> &Arc<DurableStats> {
        &self.durable
    }

    /// Shares an external durable-stats sink (e.g. the shard set's)
    /// instead of the group's private one.
    pub fn set_durable_stats(&mut self, stats: Arc<DurableStats>) {
        self.durable = stats;
    }

    /// Fails replica `i` with **amnesia** and rejoins it (§7.2): the
    /// host wipes and fences ([`PrismServer::amnesia_restart`]), then
    /// the recovery protocol rebuilds the replica's layout — metadata
    /// array, seed buffers, free list — at the original addresses under
    /// the new incarnation, and resyncs every block from its peers.
    ///
    /// The resync is an ABD read-repair: the rejoiner reads the tagged
    /// version held by each of its `2f` surviving peers and installs
    /// the maximum. Any write that completed (reached `f + 1` replicas)
    /// survives on at least `f ≥ 1` of those peers, so the rejoined
    /// replica is at least as fresh as every completed write — the
    /// quorum-intersection invariant is restored before it serves. Runs
    /// atomically from the simulation's perspective (the restart event
    /// completes the rejoin before any post-restart request), which
    /// models the replica staying in a recovering state until resync
    /// finishes. Returns the replica's new incarnation.
    pub fn amnesia_restart(&self, i: usize) -> u64 {
        use std::sync::atomic::Ordering::Relaxed;
        let r = &self.replicas[i];
        let inc = r.server.amnesia_restart();
        // Fresh-boot layout: block b seeds pool slot b, spares go back
        // on the free list. The pre-crash queue contents described
        // ownership that no longer exists.
        r.server.freelists().reset(
            r.view.freelist,
            (r.view.n_blocks..r.count).map(|j| r.pool_base + j * r.stride),
        );

        // Phase 1 — local replay. The segment log survives the crash
        // (minus whatever a disk tear or rot took); replay validates
        // every frame by CRC, truncates the first torn/corrupt tail,
        // and folds the survivors last-tag-wins per block. A corrupt
        // frame is *never* applied — whatever it covered is healed from
        // peers below.
        let replay = r.store.replay();
        self.durable
            .add_segments_truncated(replay.segments_truncated);
        let nb = r.view.n_blocks as usize;
        // Per-block recovered state: `(tag, Some(value))`, or
        // `(Tag::MAX, None)` for a migration fence (empty-payload
        // record: the block's home moved, nothing may resurrect it).
        let mut local: Vec<(Tag, Option<Vec<u8>>)> =
            vec![(Tag::ZERO, Some(vec![0u8; r.view.block_size as usize])); nb];
        let mut replayed = 0u64;
        for rec in &replay.records {
            let Some(slot) = local.get_mut(rec.key as usize) else {
                continue;
            };
            if rec.payload.is_empty() {
                // Fence record from a migrate_grow: permanently wins.
                // Anything logged for this block before (or after, at a
                // stale epoch) cannot beat Tag::MAX, so fenced data
                // never resurrects through replay.
                *slot = (Tag::MAX, None);
                replayed += 1;
                continue;
            }
            // The block image carries its own tag-bound checksum; a
            // payload the segment CRC passed but the image check
            // rejects (e.g. rot landed between the two on a real disk)
            // is dropped, not installed.
            if !block_crc_ok(&rec.payload) {
                continue;
            }
            let tag = Tag::from_bytes(&rec.payload[..8]);
            if tag > slot.0 {
                *slot = (tag, Some(rec.payload[BUF_HDR as usize..].to_vec()));
                replayed += 1;
            }
        }
        self.durable.add_replayed(replayed);

        // Phase 2 — delta resync. Probe every peer's 16-byte metadata
        // entry (cheap tag traffic), but fetch the full buffer only for
        // blocks where a peer is *ahead* of the replayed high-water
        // mark. With an intact log this is the handful of writes that
        // landed after the last barrier — orders of magnitude less
        // traffic than the old full resync, which fetched every block.
        for b in 0..nb as u64 {
            let (mut best_tag, mut best_val) = local[b as usize].clone();
            let mut from_peer = false;
            for (j, peer) in self.replicas.iter().enumerate() {
                if j == i {
                    continue;
                }
                let pv = &peer.view;
                let meta = peer
                    .server
                    .arena()
                    .read(pv.meta(b), META)
                    .expect("peer metadata in arena");
                let tag = Tag::from_bytes(&meta[..8]);
                if tag > best_tag {
                    let addr = u64::from_le_bytes(meta[8..16].try_into().expect("8 bytes"));
                    if addr == 0 {
                        best_tag = tag;
                        best_val = None;
                        from_peer = true;
                        continue;
                    }
                    // Copies that fail their own checksum are never
                    // adopted: a rotted peer buffer cannot poison the
                    // rejoiner.
                    let buf = peer
                        .server
                        .arena()
                        .read(addr, pv.buf_len())
                        .expect("peer buffer in arena");
                    if !block_crc_ok(&buf) {
                        continue;
                    }
                    best_tag = tag;
                    best_val = Some(buf[BUF_HDR as usize..].to_vec());
                    from_peer = true;
                }
            }
            let mut meta = Vec::with_capacity(META as usize);
            meta.extend_from_slice(&best_tag.to_bytes());
            match &best_val {
                Some(val) => {
                    let buf = r.pool_base + b * r.stride;
                    r.server
                        .arena()
                        .write(buf, &encode_block(best_tag, val))
                        .expect("buffer in arena");
                    meta.extend_from_slice(&buf.to_le_bytes());
                }
                None => meta.extend_from_slice(&0u64.to_le_bytes()),
            }
            r.server
                .arena()
                .write(r.view.meta(b), &meta)
                .expect("metadata in arena");
            if from_peer {
                self.durable.add_delta_resynced(1);
                // Log what was adopted so the *next* replay starts from
                // here instead of refetching it.
                let payload = match &best_val {
                    Some(val) => encode_block(best_tag, val),
                    None => Vec::new(), // fence adopted from peers
                };
                r.store.append(&Record {
                    epoch: r.server.current_epoch(),
                    inc,
                    key: b,
                    payload,
                });
                if best_tag > Tag::ZERO && best_val.is_some() {
                    self.resyncs.fetch_add(1, Relaxed);
                }
            }
        }
        // Recovery is control-plane: everything it wrote is synced.
        r.store.barrier();
        self.rejoins.fetch_add(1, Relaxed);
        inc
    }

    /// Scrubs replica `i`: verifies every block's buffer checksum and
    /// heals persistent damage by quorum read-repair — the same
    /// discipline as the amnesia resync, but targeted at the blocks
    /// whose bytes rotted in place. For each damaged block the scrub
    /// adopts the highest-tagged *valid* copy among the peers (any
    /// completed write has one on at least `f` survivors, so the repair
    /// is at least as fresh as every linearized value), rewrites the
    /// buffer image in place, and re-points the metadata at it. Returns
    /// `(blocks_ok, blocks_repaired)`.
    pub fn scrub(&self, i: usize) -> (u64, u64) {
        use std::sync::atomic::Ordering::Relaxed;
        let r = &self.replicas[i];
        let v = &r.view;
        let mut ok = 0u64;
        let mut repaired = 0u64;
        for b in 0..v.n_blocks {
            let meta = r
                .server
                .arena()
                .read(v.meta(b), META)
                .expect("metadata in arena");
            let addr = u64::from_le_bytes(meta[8..16].try_into().expect("8 bytes"));
            if addr == 0 {
                // Migration fence: the block moved groups; there is no
                // buffer here to verify or repair.
                ok += 1;
                continue;
            }
            let buf = r
                .server
                .arena()
                .read(addr, v.buf_len())
                .expect("buffer in arena");
            if block_crc_ok(&buf) {
                ok += 1;
                continue;
            }
            let mut best: Option<(Tag, Vec<u8>)> = None;
            for (j, peer) in self.replicas.iter().enumerate() {
                if j == i {
                    continue;
                }
                let pv = &peer.view;
                let pmeta = peer
                    .server
                    .arena()
                    .read(pv.meta(b), META)
                    .expect("peer metadata in arena");
                let ptag = Tag::from_bytes(&pmeta[..8]);
                if best.as_ref().is_some_and(|(t, _)| *t >= ptag) {
                    continue;
                }
                let paddr = u64::from_le_bytes(pmeta[8..16].try_into().expect("8 bytes"));
                if paddr == 0 {
                    continue;
                }
                let pbuf = peer
                    .server
                    .arena()
                    .read(paddr, pv.buf_len())
                    .expect("peer buffer in arena");
                // Invalid copies are never adopted, even for repair.
                if block_crc_ok(&pbuf) {
                    best = Some((ptag, pbuf[BUF_HDR as usize..].to_vec()));
                }
            }
            let Some((tag, value)) = best else {
                // No valid copy anywhere — leave the block detectably
                // corrupt rather than forge one.
                continue;
            };
            r.server
                .arena()
                .write(addr, &encode_block(tag, &value))
                .expect("buffer in arena");
            let mut new_meta = Vec::with_capacity(META as usize);
            new_meta.extend_from_slice(&tag.to_bytes());
            new_meta.extend_from_slice(&addr.to_le_bytes());
            r.server
                .arena()
                .write(v.meta(b), &new_meta)
                .expect("metadata in arena");
            repaired += 1;
            self.scrub_repairs.fetch_add(1, Relaxed);
        }
        (ok, repaired)
    }

    /// Blocks healed in place by [`scrub`](Self::scrub) read-repairs.
    pub fn scrub_repairs(&self) -> u64 {
        self.scrub_repairs
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Completed amnesia rejoins across the cluster.
    pub fn rejoins(&self) -> u64 {
        self.rejoins.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Blocks repaired from peers (to a non-zero tag) during rejoins.
    pub fn resyncs(&self) -> u64 {
        self.resyncs.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.replicas.len()
    }

    /// Tolerated failures `f`.
    pub fn f(&self) -> usize {
        (self.replicas.len() - 1) / 2
    }

    /// Replica `i`.
    pub fn replica(&self, i: usize) -> &PrismRsServer {
        &self.replicas[i]
    }

    /// Opens a client with a fresh id and one connection per replica.
    /// Rkeys are stamped with each replica's *current* incarnation (the
    /// handshake at connect time), so a client opened after a rejoin
    /// starts unfenced.
    pub fn open_client(&self) -> RsClient {
        use prism_rdma::region::Rkey;
        let id = self
            .next_client
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        RsClient {
            views: self
                .replicas
                .iter()
                .map(|r| {
                    let mut v = r.view.clone();
                    let inc = r.server.regions().current_incarnation();
                    v.data_rkey = Rkey(v.data_rkey).restamped(inc).0;
                    v
                })
                .collect(),
            scratch: self
                .replicas
                .iter()
                .map(|r| {
                    let c = r.server.open_connection();
                    let inc = r.server.regions().current_incarnation();
                    (c.scratch_addr, c.scratch_rkey.restamped(inc).0)
                })
                .collect(),
            client_id: id,
            f: self.f(),
            integrity: Arc::new(IntegrityStats::new()),
        }
    }
}

/// A PRISM-RS client: builds quorum state machines.
#[derive(Debug, Clone)]
pub struct RsClient {
    views: Vec<RsView>,
    scratch: Vec<(u64, u32)>,
    client_id: u16,
    f: usize,
    integrity: Arc<IntegrityStats>,
}

/// Final outcome of a replicated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsOutcome {
    /// GET result: the block's value (registers always hold a value;
    /// fresh blocks read as zeroes).
    Value(Vec<u8>),
    /// PUT completed.
    Written,
    /// Too many replicas failed to answer usefully.
    Failed(&'static str),
}

/// What the driver should do after feeding the machine.
///
/// `done` is set exactly once, when the quorum condition is met; the
/// machine keeps accepting late replies afterwards (emitting only
/// `background` reclamation traffic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RsStep {
    /// Requests to send, tagged with the phase they belong to.
    pub send: Vec<(usize, u32, Request)>,
    /// Fire-and-forget reclamation requests.
    pub background: Vec<(usize, Request)>,
    /// Set when the operation completes.
    pub done: Option<RsOutcome>,
}

impl RsStep {
    fn sends(send: Vec<(usize, u32, Request)>) -> Self {
        RsStep {
            send,
            ..Default::default()
        }
    }
}

#[derive(Debug, Clone)]
enum OpKind {
    Get,
    Put(Vec<u8>),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    Read,
    Write,
    Done,
}

/// A quorum operation in flight.
#[derive(Debug, Clone)]
pub struct RsOp {
    kind: OpKind,
    block: u64,
    phase: Phase,
    phase_no: u32,
    // Read phase.
    max_tag: Tag,
    max_value: Option<Vec<u8>>,
    read_replies: usize,
    read_failures: usize,
    // Write phase.
    write_tag: Tag,
    acks: usize,
    write_failures: usize,
    result_value: Option<Vec<u8>>,
    /// Whether any reply failed buffer verification; drives the
    /// repaired/aborted accounting when the op completes.
    verify_failed: bool,
}

impl RsClient {
    /// The client's id (used in tags it produces).
    pub fn id(&self) -> u16 {
        self.client_id
    }

    /// Adopts a replica's new incarnation after an amnesia rejoin: the
    /// client's cached rkeys for that replica are restamped in place
    /// ([`prism_rdma::region::Rkey::restamped`]). This is the
    /// re-handshake of a real deployment minus the network — addresses
    /// are unchanged because the rejoin rebuilds the original layout,
    /// only the incarnation stamp differs. Called by the driver when a
    /// reply carries [`prism_rdma::RdmaError::StaleIncarnation`].
    pub fn refence(&mut self, replica: usize, inc: u64) {
        use prism_rdma::region::Rkey;
        let v = &mut self.views[replica];
        v.data_rkey = Rkey(v.data_rkey).restamped(inc).0;
        let (_, rk) = &mut self.scratch[replica];
        *rk = Rkey(*rk).restamped(inc).0;
    }

    /// Replica count.
    pub fn n(&self) -> usize {
        self.views.len()
    }

    /// Quorum size `f + 1`.
    pub fn quorum(&self) -> usize {
        self.f + 1
    }

    /// Shares an integrity-stats sink (e.g. the harness's) instead of
    /// the client's private one.
    pub fn with_integrity(mut self, stats: Arc<IntegrityStats>) -> Self {
        self.integrity = stats;
        self
    }

    /// Corruption detections, repairs, and aborts observed by this
    /// client's checksum verification.
    pub fn integrity(&self) -> &Arc<IntegrityStats> {
        &self.integrity
    }

    /// Starts a GET of `block`.
    pub fn get(&self, block: u64) -> (RsOp, RsStep) {
        let op = RsOp::new(OpKind::Get, block);
        let step = op.read_phase_sends(self);
        (op, step)
    }

    /// Starts a PUT of `value` (must be exactly `block_size` bytes).
    ///
    /// # Panics
    ///
    /// Panics on a wrong-sized value — blocks are fixed-size (§7.2).
    pub fn put(&self, block: u64, value: Vec<u8>) -> (RsOp, RsStep) {
        assert_eq!(
            value.len() as u64,
            self.views[0].block_size,
            "PUT value must be exactly one block"
        );
        let op = RsOp::new(OpKind::Put(value), block);
        let step = op.read_phase_sends(self);
        (op, step)
    }

    fn free_request(addr: u64) -> Request {
        let mut msg = Vec::with_capacity(9);
        msg.push(RPC_FREE);
        msg.extend_from_slice(&addr.to_le_bytes());
        Request::Rpc(msg)
    }
}

impl RsOp {
    fn new(kind: OpKind, block: u64) -> Self {
        RsOp {
            kind,
            block,
            phase: Phase::Read,
            phase_no: 0,
            max_tag: Tag::ZERO,
            max_value: None,
            read_replies: 0,
            read_failures: 0,
            write_tag: Tag::ZERO,
            acks: 0,
            write_failures: 0,
            result_value: None,
            verify_failed: false,
        }
    }

    /// Completion-time integrity accounting: an op that observed at
    /// least one corrupt copy either still completed from valid copies
    /// (the quorum masked the damage — a repair from the caller's view)
    /// or failed cleanly (an abort). Either way, never a silent wrong
    /// answer.
    fn account(&self, c: &RsClient, outcome: &RsOutcome) {
        if self.verify_failed {
            match outcome {
                RsOutcome::Failed(_) => c.integrity.note_aborted(),
                _ => c.integrity.note_repaired(),
            }
        }
    }

    fn read_phase_sends(&self, c: &RsClient) -> RsStep {
        let send = c
            .views
            .iter()
            .enumerate()
            .map(|(r, v)| {
                let req = match self.kind {
                    // GET needs tag + value: indirect READ through addr_i.
                    OpKind::Get => Request::Chain(vec![ops::read_indirect(
                        v.meta(self.block) + 8,
                        v.buf_len() as u32,
                        v.data_rkey,
                    )]),
                    // PUT needs only the tag: plain READ of the entry.
                    OpKind::Put(_) => Request::Chain(vec![ops::read(
                        v.meta(self.block),
                        META as u32,
                        v.data_rkey,
                    )]),
                };
                (r, 0u32, req)
            })
            .collect();
        RsStep::sends(send)
    }

    fn write_phase_sends(&self, c: &RsClient, value: &[u8]) -> Vec<(usize, u32, Request)> {
        c.views
            .iter()
            .enumerate()
            .map(|(r, v)| {
                let (scratch_addr, scratch_rkey) = c.scratch[r];
                let payload = encode_block(self.write_tag, value);
                let chain = vec![
                    // 1. Stage the new tag at scratch+0.
                    ops::write(
                        scratch_addr,
                        self.write_tag.to_bytes().to_vec(),
                        scratch_rkey,
                    ),
                    // 2. Allocate [tag | value]; address lands at scratch+8.
                    ops::allocate(v.freelist, payload).redirect(Redirect {
                        addr: scratch_addr + 8,
                        rkey: scratch_rkey,
                    }),
                    // 3. Install if tag_i < t' (CAS_GT of §7.3, expressed
                    //    as mode Lt: *target < operand).
                    ops::cas_args(
                        CasMode::Lt,
                        v.meta(self.block),
                        v.data_rkey,
                        DataArg::Remote {
                            addr: scratch_addr,
                            rkey: scratch_rkey,
                        },
                        DataArg::Remote {
                            addr: scratch_addr,
                            rkey: scratch_rkey,
                        },
                        META as u32,
                        field_mask(0, 8),
                        full_mask(META as usize),
                    )
                    .conditional(),
                    // 4. Recover the allocated address for reclamation.
                    ops::read(scratch_addr + 8, 8, scratch_rkey),
                ];
                (r, 1u32, Request::Chain(chain))
            })
            .collect()
    }

    /// Re-arms the op for a full retry after a transport or quorum
    /// failure, applying its effect at most once per timestamp.
    ///
    /// A PUT whose write phase already chose its tag keeps it:
    /// re-pushing the same `(tag, value)` is idempotent under the
    /// CAS_GT install (replicas at or above the tag simply ack),
    /// whereas re-running the read phase would mint a fresh higher tag
    /// and could re-apply the value *over* a later write that readers
    /// already observed — a stale-value resurrection. GETs and PUTs
    /// that never reached the write phase restart from a clean read
    /// phase; nothing of theirs was applied.
    pub fn reissue(&mut self, c: &RsClient) -> RsStep {
        self.read_replies = 0;
        self.read_failures = 0;
        self.acks = 0;
        self.write_failures = 0;
        if let OpKind::Put(v) = &self.kind {
            if self.write_tag != Tag::ZERO {
                let v = v.clone();
                self.phase = Phase::Write;
                self.phase_no = 1;
                return RsStep::sends(self.write_phase_sends(c, &v));
            }
        }
        self.phase = Phase::Read;
        self.phase_no = 0;
        self.max_tag = Tag::ZERO;
        self.max_value = None;
        self.result_value = None;
        self.read_phase_sends(c)
    }

    /// Feeds one replica's reply for the given phase.
    pub fn on_reply(&mut self, c: &RsClient, phase: u32, replica: usize, reply: Reply) -> RsStep {
        match (phase, &self.phase) {
            (0, Phase::Read) => self.on_read_reply(c, reply),
            (1, Phase::Write) | (1, Phase::Done) => self.on_write_reply(c, replica, reply),
            // A read-phase reply arriving after the phase moved on: the
            // read phase allocates nothing, so there is nothing to do.
            (0, _) => RsStep::default(),
            _ => RsStep::default(),
        }
    }

    fn on_read_reply(&mut self, c: &RsClient, reply: Reply) -> RsStep {
        // A non-chain reply (e.g. the fault layer's synthesized timeout
        // error) or an empty chain counts as a failed replica, never a
        // panic: ABD only needs `f + 1` useful answers.
        let results = reply.chain_results().unwrap_or_default();
        let first_status = results.first().map(|r| r.status.clone());
        match (&self.kind, first_status) {
            (OpKind::Get, Some(OpStatus::Ok)) => {
                let data = &results[0].data;
                if data.len() >= BUF_HDR as usize && block_crc_ok(data) {
                    let tag = Tag::from_bytes(&data[..8]);
                    if tag >= self.max_tag || self.max_value.is_none() {
                        self.max_tag = tag;
                        self.max_value = Some(data[BUF_HDR as usize..].to_vec());
                    }
                    self.read_replies += 1;
                } else {
                    if data.len() >= BUF_HDR as usize {
                        // Structurally complete but checksum-invalid:
                        // a rotted or torn copy, detected and excluded —
                        // the quorum completes from valid replicas.
                        c.integrity.note_detected();
                        self.verify_failed = true;
                    }
                    self.read_failures += 1;
                }
            }
            (OpKind::Put(_), Some(OpStatus::Ok)) => {
                let data = &results[0].data;
                if data.len() == META as usize {
                    let tag = Tag::from_bytes(&data[..8]);
                    self.max_tag = self.max_tag.max(tag);
                    self.read_replies += 1;
                } else {
                    self.read_failures += 1;
                }
            }
            _ => self.read_failures += 1,
        }
        if self.read_failures > c.n() - c.quorum() {
            self.phase = Phase::Done;
            let outcome = RsOutcome::Failed("read phase lost quorum");
            self.account(c, &outcome);
            return RsStep {
                done: Some(outcome),
                ..Default::default()
            };
        }
        if self.read_replies < c.quorum() || self.phase != Phase::Read {
            return RsStep::default();
        }
        // Quorum of reads: move to the write phase.
        self.phase = Phase::Write;
        self.phase_no = 1;
        let (tag, value) = match &self.kind {
            OpKind::Get => {
                // Every counted read reply carried a value, so a quorum
                // implies one; guard anyway so a logic slip under faults
                // degrades to a counted failure instead of a panic.
                let Some(v) = self.max_value.clone() else {
                    self.phase = Phase::Done;
                    let outcome = RsOutcome::Failed("read quorum carried no value");
                    self.account(c, &outcome);
                    return RsStep {
                        done: Some(outcome),
                        ..Default::default()
                    };
                };
                self.result_value = Some(v.clone());
                (self.max_tag, v)
            }
            OpKind::Put(v) => (self.max_tag.successor(c.client_id), v.clone()),
        };
        self.write_tag = tag;
        RsStep::sends(self.write_phase_sends(c, &value))
    }

    fn on_write_reply(&mut self, c: &RsClient, replica: usize, reply: Reply) -> RsStep {
        // Same defence as the read phase: a synthesized error reply or a
        // short chain is a failed replica, not a panic.
        let results = reply.chain_results().unwrap_or_default();
        let mut background = Vec::new();
        // [write, allocate, cas, read-back]
        let acked = match results.get(2).map(|r| r.status.clone()) {
            Some(OpStatus::Ok) => {
                // Installed: the replaced buffer is garbage.
                let old = &results[2].data;
                if old.len() == META as usize {
                    let old_addr = u64::from_le_bytes(old[8..16].try_into().expect("8 bytes"));
                    if old_addr != 0 {
                        background.push((replica, RsClient::free_request(old_addr)));
                    }
                }
                true
            }
            Some(OpStatus::CasFailed) => {
                // Replica already has tag >= t': counts as an ack, and our
                // freshly allocated buffer is garbage.
                if let Some(Ok(d)) = results.get(3).map(|r| r.expect_data()) {
                    if d.len() == 8 {
                        let new_addr = u64::from_le_bytes(d.try_into().expect("8 bytes"));
                        background.push((replica, RsClient::free_request(new_addr)));
                    }
                }
                true
            }
            _ => false,
        };
        if acked {
            self.acks += 1;
        } else {
            self.write_failures += 1;
        }
        let mut done = None;
        if self.phase == Phase::Write {
            if self.acks >= c.quorum() {
                self.phase = Phase::Done;
                done = Some(match (&self.kind, self.result_value.clone()) {
                    (OpKind::Get, Some(v)) => RsOutcome::Value(v),
                    (OpKind::Get, None) => RsOutcome::Failed("write-back lost its value"),
                    (OpKind::Put(_), _) => RsOutcome::Written,
                });
            } else if self.write_failures > c.n() - c.quorum() {
                self.phase = Phase::Done;
                done = Some(RsOutcome::Failed("write phase lost quorum"));
            }
            if let Some(o) = &done {
                self.account(c, o);
            }
        }
        RsStep {
            send: Vec::new(),
            background,
            done,
        }
    }
}

/// Drives an operation to completion against local replicas (live mode /
/// tests). `crashed[r]` drops all traffic to replica `r`.
pub fn drive(
    cluster: &RsCluster,
    client: &RsClient,
    mut op: RsOp,
    first: RsStep,
    crashed: &[bool],
) -> RsOutcome {
    use prism_core::msg::execute_local;
    let mut queue: Vec<(usize, u32, Request)> = Vec::new();
    let mut bg: Vec<(usize, Request)> = Vec::new();
    let mut outcome = None;
    let absorb = |step: RsStep, queue: &mut Vec<_>, bg: &mut Vec<_>| {
        queue.extend(step.send);
        bg.extend(step.background);
        step.done
    };
    if let Some(o) = absorb(first, &mut queue, &mut bg) {
        outcome = Some(o);
    }
    while let Some((r, phase, req)) = queue.pop() {
        for (replica, breq) in bg.drain(..) {
            if !crashed.get(replica).copied().unwrap_or(false) {
                execute_local(cluster.replica(replica).server(), &breq);
            }
        }
        if crashed.get(r).copied().unwrap_or(false) {
            continue;
        }
        let reply = execute_local(cluster.replica(r).server(), &req);
        let step = op.on_reply(client, phase, r, reply);
        if let Some(o) = absorb(step, &mut queue, &mut bg) {
            outcome.get_or_insert(o);
        }
    }
    for (replica, breq) in bg.drain(..) {
        if !crashed.get(replica).copied().unwrap_or(false) {
            execute_local(cluster.replica(replica).server(), &breq);
        }
    }
    outcome.unwrap_or(RsOutcome::Failed("no quorum reachable"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> RsCluster {
        RsCluster::new(3, &RsConfig::paper(16, 64))
    }

    fn get(cl: &RsCluster, c: &RsClient, block: u64, crashed: &[bool]) -> RsOutcome {
        let (op, step) = c.get(block);
        drive(cl, c, op, step, crashed)
    }

    fn put(cl: &RsCluster, c: &RsClient, block: u64, val: Vec<u8>, crashed: &[bool]) -> RsOutcome {
        let (op, step) = c.put(block, val);
        drive(cl, c, op, step, crashed)
    }

    #[test]
    fn fresh_block_reads_zeroes() {
        let cl = cluster();
        let c = cl.open_client();
        assert_eq!(
            get(&cl, &c, 0, &[false; 3]),
            RsOutcome::Value(vec![0u8; 64])
        );
    }

    #[test]
    fn put_then_get() {
        let cl = cluster();
        let c = cl.open_client();
        let val = vec![7u8; 64];
        assert_eq!(
            put(&cl, &c, 3, val.clone(), &[false; 3]),
            RsOutcome::Written
        );
        assert_eq!(get(&cl, &c, 3, &[false; 3]), RsOutcome::Value(val));
    }

    #[test]
    fn blocks_are_independent() {
        let cl = cluster();
        let c = cl.open_client();
        put(&cl, &c, 1, vec![1u8; 64], &[false; 3]);
        put(&cl, &c, 2, vec![2u8; 64], &[false; 3]);
        assert_eq!(
            get(&cl, &c, 1, &[false; 3]),
            RsOutcome::Value(vec![1u8; 64])
        );
        assert_eq!(
            get(&cl, &c, 2, &[false; 3]),
            RsOutcome::Value(vec![2u8; 64])
        );
    }

    #[test]
    fn survives_one_replica_crash() {
        let cl = cluster();
        let c = cl.open_client();
        let crashed = [false, true, false];
        let val = vec![9u8; 64];
        assert_eq!(put(&cl, &c, 0, val.clone(), &crashed), RsOutcome::Written);
        assert_eq!(get(&cl, &c, 0, &crashed), RsOutcome::Value(val.clone()));
        // A different client reading through a different quorum (replica 1
        // back, replica 2 down) must still see the value: quorum
        // intersection.
        let c2 = cl.open_client();
        let crashed2 = [false, false, true];
        assert_eq!(get(&cl, &c2, 0, &crashed2), RsOutcome::Value(val));
    }

    #[test]
    fn two_crashes_lose_quorum() {
        let cl = cluster();
        let c = cl.open_client();
        let crashed = [true, true, false];
        assert!(matches!(
            put(&cl, &c, 0, vec![1u8; 64], &crashed),
            RsOutcome::Failed(_)
        ));
    }

    #[test]
    fn synthesized_error_replies_fail_cleanly() {
        use prism_rdma::RdmaError;
        // The fault layer answers timed-out requests with a bare Verb
        // error reply; the quorum machine must absorb it as a replica
        // failure, not panic on a missing chain.
        let cl = cluster();
        let c = cl.open_client();
        let (mut op, step) = c.put(0, vec![1u8; 64]);
        let mut outcome = None;
        for (r, phase, _req) in step.send {
            let s = op.on_reply(&c, phase, r, Reply::Verb(Err(RdmaError::ReceiverNotReady)));
            if let Some(d) = s.done {
                outcome = Some(d);
                break;
            }
        }
        assert!(matches!(outcome, Some(RsOutcome::Failed(_))));

        // Same for the write phase: error out enough replicas after a
        // clean read quorum and the op fails instead of panicking.
        let (mut op, step) = c.get(0);
        let mut writes = Vec::new();
        let mut queue = step.send;
        while let Some((r, phase, req)) = queue.pop() {
            if phase == 1 {
                writes.push((r, phase, req));
                continue;
            }
            let reply = prism_core::msg::execute_local(cl.replica(r).server(), &req);
            queue.extend(op.on_reply(&c, phase, r, reply).send);
        }
        let mut outcome = None;
        for (r, phase, _req) in writes {
            let s = op.on_reply(&c, phase, r, Reply::Verb(Err(RdmaError::ReceiverNotReady)));
            if let Some(d) = s.done {
                outcome = Some(d);
                break;
            }
        }
        assert!(matches!(outcome, Some(RsOutcome::Failed(_))));
    }

    #[test]
    fn later_writer_wins() {
        let cl = cluster();
        let c1 = cl.open_client();
        let c2 = cl.open_client();
        put(&cl, &c1, 0, vec![1u8; 64], &[false; 3]);
        put(&cl, &c2, 0, vec![2u8; 64], &[false; 3]);
        assert_eq!(
            get(&cl, &c1, 0, &[false; 3]),
            RsOutcome::Value(vec![2u8; 64])
        );
    }

    #[test]
    fn get_write_back_repairs_stale_replica() {
        let cl = cluster();
        let c = cl.open_client();
        // Write while replica 2 is down.
        put(&cl, &c, 0, vec![5u8; 64], &[false, false, true]);
        // Read with replica 2 back up; the write-back phase pushes the
        // value to it.
        assert_eq!(
            get(&cl, &c, 0, &[false; 3]),
            RsOutcome::Value(vec![5u8; 64])
        );
        // Now replica 2 alone with replica 0 must serve the value, even
        // though the original write never reached it directly.
        let tag2 = {
            let v = cl.replica(2).view().clone();
            let meta = cl.replica(2).server().arena().read(v.meta(0), 16).unwrap();
            Tag::from_bytes(&meta[..8])
        };
        assert!(tag2.ts >= 1, "write-back must have repaired replica 2");
    }

    #[test]
    fn buffers_are_reclaimed_across_overwrites() {
        let cl = RsCluster::new(
            3,
            &RsConfig {
                n_blocks: 2,
                block_size: 64,
                spare_buffers: 4,
            },
        );
        let c = cl.open_client();
        // Far more writes than spare buffers: only sustainable if frees
        // happen.
        for i in 0..100u8 {
            assert_eq!(
                put(&cl, &c, 0, vec![i; 64], &[false; 3]),
                RsOutcome::Written,
                "write {i} ran out of buffers"
            );
        }
        assert_eq!(
            get(&cl, &c, 0, &[false; 3]),
            RsOutcome::Value(vec![99u8; 64])
        );
    }

    #[test]
    fn tags_strictly_increase_per_writer() {
        let cl = cluster();
        let c = cl.open_client();
        for i in 0..5u8 {
            put(&cl, &c, 0, vec![i; 64], &[false; 3]);
        }
        let v = cl.replica(0).view().clone();
        let meta = cl.replica(0).server().arena().read(v.meta(0), 16).unwrap();
        let tag = Tag::from_bytes(&meta[..8]);
        assert_eq!(tag.ts, 5);
        assert_eq!(tag.id, c.id());
    }

    #[test]
    fn gc_sweep_recovers_leaked_buffers() {
        let cl = RsCluster::new(
            3,
            &RsConfig {
                n_blocks: 2,
                block_size: 64,
                spare_buffers: 8,
            },
        );
        let c = cl.open_client();
        // Simulate crashing clients: drive writes but drop every
        // background free notification, leaking one buffer per replica
        // per write.
        for i in 0..6u8 {
            let (mut op, step) = c.put(0, vec![i; 64]);
            let mut queue = step.send;
            while let Some((r, phase, req)) = queue.pop() {
                let reply = prism_core::msg::execute_local(cl.replica(r).server(), &req);
                let s = op.on_reply(&c, phase, r, reply);
                queue.extend(s.send);
                // s.background (the frees) deliberately dropped.
            }
        }
        let replica = cl.replica(0);
        let before = replica
            .server()
            .freelists()
            .available(replica.view().freelist);
        assert!(before < 8, "leaks must have drained the pool ({before})");
        let reclaimed = replica.gc_sweep();
        assert!(reclaimed > 0, "sweep must find the leaked buffers");
        let after = replica
            .server()
            .freelists()
            .available(replica.view().freelist);
        assert_eq!(after, 8, "pool fully recovered");
        // The store still works and GC never touched live data.
        let (op, step) = c.get(0);
        assert_eq!(
            drive(&cl, &c, op, step, &[false; 3]),
            RsOutcome::Value(vec![5u8; 64])
        );
        // A second sweep finds nothing.
        assert_eq!(replica.gc_sweep(), 0);
    }

    #[test]
    fn gc_sweep_is_idempotent_with_late_frees() {
        let cl = RsCluster::new(
            3,
            &RsConfig {
                n_blocks: 1,
                block_size: 64,
                spare_buffers: 4,
            },
        );
        let c = cl.open_client();
        // One write whose free notifications we capture but delay.
        let (mut op, step) = c.put(0, vec![9u8; 64]);
        let mut queue = step.send;
        let mut delayed = Vec::new();
        while let Some((r, phase, req)) = queue.pop() {
            let reply = prism_core::msg::execute_local(cl.replica(r).server(), &req);
            let s = op.on_reply(&c, phase, r, reply);
            queue.extend(s.send);
            delayed.extend(s.background);
        }
        // GC reclaims the replaced buffers first...
        for r in 0..3 {
            cl.replica(r).gc_sweep();
        }
        let avail: Vec<usize> = (0..3)
            .map(|r| {
                cl.replica(r)
                    .server()
                    .freelists()
                    .available(cl.replica(r).view().freelist)
            })
            .collect();
        assert_eq!(avail, vec![4, 4, 4]);
        // ...then the late client frees arrive: idempotent, no growth.
        for (r, req) in delayed {
            prism_core::msg::execute_local(cl.replica(r).server(), &req);
        }
        let avail: Vec<usize> = (0..3)
            .map(|r| {
                cl.replica(r)
                    .server()
                    .freelists()
                    .available(cl.replica(r).view().freelist)
            })
            .collect();
        assert_eq!(
            avail,
            vec![4, 4, 4],
            "double free must not duplicate buffers"
        );
    }

    #[test]
    fn amnesia_rejoin_resyncs_from_peer_quorum() {
        let cl = cluster();
        let c = cl.open_client();
        let val = vec![7u8; 64];
        assert_eq!(
            put(&cl, &c, 3, val.clone(), &[false; 3]),
            RsOutcome::Written
        );
        // Replica 1 loses its memory and rejoins. Its segment log
        // survived the crash, so the write comes back by *replay* — the
        // delta resync finds no peer ahead and fetches nothing.
        let inc = cl.amnesia_restart(1);
        assert_eq!(inc, 1);
        assert_eq!(cl.rejoins(), 1);
        assert!(
            cl.durable_stats().replayed() > 0,
            "the written block must replay from the local log"
        );
        assert_eq!(
            cl.resyncs(),
            0,
            "an intact log leaves nothing for the network resync to fetch"
        );
        // The rejoined replica's own memory holds the value again.
        let v = cl.replica(1).view().clone();
        let meta = cl.replica(1).server().arena().read(v.meta(3), 16).unwrap();
        assert!(Tag::from_bytes(&meta[..8]).ts >= 1);
        // A fresh client (handshaking the new incarnation) reading
        // through a quorum that *excludes* replica 0 still sees the
        // value: the rejoin restored quorum intersection.
        let c2 = cl.open_client();
        assert_eq!(
            get(&cl, &c2, 3, &[true, false, false]),
            RsOutcome::Value(val)
        );
        // The pre-restart client is fenced at replica 1 until it
        // refences, then works again.
        let (op, step) = c.get(3);
        let mut fenced = false;
        for (r, _phase, req) in &step.send {
            if *r == 1 {
                let reply = prism_core::msg::execute_local(cl.replica(1).server(), req);
                fenced = reply.stale_incarnation() == Some(1);
            }
        }
        assert!(fenced, "stale rkey must be fenced, not serve wiped memory");
        drop(op);
        let mut c3 = c.clone();
        c3.refence(1, inc);
        let (op, step) = c3.get(3);
        assert_eq!(
            drive(&cl, &c3, op, step, &[false; 3]),
            RsOutcome::Value(vec![7u8; 64])
        );
        // A wiped disk (fresh replacement replica) falls back to the
        // full network resync: the written block is fetched from peers.
        cl.replica(1).store().wipe();
        cl.amnesia_restart(1);
        assert!(
            cl.resyncs() > 0,
            "with no local log the block must be repaired from peers"
        );
        assert!(cl.durable_stats().delta_resynced() > 0);
    }

    #[test]
    fn rejoin_with_no_writes_restores_fresh_boot() {
        let cl = cluster();
        let inc = cl.amnesia_restart(0);
        assert_eq!(inc, 1);
        assert_eq!(cl.resyncs(), 0, "nothing to repair on a fresh store");
        let r = cl.replica(0);
        assert_eq!(
            r.server().freelists().available(r.view().freelist),
            (RsConfig::paper(16, 64).spare_buffers) as usize,
            "free list rebuilt with exactly the spares"
        );
        let c = cl.open_client();
        assert_eq!(
            get(&cl, &c, 0, &[false; 3]),
            RsOutcome::Value(vec![0u8; 64])
        );
    }

    #[test]
    fn rotted_copy_is_excluded_masked_by_quorum_and_scrub_healed() {
        let cl = cluster();
        let c = cl.open_client();
        let val = vec![7u8; 64];
        assert_eq!(
            put(&cl, &c, 2, val.clone(), &[false; 3]),
            RsOutcome::Written
        );
        // Rot one bit of replica 1's buffer for block 2, behind its back.
        let v1 = cl.replica(1).view().clone();
        let addr = cl
            .replica(1)
            .server()
            .arena()
            .read_u64(v1.meta(2) + 8)
            .unwrap();
        cl.replica(1)
            .server()
            .arena()
            .flip_bit(addr + BUF_HDR + 5, 2)
            .unwrap();
        // A GET detects + excludes the rotted copy and answers from the
        // valid quorum — a masked (repaired) read, never the bad bytes.
        let c2 = cl.open_client();
        assert_eq!(get(&cl, &c2, 2, &[false; 3]), RsOutcome::Value(val.clone()));
        assert_eq!(c2.integrity().detected(), 1);
        assert_eq!(c2.integrity().repaired(), 1);
        assert_eq!(c2.integrity().aborted(), 0);
        // The damage persists at rest (the write-back CAS can't replace
        // an equal tag) until a scrub read-repairs it from the peers.
        let (ok, repaired) = cl.scrub(1);
        assert_eq!((ok, repaired), (15, 1));
        assert_eq!(cl.scrub_repairs(), 1);
        assert_eq!(cl.scrub(1), (16, 0), "second scrub finds nothing");
        // The healed replica now serves the value even in a quorum that
        // excludes the original writer majority.
        assert_eq!(
            get(&cl, &c2, 2, &[true, false, false]),
            RsOutcome::Value(val)
        );
    }

    #[test]
    fn majority_rot_aborts_instead_of_answering_wrong() {
        let cl = cluster();
        let c = cl.open_client();
        assert_eq!(
            put(&cl, &c, 0, vec![3u8; 64], &[false; 3]),
            RsOutcome::Written
        );
        // Rot the block's buffer on two of three replicas: no read
        // quorum of valid copies remains.
        for r in [0usize, 1] {
            let v = cl.replica(r).view().clone();
            let addr = cl
                .replica(r)
                .server()
                .arena()
                .read_u64(v.meta(0) + 8)
                .unwrap();
            cl.replica(r)
                .server()
                .arena()
                .flip_bit(addr + BUF_HDR, 0)
                .unwrap();
        }
        let c2 = cl.open_client();
        assert!(matches!(
            get(&cl, &c2, 0, &[false; 3]),
            RsOutcome::Failed(_)
        ));
        assert_eq!(c2.integrity().detected(), 2);
        assert_eq!(c2.integrity().aborted(), 1);
        // Scrub heals both from the surviving valid copy; service returns.
        assert_eq!(cl.scrub(0).1, 1);
        assert_eq!(cl.scrub(1).1, 1);
        assert_eq!(
            get(&cl, &c2, 0, &[false; 3]),
            RsOutcome::Value(vec![3u8; 64])
        );
    }

    #[test]
    fn resync_never_adopts_invalid_copies() {
        let cl = cluster();
        let c = cl.open_client();
        assert_eq!(
            put(&cl, &c, 1, vec![9u8; 64], &[false; 3]),
            RsOutcome::Written
        );
        // Rot replica 0's copy, then amnesia-restart replica 2: the
        // rejoiner must rebuild from replica 1's valid copy, not adopt
        // replica 0's higher-... equal-tagged garbage.
        let v0 = cl.replica(0).view().clone();
        let addr = cl
            .replica(0)
            .server()
            .arena()
            .read_u64(v0.meta(1) + 8)
            .unwrap();
        cl.replica(0)
            .server()
            .arena()
            .flip_bit(addr + BUF_HDR + 1, 7)
            .unwrap();
        cl.amnesia_restart(2);
        let v2 = cl.replica(2).view().clone();
        let addr2 = cl
            .replica(2)
            .server()
            .arena()
            .read_u64(v2.meta(1) + 8)
            .unwrap();
        let buf = cl
            .replica(2)
            .server()
            .arena()
            .read(addr2, v2.buf_len())
            .unwrap();
        assert!(block_crc_ok(&buf), "rejoined copy must verify");
        assert_eq!(&buf[BUF_HDR as usize..], &vec![9u8; 64][..]);
    }

    #[test]
    fn block_images_detect_every_single_bit_flip() {
        let img = encode_block(Tag { ts: 3, id: 9 }, &[0xA5; 32]);
        assert!(block_crc_ok(&img));
        for byte in 0..img.len() {
            for bit in 0..8 {
                // Pad bytes are outside tag and value; flips there are
                // harmless and uncovered by design.
                if (12..16).contains(&byte) {
                    continue;
                }
                let mut m = img.clone();
                m[byte] ^= 1 << bit;
                assert!(!block_crc_ok(&m), "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn concurrent_writers_converge_to_single_value() {
        use std::sync::Arc;
        let cl = Arc::new(cluster());
        let threads: Vec<_> = (0..6)
            .map(|t| {
                let cl = Arc::clone(&cl);
                std::thread::spawn(move || {
                    let c = cl.open_client();
                    for i in 0..30u8 {
                        let val = vec![t as u8 * 40 + i; 64];
                        assert_eq!(put(&cl, &c, 0, val, &[false; 3]), RsOutcome::Written);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // All replicas must agree on tag and value after quiescence...
        // at least a quorum must. Read and compare across two disjoint
        // quorums to confirm a single linearization point.
        let c = cl.open_client();
        let a = get(&cl, &c, 0, &[false, false, true]);
        let b = get(&cl, &c, 0, &[true, false, false]);
        assert_eq!(a, b, "disjoint quorums must agree after write-back");
    }
}
