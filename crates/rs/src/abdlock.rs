//! ABDLOCK: the lock-based ABD baseline built from standard RDMA verbs
//! (§7.2 of the paper, following the DrTM [44] locking pattern).
//!
//! Each replica stores each block in place:
//! `[lock u64 | tag u64 (big-endian) | value]`. A client CASes its id
//! into the lock word at a majority of replicas, READs tag+value,
//! decides locally, WRITEs the new tag+value, and CASes the locks back —
//! four round trips where PRISM-RS needs two, which is exactly the gap
//! Figure 6 measures. On lock conflict the client releases whatever it
//! acquired and retries after randomized exponential backoff; the
//! protocol can livelock under contention (§7.2 "the system may enter a
//! livelocked state"), which Figure 7 shows as latency collapse at high
//! Zipf coefficients.

use std::sync::Arc;

use prism_core::msg::{Reply, Request, Verb};
use prism_core::PrismServer;
use prism_rdma::region::AccessFlags;
use prism_simnet::rng::SimRng;

use crate::prism_rs::RsOutcome;
use crate::tag::Tag;

/// Per-block header: lock word + tag.
pub const HEADER: u64 = 16;

/// Base backoff after a failed lock acquisition (doubles per retry, with
/// jitter).
pub const BACKOFF_BASE_NS: u64 = 4_000;

/// Backoff cap.
pub const BACKOFF_CAP_NS: u64 = 2_000_000;

/// Retry budget before reporting failure.
pub const MAX_LOCK_RETRIES: u32 = 5_000;

/// Per-replica configuration.
#[derive(Debug, Clone)]
pub struct AbdLockConfig {
    /// Number of blocks.
    pub n_blocks: u64,
    /// Value bytes per block.
    pub block_size: u64,
}

/// Client-visible layout of one replica.
#[derive(Debug, Clone)]
pub struct AbdLockView {
    /// Base of the block array.
    pub base: u64,
    /// Rkey covering the block array.
    pub rkey: u32,
    /// Number of blocks.
    pub n_blocks: u64,
    /// Value bytes per block.
    pub block_size: u64,
    /// Distance between consecutive blocks.
    pub stride: u64,
}

impl AbdLockView {
    /// Address of block `i` (its lock word).
    pub fn block(&self, i: u64) -> u64 {
        self.base + i * self.stride
    }
}

/// One ABDLOCK replica: plain registered memory, no server-side logic at
/// all (the whole protocol is client-driven).
pub struct AbdLockServer {
    server: Arc<PrismServer>,
    view: AbdLockView,
}

impl AbdLockServer {
    /// Builds a replica with every block present at tag 0, value zeroed.
    pub fn new(config: &AbdLockConfig) -> Self {
        let stride = (HEADER + config.block_size).next_multiple_of(64);
        let len = stride * config.n_blocks;
        let server = Arc::new(PrismServer::new(len + (1 << 20)));
        let (base, rkey) = server.carve_region(len, 64, AccessFlags::FULL);
        // Arena starts zeroed: lock = 0 (free), tag = 0, value = zeroes.
        AbdLockServer {
            server,
            view: AbdLockView {
                base,
                rkey: rkey.0,
                n_blocks: config.n_blocks,
                block_size: config.block_size,
                stride,
            },
        }
    }

    /// The underlying host.
    pub fn server(&self) -> &Arc<PrismServer> {
        &self.server
    }

    /// The client-visible layout.
    pub fn view(&self) -> &AbdLockView {
        &self.view
    }
}

/// An `n = 2f + 1` ABDLOCK replica group.
pub struct AbdLockCluster {
    replicas: Vec<AbdLockServer>,
    next_client: std::sync::atomic::AtomicU16,
    epoch: std::sync::atomic::AtomicU64,
}

impl AbdLockCluster {
    /// Builds `n` identical replicas.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is odd and at least 3.
    pub fn new(n: usize, config: &AbdLockConfig) -> Self {
        assert!(n >= 3 && n % 2 == 1, "ABD needs n = 2f+1 >= 3 replicas");
        AbdLockCluster {
            replicas: (0..n).map(|_| AbdLockServer::new(config)).collect(),
            next_client: std::sync::atomic::AtomicU16::new(1),
            epoch: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.replicas.len()
    }

    /// Tolerated failures.
    pub fn f(&self) -> usize {
        (self.replicas.len() - 1) / 2
    }

    /// Replica `i`.
    pub fn replica(&self, i: usize) -> &AbdLockServer {
        &self.replicas[i]
    }

    /// Clears every block's lock word on every replica — the recovery a
    /// real deployment performs with lock leases when clients die mid-
    /// operation (§7.2 notes the need for a force-release protocol).
    /// The experiment harness calls this between measurement windows,
    /// since a window boundary abandons in-flight operations. Routed
    /// through the epoch guard, so a concurrent caller cannot double-
    /// sweep the same recovery.
    pub fn reset_locks(&self) {
        let e = self.epoch.load(std::sync::atomic::Ordering::SeqCst);
        self.reset_locks_epoch(e);
    }

    /// The current recovery epoch (how many force-release sweeps have
    /// run).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Epoch-guarded force-release: a dead lock-holder's words are
    /// reclaimed **exactly once** per recovery epoch. Callers name the
    /// epoch they observed; the guard CAS advances it and only the
    /// winner sweeps — a concurrent or repeated caller with the same
    /// stale epoch is a no-op, so recovery cannot release a lock that a
    /// *new* (post-recovery) holder legitimately acquired after the
    /// first sweep. Returns the number of lock words actually cleared
    /// (0 for guard losers).
    pub fn reset_locks_epoch(&self, observed: u64) -> u64 {
        use std::sync::atomic::Ordering::SeqCst;
        if self
            .epoch
            .compare_exchange(observed, observed + 1, SeqCst, SeqCst)
            .is_err()
        {
            return 0;
        }
        let mut cleared = 0;
        for r in &self.replicas {
            let v = r.view().clone();
            for b in 0..v.n_blocks {
                let addr = v.block(b);
                let held = r.server().arena().read_u64(addr).expect("in arena") != 0;
                if held {
                    r.server().arena().write_u64(addr, 0).expect("in arena");
                    cleared += 1;
                }
            }
        }
        cleared
    }

    /// Opens a client with a fresh nonzero id.
    pub fn open_client(&self, seed: u64) -> AbdLockClient {
        let id = self
            .next_client
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        AbdLockClient {
            views: self.replicas.iter().map(|r| r.view.clone()).collect(),
            client_id: id,
            f: self.f(),
            rng: SimRng::new(seed ^ ((id as u64) << 32)),
        }
    }
}

/// An ABDLOCK client.
#[derive(Debug, Clone)]
pub struct AbdLockClient {
    views: Vec<AbdLockView>,
    client_id: u16,
    f: usize,
    rng: SimRng,
}

/// What the driver should do next.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AbdStep {
    /// Requests to send, tagged with the phase counter they belong to.
    pub send: Vec<(usize, u32, Request)>,
    /// Wait this long, then call [`AbdLockOp::resume`] (lock backoff).
    pub backoff_ns: Option<u64>,
    /// Set when the operation completes.
    pub done: Option<RsOutcome>,
}

#[derive(Debug, Clone)]
enum Kind {
    Get,
    Put(Vec<u8>),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    Locking,
    Aborting,
    Reading,
    Writing,
    Unlocking,
    Backoff,
    Done,
}

/// Phase tag on stale-lock-cleanup unlocks; never matches a live round.
const STALE_UNLOCK: u32 = u32::MAX;

/// A lock-based ABD operation in flight.
///
/// The lock phase sends a CAS to every replica and waits for *all*
/// replies before proceeding (unreachable replicas surface as error
/// replies — the driver's stand-in for a timeout). Proceeding as soon
/// as a majority is locked would be an optimization the DrTM-style
/// baseline does not have: the remaining lock grants are already in
/// flight, and the client uses every lock it acquired for the read and
/// write phases.
#[derive(Debug, Clone)]
pub struct AbdLockOp {
    kind: Kind,
    block: u64,
    phase: Phase,
    phase_no: u32,
    lock_replies: usize,
    /// Phase numbers that were lock-acquisition rounds, so stale lock
    /// successes can be rolled back (see `on_reply`).
    lock_rounds: std::collections::HashSet<u32>,
    locked: Vec<bool>,
    lock_ok: usize,
    lock_fail: usize,
    retries: u32,
    max_tag: Tag,
    max_value: Option<Vec<u8>>,
    read_replies: usize,
    /// Error replies (crashed replica / timeout stand-ins) in the read
    /// phase; when every locked replica has answered but too few
    /// usefully, the round releases its locks and retries instead of
    /// waiting forever.
    read_errs: usize,
    write_acks: usize,
    /// Error replies in the write phase (same role as `read_errs`).
    write_errs: usize,
    unlock_acks: usize,
    abort_acks: usize,
    write_tag: Tag,
    result_value: Option<Vec<u8>>,
}

impl AbdLockClient {
    /// The client's id.
    pub fn id(&self) -> u16 {
        self.client_id
    }

    /// Quorum size `f + 1`.
    pub fn quorum(&self) -> usize {
        self.f + 1
    }

    /// Replica count.
    pub fn n(&self) -> usize {
        self.views.len()
    }

    /// Starts a GET.
    pub fn get(&mut self, block: u64) -> (AbdLockOp, AbdStep) {
        let mut op = AbdLockOp::new(Kind::Get, block, self.n());
        let step = op.lock_sends(self);
        (op, step)
    }

    /// Starts a PUT.
    ///
    /// # Panics
    ///
    /// Panics on a wrong-sized value.
    pub fn put(&mut self, block: u64, value: Vec<u8>) -> (AbdLockOp, AbdStep) {
        assert_eq!(value.len() as u64, self.views[0].block_size);
        let mut op = AbdLockOp::new(Kind::Put(value), block, self.n());
        let step = op.lock_sends(self);
        (op, step)
    }
}

impl AbdLockOp {
    fn new(kind: Kind, block: u64, n: usize) -> Self {
        AbdLockOp {
            kind,
            block,
            phase: Phase::Locking,
            phase_no: 0,
            lock_replies: 0,
            lock_rounds: std::collections::HashSet::new(),
            locked: vec![false; n],
            lock_ok: 0,
            lock_fail: 0,
            retries: 0,
            max_tag: Tag::ZERO,
            max_value: None,
            read_replies: 0,
            read_errs: 0,
            write_acks: 0,
            write_errs: 0,
            unlock_acks: 0,
            abort_acks: 0,
            write_tag: Tag::ZERO,
            result_value: None,
        }
    }

    fn lock_sends(&mut self, c: &AbdLockClient) -> AbdStep {
        self.phase = Phase::Locking;
        self.locked.iter_mut().for_each(|l| *l = false);
        self.lock_replies = 0;
        self.lock_ok = 0;
        self.lock_fail = 0;
        self.read_replies = 0;
        self.read_errs = 0;
        self.write_acks = 0;
        self.write_errs = 0;
        self.unlock_acks = 0;
        self.abort_acks = 0;
        self.max_tag = Tag::ZERO;
        self.max_value = None;
        self.phase_no += 1;
        self.lock_rounds.insert(self.phase_no);
        AbdStep {
            send: c
                .views
                .iter()
                .enumerate()
                .map(|(r, v)| {
                    (
                        r,
                        self.phase_no,
                        Request::Verb(Verb::Cas64 {
                            addr: v.block(self.block),
                            compare: 0,
                            swap: c.client_id as u64,
                            rkey: v.rkey,
                        }),
                    )
                })
                .collect(),
            ..Default::default()
        }
    }

    fn sends_to_locked(
        &self,
        c: &AbdLockClient,
        mk: impl Fn(usize, &AbdLockView) -> Request,
    ) -> Vec<(usize, u32, Request)> {
        self.locked
            .iter()
            .enumerate()
            .filter(|(_, &l)| l)
            .map(|(r, _)| (r, self.phase_no, mk(r, &c.views[r])))
            .collect()
    }

    /// Resumes after a backoff wait.
    pub fn resume(&mut self, c: &mut AbdLockClient) -> AbdStep {
        assert_eq!(self.phase, Phase::Backoff, "resume outside backoff");
        self.lock_sends(c)
    }

    /// Feeds one replica's reply for the given phase.
    pub fn on_reply(
        &mut self,
        c: &mut AbdLockClient,
        phase: u32,
        replica: usize,
        reply: Reply,
    ) -> AbdStep {
        if phase != self.phase_no {
            // Stale reply from a superseded round. The only stale reply
            // that needs action is a *successful lock CAS*: the client
            // has moved on, so the lock must be rolled back or the block
            // would be wedged for every other client.
            if self.lock_rounds.contains(&phase) {
                if let Reply::Verb(Ok(old)) = &reply {
                    if old.len() == 8
                        && u64::from_le_bytes(old.as_slice().try_into().expect("8 bytes")) == 0
                    {
                        let v = &c.views[replica];
                        return AbdStep {
                            send: vec![(
                                replica,
                                STALE_UNLOCK,
                                Request::Verb(Verb::Cas64 {
                                    addr: v.block(self.block),
                                    compare: c.client_id as u64,
                                    swap: 0,
                                    rkey: v.rkey,
                                }),
                            )],
                            ..Default::default()
                        };
                    }
                }
            }
            return AbdStep::default();
        }
        match self.phase {
            Phase::Locking => self.on_lock_reply(c, replica, reply),
            Phase::Aborting => self.on_abort_reply(c, replica, reply),
            Phase::Reading => self.on_read_reply(c, replica, reply),
            Phase::Writing => self.on_write_reply(c, replica, reply),
            Phase::Unlocking => self.on_unlock_reply(c, replica, reply),
            Phase::Backoff | Phase::Done => AbdStep::default(),
        }
    }

    fn on_lock_reply(&mut self, c: &mut AbdLockClient, replica: usize, reply: Reply) -> AbdStep {
        self.lock_replies += 1;
        match reply.verb_result() {
            Some(Ok(old)) if old.len() == 8 => {
                let prev = u64::from_le_bytes(old.try_into().expect("8 bytes"));
                if prev == 0 {
                    self.locked[replica] = true;
                    self.lock_ok += 1;
                } else {
                    self.lock_fail += 1;
                }
            }
            _ => self.lock_fail += 1,
        }
        if self.lock_replies < c.n() || self.phase != Phase::Locking {
            return AbdStep::default();
        }
        if self.lock_ok >= c.quorum() {
            // Locked wherever possible: read tag+value from the whole
            // locked set.
            self.phase = Phase::Reading;
            self.phase_no += 1;
            let block = self.block;
            return AbdStep {
                send: self.sends_to_locked(c, |_, v| {
                    Request::Verb(Verb::Read {
                        addr: v.block(block) + 8,
                        len: (8 + v.block_size) as u32,
                        rkey: v.rkey,
                    })
                }),
                ..Default::default()
            };
        }
        self.abort_locks(c)
    }

    /// Releases every lock acquired this round, then backs off.
    fn abort_locks(&mut self, c: &mut AbdLockClient) -> AbdStep {
        self.retries += 1;
        if self.retries > MAX_LOCK_RETRIES {
            self.phase = Phase::Done;
            return AbdStep {
                done: Some(RsOutcome::Failed("lock retries exhausted")),
                ..Default::default()
            };
        }
        if self.lock_ok == 0 {
            return self.backoff(c);
        }
        self.phase = Phase::Aborting;
        self.phase_no += 1;
        self.abort_acks = 0;
        let id = c.client_id as u64;
        let block = self.block;
        AbdStep {
            send: self.sends_to_locked(c, |_, v| {
                Request::Verb(Verb::Cas64 {
                    addr: v.block(block),
                    compare: id,
                    swap: 0,
                    rkey: v.rkey,
                })
            }),
            ..Default::default()
        }
    }

    fn on_abort_reply(&mut self, c: &mut AbdLockClient, _replica: usize, _reply: Reply) -> AbdStep {
        self.abort_acks += 1;
        if self.abort_acks >= self.lock_ok {
            return self.backoff(c);
        }
        AbdStep::default()
    }

    fn backoff(&mut self, c: &mut AbdLockClient) -> AbdStep {
        self.phase = Phase::Backoff;
        let exp = self.retries.min(9);
        let base = (BACKOFF_BASE_NS << exp).min(BACKOFF_CAP_NS);
        let jitter = c.rng.gen_range(base);
        AbdStep {
            backoff_ns: Some(base + jitter),
            ..Default::default()
        }
    }

    fn on_read_reply(&mut self, c: &mut AbdLockClient, _replica: usize, reply: Reply) -> AbdStep {
        match reply.verb_result() {
            Some(Ok(data)) if data.len() >= 8 => {
                let tag = Tag::from_bytes(&data[..8]);
                if tag >= self.max_tag || self.max_value.is_none() {
                    self.max_tag = tag;
                    self.max_value = Some(data[8..].to_vec());
                }
                self.read_replies += 1;
            }
            // A locked replica answering with an error (crash / timeout
            // stand-in): without counting these, a lost read would leave
            // the round waiting forever with the locks held.
            _ => self.read_errs += 1,
        }
        if self.phase != Phase::Reading {
            return AbdStep::default();
        }
        let threshold = self.lock_ok.min(c.quorum());
        if self.read_replies < threshold {
            if self.read_replies + self.read_errs >= self.lock_ok {
                // Every locked replica answered but too few usefully:
                // release the locks and retry the whole round.
                return self.abort_locks(c);
            }
            return AbdStep::default();
        }
        // Decide locally, then propagate.
        let (tag, value) = match &self.kind {
            Kind::Get => {
                // Counted read replies always carry a value; guard so
                // a slip degrades to a retried round, not a panic.
                let Some(v) = self.max_value.clone() else {
                    return self.abort_locks(c);
                };
                self.result_value = Some(v.clone());
                (self.max_tag, v)
            }
            Kind::Put(v) => (self.max_tag.successor(c.client_id), v.clone()),
        };
        self.write_tag = tag;
        self.phase = Phase::Writing;
        self.phase_no += 1;
        let block = self.block;
        let mut payload = Vec::with_capacity(8 + value.len());
        payload.extend_from_slice(&tag.to_bytes());
        payload.extend_from_slice(&value);
        AbdStep {
            send: self.sends_to_locked(c, |_, v| {
                Request::Verb(Verb::Write {
                    addr: v.block(block) + 8,
                    data: payload.clone(),
                    rkey: v.rkey,
                })
            }),
            ..Default::default()
        }
    }

    fn on_write_reply(&mut self, c: &mut AbdLockClient, _replica: usize, reply: Reply) -> AbdStep {
        if matches!(reply.verb_result(), Some(Ok(_))) {
            self.write_acks += 1;
        } else {
            self.write_errs += 1;
        }
        if self.phase == Phase::Writing
            && self.write_acks < self.lock_ok.min(c.quorum())
            && self.write_acks + self.write_errs >= self.lock_ok
        {
            // Every locked replica answered the write but too few
            // acknowledged: release the locks and retry the round (the
            // partial write is harmless — a later read takes the max
            // tag, and GETs write back what they return).
            return self.abort_locks(c);
        }
        if self.write_acks >= self.lock_ok.min(c.quorum()) && self.phase == Phase::Writing {
            self.phase = Phase::Unlocking;
            self.phase_no += 1;
            let id = c.client_id as u64;
            let block = self.block;
            return AbdStep {
                send: self.sends_to_locked(c, |_, v| {
                    Request::Verb(Verb::Cas64 {
                        addr: v.block(block),
                        compare: id,
                        swap: 0,
                        rkey: v.rkey,
                    })
                }),
                ..Default::default()
            };
        }
        AbdStep::default()
    }

    fn on_unlock_reply(
        &mut self,
        _c: &mut AbdLockClient,
        _replica: usize,
        reply: Reply,
    ) -> AbdStep {
        let _ = reply;
        self.unlock_acks += 1;
        if self.unlock_acks >= self.lock_ok && self.phase == Phase::Unlocking {
            self.phase = Phase::Done;
            return AbdStep {
                done: Some(match (&self.kind, self.result_value.clone()) {
                    (Kind::Get, Some(v)) => RsOutcome::Value(v),
                    (Kind::Get, None) => RsOutcome::Failed("get lost its value"),
                    (Kind::Put(_), _) => RsOutcome::Written,
                }),
                ..Default::default()
            };
        }
        AbdStep::default()
    }
}

/// Drives an operation to completion against local replicas, spinning
/// through backoffs (live mode / tests). `crashed[r]` drops traffic to
/// replica `r`.
pub fn drive(
    cluster: &AbdLockCluster,
    client: &mut AbdLockClient,
    mut op: AbdLockOp,
    first: AbdStep,
    crashed: &[bool],
) -> RsOutcome {
    use prism_core::msg::execute_local;
    let mut step = first;
    loop {
        if let Some(o) = step.done {
            return o;
        }
        if step.backoff_ns.is_some() {
            // Live mode: yield instead of sleeping for nanoseconds.
            std::thread::yield_now();
            step = op.resume(client);
            continue;
        }
        let sends = std::mem::take(&mut step.send);
        let mut next = AbdStep::default();
        for (r, phase, req) in sends {
            // A crashed replica surfaces as an error reply — the
            // sequential driver's stand-in for a client-side timeout.
            let reply = if crashed.get(r).copied().unwrap_or(false) {
                Reply::Verb(Err(prism_rdma::RdmaError::ReceiverNotReady))
            } else {
                execute_local(cluster.replica(r).server(), &req)
            };
            let s = op.on_reply(client, phase, r, reply);
            if s.done.is_some() || s.backoff_ns.is_some() || !s.send.is_empty() {
                next = s;
                // Later sends of the superseded phase are simply not
                // delivered in this sequential driver; the phase counter
                // makes their replies harmless anyway.
                break;
            }
        }
        step = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> AbdLockCluster {
        AbdLockCluster::new(
            3,
            &AbdLockConfig {
                n_blocks: 8,
                block_size: 64,
            },
        )
    }

    fn get(cl: &AbdLockCluster, c: &mut AbdLockClient, b: u64, crashed: &[bool]) -> RsOutcome {
        let (op, step) = c.get(b);
        drive(cl, c, op, step, crashed)
    }

    fn put(
        cl: &AbdLockCluster,
        c: &mut AbdLockClient,
        b: u64,
        v: Vec<u8>,
        crashed: &[bool],
    ) -> RsOutcome {
        let (op, step) = c.put(b, v);
        drive(cl, c, op, step, crashed)
    }

    #[test]
    fn fresh_block_reads_zeroes() {
        let cl = cluster();
        let mut c = cl.open_client(1);
        assert_eq!(
            get(&cl, &mut c, 0, &[false; 3]),
            RsOutcome::Value(vec![0; 64])
        );
    }

    #[test]
    fn put_then_get() {
        let cl = cluster();
        let mut c = cl.open_client(2);
        assert_eq!(
            put(&cl, &mut c, 1, vec![3u8; 64], &[false; 3]),
            RsOutcome::Written
        );
        assert_eq!(
            get(&cl, &mut c, 1, &[false; 3]),
            RsOutcome::Value(vec![3u8; 64])
        );
    }

    #[test]
    fn locks_are_released_after_each_op() {
        let cl = cluster();
        let mut c = cl.open_client(3);
        put(&cl, &mut c, 0, vec![1u8; 64], &[false; 3]);
        for r in 0..3 {
            let v = cl.replica(r).view().clone();
            let lock = cl.replica(r).server().arena().read_u64(v.block(0)).unwrap();
            assert_eq!(lock, 0, "replica {r} lock must be free");
        }
    }

    #[test]
    fn survives_one_crash() {
        let cl = cluster();
        let mut c = cl.open_client(4);
        let crashed = [true, false, false];
        assert_eq!(
            put(&cl, &mut c, 0, vec![9u8; 64], &crashed),
            RsOutcome::Written
        );
        assert_eq!(
            get(&cl, &mut c, 0, &crashed),
            RsOutcome::Value(vec![9u8; 64])
        );
    }

    #[test]
    fn conflicting_clients_serialize_via_locks() {
        use std::sync::Arc;
        let cl = Arc::new(cluster());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let cl = Arc::clone(&cl);
                std::thread::spawn(move || {
                    let mut c = cl.open_client(100 + t);
                    for i in 0..20u8 {
                        let o = put(&cl, &mut c, 0, vec![i; 64], &[false; 3]);
                        assert_eq!(o, RsOutcome::Written);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut c = cl.open_client(999);
        match get(&cl, &mut c, 0, &[false; 3]) {
            RsOutcome::Value(v) => assert!(v.iter().all(|&b| b == v[0]), "torn value"),
            o => panic!("unexpected {o:?}"),
        }
        // All locks free at quiescence.
        for r in 0..3 {
            let v = cl.replica(r).view().clone();
            assert_eq!(
                cl.replica(r).server().arena().read_u64(v.block(0)).unwrap(),
                0
            );
        }
    }

    #[test]
    fn lossy_replies_never_panic_and_always_terminate() {
        // A miniature fault plan: every reply is independently replaced
        // by the timeout stand-in with 25% probability. Ops must always
        // terminate in a definite outcome — never panic, never wedge
        // with a lock held forever.
        let cl = cluster();
        let mut rng = SimRng::new(0xFA_17);
        let mut c = cl.open_client(7);
        let mut completed = 0;
        for i in 0..40u8 {
            let (mut op, mut step) = if i % 2 == 0 {
                c.put(u64::from(i % 4), vec![i; 64])
            } else {
                c.get(u64::from(i % 4))
            };
            let outcome = loop {
                if let Some(o) = step.done {
                    break o;
                }
                if step.backoff_ns.is_some() {
                    step = op.resume(&mut c);
                    continue;
                }
                let sends = std::mem::take(&mut step.send);
                let mut next = AbdStep::default();
                for (r, phase, req) in sends {
                    let reply = if rng.gen_bool(0.25) {
                        Reply::Verb(Err(prism_rdma::RdmaError::ReceiverNotReady))
                    } else {
                        prism_core::msg::execute_local(cl.replica(r).server(), &req)
                    };
                    let s = op.on_reply(&mut c, phase, r, reply);
                    if s.done.is_some() || s.backoff_ns.is_some() || !s.send.is_empty() {
                        next = s;
                        break;
                    }
                }
                step = next;
            };
            match outcome {
                RsOutcome::Value(_) | RsOutcome::Written => completed += 1,
                RsOutcome::Failed(_) => {}
            }
        }
        assert!(completed > 0, "some operations must succeed at 25% loss");
        // A lost *unlock* request legitimately leaks that replica's lock
        // (the force-release problem §7.2 notes); the lease-style
        // recovery is `reset_locks`, after which the store must be fully
        // functional again.
        cl.reset_locks();
        let mut c2 = cl.open_client(8);
        assert_eq!(
            put(&cl, &mut c2, 0, vec![0xAAu8; 64], &[false; 3]),
            RsOutcome::Written
        );
        assert_eq!(
            get(&cl, &mut c2, 0, &[false; 3]),
            RsOutcome::Value(vec![0xAAu8; 64])
        );
    }

    #[test]
    fn epoch_guard_reclaims_dead_locks_exactly_once() {
        let cl = cluster();
        // A client dies holding block 0's lock on two replicas.
        for r in 0..2 {
            let v = cl.replica(r).view().clone();
            cl.replica(r)
                .server()
                .arena()
                .write_u64(v.block(0), 0xDEAD)
                .unwrap();
        }
        let e = cl.epoch();
        assert_eq!(cl.reset_locks_epoch(e), 2, "both dead locks reclaimed");
        // A second recovery racing on the *same* observed epoch loses
        // the guard and must not sweep: a new holder's lock survives.
        let v = cl.replica(0).view().clone();
        cl.replica(0)
            .server()
            .arena()
            .write_u64(v.block(0), 77)
            .unwrap();
        assert_eq!(cl.reset_locks_epoch(e), 0, "stale-epoch sweep is a no-op");
        assert_eq!(
            cl.replica(0).server().arena().read_u64(v.block(0)).unwrap(),
            77,
            "the new holder's lock must survive the duplicate recovery"
        );
        assert_eq!(cl.epoch(), e + 1);
    }

    #[test]
    fn held_lock_forces_backoff_and_retry() {
        let cl = cluster();
        // Jam replica 0 and 1's locks with a phantom client.
        for r in 0..2 {
            let v = cl.replica(r).view().clone();
            cl.replica(r)
                .server()
                .arena()
                .write_u64(v.block(0), 0xDEAD)
                .unwrap();
        }
        let mut c = cl.open_client(5);
        let (mut op, mut step) = c.get(0);
        // Drive manually until the op backs off.
        let mut backed_off = false;
        for _ in 0..10 {
            if step.backoff_ns.is_some() {
                backed_off = true;
                break;
            }
            let sends = std::mem::take(&mut step.send);
            let mut next = AbdStep::default();
            for (r, phase, req) in sends {
                let reply = prism_core::msg::execute_local(cl.replica(r).server(), &req);
                let s = op.on_reply(&mut c, phase, r, reply);
                if s.backoff_ns.is_some() || !s.send.is_empty() || s.done.is_some() {
                    next = s;
                    break;
                }
            }
            step = next;
        }
        assert!(backed_off, "client must back off when majority unavailable");
        // Unjam and finish.
        for r in 0..2 {
            let v = cl.replica(r).view().clone();
            cl.replica(r)
                .server()
                .arena()
                .write_u64(v.block(0), 0)
                .unwrap();
        }
        let o = drive(&cl, &mut c, op, step, &[false; 3]);
        assert_eq!(o, RsOutcome::Value(vec![0u8; 64]));
    }
}
