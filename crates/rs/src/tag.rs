//! ABD tags: `(logical timestamp, client id)` pairs ordered
//! lexicographically (§7.1).
//!
//! A tag is packed into a single u64 — timestamp in the high 48 bits,
//! client id in the low 16 — and stored **big-endian** in replica
//! memory, so the enhanced CAS's arithmetic comparison over the raw
//! bytes (§3.3) orders tags exactly as the protocol requires.

/// A multi-writer ABD tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag {
    /// Logical timestamp (48 bits used).
    pub ts: u64,
    /// Writing client's id (16 bits).
    pub id: u16,
}

impl Tag {
    /// The initial tag of every register.
    pub const ZERO: Tag = Tag { ts: 0, id: 0 };

    /// The largest representable tag — the migration fence value. No
    /// writer ever produces it ([`Tag::successor`] from it would
    /// overflow), so a metadata entry holding `MAX` permanently wins
    /// every tag-ordered CAS: the block is fenced at its old owner.
    pub const MAX: Tag = Tag {
        ts: (1 << 48) - 1,
        id: u16::MAX,
    };

    /// Packs into the u64 whose numeric order equals tag order.
    ///
    /// # Panics
    ///
    /// Panics if the timestamp exceeds 48 bits — at one increment per
    /// write that is 2^48 writes per register, unreachable in any run.
    pub fn pack(self) -> u64 {
        assert!(self.ts < (1 << 48), "tag timestamp overflow");
        (self.ts << 16) | self.id as u64
    }

    /// Inverse of [`Tag::pack`].
    pub fn unpack(v: u64) -> Tag {
        Tag {
            ts: v >> 16,
            id: (v & 0xFFFF) as u16,
        }
    }

    /// The big-endian bytes stored in replica memory.
    pub fn to_bytes(self) -> [u8; 8] {
        self.pack().to_be_bytes()
    }

    /// Reads a tag from replica-memory bytes.
    ///
    /// # Panics
    ///
    /// Panics if `b` is shorter than 8 bytes.
    pub fn from_bytes(b: &[u8]) -> Tag {
        Tag::unpack(u64::from_be_bytes(b[..8].try_into().expect("8 bytes")))
    }

    /// The tag a writer with `id` produces after observing `self` as the
    /// maximum (§7.1: `(ts_max + 1, id_c)`).
    pub fn successor(self, id: u16) -> Tag {
        Tag {
            ts: self.ts + 1,
            id,
        }
    }
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.ts, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips() {
        for t in [
            Tag::ZERO,
            Tag { ts: 1, id: 0 },
            Tag { ts: 5, id: 65535 },
            Tag {
                ts: (1 << 48) - 1,
                id: 7,
            },
        ] {
            assert_eq!(Tag::unpack(t.pack()), t);
            assert_eq!(Tag::from_bytes(&t.to_bytes()), t);
        }
    }

    #[test]
    fn packed_order_is_lexicographic() {
        let a = Tag { ts: 1, id: 9 };
        let b = Tag { ts: 2, id: 0 };
        let c = Tag { ts: 2, id: 1 };
        assert!(a.pack() < b.pack());
        assert!(b.pack() < c.pack());
        assert!(a < b && b < c, "struct order matches packed order");
    }

    #[test]
    fn byte_order_matches_cas_comparison() {
        // The enhanced CAS compares big-endian byte strings; tag bytes
        // must order the same way as packed integers.
        let lo = Tag { ts: 3, id: 500 }.to_bytes();
        let hi = Tag { ts: 4, id: 2 }.to_bytes();
        assert!(lo < hi, "byte-wise comparison must match numeric order");
    }

    #[test]
    fn successor_increments_and_rebrands() {
        let t = Tag { ts: 9, id: 3 }.successor(12);
        assert_eq!(t, Tag { ts: 10, id: 12 });
        assert!(t > Tag { ts: 9, id: 3 });
        // A successor beats any tag with the observed timestamp.
        assert!(t > Tag { ts: 9, id: 65535 });
    }

    #[test]
    #[should_panic(expected = "timestamp overflow")]
    fn overflow_guard() {
        Tag { ts: 1 << 48, id: 0 }.pack();
    }

    #[test]
    fn fence_tag_is_the_numeric_maximum() {
        assert_eq!(Tag::MAX.pack(), u64::MAX);
        let biggest_producible = Tag {
            ts: (1 << 48) - 2,
            id: u16::MAX,
        }
        .successor(u16::MAX - 1);
        assert!(Tag::MAX > biggest_producible);
        assert_eq!(Tag::from_bytes(&Tag::MAX.to_bytes()), Tag::MAX);
    }
}
