//! PRISM-TX (§8 of the PRISM paper): serializable distributed
//! transactions over sharded storage, with execution, prepare, and
//! commit all performed by remote operations — plus the FaRM baseline
//! it is evaluated against.
//!
//! * [`prism_tx`] — Meerkat-style timestamp OCC with per-key `PW/PR/C`
//!   metadata validated by single enhanced-CAS operations; commits
//!   install out-of-place version buffers. Two round trips to commit.
//! * [`farm`] — the FaRM protocol (§8.1): one-sided reads during
//!   execution, then a three-phase commit (lock RPC, one-sided
//!   validation reads, update+unlock RPC) requiring server CPU.
//! * [`ts`] — loosely synchronized logical timestamps.
//!
//! # Examples
//!
//! ```
//! use prism_tx::prism_tx::{drive, run_rmw, TxCluster, TxConfig, TxOutcome};
//!
//! let cluster = TxCluster::new(2, &TxConfig::paper(32, 16));
//! let mut client = cluster.open_client();
//!
//! // A serializable read-modify-write across two shards.
//! let (outcome, attempts) = run_rmw(
//!     &cluster,
//!     &mut client,
//!     &[1, 2],
//!     |key, values| {
//!         let mut v = values[&key].clone();
//!         v[0] += 1;
//!         v
//!     },
//!     16,
//! );
//! assert!(matches!(outcome, TxOutcome::Committed(_)));
//! assert_eq!(attempts, 1);
//!
//! // Read back within a fresh transaction.
//! let (op, step) = client.begin(vec![1, 2], vec![]);
//! match drive(&cluster, &mut client, op, step) {
//!     TxOutcome::Committed(values) => {
//!         assert_eq!(values[&1][0], 1);
//!         assert_eq!(values[&2][0], 1);
//!     }
//!     other => panic!("{other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod farm;
pub mod prism_tx;
pub mod ts;

pub use prism_tx::{TxClient, TxCluster, TxConfig, TxOp, TxOutcome, TxServer, TxStep};
pub use ts::{Ts, TxClock};
