//! PRISM-TX: serializable distributed transactions whose execution,
//! prepare, and commit phases are all remote operations (§8.2).
//!
//! The concurrency control is Meerkat-style timestamp OCC with per-key
//! metadata (Figure 8). Each key's slot holds four 8-byte words:
//!
//! ```text
//! [ PW | PR | C | addr ]
//!   PW   highest prepared-writer timestamp (big-endian)
//!   PR   highest prepared-reader timestamp (big-endian)
//!   C    highest committed-writer timestamp (big-endian)
//!   addr pointer to the committed version's buffer [C | key | value]
//! ```
//!
//! `PW` sits at a lower address than `PR` so the *single* enhanced CAS
//! of the read validation can compare the concatenation `PW|PR` against
//! `RC|TS` lexicographically (§8.2: "this can be expressed as a single
//! CAS operation that checks if RC|TS is greater than PW|PR").
//!
//! Phases (each one round trip per shard):
//!
//! * **Execute** — one indirect READ through `addr` per read key,
//!   returning `[C | key | value]` atomically; writes buffer locally.
//! * **Prepare** — per read key: `CAS_LE` on `PW|PR` comparing `RC|TS`,
//!   swapping `PR := TS`; a failed CAS whose old `PW` still equals `RC`
//!   means the read is valid but `PR` was already larger ("the client
//!   can distinguish the two using the value returned"). Per write key:
//!   `CAS_GT`-style on `PW` (`TS > PW`), swapping `PW := TS`; the
//!   returned old value provides `PR` for the second check `TS > PR`,
//!   which is safe to perform after the update (§8.2).
//! * **Commit** — per write key, the ALLOCATE/WRITE/CAS install chain of
//!   PRISM-RS (§8.2 "follows the same pattern"), guarded by `TS > C`.
//!   A `CasFailed` means a newer transaction already committed that key
//!   (Thomas write rule): the transaction still commits; its buffer is
//!   reclaimed.
//! * **Abort path** — no metadata rollback (only maxima are kept):
//!   instead, bump `C := TS` for keys whose write check succeeded, which
//!   lets future writers proceed (§8.2).
//!
//! Readers take `RC` as the larger of the slot's `C` word and the
//! version buffer's embedded `C`: the slot copy advances on the abort
//! path's `C`-bump (unblocking subsequent readers, §8.2), and a commit
//! racing between the two reads only raises the buffer copy — in which
//! case the value read *is* exactly that newer version, so the claimed
//! `RC` stays consistent (see `exec_sends`).

use std::collections::HashMap;
use std::sync::Arc;

use prism_core::builder::ops;
use prism_core::crc::Crc32;
use prism_core::integrity::IntegrityStats;
use prism_core::msg::{Reply, Request};
use prism_core::op::{field_mask, full_mask, DataArg, FreeListId, Redirect};
use prism_core::value::CasMode;
use prism_core::{OpStatus, PrismServer};
use prism_rdma::region::AccessFlags;

use crate::ts::{Ts, TxClock};

/// Per-key slot size.
pub const SLOT: u64 = 32;

/// Version-buffer header: `[C 8 B | key 8 B | crc u32 | pad u32]`.
/// The checksum covers `C || key || value`, binding the committed
/// timestamp and key identity to the value bytes — a torn install or
/// at-rest rot fails verification and the reading transaction aborts
/// cleanly instead of computing on garbage.
pub const VER_HDR: u64 = 24;

/// Builds the self-verifying version image for `(ts, key, value)`.
pub fn encode_version(ts: Ts, key: u64, value: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(VER_HDR as usize + value.len());
    p.extend_from_slice(&ts.to_bytes());
    p.extend_from_slice(&key.to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&p[..16]).update(value);
    p.extend_from_slice(&crc.finish().to_le_bytes());
    p.extend_from_slice(&[0u8; 4]);
    p.extend_from_slice(value);
    p
}

/// Verifies a version image's checksum.
pub fn version_crc_ok(buf: &[u8]) -> bool {
    if buf.len() < VER_HDR as usize {
        return false;
    }
    let stored = u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes"));
    let mut crc = Crc32::new();
    crc.update(&buf[..16]).update(&buf[VER_HDR as usize..]);
    crc.finish() == stored
}

/// Write keys per commit chain (limited by the 64-byte connection
/// scratch slot: 16 staging bytes per key).
pub const KEYS_PER_COMMIT_CHAIN: usize = 4;

const RPC_FREE: u8 = 0x01;
const RPC_FREE_BATCH: u8 = 0x04;

/// Per-shard store configuration.
#[derive(Debug, Clone)]
pub struct TxConfig {
    /// Keys resident on this shard.
    pub keys_per_shard: u64,
    /// Value bytes per key (512 in §8.3).
    pub value_len: u64,
    /// Extra buffers beyond one per key.
    pub spare_buffers: u64,
}

impl TxConfig {
    /// The §8.3 configuration scaled to `keys_per_shard`.
    pub fn paper(keys_per_shard: u64, value_len: u64) -> Self {
        TxConfig {
            keys_per_shard,
            value_len,
            spare_buffers: (keys_per_shard / 4).max(64),
        }
    }
}

/// Client-visible layout of one shard.
#[derive(Debug, Clone)]
pub struct TxView {
    /// Base of the slot array.
    pub slot_addr: u64,
    /// Rkey covering slots and buffers.
    pub data_rkey: u32,
    /// Keys resident on this shard.
    pub capacity: u64,
    /// Value bytes per key.
    pub value_len: u64,
    /// The buffer free list.
    pub freelist: FreeListId,
}

impl TxView {
    /// Address of local key index `i`'s slot.
    pub fn slot(&self, i: u64) -> u64 {
        self.slot_addr + i * SLOT
    }

    /// Buffer length: `[C | key | crc | pad]` header + value.
    pub fn buf_len(&self) -> u64 {
        VER_HDR + self.value_len
    }
}

/// One PRISM-TX shard server.
pub struct TxServer {
    server: Arc<PrismServer>,
    view: TxView,
    pool_base: u64,
    pool_len: u64,
    /// Cooperative-termination lease state: local key index → the
    /// prepared-writer timestamp seen dangling (`PW > C`) at the last
    /// sweep. See [`TxServer::sweep_prepares`].
    lease: std::sync::Mutex<HashMap<u64, Ts>>,
}

impl TxServer {
    /// Builds a shard: slot array, buffer pool, initial version
    /// (timestamp 0, zeroed value) for every key, reclaim RPC.
    pub fn new(config: &TxConfig, shard: u64, n_shards: u64) -> Self {
        let slots_len = (config.keys_per_shard * SLOT).next_multiple_of(64);
        let buf_len = VER_HDR + config.value_len;
        let stride = buf_len.next_multiple_of(64);
        let count = config.keys_per_shard + config.spare_buffers;
        let pool_len = stride * count;
        let server = Arc::new(PrismServer::new(slots_len + pool_len + (1 << 20)));
        let (data_base, data_rkey) =
            server.carve_region(slots_len + pool_len, 64, AccessFlags::FULL);
        let slot_addr = data_base;
        let pool_base = data_base + slots_len;

        let freelist = FreeListId(0);
        server.freelists().register(freelist, buf_len);
        server
            .freelists()
            .post(
                freelist,
                (config.keys_per_shard..count).map(|j| pool_base + j * stride),
            )
            .expect("fresh free list accepts posts");
        for i in 0..config.keys_per_shard {
            let buf = pool_base + i * stride;
            let global_key = i * n_shards + shard;
            let init = encode_version(Ts::ZERO, global_key, &vec![0u8; config.value_len as usize]);
            server.arena().write(buf, &init).expect("buffer in arena");
            // Slot: PW = PR = C = 0, addr = buf.
            let mut slot = Vec::with_capacity(SLOT as usize);
            slot.extend_from_slice(&[0u8; 24]);
            slot.extend_from_slice(&buf.to_le_bytes());
            server
                .arena()
                .write(slot_addr + i * SLOT, &slot)
                .expect("slot in arena");
        }

        let freelists = Arc::clone(server.freelists());
        let pool_end = pool_base + pool_len;
        server.set_rpc_handler(Arc::new(move |req: &[u8]| {
            let free_one = |addr: u64| -> bool {
                if addr >= pool_base && addr < pool_end && (addr - pool_base).is_multiple_of(stride)
                {
                    freelists
                        .post(freelist, [addr])
                        .expect("freelist registered");
                    true
                } else {
                    false
                }
            };
            if req.len() == 9 && req[0] == RPC_FREE {
                let addr = u64::from_le_bytes(req[1..9].try_into().expect("9 bytes"));
                if free_one(addr) {
                    return vec![0];
                }
            } else if req.len() >= 3 && req[0] == RPC_FREE_BATCH {
                // Batched reclamation (§3.2).
                let n = u16::from_le_bytes(req[1..3].try_into().expect("2 bytes")) as usize;
                if req.len() == 3 + n * 8 {
                    let ok = (0..n).all(|i| {
                        let off = 3 + i * 8;
                        free_one(u64::from_le_bytes(
                            req[off..off + 8].try_into().expect("8 bytes"),
                        ))
                    });
                    return vec![if ok { 0 } else { 0xFF }];
                }
            }
            vec![0xFF]
        }));

        TxServer {
            server,
            view: TxView {
                slot_addr,
                data_rkey: data_rkey.0,
                capacity: config.keys_per_shard,
                value_len: config.value_len,
                freelist,
            },
            pool_base,
            pool_len,
            lease: std::sync::Mutex::new(HashMap::new()),
        }
    }

    /// `(base, len)` of the version-buffer pool — the at-rest surface
    /// the fault fabric's rot events may target.
    pub fn pool_range(&self) -> (u64, u64) {
        (self.pool_base, self.pool_len)
    }

    /// Integrity scrub: verifies the checksum of every key's committed
    /// version buffer, returning `(ok, corrupt)`. Detection-only — TX
    /// keeps a single copy per key, so there is no replica to repair
    /// from; a damaged version is healed by the next committed write
    /// installing a fresh buffer, and until then readers abort cleanly.
    pub fn scrub(&self) -> (u64, u64) {
        let (mut ok, mut corrupt) = (0, 0);
        let buf_len = self.view.buf_len();
        for i in 0..self.view.capacity {
            let addr_word = self
                .server
                .arena()
                .read(self.view.slot(i) + 24, 8)
                .expect("slot in arena");
            let addr = u64::from_le_bytes(addr_word.as_slice().try_into().expect("8 bytes"));
            match self.server.arena().read(addr, buf_len) {
                Ok(buf) if version_crc_ok(&buf) => ok += 1,
                _ => corrupt += 1,
            }
        }
        (ok, corrupt)
    }

    /// Cooperative termination (§8.2) for transactions whose client
    /// crashed between prepare and commit: a dangling `PW > C` blocks
    /// every later writer of that key (their `TS > PW` check fails until
    /// `C` catches up). The server cannot tell a crashed client from a
    /// slow one, so it leases: a prepared-writer timestamp that survives
    /// two consecutive sweeps *unchanged* is declared orphaned, and the
    /// sweep completes the crashed client's own abort path by bumping
    /// `C := PW` with the same guarded CAS the client would have sent —
    /// so a commit racing the sweep still wins, and a fresh prepare
    /// (raising `PW`) resets the lease. `PR` entries need no
    /// reclamation: a stale prepared reader only forces later writers'
    /// timestamps upward, it never blocks them. Returns the number of
    /// entries reclaimed this pass.
    pub fn sweep_prepares(&self) -> u64 {
        use prism_core::msg::execute_local;
        let mut lease = self.lease.lock().expect("lease lock");
        let mut reclaimed = 0;
        for i in 0..self.view.capacity {
            let slot = self.view.slot(i);
            let words = self.server.arena().read(slot, 24).expect("slot in arena");
            let pw = Ts::from_bytes(&words[0..8]);
            let c = Ts::from_bytes(&words[16..24]);
            if pw <= c {
                lease.remove(&i);
                continue;
            }
            match lease.get(&i) {
                Some(&seen) if seen == pw => {
                    let mut cmp = pw.to_bytes().to_vec();
                    cmp.extend_from_slice(&[0u8; 8]);
                    let req = Request::Chain(vec![ops::cas(
                        CasMode::Lt, // C < PW, as in the abort path
                        slot + 16,
                        self.view.data_rkey,
                        cmp.clone(),
                        cmp,
                        16,
                        field_mask(0, 8),
                        field_mask(0, 8),
                    )]);
                    execute_local(&self.server, &req);
                    lease.remove(&i);
                    reclaimed += 1;
                }
                _ => {
                    lease.insert(i, pw);
                }
            }
        }
        reclaimed
    }

    /// Number of keys whose slot still shows `PW > C` — a dangling
    /// prepare that blocks future writers until reclaimed.
    pub fn stuck_keys(&self) -> u64 {
        (0..self.view.capacity)
            .filter(|&i| {
                let words = self
                    .server
                    .arena()
                    .read(self.view.slot(i), 24)
                    .expect("slot in arena");
                Ts::from_bytes(&words[0..8]) > Ts::from_bytes(&words[16..24])
            })
            .count() as u64
    }

    /// The underlying host.
    pub fn server(&self) -> &Arc<PrismServer> {
        &self.server
    }

    /// The client-visible layout.
    pub fn view(&self) -> &TxView {
        &self.view
    }
}

impl std::fmt::Debug for TxServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxServer")
            .field("capacity", &self.view.capacity)
            .finish_non_exhaustive()
    }
}

/// A sharded PRISM-TX deployment.
pub struct TxCluster {
    shards: Vec<TxServer>,
    next_client: std::sync::atomic::AtomicU16,
    reclaims: std::sync::atomic::AtomicU64,
}

impl TxCluster {
    /// Builds `n_shards` shards, each holding `config.keys_per_shard`
    /// keys; global key `k` lives on shard `k % n_shards` at local index
    /// `k / n_shards`.
    pub fn new(n_shards: usize, config: &TxConfig) -> Self {
        assert!(n_shards > 0);
        TxCluster {
            shards: (0..n_shards)
                .map(|s| TxServer::new(config, s as u64, n_shards as u64))
                .collect(),
            next_client: std::sync::atomic::AtomicU16::new(1),
            reclaims: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Integrity scrub of shard `i` (see [`TxServer::scrub`]).
    pub fn scrub(&self, i: usize) -> (u64, u64) {
        self.shards[i].scrub()
    }

    /// Runs one cooperative-termination sweep on shard `i` (see
    /// [`TxServer::sweep_prepares`]) and folds the count into
    /// [`TxCluster::reclaims`].
    pub fn sweep_shard(&self, i: usize) -> u64 {
        let n = self.shards[i].sweep_prepares();
        self.reclaims
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        n
    }

    /// Total dangling prepares reclaimed by sweeps across all shards.
    pub fn reclaims(&self) -> u64 {
        self.reclaims.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Keys with a dangling prepare (`PW > C`) across all shards.
    pub fn stuck_keys(&self) -> u64 {
        self.shards.iter().map(|s| s.stuck_keys()).sum()
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `i`.
    pub fn shard(&self, i: usize) -> &TxServer {
        &self.shards[i]
    }

    /// Total keys across shards.
    pub fn n_keys(&self) -> u64 {
        self.shards.iter().map(|s| s.view.capacity).sum()
    }

    /// Opens a client with a fresh id and per-shard scratch.
    pub fn open_client(&self) -> TxClient {
        let id = self
            .next_client
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        TxClient {
            views: self.shards.iter().map(|s| s.view.clone()).collect(),
            scratch: self
                .shards
                .iter()
                .map(|s| {
                    let c = s.server.open_connection();
                    (c.scratch_addr, c.scratch_rkey.0)
                })
                .collect(),
            clock: TxClock::new(id, 0),
            integrity: Arc::new(IntegrityStats::new()),
        }
    }
}

/// A PRISM-TX client.
#[derive(Debug, Clone)]
pub struct TxClient {
    views: Vec<TxView>,
    scratch: Vec<(u64, u32)>,
    clock: TxClock,
    integrity: Arc<IntegrityStats>,
}

/// Outcome of a transaction attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxOutcome {
    /// Validated and (for non-read-only transactions) installed; carries
    /// the values read during execution.
    Committed(HashMap<u64, Vec<u8>>),
    /// A validation check failed; the caller may retry with fresh reads.
    Aborted,
    /// Infrastructure failure (e.g. buffer pool exhausted mid-commit).
    Failed(&'static str),
}

/// What the driver should do next. `done` is set exactly once.
#[derive(Debug, Clone, Default)]
pub struct TxStep {
    /// `(shard, phase, request-index, request)` to send.
    pub send: Vec<(usize, u32, u32, Request)>,
    /// Fire-and-forget requests (buffer frees, abort C-bumps).
    pub background: Vec<(usize, Request)>,
    /// A deferred-write transaction finished its execution phase: the
    /// caller must compute its writes from [`TxOp::values`] and call
    /// [`TxOp::supply_writes`] to continue (the read-modify-write shape
    /// — computing writes from a *separate* earlier transaction's reads
    /// would reintroduce the lost-update window OCC exists to prevent).
    pub awaiting_writes: bool,
    /// Set when the transaction attempt completes.
    pub done: Option<TxOutcome>,
}

const PH_EXEC: u32 = 0;
const PH_PREPARE: u32 = 1;
const PH_COMMIT: u32 = 2;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    Execute,
    Prepare,
    Commit,
    Done,
}

/// One op of a prepare chain, in chain order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PrepOp {
    /// Read validation for a key.
    Rv(u64),
    /// Write validation, conditional on the immediately preceding read
    /// validation (read-modify-write keys).
    WvCond(u64),
    /// Unconditional write validation (blind-write keys).
    Wv(u64),
}

/// Keys covered by one outstanding request, in op order.
#[derive(Debug, Clone)]
struct PendingReq {
    shard: usize,
    read_keys: Vec<u64>,
    write_keys: Vec<u64>,
    prep: Vec<PrepOp>,
}

/// A transaction attempt in flight.
#[derive(Debug, Clone)]
pub struct TxOp {
    read_keys: Vec<u64>,
    writes: Vec<(u64, Vec<u8>)>,
    phase: Phase,
    reqs: Vec<PendingReq>,
    outstanding: usize,
    ts: Ts,
    rc: HashMap<u64, Ts>,
    values: HashMap<u64, Vec<u8>>,
    valid: bool,
    write_checked: Vec<u64>,
    deferred: bool,
}

impl TxClient {
    /// The client id.
    pub fn cid(&self) -> u16 {
        self.clock.cid()
    }

    /// Shares the integrity counters (harness accounting).
    pub fn with_integrity(mut self, stats: Arc<IntegrityStats>) -> Self {
        self.integrity = stats;
        self
    }

    /// The integrity counters this client reports into.
    pub fn integrity(&self) -> &Arc<IntegrityStats> {
        &self.integrity
    }

    /// Shard holding global key `k`.
    pub fn shard_of(&self, k: u64) -> usize {
        (k % self.views.len() as u64) as usize
    }

    /// Local slot index of global key `k` on its shard.
    pub fn index_of(&self, k: u64) -> u64 {
        k / self.views.len() as u64
    }

    /// Starts a transaction that reads `read_keys` and then writes
    /// `writes` (write keys need not be read first — blind writes are
    /// validated against `PR`/`PW` only).
    ///
    /// # Panics
    ///
    /// Panics if a write value has the wrong length or a key is out of
    /// range.
    pub fn begin(&mut self, read_keys: Vec<u64>, writes: Vec<(u64, Vec<u8>)>) -> (TxOp, TxStep) {
        for (k, v) in &writes {
            assert_eq!(v.len() as u64, self.views[0].value_len, "bad value len");
            assert!(
                self.index_of(*k) < self.views[0].capacity,
                "key {k} out of range"
            );
        }
        for k in &read_keys {
            assert!(
                self.index_of(*k) < self.views[0].capacity,
                "key {k} out of range"
            );
        }
        let mut op = TxOp {
            read_keys,
            writes,
            phase: Phase::Execute,
            reqs: Vec::new(),
            outstanding: 0,
            ts: Ts::ZERO,
            rc: HashMap::new(),
            values: HashMap::new(),
            valid: true,
            write_checked: Vec::new(),
            deferred: false,
        };
        let step = op.exec_sends(self);
        (op, step)
    }

    /// Starts a read-modify-write transaction: executes the reads, then
    /// pauses (`TxStep::awaiting_writes`) so the caller can compute the
    /// write set from the values actually read — see
    /// [`TxOp::supply_writes`].
    pub fn begin_rmw(&mut self, read_keys: Vec<u64>) -> (TxOp, TxStep) {
        let (mut op, step) = self.begin(read_keys, vec![]);
        op.deferred = true;
        if step.send.is_empty() {
            // No reads at all: hand control back immediately.
            return (
                op,
                TxStep {
                    awaiting_writes: true,
                    ..Default::default()
                },
            );
        }
        (op, step)
    }

    fn free_request(addr: u64) -> Request {
        let mut msg = Vec::with_capacity(9);
        msg.push(RPC_FREE);
        msg.extend_from_slice(&addr.to_le_bytes());
        Request::Rpc(msg)
    }
}

impl TxOp {
    /// The timestamp chosen at prepare (for tests/diagnostics).
    pub fn timestamp(&self) -> Ts {
        self.ts
    }

    /// Values read during execution (keyed by global key).
    pub fn values(&self) -> &HashMap<u64, Vec<u8>> {
        &self.values
    }

    /// Continues a [`TxClient::begin_rmw`] transaction: installs the
    /// write set and starts the prepare phase.
    ///
    /// # Panics
    ///
    /// Panics if the transaction is not a deferred one paused after its
    /// execution phase.
    pub fn supply_writes(&mut self, c: &mut TxClient, writes: Vec<(u64, Vec<u8>)>) -> TxStep {
        assert!(self.deferred, "supply_writes on a non-deferred transaction");
        assert_eq!(self.phase, Phase::Execute, "writes already supplied");
        for (k, v) in &writes {
            assert_eq!(v.len() as u64, c.views[0].value_len, "bad value len");
            assert!(c.index_of(*k) < c.views[0].capacity, "key {k} out of range");
        }
        self.writes = writes;
        self.prepare_sends(c)
    }

    fn exec_sends(&mut self, c: &mut TxClient) -> TxStep {
        if self.read_keys.is_empty() {
            // Blind-write transaction: go straight to prepare.
            return self.prepare_sends(c);
        }
        let mut by_shard: HashMap<usize, Vec<u64>> = HashMap::new();
        for &k in &self.read_keys {
            by_shard.entry(c.shard_of(k)).or_default().push(k);
        }
        let mut step = TxStep::default();
        for (shard, keys) in by_shard {
            let v = &c.views[shard];
            let mut chain = Vec::with_capacity(keys.len() * 2);
            for &k in &keys {
                // Two reads per key: the slot's (C | addr) word, then an
                // indirect READ through the addr word at slot+24. RC is
                // the larger of the two C values: the slot's C advances
                // on abort-path bumps (§8.2), and if a commit lands
                // between the two reads the buffer's C is higher — in
                // which case the value *is* exactly that version, so
                // claiming it as RC is consistent either way.
                chain.push(ops::read(v.slot(c.index_of(k)) + 16, 16, v.data_rkey));
                chain.push(ops::read_indirect(
                    v.slot(c.index_of(k)) + 24,
                    v.buf_len() as u32,
                    v.data_rkey,
                ));
            }
            let idx = self.reqs.len() as u32;
            self.reqs.push(PendingReq {
                shard,
                read_keys: keys,
                write_keys: Vec::new(),
                prep: Vec::new(),
            });
            self.outstanding += 1;
            step.send.push((shard, PH_EXEC, idx, Request::Chain(chain)));
        }
        step
    }

    fn prepare_sends(&mut self, c: &mut TxClient) -> TxStep {
        self.phase = Phase::Prepare;
        self.reqs.clear();
        self.outstanding = 0;
        let max_rc = self.rc.values().copied().max().unwrap_or(Ts::ZERO);
        self.ts = c.clock.timestamp_for(max_rc);

        let mut by_shard: HashMap<usize, (Vec<u64>, Vec<u64>)> = HashMap::new();
        for &k in &self.read_keys {
            by_shard.entry(c.shard_of(k)).or_default().0.push(k);
        }
        for (k, _) in &self.writes {
            by_shard.entry(c.shard_of(*k)).or_default().1.push(*k);
        }
        let mut step = TxStep::default();
        for (shard, (rkeys, wkeys)) in by_shard {
            let v = &c.views[shard];
            // Chain layout: read-only keys validate alone; read-modify-
            // write keys pair their read validation with a *conditional*
            // write validation, so a transaction whose read of a key is
            // stale never bumps that key's PW. This matters: an aborted
            // transaction's PW bump is only safe to neutralize with the
            // abort-path C-bump (§8.2) when no concurrently-validated,
            // not-yet-installed writer can sit below it — which holding
            // a valid read guarantees. Blind writes validate
            // unconditionally but are excluded from the C-bump.
            let mut prep = Vec::new();
            for &k in &rkeys {
                prep.push(PrepOp::Rv(k));
                if wkeys.contains(&k) {
                    prep.push(PrepOp::WvCond(k));
                }
            }
            for &k in &wkeys {
                if !rkeys.contains(&k) {
                    prep.push(PrepOp::Wv(k));
                }
            }
            let mut chain = Vec::with_capacity(prep.len());
            for op in &prep {
                match *op {
                    PrepOp::Rv(k) => {
                        // Read validation (§8.2): single CAS comparing
                        // RC|TS against PW|PR, updating PR on success.
                        let rc = self.rc[&k];
                        let mut cmp = Vec::with_capacity(16);
                        cmp.extend_from_slice(&rc.to_bytes());
                        cmp.extend_from_slice(&self.ts.to_bytes());
                        let mut swap = vec![0u8; 8];
                        swap.extend_from_slice(&self.ts.to_bytes());
                        chain.push(ops::cas(
                            // Success iff (PW|PR) <= (RC|TS).
                            CasMode::Le,
                            v.slot(c.index_of(k)),
                            v.data_rkey,
                            cmp,
                            swap,
                            16,
                            full_mask(16),
                            field_mask(8, 8),
                        ));
                    }
                    PrepOp::WvCond(k) | PrepOp::Wv(k) => {
                        // Write validation (§8.2): TS > PW check-and-
                        // update in one CAS; TS > PR checked from the
                        // returned old value.
                        let mut cmp = self.ts.to_bytes().to_vec();
                        cmp.extend_from_slice(&[0u8; 8]);
                        let mut swap = self.ts.to_bytes().to_vec();
                        swap.extend_from_slice(&[0u8; 8]);
                        let mut cas = ops::cas(
                            // Success iff PW < TS.
                            CasMode::Lt,
                            v.slot(c.index_of(k)),
                            v.data_rkey,
                            cmp,
                            swap,
                            16,
                            field_mask(0, 8),
                            field_mask(0, 8),
                        );
                        if matches!(op, PrepOp::WvCond(_)) {
                            cas = cas.conditional();
                        }
                        chain.push(cas);
                    }
                }
            }
            let idx = self.reqs.len() as u32;
            self.reqs.push(PendingReq {
                shard,
                read_keys: rkeys,
                write_keys: wkeys,
                prep,
            });
            self.outstanding += 1;
            step.send
                .push((shard, PH_PREPARE, idx, Request::Chain(chain)));
        }
        step
    }

    fn commit_sends(&mut self, c: &TxClient) -> TxStep {
        self.phase = Phase::Commit;
        self.reqs.clear();
        self.outstanding = 0;
        if self.writes.is_empty() {
            self.phase = Phase::Done;
            return TxStep {
                done: Some(TxOutcome::Committed(self.values.clone())),
                ..Default::default()
            };
        }
        let mut by_shard: HashMap<usize, Vec<(u64, Vec<u8>)>> = HashMap::new();
        for (k, val) in &self.writes {
            by_shard
                .entry(c.shard_of(*k))
                .or_default()
                .push((*k, val.clone()));
        }
        let mut step = TxStep::default();
        for (shard, keys) in by_shard {
            let v = &c.views[shard];
            let (scratch_addr, scratch_rkey) = c.scratch[shard];
            for chunk in keys.chunks(KEYS_PER_COMMIT_CHAIN) {
                let mut chain = Vec::new();
                for (j, (k, val)) in chunk.iter().enumerate() {
                    let stage = scratch_addr + (j as u64) * 16;
                    let payload = encode_version(self.ts, *k, val);
                    chain.push(ops::write(stage, self.ts.to_bytes().to_vec(), scratch_rkey));
                    chain.push(ops::allocate(v.freelist, payload).redirect(Redirect {
                        addr: stage + 8,
                        rkey: scratch_rkey,
                    }));
                    chain.push(
                        ops::cas_args(
                            // Install iff C < TS (Thomas write rule).
                            CasMode::Lt,
                            v.slot(c.index_of(*k)) + 16,
                            v.data_rkey,
                            DataArg::Remote {
                                addr: stage,
                                rkey: scratch_rkey,
                            },
                            DataArg::Remote {
                                addr: stage,
                                rkey: scratch_rkey,
                            },
                            16,
                            field_mask(0, 8),
                            full_mask(16),
                        )
                        .conditional(),
                    );
                    chain.push(ops::read(stage + 8, 8, scratch_rkey));
                }
                let idx = self.reqs.len() as u32;
                self.reqs.push(PendingReq {
                    shard,
                    read_keys: Vec::new(),
                    write_keys: chunk.iter().map(|(k, _)| *k).collect(),
                    prep: Vec::new(),
                });
                self.outstanding += 1;
                step.send
                    .push((shard, PH_COMMIT, idx, Request::Chain(chain)));
            }
        }
        step
    }

    /// Builds the abort-path background traffic: bump `C := TS` for keys
    /// whose write check succeeded (§8.2).
    fn abort_cleanup(&self, c: &TxClient) -> Vec<(usize, Request)> {
        let mut by_shard: HashMap<usize, Vec<u64>> = HashMap::new();
        for &k in &self.write_checked {
            by_shard.entry(c.shard_of(k)).or_default().push(k);
        }
        by_shard
            .into_iter()
            .map(|(shard, keys)| {
                let v = &c.views[shard];
                let chain: Vec<_> = keys
                    .iter()
                    .map(|&k| {
                        let mut cmp = self.ts.to_bytes().to_vec();
                        cmp.extend_from_slice(&[0u8; 8]);
                        ops::cas(
                            CasMode::Lt, // C < TS
                            v.slot(c.index_of(k)) + 16,
                            v.data_rkey,
                            cmp.clone(),
                            cmp,
                            16,
                            field_mask(0, 8),
                            field_mask(0, 8),
                        )
                    })
                    .collect();
                (shard, Request::Chain(chain))
            })
            .collect()
    }

    /// Terminates the attempt after a lost or synthesized reply.
    ///
    /// Execute-phase losses abort cleanly (nothing was prepared yet on
    /// the lost shard's behalf beyond reads). Prepare losses abort with
    /// the usual cleanup; any prepare timestamps already planted on
    /// other shards age out against later transactions' larger
    /// timestamps. A commit loss is indeterminate — the writes may or
    /// may not have installed — so it is reported as a failure rather
    /// than a retryable abort.
    fn lost_reply(&mut self, c: &mut TxClient) -> TxStep {
        match self.phase {
            Phase::Execute => {
                self.phase = Phase::Done;
                TxStep {
                    done: Some(TxOutcome::Aborted),
                    ..Default::default()
                }
            }
            Phase::Prepare => {
                self.phase = Phase::Done;
                TxStep {
                    background: self.abort_cleanup(c),
                    done: Some(TxOutcome::Aborted),
                    ..Default::default()
                }
            }
            Phase::Commit => {
                self.phase = Phase::Done;
                TxStep {
                    done: Some(TxOutcome::Failed("commit reply lost")),
                    ..Default::default()
                }
            }
            Phase::Done => TxStep::default(),
        }
    }

    /// Feeds one reply.
    pub fn on_reply(&mut self, c: &mut TxClient, phase: u32, req_idx: u32, reply: Reply) -> TxStep {
        let current = match self.phase {
            Phase::Execute => PH_EXEC,
            Phase::Prepare => PH_PREPARE,
            Phase::Commit => PH_COMMIT,
            Phase::Done => return TxStep::default(),
        };
        if phase != current {
            return TxStep::default();
        }
        // A garbled request index or a non-chain reply (the fault
        // layer's timeout stand-in) is a lost round trip, never a
        // panic: execute/prepare losses abort and retry; a commit loss
        // is genuinely indeterminate and surfaces as a counted failure.
        let Some(req) = self.reqs.get(req_idx as usize).cloned() else {
            return self.lost_reply(c);
        };
        let Some(results) = reply.chain_results() else {
            return self.lost_reply(c);
        };
        match self.phase {
            Phase::Execute => {
                for (i, &k) in req.read_keys.iter().enumerate() {
                    let slot_c = match results.get(2 * i).map(|r| r.expect_data()) {
                        Some(Ok(d)) if d.len() == 16 => Ts::from_bytes(&d[..8]),
                        _ => {
                            self.phase = Phase::Done;
                            return TxStep {
                                done: Some(TxOutcome::Failed("execution slot read error")),
                                ..Default::default()
                            };
                        }
                    };
                    match results.get(2 * i + 1).map(|r| r.expect_data()) {
                        Some(Ok(d)) if d.len() >= VER_HDR as usize => {
                            let embedded = u64::from_le_bytes(d[8..16].try_into().expect("8B"));
                            if !version_crc_ok(d) || embedded != k {
                                // The committed version failed its
                                // self-check (torn install or at-rest
                                // rot): abort cleanly before computing
                                // on garbage. The attempt is retryable
                                // — a concurrent writer's fresh install
                                // heals the key by overwrite.
                                c.integrity.note_detected();
                                c.integrity.note_aborted();
                                self.phase = Phase::Done;
                                return TxStep {
                                    done: Some(TxOutcome::Aborted),
                                    ..Default::default()
                                };
                            }
                            let version = Ts::from_bytes(&d[..8]);
                            self.rc.insert(k, version.max(slot_c));
                            self.values.insert(k, d[VER_HDR as usize..].to_vec());
                        }
                        _ => {
                            self.phase = Phase::Done;
                            return TxStep {
                                done: Some(TxOutcome::Failed("execution read error")),
                                ..Default::default()
                            };
                        }
                    }
                }
                self.outstanding -= 1;
                if self.outstanding == 0 {
                    if self.deferred {
                        return TxStep {
                            awaiting_writes: true,
                            ..Default::default()
                        };
                    }
                    return self.prepare_sends(c);
                }
                TxStep::default()
            }
            Phase::Prepare => {
                for (i, op) in req.prep.iter().enumerate() {
                    let Some(result) = results.get(i) else {
                        return self.lost_reply(c);
                    };
                    match *op {
                        PrepOp::Rv(k) => match &result.status {
                            OpStatus::Ok => {}
                            OpStatus::CasFailed if result.data.len() >= 16 => {
                                let old = &result.data;
                                let pw = Ts::from_bytes(&old[0..8]);
                                let pr = Ts::from_bytes(&old[8..16]);
                                c.clock.observe(pw);
                                c.clock.observe(pr);
                                // Valid iff the read is still current (PW
                                // unchanged since we read RC); the CAS
                                // only failed because PR >= TS already.
                                if pw != self.rc[&k] {
                                    self.valid = false;
                                }
                            }
                            _ => {
                                self.phase = Phase::Done;
                                return TxStep {
                                    done: Some(TxOutcome::Failed("read validation error")),
                                    ..Default::default()
                                };
                            }
                        },
                        PrepOp::WvCond(k) | PrepOp::Wv(k) => match &result.status {
                            OpStatus::Ok if result.data.len() >= 16 => {
                                let old = &result.data;
                                let pr = Ts::from_bytes(&old[8..16]);
                                // Only read-validated write checks are
                                // eligible for the abort-path C-bump;
                                // blind writes are excluded (see
                                // `prepare_sends`).
                                if matches!(op, PrepOp::WvCond(_)) {
                                    self.write_checked.push(k);
                                }
                                // Timestamps are unique, so PR == TS can
                                // only be this transaction's own read
                                // validation (earlier in this chain) —
                                // not a conflict. Abort only on a
                                // strictly later prepared reader.
                                if pr > self.ts {
                                    c.clock.observe(pr);
                                    self.valid = false;
                                }
                            }
                            OpStatus::CasFailed if result.data.len() >= 8 => {
                                let old = &result.data;
                                c.clock.observe(Ts::from_bytes(&old[0..8]));
                                self.valid = false;
                            }
                            // Skipped: the paired read validation did not
                            // swap, so this transaction must abort — and,
                            // by design, it has not poisoned PW.
                            OpStatus::Skipped => self.valid = false,
                            _ => {
                                self.phase = Phase::Done;
                                return TxStep {
                                    done: Some(TxOutcome::Failed("write validation error")),
                                    ..Default::default()
                                };
                            }
                        },
                    }
                }
                self.outstanding -= 1;
                if self.outstanding == 0 {
                    if !self.valid {
                        self.phase = Phase::Done;
                        return TxStep {
                            background: self.abort_cleanup(c),
                            done: Some(TxOutcome::Aborted),
                            ..Default::default()
                        };
                    }
                    return self.commit_sends(c);
                }
                TxStep::default()
            }
            Phase::Commit => {
                let mut background = Vec::new();
                for (j, _k) in req.write_keys.iter().enumerate() {
                    let (Some(cas), Some(readback)) =
                        (results.get(j * 4 + 2), results.get(j * 4 + 3))
                    else {
                        return self.lost_reply(c);
                    };
                    match &cas.status {
                        OpStatus::Ok => {
                            let old = &cas.data;
                            if old.len() >= 16 {
                                let old_addr =
                                    u64::from_le_bytes(old[8..16].try_into().expect("8 bytes"));
                                if old_addr != 0 {
                                    background.push((req.shard, TxClient::free_request(old_addr)));
                                }
                            }
                        }
                        OpStatus::CasFailed => {
                            // A newer committed writer got there first:
                            // Thomas write rule, our buffer is garbage.
                            if let Ok(d) = readback.expect_data() {
                                if d.len() == 8 {
                                    let new_addr = u64::from_le_bytes(d.try_into().expect("8B"));
                                    background.push((req.shard, TxClient::free_request(new_addr)));
                                }
                            }
                        }
                        _ => {
                            self.phase = Phase::Done;
                            return TxStep {
                                background,
                                done: Some(TxOutcome::Failed("commit install error")),
                                ..Default::default()
                            };
                        }
                    }
                }
                self.outstanding -= 1;
                if self.outstanding == 0 {
                    self.phase = Phase::Done;
                    return TxStep {
                        background,
                        done: Some(TxOutcome::Committed(self.values.clone())),
                        ..Default::default()
                    };
                }
                TxStep {
                    background,
                    ..Default::default()
                }
            }
            Phase::Done => TxStep::default(),
        }
    }
}

/// Drives a transaction attempt to completion against local shards
/// (live mode / tests).
pub fn drive(cluster: &TxCluster, client: &mut TxClient, mut op: TxOp, first: TxStep) -> TxOutcome {
    use prism_core::msg::execute_local;
    let mut queue = first.send;
    let mut bg = first.background;
    let mut outcome = first.done;
    while let Some((shard, phase, idx, req)) = queue.pop() {
        for (s, breq) in bg.drain(..) {
            execute_local(cluster.shard(s).server(), &breq);
        }
        let reply = execute_local(cluster.shard(shard).server(), &req);
        let step = op.on_reply(client, phase, idx, reply);
        queue.extend(step.send);
        bg.extend(step.background);
        if outcome.is_none() {
            outcome = step.done;
        }
    }
    for (s, breq) in bg.drain(..) {
        execute_local(cluster.shard(s).server(), &breq);
    }
    outcome.unwrap_or(TxOutcome::Failed("drive finished without outcome"))
}

/// Convenience: run a read-modify-write transaction with retries until
/// it commits or the budget is spent. The writes are computed from the
/// same execution reads the transaction validates (a single deferred
/// transaction, not read-then-write-again). Returns
/// `(outcome, attempts)`.
pub fn run_rmw(
    cluster: &TxCluster,
    client: &mut TxClient,
    keys: &[u64],
    mk_value: impl Fn(u64, &HashMap<u64, Vec<u8>>) -> Vec<u8>,
    max_attempts: u32,
) -> (TxOutcome, u32) {
    use prism_core::msg::execute_local;
    for attempt in 1..=max_attempts {
        let (mut op, step) = client.begin_rmw(keys.to_vec());
        // Drive the execution phase until the machine asks for writes.
        let mut queue = step.send;
        let mut awaiting = step.awaiting_writes;
        while !awaiting {
            let Some((shard, phase, idx, req)) = queue.pop() else {
                return (TxOutcome::Failed("execution stalled"), attempt);
            };
            let reply = execute_local(cluster.shard(shard).server(), &req);
            let s = op.on_reply(client, phase, idx, reply);
            if let Some(done) = s.done {
                return (done, attempt);
            }
            queue.extend(s.send);
            awaiting = s.awaiting_writes;
        }
        let writes: Vec<_> = keys
            .iter()
            .map(|&k| (k, mk_value(k, op.values())))
            .collect();
        let step = op.supply_writes(client, writes);
        match drive(cluster, client, op, step) {
            TxOutcome::Committed(v) => return (TxOutcome::Committed(v), attempt),
            TxOutcome::Aborted => continue,
            f => return (f, attempt),
        }
    }
    (TxOutcome::Aborted, max_attempts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(shards: usize, keys_per_shard: u64) -> TxCluster {
        TxCluster::new(shards, &TxConfig::paper(keys_per_shard, 32))
    }

    fn commit_write(cl: &TxCluster, c: &mut TxClient, k: u64, val: Vec<u8>) -> TxOutcome {
        let (op, step) = c.begin(vec![k], vec![(k, val)]);
        drive(cl, c, op, step)
    }

    fn read_keys(cl: &TxCluster, c: &mut TxClient, keys: &[u64]) -> HashMap<u64, Vec<u8>> {
        let (op, step) = c.begin(keys.to_vec(), vec![]);
        match drive(cl, c, op, step) {
            TxOutcome::Committed(v) => v,
            o => panic!("read-only txn must commit, got {o:?}"),
        }
    }

    #[test]
    fn fresh_keys_read_zeroes() {
        let cl = cluster(1, 8);
        let mut c = cl.open_client();
        let vals = read_keys(&cl, &mut c, &[0, 3, 7]);
        assert_eq!(vals[&3], vec![0u8; 32]);
    }

    #[test]
    fn rmw_commits_and_is_visible() {
        let cl = cluster(1, 8);
        let mut c = cl.open_client();
        assert!(matches!(
            commit_write(&cl, &mut c, 2, vec![9u8; 32]),
            TxOutcome::Committed(_)
        ));
        let vals = read_keys(&cl, &mut c, &[2]);
        assert_eq!(vals[&2], vec![9u8; 32]);
    }

    #[test]
    fn lost_replies_abort_or_fail_without_panicking() {
        use prism_rdma::RdmaError;
        let timeout_reply = || Reply::Verb(Err(RdmaError::ReceiverNotReady));

        // Execution-phase loss: retryable abort.
        let cl = cluster(1, 8);
        let mut c = cl.open_client();
        let (mut op, step) = c.begin(vec![0], vec![(0, vec![1u8; 32])]);
        let (shard, phase, idx, _req) = step.send[0].clone();
        let s = op.on_reply(&mut c, phase, idx, timeout_reply());
        assert_eq!(s.done, Some(TxOutcome::Aborted));
        let _ = shard;

        // Prepare-phase loss: retryable abort, and a garbled request
        // index is treated the same way.
        let mut c = cl.open_client();
        let (mut op, step) = c.begin(vec![1], vec![(1, vec![2u8; 32])]);
        let mut prepare = None;
        let mut queue = step.send;
        while let Some((shard, phase, idx, req)) = queue.pop() {
            if phase == PH_PREPARE {
                prepare = Some((shard, phase, idx));
                continue;
            }
            let reply = prism_core::msg::execute_local(cl.shard(shard).server(), &req);
            queue.extend(op.on_reply(&mut c, phase, idx, reply).send);
        }
        let (_, phase, idx) = prepare.expect("reached prepare");
        let s = op.on_reply(&mut c, phase, u32::MAX, timeout_reply());
        assert_eq!(s.done, Some(TxOutcome::Aborted));
        let _ = idx;

        // Commit-phase loss: indeterminate, surfaces as Failed.
        let mut c = cl.open_client();
        let (mut op, step) = c.begin(vec![2], vec![(2, vec![3u8; 32])]);
        let mut commit = None;
        let mut queue = step.send;
        while let Some((shard, phase, idx, req)) = queue.pop() {
            if phase == PH_COMMIT {
                commit = Some((shard, phase, idx));
                continue;
            }
            let reply = prism_core::msg::execute_local(cl.shard(shard).server(), &req);
            queue.extend(op.on_reply(&mut c, phase, idx, reply).send);
        }
        let (_, phase, idx) = commit.expect("reached commit");
        let s = op.on_reply(&mut c, phase, idx, timeout_reply());
        assert!(matches!(s.done, Some(TxOutcome::Failed(_))));
    }

    #[test]
    fn multi_key_multi_shard_transaction() {
        let cl = cluster(3, 8);
        let mut c = cl.open_client();
        let (op, step) = c.begin(
            vec![0, 1, 2, 10],
            vec![
                (0, vec![1; 32]),
                (1, vec![2; 32]),
                (2, vec![3; 32]),
                (10, vec![4; 32]),
            ],
        );
        assert!(matches!(
            drive(&cl, &mut c, op, step),
            TxOutcome::Committed(_)
        ));
        let vals = read_keys(&cl, &mut c, &[0, 1, 2, 10]);
        assert_eq!(vals[&0], vec![1; 32]);
        assert_eq!(vals[&10], vec![4; 32]);
    }

    #[test]
    fn stale_read_aborts() {
        let cl = cluster(1, 8);
        let mut c1 = cl.open_client();
        let mut c2 = cl.open_client();
        // c1 reads key 0...
        let (op1, step1) = c1.begin(vec![0], vec![]);
        let v = match drive(&cl, &mut c1, op1, step1) {
            TxOutcome::Committed(v) => v,
            o => panic!("{o:?}"),
        };
        // ...c2 commits a write to key 0...
        assert!(matches!(
            commit_write(&cl, &mut c2, 0, vec![5u8; 32]),
            TxOutcome::Committed(_)
        ));
        let _ = v;
        // ...then c1 interleaves: it executes its reads, c2 commits a
        // conflicting write, and c1's prepare must fail read validation.
        let (mut op, step) = c1.begin(vec![0], vec![(0, vec![7u8; 32])]);
        // Drive only the execution phase manually.
        let mut queue = step.send;
        let mut prepare_step = None;
        while let Some((shard, phase, idx, req)) = queue.pop() {
            let reply = prism_core::msg::execute_local(cl.shard(shard).server(), &req);
            let s = op.on_reply(&mut c1, phase, idx, reply);
            if s.send.iter().any(|(_, p, _, _)| *p == PH_PREPARE) {
                prepare_step = Some(s);
                break;
            }
            queue.extend(s.send);
        }
        let prepare_step = prepare_step.expect("reached prepare");
        // Now c2 commits a conflicting write.
        assert!(matches!(
            commit_write(&cl, &mut c2, 0, vec![6u8; 32]),
            TxOutcome::Committed(_)
        ));
        // c1's prepare must now fail read validation.
        let outcome = drive(&cl, &mut c1, op, prepare_step);
        assert_eq!(outcome, TxOutcome::Aborted);
        // And the key holds c2's value.
        let mut c3 = cl.open_client();
        assert_eq!(read_keys(&cl, &mut c3, &[0])[&0], vec![6u8; 32]);
    }

    #[test]
    fn aborted_writer_does_not_clobber() {
        let cl = cluster(1, 4);
        let mut c1 = cl.open_client();
        let mut c2 = cl.open_client();
        commit_write(&cl, &mut c1, 1, vec![1u8; 32]);
        // c2 executes + prepares, then c1 sneaks a newer commit in, so
        // c2's commit-phase CAS (TS > C) must not install.
        let (mut op, step) = c2.begin(vec![1], vec![(1, vec![2u8; 32])]);
        let mut queue = step.send;
        let mut commit_step = None;
        while let Some((shard, phase, idx, req)) = queue.pop() {
            let reply = prism_core::msg::execute_local(cl.shard(shard).server(), &req);
            let s = op.on_reply(&mut c2, phase, idx, reply);
            if s.send.iter().any(|(_, p, _, _)| *p == PH_COMMIT) {
                commit_step = Some(s);
                break;
            }
            queue.extend(s.send);
        }
        let commit_step = commit_step.expect("validated");
        // c1 commits a *blind* write with a later timestamp than c2's
        // TS. (A read-validating write would block behind c2's prepared
        // PW until some commit advances C — the documented conservative
        // behaviour.) Its first attempt may abort on TS <= PW; the
        // observed clock advance makes the retry succeed.
        let mut attempts = 0;
        loop {
            attempts += 1;
            let (op, step) = c1.begin(vec![], vec![(1, vec![3u8; 32])]);
            match drive(&cl, &mut c1, op, step) {
                TxOutcome::Committed(_) => break,
                TxOutcome::Aborted if attempts < 5 => continue,
                o => panic!("{o:?}"),
            }
        }
        // Now c2's install CAS fails (C advanced past its TS), but the
        // transaction still reports committed per the Thomas write rule.
        let outcome = drive(&cl, &mut c2, op, commit_step);
        assert!(matches!(outcome, TxOutcome::Committed(_)));
        let mut c3 = cl.open_client();
        assert_eq!(read_keys(&cl, &mut c3, &[1])[&1], vec![3u8; 32]);
    }

    #[test]
    fn run_rmw_increments_counter_atomically() {
        let cl = cluster(1, 4);
        let mut c = cl.open_client();
        for _ in 0..10 {
            let (o, _) = run_rmw(
                &cl,
                &mut c,
                &[0],
                |_, vals| {
                    let mut v = vals[&0].clone();
                    v[0] += 1;
                    v
                },
                10,
            );
            assert!(matches!(o, TxOutcome::Committed(_)));
        }
        assert_eq!(read_keys(&cl, &mut c, &[0])[&0][0], 10);
    }

    #[test]
    fn concurrent_counter_increments_are_serializable() {
        use std::sync::Arc;
        let cl = Arc::new(cluster(2, 8));
        let per_thread = 25;
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let cl = Arc::clone(&cl);
                std::thread::spawn(move || {
                    let mut c = cl.open_client();
                    let mut committed = 0;
                    while committed < per_thread {
                        let (o, _) = run_rmw(
                            &cl,
                            &mut c,
                            &[3],
                            |_, vals| {
                                let mut v = vals[&3].clone();
                                let n = u32::from_le_bytes(v[0..4].try_into().unwrap());
                                v[0..4].copy_from_slice(&(n + 1).to_le_bytes());
                                v
                            },
                            1_000,
                        );
                        if matches!(o, TxOutcome::Committed(_)) {
                            committed += 1;
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut c = cl.open_client();
        let v = &read_keys(&cl, &mut c, &[3])[&3];
        let n = u32::from_le_bytes(v[0..4].try_into().unwrap());
        assert_eq!(n, 100, "lost update detected");
    }

    #[test]
    fn cross_key_invariant_preserved() {
        // Transfer between two "accounts" on different shards; total must
        // be conserved under concurrency.
        use std::sync::Arc;
        let cl = Arc::new(cluster(2, 4));
        {
            let mut c = cl.open_client();
            let mut v = vec![0u8; 32];
            v[0..4].copy_from_slice(&100u32.to_le_bytes());
            assert!(matches!(
                commit_write(&cl, &mut c, 0, v.clone()),
                TxOutcome::Committed(_)
            ));
            assert!(matches!(
                commit_write(&cl, &mut c, 1, v),
                TxOutcome::Committed(_)
            ));
        }
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let cl = Arc::clone(&cl);
                std::thread::spawn(move || {
                    let mut c = cl.open_client();
                    let mut done = 0;
                    while done < 20 {
                        let amount = (t + 1) as u32;
                        let (o, _) = run_rmw(
                            &cl,
                            &mut c,
                            &[0, 1],
                            move |k, vals| {
                                let a = u32::from_le_bytes(vals[&0][0..4].try_into().unwrap());
                                let b = u32::from_le_bytes(vals[&1][0..4].try_into().unwrap());
                                let (na, nb) = if a >= amount {
                                    (a - amount, b + amount)
                                } else {
                                    (a, b)
                                };
                                let mut v = vals[&k].clone();
                                v[0..4]
                                    .copy_from_slice(&(if k == 0 { na } else { nb }).to_le_bytes());
                                v
                            },
                            1_000,
                        );
                        if matches!(o, TxOutcome::Committed(_)) {
                            done += 1;
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut c = cl.open_client();
        let vals = read_keys(&cl, &mut c, &[0, 1]);
        let a = u32::from_le_bytes(vals[&0][0..4].try_into().unwrap());
        let b = u32::from_le_bytes(vals[&1][0..4].try_into().unwrap());
        assert_eq!(a + b, 200, "money was created or destroyed");
    }

    /// Drives a write transaction up to (not including) its commit
    /// phase, leaving `PW > C` planted on the key's shard, and returns
    /// the op plus the withheld commit step.
    fn park_before_commit(cl: &TxCluster, c: &mut TxClient, k: u64) -> (TxOp, TxStep) {
        let (mut op, step) = c.begin(vec![k], vec![(k, vec![0xAB; 32])]);
        let mut queue = step.send;
        while let Some((shard, phase, idx, req)) = queue.pop() {
            let reply = prism_core::msg::execute_local(cl.shard(shard).server(), &req);
            let s = op.on_reply(c, phase, idx, reply);
            if s.send.iter().any(|(_, p, _, _)| *p == PH_COMMIT) {
                return (op, s);
            }
            queue.extend(s.send);
        }
        panic!("transaction never reached commit");
    }

    #[test]
    fn sweep_reclaims_dangling_prepare_exactly_once() {
        let cl = cluster(1, 4);
        let mut c = cl.open_client();
        // A "crashed" client: prepared a write on key 2, never commits.
        let (_op, _commit) = park_before_commit(&cl, &mut c, 2);
        assert_eq!(cl.stuck_keys(), 1, "prepare must leave PW > C");

        // First sweep only records the lease; second reclaims.
        assert_eq!(cl.sweep_shard(0), 0);
        assert_eq!(cl.stuck_keys(), 1);
        assert_eq!(cl.sweep_shard(0), 1);
        assert_eq!(cl.stuck_keys(), 0, "C := PW must unblock the key");
        assert_eq!(cl.sweep_shard(0), 0, "reclaim happens exactly once");
        assert_eq!(cl.reclaims(), 1);

        // The key is writable again: a fresh client's RMW commits.
        let mut c2 = cl.open_client();
        let (o, _) = run_rmw(&cl, &mut c2, &[2], |_, _| vec![7u8; 32], 10);
        assert!(
            matches!(o, TxOutcome::Committed(_)),
            "key still stuck: {o:?}"
        );
        assert_eq!(read_keys(&cl, &mut c2, &[2])[&2], vec![7u8; 32]);
    }

    #[test]
    fn sweep_spares_live_transactions_for_one_lease_interval() {
        let cl = cluster(1, 4);
        let mut c = cl.open_client();
        let (op, commit) = park_before_commit(&cl, &mut c, 1);
        // One sweep lands while the transaction is between prepare and
        // commit: it must only record the lease, not bump C.
        assert_eq!(cl.sweep_shard(0), 0);
        // The slow-but-live client now finishes; its install must win.
        assert!(matches!(
            drive(&cl, &mut c, op, commit),
            TxOutcome::Committed(_)
        ));
        assert_eq!(read_keys(&cl, &mut c, &[1])[&1], vec![0xAB; 32]);
        // The commit raised C to PW, so the lease entry just expires.
        assert_eq!(cl.sweep_shard(0), 0);
        assert_eq!(cl.stuck_keys(), 0);
        assert_eq!(cl.reclaims(), 0);
    }

    #[test]
    fn version_images_detect_every_single_bit_flip() {
        let img = encode_version(Ts { clock: 7, cid: 3 }, 42, &[0xA5; 32]);
        assert!(version_crc_ok(&img));
        for byte in 0..img.len() {
            if (20..24).contains(&byte) {
                continue; // header padding, not covered by the checksum
            }
            for bit in 0..8 {
                let mut flipped = img.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    !version_crc_ok(&flipped),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn rotted_version_aborts_reads_cleanly_and_overwrite_heals() {
        let cl = cluster(1, 4);
        let mut c = cl.open_client();
        assert!(matches!(
            commit_write(&cl, &mut c, 0, vec![9u8; 32]),
            TxOutcome::Committed(_)
        ));

        // Rot a bit of key 0's committed value at rest.
        let shard = cl.shard(0);
        let addr_word = shard
            .server()
            .arena()
            .read(shard.view().slot(0) + 24, 8)
            .unwrap();
        let buf = u64::from_le_bytes(addr_word.as_slice().try_into().unwrap());
        shard.server().arena().flip_bit(buf + VER_HDR, 2).unwrap();
        assert_eq!(cl.scrub(0), (3, 1), "scrub must flag the rotted version");

        // A reading transaction detects the mismatch and aborts cleanly
        // instead of returning the damaged value.
        let (op, step) = c.begin(vec![0], vec![]);
        assert_eq!(drive(&cl, &mut c, op, step), TxOutcome::Aborted);
        assert_eq!(c.integrity().detected(), 1);
        assert_eq!(c.integrity().aborted(), 1);

        // A blind write never reads the damaged buffer; its commit
        // installs a fresh self-verifying version, healing the key.
        let (op, step) = c.begin(vec![], vec![(0, vec![4u8; 32])]);
        assert!(matches!(
            drive(&cl, &mut c, op, step),
            TxOutcome::Committed(_)
        ));
        assert_eq!(cl.scrub(0), (4, 0), "overwrite must heal the rot");
        assert_eq!(read_keys(&cl, &mut c, &[0])[&0], vec![4u8; 32]);
    }

    #[test]
    fn buffers_are_reclaimed() {
        let cl = TxCluster::new(
            1,
            &TxConfig {
                keys_per_shard: 2,
                value_len: 32,
                spare_buffers: 4,
            },
        );
        let mut c = cl.open_client();
        for i in 0..100u8 {
            let o = commit_write(&cl, &mut c, 0, vec![i; 32]);
            assert!(
                matches!(o, TxOutcome::Committed(_)),
                "write {i} failed: {o:?} (buffer leak?)"
            );
        }
    }
}
