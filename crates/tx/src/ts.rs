//! Transaction timestamps: `(clock_time, client id)` pairs from loosely
//! synchronized logical clocks (§8.2, following Meerkat [38] and
//! TAPIR-style timestamp ordering [1, 40, 46]).
//!
//! Like PRISM-RS tags, timestamps pack into a u64 (48-bit clock, 16-bit
//! client id) stored **big-endian**, so the enhanced CAS's arithmetic
//! comparison orders them correctly, including across the concatenated
//! `PW|PR` and `RC|TS` fields of the single-CAS read validation.

/// A transaction timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ts {
    /// Logical clock time (48 bits used).
    pub clock: u64,
    /// Client id (ensures uniqueness, §8.2).
    pub cid: u16,
}

impl Ts {
    /// The zero timestamp (initial version of every key).
    pub const ZERO: Ts = Ts { clock: 0, cid: 0 };

    /// Packs into a u64 whose numeric order equals timestamp order.
    ///
    /// # Panics
    ///
    /// Panics on 48-bit clock overflow.
    pub fn pack(self) -> u64 {
        assert!(self.clock < (1 << 48), "timestamp clock overflow");
        (self.clock << 16) | self.cid as u64
    }

    /// Inverse of [`Ts::pack`].
    pub fn unpack(v: u64) -> Ts {
        Ts {
            clock: v >> 16,
            cid: (v & 0xFFFF) as u16,
        }
    }

    /// Big-endian bytes as stored in server memory.
    pub fn to_bytes(self) -> [u8; 8] {
        self.pack().to_be_bytes()
    }

    /// Reads a timestamp from server-memory bytes.
    ///
    /// # Panics
    ///
    /// Panics if `b` is shorter than 8 bytes.
    pub fn from_bytes(b: &[u8]) -> Ts {
        Ts::unpack(u64::from_be_bytes(b[..8].try_into().expect("8 bytes")))
    }
}

/// A client's loosely synchronized logical clock (§8.2).
///
/// The clock only moves forward; [`TxClock::timestamp_for`] implements
/// Meerkat's rule that a transaction's timestamp must exceed every
/// version it read, and [`TxClock::observe`] pulls the clock forward
/// past timestamps other clients expose (returned in CAS old values),
/// which keeps retries from aborting forever behind a fast peer.
#[derive(Debug, Clone)]
pub struct TxClock {
    clock: u64,
    cid: u16,
}

impl TxClock {
    /// A clock for client `cid` starting at `start` (a real deployment
    /// seeds this from the machine clock; tests and the simulator use
    /// small integers).
    pub fn new(cid: u16, start: u64) -> Self {
        TxClock { clock: start, cid }
    }

    /// The client id.
    pub fn cid(&self) -> u16 {
        self.cid
    }

    /// Picks the commit timestamp for a transaction whose largest read
    /// version is `max_rc`: strictly above both the local clock and
    /// every version read (§8.2: "adjusted such that TS > RC for all
    /// RCs").
    pub fn timestamp_for(&mut self, max_rc: Ts) -> Ts {
        self.clock = self.clock.max(max_rc.clock) + 1;
        Ts {
            clock: self.clock,
            cid: self.cid,
        }
    }

    /// Advances the clock past an observed remote timestamp.
    pub fn observe(&mut self, other: Ts) {
        self.clock = self.clock.max(other.clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips_and_orders() {
        let a = Ts { clock: 1, cid: 9 };
        let b = Ts { clock: 2, cid: 0 };
        assert_eq!(Ts::unpack(a.pack()), a);
        assert!(a.pack() < b.pack());
        assert!(a.to_bytes() < b.to_bytes(), "byte order = numeric order");
    }

    #[test]
    fn timestamps_exceed_reads_and_monotone() {
        let mut c = TxClock::new(3, 0);
        let t1 = c.timestamp_for(Ts { clock: 10, cid: 1 });
        assert!(t1 > Ts { clock: 10, cid: 1 });
        let t2 = c.timestamp_for(Ts::ZERO);
        assert!(t2 > t1, "clock must be monotonic");
        assert_eq!(t2.cid, 3);
    }

    #[test]
    fn observe_pulls_clock_forward() {
        let mut c = TxClock::new(1, 0);
        c.observe(Ts { clock: 99, cid: 2 });
        let t = c.timestamp_for(Ts::ZERO);
        assert!(t.clock > 99);
    }

    #[test]
    fn same_clock_differs_by_cid() {
        let a = Ts { clock: 5, cid: 1 };
        let b = Ts { clock: 5, cid: 2 };
        assert_ne!(a.pack(), b.pack());
        assert!(a < b);
    }
}
