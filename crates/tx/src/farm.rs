//! The FaRM baseline (§8.1 of the PRISM paper; Dragojević et al.,
//! NSDI 2014).
//!
//! Data layout per shard: an index of per-key pointers plus fixed-
//! location objects `[version u64 | lock u64 | key u64 | value]`.
//! During execution, clients read one-sided: an index READ then an
//! object READ ("each access can require two READs, as in Pilaf",
//! §8.1). Writes are buffered locally.
//!
//! The commit protocol is three-phase (§8.1):
//!
//! 1. **Lock** (RPC, server CPU): lock every write-set object; any
//!    conflict fails the whole shard's lock request.
//! 2. **Validate** (one-sided READs): re-read each read-set object's
//!    version word; a changed version or a foreign lock aborts.
//! 3. **Update + unlock** (RPC, server CPU): install the new values,
//!    bump versions, release locks.
//!
//! The lock word records the owning transaction's token so validation
//! can distinguish its own write locks from foreign ones. Torn
//! execution reads (an object READ racing an update) are caught by
//! validation, which re-reads the version — the same role FaRM's
//! per-cacheline versions play.

use std::collections::HashMap;
use std::sync::Arc;

use prism_core::msg::{Reply, Request, Verb};
use prism_core::PrismServer;
use prism_rdma::region::AccessFlags;

/// Object header: version + lock.
pub const OBJ_HEADER: u64 = 16;

/// Retry budget for execution reads that race an in-progress update.
pub const MAX_READ_RETRIES: u32 = 64;

const RPC_LOCK: u8 = 0x10;
const RPC_UPDATE: u8 = 0x11;
const RPC_UNLOCK: u8 = 0x12;

/// Per-shard configuration (mirrors `TxConfig` for fair comparison).
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Keys resident on this shard.
    pub keys_per_shard: u64,
    /// Value bytes per key.
    pub value_len: u64,
}

/// Client-visible layout of one shard.
#[derive(Debug, Clone)]
pub struct FarmView {
    /// Base of the per-key pointer index.
    pub index_addr: u64,
    /// Base of the object array.
    pub obj_addr: u64,
    /// Object stride.
    pub obj_stride: u64,
    /// Rkey covering index and objects.
    pub rkey: u32,
    /// Keys resident on this shard.
    pub capacity: u64,
    /// Value bytes per key.
    pub value_len: u64,
}

impl FarmView {
    /// Address of local key `i`'s index slot.
    pub fn index_slot(&self, i: u64) -> u64 {
        self.index_addr + i * 8
    }

    /// Object length: header + key + value.
    pub fn obj_len(&self) -> u64 {
        OBJ_HEADER + 8 + self.value_len
    }
}

/// One FaRM shard server.
pub struct FarmServer {
    server: Arc<PrismServer>,
    view: FarmView,
    /// Lease state for [`FarmServer::sweep_locks`]: local key index →
    /// the lock token seen held at the last sweep.
    lease: std::sync::Mutex<HashMap<u64, u64>>,
}

impl FarmServer {
    /// Builds a shard with every key present at version 0.
    pub fn new(config: &FarmConfig, shard: u64, n_shards: u64) -> Self {
        let index_len = (config.keys_per_shard * 8).next_multiple_of(64);
        let obj_stride = (OBJ_HEADER + 8 + config.value_len).next_multiple_of(64);
        let obj_len = obj_stride * config.keys_per_shard;
        let server = Arc::new(PrismServer::new(index_len + obj_len + (1 << 20)));
        let (base, rkey) = server.carve_region(index_len + obj_len, 64, AccessFlags::FULL);
        let index_addr = base;
        let obj_addr = base + index_len;
        for i in 0..config.keys_per_shard {
            let obj = obj_addr + i * obj_stride;
            let global_key = i * n_shards + shard;
            // version 0, lock 0 (already zero), key, zero value.
            server
                .arena()
                .write(obj + 16, &global_key.to_le_bytes())
                .expect("object in arena");
            server
                .arena()
                .write_u64(index_addr + i * 8, obj)
                .expect("index in arena");
        }

        let view = FarmView {
            index_addr,
            obj_addr,
            obj_stride,
            rkey: rkey.0,
            capacity: config.keys_per_shard,
            value_len: config.value_len,
        };

        let h_server = Arc::clone(&server);
        let h_view = view.clone();
        server.set_rpc_handler(Arc::new(move |req: &[u8]| {
            handle_rpc(&h_server, &h_view, req)
        }));

        FarmServer {
            server,
            view,
            lease: std::sync::Mutex::new(HashMap::new()),
        }
    }

    /// The underlying host.
    pub fn server(&self) -> &Arc<PrismServer> {
        &self.server
    }

    /// The client-visible layout.
    pub fn view(&self) -> &FarmView {
        &self.view
    }

    /// Lease-based recovery for write locks whose owner crashed between
    /// lock and unlock (§8.1's lease expiry, scoped to one shard): a
    /// lock word holding the *same* token across two consecutive sweeps
    /// is declared orphaned and released. A live transaction either
    /// unlocks before the second sweep or — having re-locked with a
    /// fresh token (tokens embed a per-client sequence number) — resets
    /// the lease. The release re-checks the token atomically, so an
    /// unlock racing the sweep is harmless. Returns locks released.
    pub fn sweep_locks(&self) -> u64 {
        let mut lease = self.lease.lock().expect("lease lock");
        let mut released = 0;
        for i in 0..self.view.capacity {
            let obj = obj_of(&self.view, i);
            let token = self.server.arena().read_u64(obj + 8).expect("in arena");
            if token == 0 {
                lease.remove(&i);
                continue;
            }
            match lease.get(&i) {
                Some(&seen) if seen == token => {
                    self.server
                        .arena()
                        .atomic(obj + 8, 8, |b| {
                            if u64::from_le_bytes(b.as_ref().try_into().expect("8B")) == token {
                                b.copy_from_slice(&0u64.to_le_bytes());
                            }
                        })
                        .expect("object in arena");
                    lease.remove(&i);
                    released += 1;
                }
                _ => {
                    lease.insert(i, token);
                }
            }
        }
        released
    }

    /// Number of objects whose lock word is currently held.
    pub fn held_locks(&self) -> u64 {
        (0..self.view.capacity)
            .filter(|&i| {
                self.server
                    .arena()
                    .read_u64(obj_of(&self.view, i) + 8)
                    .expect("in arena")
                    != 0
            })
            .count() as u64
    }
}

impl std::fmt::Debug for FarmServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FarmServer")
            .field("capacity", &self.view.capacity)
            .finish_non_exhaustive()
    }
}

fn obj_of(view: &FarmView, local: u64) -> u64 {
    view.obj_addr + local * view.obj_stride
}

/// Server-side commit phases. Lock/unlock/update all run on the server
/// CPU — the cost PRISM-TX avoids.
fn handle_rpc(server: &PrismServer, view: &FarmView, req: &[u8]) -> Vec<u8> {
    if req.len() < 10 {
        return vec![0xFE];
    }
    let op = req[0];
    let token = u64::from_le_bytes(req[1..9].try_into().expect("8 bytes"));
    let n = req[9] as usize;
    let mut off = 10;
    match op {
        RPC_LOCK => {
            let mut taken = Vec::new();
            for _ in 0..n {
                let local = u64::from_le_bytes(req[off..off + 8].try_into().expect("8B"));
                off += 8;
                let obj = obj_of(view, local);
                let got = server
                    .arena()
                    .atomic(obj + 8, 8, |b| {
                        let cur = u64::from_le_bytes(b.as_ref().try_into().expect("8B"));
                        if cur == 0 {
                            b.copy_from_slice(&token.to_le_bytes());
                            true
                        } else {
                            false
                        }
                    })
                    .expect("object in arena");
                if got {
                    taken.push(obj);
                } else {
                    // All-or-nothing per shard: roll back and fail.
                    for t in taken {
                        server.arena().write_u64(t + 8, 0).expect("in arena");
                    }
                    return vec![0xFF];
                }
            }
            vec![0]
        }
        RPC_UNLOCK => {
            for _ in 0..n {
                let local = u64::from_le_bytes(req[off..off + 8].try_into().expect("8B"));
                off += 8;
                let obj = obj_of(view, local);
                server
                    .arena()
                    .atomic(obj + 8, 8, |b| {
                        if u64::from_le_bytes(b.as_ref().try_into().expect("8B")) == token {
                            b.copy_from_slice(&0u64.to_le_bytes());
                        }
                    })
                    .expect("object in arena");
            }
            vec![0]
        }
        RPC_UPDATE => {
            let vlen = view.value_len as usize;
            for _ in 0..n {
                let local = u64::from_le_bytes(req[off..off + 8].try_into().expect("8B"));
                off += 8;
                let value = &req[off..off + vlen];
                off += vlen;
                let obj = obj_of(view, local);
                let lock = server.arena().read_u64(obj + 8).expect("in arena");
                if lock != token {
                    return vec![0xFD]; // protocol violation
                }
                // Value first, then version, then unlock — a reader that
                // observed the pre-update version can never validate a
                // half-new value.
                server
                    .arena()
                    .write(obj + OBJ_HEADER + 8, value)
                    .expect("in arena");
                let v = server.arena().read_u64(obj).expect("in arena");
                server.arena().write_u64(obj, v + 1).expect("in arena");
                server.arena().write_u64(obj + 8, 0).expect("in arena");
            }
            vec![0]
        }
        _ => vec![0xFE],
    }
}

/// A sharded FaRM deployment.
pub struct FarmCluster {
    shards: Vec<FarmServer>,
    next_client: std::sync::atomic::AtomicU64,
    lock_reclaims: std::sync::atomic::AtomicU64,
}

impl FarmCluster {
    /// Builds `n_shards` shards; key placement matches `TxCluster`.
    pub fn new(n_shards: usize, config: &FarmConfig) -> Self {
        assert!(n_shards > 0);
        FarmCluster {
            shards: (0..n_shards)
                .map(|s| FarmServer::new(config, s as u64, n_shards as u64))
                .collect(),
            next_client: std::sync::atomic::AtomicU64::new(1),
            lock_reclaims: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Runs one lock-lease sweep on shard `i` (see
    /// [`FarmServer::sweep_locks`]) and folds the count into
    /// [`FarmCluster::lock_reclaims`].
    pub fn sweep_shard(&self, i: usize) -> u64 {
        let n = self.shards[i].sweep_locks();
        self.lock_reclaims
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        n
    }

    /// Total orphaned locks released by sweeps across all shards.
    pub fn lock_reclaims(&self) -> u64 {
        self.lock_reclaims
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Currently held lock words across all shards.
    pub fn held_locks(&self) -> u64 {
        self.shards.iter().map(|s| s.held_locks()).sum()
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `i`.
    pub fn shard(&self, i: usize) -> &FarmServer {
        &self.shards[i]
    }

    /// Clears every object's lock word on every shard — FaRM's lease-
    /// based recovery for clients that die while holding write locks.
    /// The experiment harness calls this between measurement windows.
    pub fn reset_locks(&self) {
        for shard in &self.shards {
            let v = shard.view().clone();
            for i in 0..v.capacity {
                shard
                    .server()
                    .arena()
                    .write_u64(obj_of(&v, i) + 8, 0)
                    .expect("in arena");
            }
        }
    }

    /// Opens a client.
    pub fn open_client(&self) -> FarmClient {
        let id = self
            .next_client
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        FarmClient {
            views: self.shards.iter().map(|s| s.view.clone()).collect(),
            client_id: id,
            seq: 0,
        }
    }
}

/// A FaRM client.
#[derive(Debug, Clone)]
pub struct FarmClient {
    views: Vec<FarmView>,
    client_id: u64,
    seq: u64,
}

/// Outcome of a FaRM transaction attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FarmOutcome {
    /// Committed; carries the values read during execution.
    Committed(HashMap<u64, Vec<u8>>),
    /// Lock conflict or validation failure.
    Aborted,
    /// Infrastructure failure.
    Failed(&'static str),
}

/// What the driver should do next.
#[derive(Debug, Clone, Default)]
pub struct FarmStep {
    /// `(shard, phase, request-index, request)` to send.
    pub send: Vec<(usize, u32, u32, Request)>,
    /// A deferred-write transaction finished its execution reads; call
    /// [`FarmOp::supply_writes`] with writes computed from
    /// [`FarmOp::values`].
    pub awaiting_writes: bool,
    /// Set when the attempt completes.
    pub done: Option<FarmOutcome>,
}

const PH_IDX: u32 = 0;
const PH_OBJ: u32 = 1;
const PH_LOCK: u32 = 2;
const PH_VAL: u32 = 3;
const PH_UPD: u32 = 4;
const PH_UNLOCK: u32 = 5;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    IndexReads,
    ObjectReads,
    Lock,
    Validate,
    Update,
    Unlock,
    Done,
}

#[derive(Debug, Clone)]
struct PendingReq {
    shard: usize,
    keys: Vec<u64>,
}

/// A FaRM transaction attempt in flight.
#[derive(Debug, Clone)]
pub struct FarmOp {
    read_keys: Vec<u64>,
    writes: Vec<(u64, Vec<u8>)>,
    token: u64,
    phase: Phase,
    reqs: Vec<PendingReq>,
    outstanding: usize,
    ptrs: HashMap<u64, u64>,
    versions: HashMap<u64, u64>,
    values: HashMap<u64, Vec<u8>>,
    retries: u32,
    locked_shards: Vec<usize>,
    lock_failed: bool,
    valid: bool,
    pending_outcome: Option<FarmOutcome>,
    deferred: bool,
}

impl FarmClient {
    /// Shard holding global key `k`.
    pub fn shard_of(&self, k: u64) -> usize {
        (k % self.views.len() as u64) as usize
    }

    /// Local index of global key `k`.
    pub fn index_of(&self, k: u64) -> u64 {
        k / self.views.len() as u64
    }

    /// Starts a transaction.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range keys or wrong-sized values.
    pub fn begin(
        &mut self,
        read_keys: Vec<u64>,
        writes: Vec<(u64, Vec<u8>)>,
    ) -> (FarmOp, FarmStep) {
        for (k, v) in &writes {
            assert_eq!(v.len() as u64, self.views[0].value_len);
            assert!(
                self.index_of(*k) < self.views[0].capacity,
                "key {k} out of range"
            );
        }
        self.seq += 1;
        let token = (self.client_id << 24) | (self.seq & 0xFF_FFFF);
        let mut op = FarmOp {
            read_keys,
            writes,
            token,
            phase: Phase::IndexReads,
            reqs: Vec::new(),
            outstanding: 0,
            ptrs: HashMap::new(),
            versions: HashMap::new(),
            values: HashMap::new(),
            retries: 0,
            locked_shards: Vec::new(),
            lock_failed: false,
            valid: true,
            pending_outcome: None,
            deferred: false,
        };
        let step = op.index_sends(self);
        (op, step)
    }

    /// Starts a read-modify-write transaction that pauses after its
    /// execution reads so the write set can be computed from the values
    /// actually read (see [`FarmOp::supply_writes`]).
    pub fn begin_rmw(&mut self, read_keys: Vec<u64>) -> (FarmOp, FarmStep) {
        let (mut op, step) = self.begin(read_keys, vec![]);
        op.deferred = true;
        if step.send.is_empty() {
            return (
                op,
                FarmStep {
                    awaiting_writes: true,
                    ..Default::default()
                },
            );
        }
        (op, step)
    }
}

impl FarmOp {
    /// Values read during execution (keyed by global key).
    pub fn values(&self) -> &HashMap<u64, Vec<u8>> {
        &self.values
    }

    /// Continues a [`FarmClient::begin_rmw`] transaction into its
    /// commit protocol with the supplied write set.
    ///
    /// # Panics
    ///
    /// Panics if the transaction is not deferred or not paused after
    /// its execution reads.
    pub fn supply_writes(&mut self, c: &FarmClient, writes: Vec<(u64, Vec<u8>)>) -> FarmStep {
        assert!(self.deferred, "supply_writes on a non-deferred transaction");
        assert!(
            matches!(self.phase, Phase::ObjectReads | Phase::IndexReads),
            "writes already supplied"
        );
        for (k, v) in &writes {
            assert_eq!(v.len() as u64, c.views[0].value_len);
            assert!(c.index_of(*k) < c.views[0].capacity, "key {k} out of range");
        }
        self.writes = writes;
        self.lock_sends(c)
    }

    fn index_sends(&mut self, c: &FarmClient) -> FarmStep {
        if self.read_keys.is_empty() {
            return self.lock_sends(c);
        }
        self.phase = Phase::IndexReads;
        self.reqs.clear();
        self.outstanding = 0;
        let mut step = FarmStep::default();
        for &k in &self.read_keys.clone() {
            let shard = c.shard_of(k);
            let v = &c.views[shard];
            let idx = self.reqs.len() as u32;
            self.reqs.push(PendingReq {
                shard,
                keys: vec![k],
            });
            self.outstanding += 1;
            step.send.push((
                shard,
                PH_IDX,
                idx,
                Request::Verb(Verb::Read {
                    addr: v.index_slot(c.index_of(k)),
                    len: 8,
                    rkey: v.rkey,
                }),
            ));
        }
        step
    }

    fn object_sends(&mut self, c: &FarmClient, keys: &[u64]) -> FarmStep {
        self.phase = Phase::ObjectReads;
        self.reqs.clear();
        self.outstanding = 0;
        let mut step = FarmStep::default();
        for &k in keys {
            let shard = c.shard_of(k);
            let v = &c.views[shard];
            let idx = self.reqs.len() as u32;
            self.reqs.push(PendingReq {
                shard,
                keys: vec![k],
            });
            self.outstanding += 1;
            step.send.push((
                shard,
                PH_OBJ,
                idx,
                Request::Verb(Verb::Read {
                    addr: self.ptrs[&k],
                    len: v.obj_len() as u32,
                    rkey: v.rkey,
                }),
            ));
        }
        step
    }

    fn lock_sends(&mut self, c: &FarmClient) -> FarmStep {
        if self.writes.is_empty() {
            return self.validate_sends(c);
        }
        self.phase = Phase::Lock;
        self.reqs.clear();
        self.outstanding = 0;
        self.locked_shards.clear();
        self.lock_failed = false;
        let mut by_shard: HashMap<usize, Vec<u64>> = HashMap::new();
        for (k, _) in &self.writes {
            by_shard.entry(c.shard_of(*k)).or_default().push(*k);
        }
        let mut step = FarmStep::default();
        for (shard, mut keys) in by_shard {
            keys.sort_unstable(); // canonical lock order
            let mut msg = Vec::with_capacity(10 + keys.len() * 8);
            msg.push(RPC_LOCK);
            msg.extend_from_slice(&self.token.to_le_bytes());
            msg.push(keys.len() as u8);
            for &k in &keys {
                msg.extend_from_slice(&c.index_of(k).to_le_bytes());
            }
            let idx = self.reqs.len() as u32;
            self.reqs.push(PendingReq { shard, keys });
            self.outstanding += 1;
            step.send.push((shard, PH_LOCK, idx, Request::Rpc(msg)));
        }
        step
    }

    fn validate_sends(&mut self, c: &FarmClient) -> FarmStep {
        if self.read_keys.is_empty() {
            return self.update_sends(c);
        }
        self.phase = Phase::Validate;
        self.reqs.clear();
        self.outstanding = 0;
        self.valid = true;
        let mut step = FarmStep::default();
        for &k in &self.read_keys.clone() {
            let shard = c.shard_of(k);
            let v = &c.views[shard];
            let idx = self.reqs.len() as u32;
            self.reqs.push(PendingReq {
                shard,
                keys: vec![k],
            });
            self.outstanding += 1;
            step.send.push((
                shard,
                PH_VAL,
                idx,
                Request::Verb(Verb::Read {
                    addr: self.ptrs[&k],
                    len: OBJ_HEADER as u32,
                    rkey: v.rkey,
                }),
            ));
        }
        step
    }

    fn update_sends(&mut self, c: &FarmClient) -> FarmStep {
        if self.writes.is_empty() {
            self.phase = Phase::Done;
            return FarmStep {
                done: Some(FarmOutcome::Committed(self.values.clone())),
                ..Default::default()
            };
        }
        self.phase = Phase::Update;
        self.reqs.clear();
        self.outstanding = 0;
        let mut by_shard: HashMap<usize, Vec<(u64, Vec<u8>)>> = HashMap::new();
        for (k, v) in &self.writes {
            by_shard
                .entry(c.shard_of(*k))
                .or_default()
                .push((*k, v.clone()));
        }
        let mut step = FarmStep::default();
        for (shard, keys) in by_shard {
            let mut msg = Vec::new();
            msg.push(RPC_UPDATE);
            msg.extend_from_slice(&self.token.to_le_bytes());
            msg.push(keys.len() as u8);
            for (k, val) in &keys {
                msg.extend_from_slice(&c.index_of(*k).to_le_bytes());
                msg.extend_from_slice(val);
            }
            let idx = self.reqs.len() as u32;
            self.reqs.push(PendingReq {
                shard,
                keys: keys.iter().map(|(k, _)| *k).collect(),
            });
            self.outstanding += 1;
            step.send.push((shard, PH_UPD, idx, Request::Rpc(msg)));
        }
        step
    }

    fn unlock_sends(&mut self, c: &FarmClient, then: FarmOutcome) -> FarmStep {
        if self.locked_shards.is_empty() {
            self.phase = Phase::Done;
            return FarmStep {
                done: Some(then),
                ..Default::default()
            };
        }
        self.phase = Phase::Unlock;
        self.reqs.clear();
        self.outstanding = 0;
        let mut step = FarmStep::default();
        let shards = std::mem::take(&mut self.locked_shards);
        for shard in shards {
            let keys: Vec<u64> = self
                .writes
                .iter()
                .map(|(k, _)| *k)
                .filter(|&k| c.shard_of(k) == shard)
                .collect();
            let mut msg = Vec::new();
            msg.push(RPC_UNLOCK);
            msg.extend_from_slice(&self.token.to_le_bytes());
            msg.push(keys.len() as u8);
            for &k in &keys {
                msg.extend_from_slice(&c.index_of(k).to_le_bytes());
            }
            let idx = self.reqs.len() as u32;
            self.reqs.push(PendingReq { shard, keys });
            self.outstanding += 1;
            step.send.push((shard, PH_UNLOCK, idx, Request::Rpc(msg)));
        }
        // The final outcome is deferred until unlocks complete.
        self.pending_outcome = Some(then);
        step
    }

    /// Feeds one reply.
    pub fn on_reply(&mut self, c: &FarmClient, phase: u32, req_idx: u32, reply: Reply) -> FarmStep {
        let current = match self.phase {
            Phase::IndexReads => PH_IDX,
            Phase::ObjectReads => PH_OBJ,
            Phase::Lock => PH_LOCK,
            Phase::Validate => PH_VAL,
            Phase::Update => PH_UPD,
            Phase::Unlock => PH_UNLOCK,
            Phase::Done => return FarmStep::default(),
        };
        if phase != current {
            return FarmStep::default();
        }
        let req = self.reqs[req_idx as usize].clone();
        match self.phase {
            Phase::IndexReads => {
                match reply.into_verb() {
                    Ok(d) if d.len() == 8 => {
                        self.ptrs
                            .insert(req.keys[0], u64::from_le_bytes(d.try_into().expect("8B")));
                    }
                    _ => return self.fail("index read error"),
                }
                self.outstanding -= 1;
                if self.outstanding == 0 {
                    let keys = self.read_keys.clone();
                    return self.object_sends(c, &keys);
                }
                FarmStep::default()
            }
            Phase::ObjectReads => {
                let k = req.keys[0];
                match reply.into_verb() {
                    Ok(d) if d.len() >= OBJ_HEADER as usize + 8 => {
                        let version = u64::from_le_bytes(d[0..8].try_into().expect("8B"));
                        let lock = u64::from_le_bytes(d[8..16].try_into().expect("8B"));
                        if lock != 0 {
                            // In-progress writer: retry this object read.
                            self.retries += 1;
                            if self.retries > MAX_READ_RETRIES {
                                // Persistent contention: abort the whole
                                // attempt so the caller retries with
                                // backoff (a closed-loop client must not
                                // abandon the transaction).
                                self.phase = Phase::Done;
                                return FarmStep {
                                    done: Some(FarmOutcome::Aborted),
                                    ..Default::default()
                                };
                            }
                            let shard = c.shard_of(k);
                            let v = &c.views[shard];
                            return FarmStep {
                                send: vec![(
                                    shard,
                                    PH_OBJ,
                                    req_idx,
                                    Request::Verb(Verb::Read {
                                        addr: self.ptrs[&k],
                                        len: v.obj_len() as u32,
                                        rkey: v.rkey,
                                    }),
                                )],
                                ..Default::default()
                            };
                        }
                        self.versions.insert(k, version);
                        self.values.insert(k, d[OBJ_HEADER as usize + 8..].to_vec());
                    }
                    _ => return self.fail("object read error"),
                }
                self.outstanding -= 1;
                if self.outstanding == 0 {
                    if self.deferred {
                        return FarmStep {
                            awaiting_writes: true,
                            ..Default::default()
                        };
                    }
                    return self.lock_sends(c);
                }
                FarmStep::default()
            }
            Phase::Lock => {
                match reply.into_rpc().first() {
                    Some(0) => self.locked_shards.push(req.shard),
                    _ => self.lock_failed = true,
                }
                self.outstanding -= 1;
                if self.outstanding == 0 {
                    if self.lock_failed {
                        return self.unlock_sends(c, FarmOutcome::Aborted);
                    }
                    return self.validate_sends(c);
                }
                FarmStep::default()
            }
            Phase::Validate => {
                let k = req.keys[0];
                match reply.into_verb() {
                    Ok(d) if d.len() == OBJ_HEADER as usize => {
                        let version = u64::from_le_bytes(d[0..8].try_into().expect("8B"));
                        let lock = u64::from_le_bytes(d[8..16].try_into().expect("8B"));
                        let lock_ok = lock == 0 || lock == self.token;
                        if version != self.versions[&k] || !lock_ok {
                            self.valid = false;
                        }
                    }
                    _ => return self.fail("validation read error"),
                }
                self.outstanding -= 1;
                if self.outstanding == 0 {
                    if !self.valid {
                        return self.unlock_sends(c, FarmOutcome::Aborted);
                    }
                    return self.update_sends(c);
                }
                FarmStep::default()
            }
            Phase::Update => {
                if reply.into_rpc().first() != Some(&0) {
                    return self.fail("update rejected");
                }
                self.outstanding -= 1;
                if self.outstanding == 0 {
                    self.phase = Phase::Done;
                    return FarmStep {
                        done: Some(FarmOutcome::Committed(self.values.clone())),
                        ..Default::default()
                    };
                }
                FarmStep::default()
            }
            Phase::Unlock => {
                self.outstanding -= 1;
                if self.outstanding == 0 {
                    self.phase = Phase::Done;
                    return FarmStep {
                        done: Some(self.pending_outcome.take().unwrap_or(FarmOutcome::Aborted)),
                        ..Default::default()
                    };
                }
                FarmStep::default()
            }
            Phase::Done => FarmStep::default(),
        }
    }

    fn fail(&mut self, why: &'static str) -> FarmStep {
        self.phase = Phase::Done;
        FarmStep {
            done: Some(FarmOutcome::Failed(why)),
            ..Default::default()
        }
    }
}

/// Drives a transaction attempt to completion against local shards.
pub fn drive(
    cluster: &FarmCluster,
    client: &FarmClient,
    mut op: FarmOp,
    first: FarmStep,
) -> FarmOutcome {
    use prism_core::msg::execute_local;
    let mut queue = first.send;
    let mut outcome = first.done;
    while let Some((shard, phase, idx, req)) = queue.pop() {
        let reply = execute_local(cluster.shard(shard).server(), &req);
        let step = op.on_reply(client, phase, idx, reply);
        queue.extend(step.send);
        if outcome.is_none() {
            outcome = step.done;
        }
    }
    outcome.unwrap_or(FarmOutcome::Failed("drive finished without outcome"))
}

/// Read-modify-write with retries: one deferred transaction whose
/// writes are computed from the execution reads it then validates
/// (mirrors `prism_tx::run_rmw`).
pub fn run_rmw(
    cluster: &FarmCluster,
    client: &mut FarmClient,
    keys: &[u64],
    mk_value: impl Fn(u64, &HashMap<u64, Vec<u8>>) -> Vec<u8>,
    max_attempts: u32,
) -> (FarmOutcome, u32) {
    use prism_core::msg::execute_local;
    for attempt in 1..=max_attempts {
        let (mut op, step) = client.begin_rmw(keys.to_vec());
        let mut queue = step.send;
        let mut awaiting = step.awaiting_writes;
        let mut failed = None;
        while !awaiting {
            let Some((shard, phase, idx, req)) = queue.pop() else {
                return (FarmOutcome::Failed("execution stalled"), attempt);
            };
            let reply = execute_local(cluster.shard(shard).server(), &req);
            let s = op.on_reply(client, phase, idx, reply);
            if let Some(o) = s.done {
                failed = Some(o);
                break;
            }
            queue.extend(s.send);
            awaiting = s.awaiting_writes;
        }
        if let Some(o) = failed {
            match o {
                FarmOutcome::Aborted => continue,
                other => return (other, attempt),
            }
        }
        let writes: Vec<_> = keys
            .iter()
            .map(|&k| (k, mk_value(k, op.values())))
            .collect();
        let step = op.supply_writes(client, writes);
        match drive(cluster, client, op, step) {
            FarmOutcome::Committed(v) => return (FarmOutcome::Committed(v), attempt),
            FarmOutcome::Aborted => continue,
            f => return (f, attempt),
        }
    }
    (FarmOutcome::Aborted, max_attempts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(shards: usize, keys: u64) -> FarmCluster {
        FarmCluster::new(
            shards,
            &FarmConfig {
                keys_per_shard: keys,
                value_len: 32,
            },
        )
    }

    fn read_all(cl: &FarmCluster, c: &mut FarmClient, keys: &[u64]) -> HashMap<u64, Vec<u8>> {
        let (op, step) = c.begin(keys.to_vec(), vec![]);
        match drive(cl, c, op, step) {
            FarmOutcome::Committed(v) => v,
            o => panic!("read-only txn must commit: {o:?}"),
        }
    }

    fn write_one(cl: &FarmCluster, c: &mut FarmClient, k: u64, v: Vec<u8>) -> FarmOutcome {
        let (op, step) = c.begin(vec![k], vec![(k, v)]);
        drive(cl, c, op, step)
    }

    #[test]
    fn fresh_keys_read_zeroes() {
        let cl = cluster(1, 8);
        let mut c = cl.open_client();
        assert_eq!(read_all(&cl, &mut c, &[0, 5])[&5], vec![0u8; 32]);
    }

    #[test]
    fn write_then_read() {
        let cl = cluster(2, 8);
        let mut c = cl.open_client();
        assert!(matches!(
            write_one(&cl, &mut c, 3, vec![7u8; 32]),
            FarmOutcome::Committed(_)
        ));
        assert_eq!(read_all(&cl, &mut c, &[3])[&3], vec![7u8; 32]);
    }

    #[test]
    fn locks_released_after_commit() {
        let cl = cluster(1, 4);
        let mut c = cl.open_client();
        write_one(&cl, &mut c, 0, vec![1u8; 32]);
        let view = cl.shard(0).view().clone();
        let lock = cl
            .shard(0)
            .server()
            .arena()
            .read_u64(obj_of(&view, 0) + 8)
            .unwrap();
        assert_eq!(lock, 0, "lock must be free after commit");
    }

    #[test]
    fn stale_read_aborts() {
        let cl = cluster(1, 4);
        let mut c1 = cl.open_client();
        let mut c2 = cl.open_client();
        // c1 executes reads, pausing before lock.
        let (mut op, step) = c1.begin(vec![0], vec![(0, vec![9u8; 32])]);
        let mut queue = step.send;
        let mut lock_step = None;
        while let Some((shard, phase, idx, req)) = queue.pop() {
            let reply = prism_core::msg::execute_local(cl.shard(shard).server(), &req);
            let s = op.on_reply(&c1, phase, idx, reply);
            if s.send.iter().any(|(_, p, _, _)| *p == PH_LOCK) {
                lock_step = Some(s);
                break;
            }
            queue.extend(s.send);
        }
        let lock_step = lock_step.expect("reached lock phase");
        // c2 commits a conflicting write (bumping the version).
        assert!(matches!(
            write_one(&cl, &mut c2, 0, vec![5u8; 32]),
            FarmOutcome::Committed(_)
        ));
        // c1's validation must now fail.
        assert_eq!(drive(&cl, &c1, op, lock_step), FarmOutcome::Aborted);
        assert_eq!(read_all(&cl, &mut c2, &[0])[&0], vec![5u8; 32]);
    }

    #[test]
    fn lock_conflict_aborts_other_txn() {
        let cl = cluster(1, 4);
        let mut c1 = cl.open_client();
        let mut c2 = cl.open_client();
        // c1 locks key 0 (pause after lock phase).
        let (mut op, step) = c1.begin(vec![0], vec![(0, vec![1u8; 32])]);
        let mut queue = step.send;
        let mut val_step = None;
        while let Some((shard, phase, idx, req)) = queue.pop() {
            let reply = prism_core::msg::execute_local(cl.shard(shard).server(), &req);
            let s = op.on_reply(&c1, phase, idx, reply);
            if s.send.iter().any(|(_, p, _, _)| *p == PH_VAL) {
                val_step = Some(s);
                break;
            }
            queue.extend(s.send);
        }
        let val_step = val_step.expect("locked");
        // c2 now conflicts on the lock and aborts. (A blind write — a
        // reading transaction would already stall at the execution read,
        // which retries while the object is locked.)
        let (op2, step2) = c2.begin(vec![], vec![(0, vec![2u8; 32])]);
        assert_eq!(drive(&cl, &c2, op2, step2), FarmOutcome::Aborted);
        // c1 proceeds to commit.
        assert!(matches!(
            drive(&cl, &c1, op, val_step),
            FarmOutcome::Committed(_)
        ));
        let mut c3 = cl.open_client();
        assert_eq!(read_all(&cl, &mut c3, &[0])[&0], vec![1u8; 32]);
    }

    /// Drives a write transaction to just past its lock phase, leaving
    /// the key's lock word held, and returns the op plus the withheld
    /// validate step.
    fn park_after_lock(cl: &FarmCluster, c: &mut FarmClient, k: u64) -> (FarmOp, FarmStep) {
        let (mut op, step) = c.begin(vec![k], vec![(k, vec![0xCD; 32])]);
        let mut queue = step.send;
        while let Some((shard, phase, idx, req)) = queue.pop() {
            let reply = prism_core::msg::execute_local(cl.shard(shard).server(), &req);
            let s = op.on_reply(c, phase, idx, reply);
            if s.send.iter().any(|(_, p, _, _)| *p == PH_VAL) {
                return (op, s);
            }
            queue.extend(s.send);
        }
        panic!("transaction never locked");
    }

    #[test]
    fn sweep_releases_orphaned_lock_after_two_sightings() {
        let cl = cluster(1, 4);
        let mut c = cl.open_client();
        // A "crashed" client: locked key 2, never unlocks.
        let (_op, _val) = park_after_lock(&cl, &mut c, 2);
        assert_eq!(cl.held_locks(), 1);

        assert_eq!(cl.sweep_shard(0), 0, "first sighting only leases");
        assert_eq!(cl.held_locks(), 1);
        assert_eq!(cl.sweep_shard(0), 1, "second sighting releases");
        assert_eq!(cl.held_locks(), 0);
        assert_eq!(cl.sweep_shard(0), 0);
        assert_eq!(cl.lock_reclaims(), 1);

        // The key is writable again.
        let mut c2 = cl.open_client();
        assert!(matches!(
            write_one(&cl, &mut c2, 2, vec![4u8; 32]),
            FarmOutcome::Committed(_)
        ));
        assert_eq!(read_all(&cl, &mut c2, &[2])[&2], vec![4u8; 32]);
    }

    #[test]
    fn sweep_spares_live_lock_holder_for_one_interval() {
        let cl = cluster(1, 4);
        let mut c = cl.open_client();
        let (op, val) = park_after_lock(&cl, &mut c, 1);
        // One sweep lands mid-commit: lease only, lock stays held.
        assert_eq!(cl.sweep_shard(0), 0);
        assert_eq!(cl.held_locks(), 1);
        // The slow-but-live client finishes and unlocks on its own.
        assert!(matches!(drive(&cl, &c, op, val), FarmOutcome::Committed(_)));
        assert_eq!(cl.held_locks(), 0);
        assert_eq!(cl.sweep_shard(0), 0, "lease entry just expires");
        assert_eq!(cl.lock_reclaims(), 0);
        let mut c2 = cl.open_client();
        assert_eq!(read_all(&cl, &mut c2, &[1])[&1], vec![0xCD; 32]);
    }

    #[test]
    fn concurrent_counter_is_serializable() {
        use std::sync::Arc;
        let cl = Arc::new(cluster(2, 8));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let cl = Arc::clone(&cl);
                std::thread::spawn(move || {
                    let mut c = cl.open_client();
                    let mut committed = 0;
                    while committed < 25 {
                        let (o, _) = run_rmw(
                            &cl,
                            &mut c,
                            &[3],
                            |_, vals| {
                                let mut v = vals[&3].clone();
                                let n = u32::from_le_bytes(v[0..4].try_into().unwrap());
                                v[0..4].copy_from_slice(&(n + 1).to_le_bytes());
                                v
                            },
                            10_000,
                        );
                        if matches!(o, FarmOutcome::Committed(_)) {
                            committed += 1;
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut c = cl.open_client();
        let v = &read_all(&cl, &mut c, &[3])[&3];
        assert_eq!(u32::from_le_bytes(v[0..4].try_into().unwrap()), 100);
    }

    #[test]
    fn multi_shard_transaction() {
        let cl = cluster(3, 8);
        let mut c = cl.open_client();
        let (op, step) = c.begin(
            vec![0, 1, 2],
            vec![(0, vec![1; 32]), (1, vec![2; 32]), (2, vec![3; 32])],
        );
        assert!(matches!(
            drive(&cl, &c, op, step),
            FarmOutcome::Committed(_)
        ));
        let vals = read_all(&cl, &mut c, &[0, 1, 2]);
        assert_eq!(vals[&1], vec![2; 32]);
    }
}
