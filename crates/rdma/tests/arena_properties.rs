//! Property tests: the arena behaves exactly like a flat byte array
//! under any sequence of reads, writes, and atomics, and the region
//! table never grants access outside a registration. Runs on the
//! in-repo `prism-testkit` harness; failures print a `PRISM_TEST_SEED`
//! for exact replay.

use prism_rdma::arena::MemoryArena;
use prism_rdma::region::{Access, AccessFlags, RegionTable};
use prism_rdma::RdmaError;
use prism_testkit::{for_all, gens, Config, Gen};

const LEN: u64 = 4096;

#[derive(Debug, Clone)]
enum Op {
    Write { off: u64, data: Vec<u8> },
    Read { off: u64, len: u64 },
    Atomic { off: u64, len: u64, xor: u8 },
}

fn arb_op() -> Gen<Op> {
    gens::one_of(vec![
        gens::t2(gens::range_u64(0..LEN), gens::vec(gens::u8s(), 1..128))
            .map(|(off, data)| Op::Write { off, data }),
        gens::t2(gens::range_u64(0..LEN), gens::range_u64(1..256))
            .map(|(off, len)| Op::Read { off, len }),
        gens::t3(gens::range_u64(0..LEN), gens::range_u64(1..33), gens::u8s()).map(
            |(off, len, xor)| Op::Atomic {
                off: off & !7, // atomics naturally aligned in app usage
                len,
                xor,
            },
        ),
    ])
}

/// Sequential arena operations match a plain Vec<u8> model exactly,
/// including out-of-bounds rejection.
#[test]
fn arena_matches_flat_array_model() {
    let gen = gens::vec(arb_op(), 1..64);
    for_all(
        "arena_matches_flat_array_model",
        &Config::with_cases(128),
        &gen,
        |ops| {
            let arena = MemoryArena::new(LEN);
            let mut model = vec![0u8; LEN as usize];
            let base = MemoryArena::BASE;
            for op in ops.clone() {
                match op {
                    Op::Write { off, data } => {
                        let r = arena.write(base + off, &data);
                        if off + data.len() as u64 <= LEN {
                            assert!(r.is_ok());
                            model[off as usize..off as usize + data.len()].copy_from_slice(&data);
                        } else {
                            let oob = matches!(r, Err(RdmaError::OutOfBounds { .. }));
                            assert!(oob);
                        }
                    }
                    Op::Read { off, len } => {
                        let r = arena.read(base + off, len);
                        if off + len <= LEN {
                            assert_eq!(
                                r.expect("in bounds"),
                                &model[off as usize..(off + len) as usize]
                            );
                        } else {
                            assert!(r.is_err());
                        }
                    }
                    Op::Atomic { off, len, xor } => {
                        let r = arena.atomic(base + off, len, |bytes| {
                            bytes.iter_mut().for_each(|b| *b ^= xor)
                        });
                        if off + len <= LEN {
                            assert!(r.is_ok());
                            model[off as usize..(off + len) as usize]
                                .iter_mut()
                                .for_each(|b| *b ^= xor);
                        } else {
                            assert!(r.is_err());
                        }
                    }
                }
            }
            // Final state identical.
            assert_eq!(arena.read(base, LEN).expect("whole arena"), model);
        },
    );
}

/// Region validation grants exactly the registered ranges and rights.
#[test]
fn region_validation_is_exact() {
    let gen = gens::t2(
        gens::vec(
            gens::t5(
                gens::range_u64(0..LEN),
                gens::range_u64(1..512),
                gens::bools(),
                gens::bools(),
                gens::bools(),
            ),
            1..8,
        ),
        gens::vec(
            gens::t4(
                gens::range_usize(0..8),
                gens::range_u64(0..LEN),
                gens::range_u64(1..64),
                gens::range_u64(0..3).map(|v| v as u8),
            ),
            1..64,
        ),
    );
    for_all(
        "region_validation_is_exact",
        &Config::with_cases(128),
        &gen,
        |(regions, probes)| {
            let table = RegionTable::new();
            let mut keys = Vec::new();
            for &(addr, len, read, write, atomic) in regions {
                keys.push(table.register(
                    addr,
                    len,
                    AccessFlags {
                        read,
                        write,
                        atomic,
                    },
                ));
            }
            for &(ri, addr, len, access) in probes {
                let ri = ri % regions.len();
                let key = keys[ri];
                let (raddr, rlen, read, write, atomic) = regions[ri];
                let access = match access {
                    0 => Access::Read,
                    1 => Access::Write,
                    _ => Access::Atomic,
                };
                let inside = addr >= raddr && addr + len <= raddr + rlen;
                let allowed = match access {
                    Access::Read => read,
                    Access::Write => write,
                    Access::Atomic => atomic,
                };
                let r = table.validate(key, addr, len, access);
                assert_eq!(r.is_ok(), inside && allowed, "addr {} len {}", addr, len);
            }
        },
    );
}
