//! Property tests: the arena behaves exactly like a flat byte array
//! under any sequence of reads, writes, and atomics, and the region
//! table never grants access outside a registration.

use proptest::prelude::*;

use prism_rdma::arena::MemoryArena;
use prism_rdma::region::{Access, AccessFlags, RegionTable};
use prism_rdma::RdmaError;

const LEN: u64 = 4096;

#[derive(Debug, Clone)]
enum Op {
    Write { off: u64, data: Vec<u8> },
    Read { off: u64, len: u64 },
    Atomic { off: u64, len: u64, xor: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..LEN, proptest::collection::vec(any::<u8>(), 1..128))
            .prop_map(|(off, data)| { Op::Write { off, data } }),
        (0..LEN, 1..256u64).prop_map(|(off, len)| Op::Read { off, len }),
        (0..LEN, 1..33u64, any::<u8>()).prop_map(|(off, len, xor)| Op::Atomic {
            off: off & !7, // atomics naturally aligned in app usage
            len,
            xor
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sequential arena operations match a plain Vec<u8> model exactly,
    /// including out-of-bounds rejection.
    #[test]
    fn arena_matches_flat_array_model(ops in proptest::collection::vec(arb_op(), 1..64)) {
        let arena = MemoryArena::new(LEN);
        let mut model = vec![0u8; LEN as usize];
        let base = MemoryArena::BASE;
        for op in ops {
            match op {
                Op::Write { off, data } => {
                    let r = arena.write(base + off, &data);
                    if off + data.len() as u64 <= LEN {
                        prop_assert!(r.is_ok());
                        model[off as usize..off as usize + data.len()].copy_from_slice(&data);
                    } else {
                        let oob = matches!(r, Err(RdmaError::OutOfBounds { .. }));
                        prop_assert!(oob);
                    }
                }
                Op::Read { off, len } => {
                    let r = arena.read(base + off, len);
                    if off + len <= LEN {
                        prop_assert_eq!(
                            r.expect("in bounds"),
                            &model[off as usize..(off + len) as usize]
                        );
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                Op::Atomic { off, len, xor } => {
                    let r = arena.atomic(base + off, len, |bytes| {
                        bytes.iter_mut().for_each(|b| *b ^= xor)
                    });
                    if off + len <= LEN {
                        prop_assert!(r.is_ok());
                        model[off as usize..(off + len) as usize]
                            .iter_mut()
                            .for_each(|b| *b ^= xor);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
            }
        }
        // Final state identical.
        prop_assert_eq!(arena.read(base, LEN).expect("whole arena"), model);
    }

    /// Region validation grants exactly the registered ranges and rights.
    #[test]
    fn region_validation_is_exact(
        regions in proptest::collection::vec((0..LEN, 1..512u64, any::<bool>(), any::<bool>(), any::<bool>()), 1..8),
        probes in proptest::collection::vec((0..8usize, 0..LEN, 1..64u64, 0..3u8), 1..64),
    ) {
        let table = RegionTable::new();
        let mut keys = Vec::new();
        for &(addr, len, read, write, atomic) in &regions {
            keys.push(table.register(
                addr,
                len,
                AccessFlags { read, write, atomic },
            ));
        }
        for (ri, addr, len, access) in probes {
            let ri = ri % regions.len();
            let key = keys[ri];
            let (raddr, rlen, read, write, atomic) = regions[ri];
            let access = match access {
                0 => Access::Read,
                1 => Access::Write,
                _ => Access::Atomic,
            };
            let inside = addr >= raddr && addr + len <= raddr + rlen;
            let allowed = match access {
                Access::Read => read,
                Access::Write => write,
                Access::Atomic => atomic,
            };
            let r = table.validate(key, addr, len, access);
            prop_assert_eq!(r.is_ok(), inside && allowed, "addr {} len {}", addr, len);
        }
    }
}
