//! Multi-threaded seqlock stress: concurrent single-line WRITEs and
//! READs hammering one cache line must never expose a torn value (the
//! single-copy atomicity guarantee of §6.1 that Pilaf's CRC checks and
//! PRISM-KV's pointer reads both lean on).
//!
//! Seeded through `prism-testkit` so a failing interleaving's parameters
//! replay exactly via `PRISM_TEST_SEED`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use prism_rdma::arena::{MemoryArena, LINE};

const BASE: u64 = MemoryArena::BASE;
use prism_testkit::{for_all, gens, Config};

/// Fills a line-sized pattern from a single seed byte: every byte of
/// one write is derived from the same tag, so any mix of two writes is
/// detectable.
fn pattern(tag: u8, len: usize) -> Vec<u8> {
    (0..len).map(|i| tag ^ (i as u8).wrapping_mul(31)).collect()
}

#[test]
fn concurrent_single_line_writes_never_tear() {
    // Each case picks the contended offset/length inside one line and
    // the writer count; threads then hammer that span.
    let cases = gens::t3(
        gens::range_usize(0..LINE),
        gens::range_usize(1..LINE + 1),
        gens::range_usize(2..5),
    )
    .filter(|(off, len, _)| off + len <= LINE)
    .map(|(off, len, writers)| (off, len.max(2), writers));

    for_all(
        "concurrent_single_line_writes_never_tear",
        &Config::with_cases(12),
        &cases,
        |&(off, len, writers)| {
            let arena = Arc::new(MemoryArena::new(4 * LINE as u64));
            // Word-align nothing: any offset inside the line is legal,
            // the guarantee is per cache line, not per word.
            let addr = BASE + LINE as u64 + off as u64;
            arena.write(addr, &pattern(0, len)).unwrap();

            let stop = Arc::new(AtomicBool::new(false));
            let handles: Vec<_> = (0..writers)
                .map(|w| {
                    let arena = Arc::clone(&arena);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let mut tag = w as u8;
                        while !stop.load(Ordering::Relaxed) {
                            arena.write(addr, &pattern(tag, len)).unwrap();
                            tag = tag.wrapping_add(writers as u8);
                        }
                    })
                })
                .collect();

            let mut buf = vec![0u8; len];
            for _ in 0..4_000 {
                arena.read_into(addr, &mut buf).unwrap();
                // Recover the tag from byte 0 and check every byte is
                // from the same write — a torn read mixes two patterns.
                let tag = buf[0];
                let expect = pattern(tag, len);
                assert_eq!(
                    buf, expect,
                    "torn single-line read at off={off} len={len}: {buf:?}"
                );
            }
            stop.store(true, Ordering::Relaxed);
            for h in handles {
                h.join().unwrap();
            }
        },
    );
}

#[test]
fn concurrent_atomics_and_reads_on_one_line_stay_consistent() {
    // FETCH-AND-ADD from several threads onto one counter while readers
    // poll it: the final sum is exact and no intermediate read tears.
    let cases = gens::t2(gens::range_usize(2..5), gens::range_u64(1..1_000));
    for_all(
        "concurrent_atomics_and_reads_on_one_line_stay_consistent",
        &Config::with_cases(8),
        &cases,
        |&(threads, per_thread)| {
            let arena = Arc::new(MemoryArena::new(2 * LINE as u64));
            let addr = BASE + 8;
            arena.write_u64(addr, 0).unwrap();
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let arena = Arc::clone(&arena);
                    std::thread::spawn(move || {
                        for _ in 0..per_thread {
                            arena
                                .atomic(addr, 8, |cur| {
                                    let v = u64::from_le_bytes(cur[..8].try_into().unwrap());
                                    cur[..8].copy_from_slice(&(v + 1).to_le_bytes());
                                })
                                .unwrap();
                        }
                    })
                })
                .collect();
            // Readers overlap the increments; monotonicity of the
            // counter doubles as a no-tear check (a torn 8-byte read
            // would jump wildly).
            let mut last = 0u64;
            for _ in 0..2_000 {
                let v = arena.read_u64(addr).unwrap();
                assert!(v >= last, "counter went backwards: {last} -> {v}");
                assert!(v <= threads as u64 * per_thread, "counter overshot: {v}");
                last = v;
            }
            for h in handles {
                h.join().unwrap();
            }
            let total = arena.read_u64(addr).unwrap();
            assert_eq!(total, threads as u64 * per_thread);
        },
    );
}
