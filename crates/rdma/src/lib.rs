//! Simulated RDMA substrate for the PRISM reproduction.
//!
//! The PRISM paper runs over Mellanox ConnectX-5 RDMA NICs. This crate is
//! the software substitute (see `DESIGN.md` §2): an in-process "host
//! memory" that behaves like NIC-accessed registered memory —
//! byte-addressable, protected by rkeys, with classic one-sided verbs
//! (READ, WRITE, 64-bit CAS, FETCH-AND-ADD) whose atomicity matches the
//! RDMA specification: atomics are atomic with respect to other NIC
//! operations, and plain READ/WRITE are only single-copy-atomic within a
//! cache line. Everything the protocols depend on — pointer-size reads
//! never tear, large transfers may observe concurrent writes at cache-line
//! granularity, rkey checks reject stray accesses — is implemented exactly.
//!
//! * [`arena`] — the byte-addressable memory with per-line seqlocks.
//! * [`region`] — memory registration and rkey validation.
//! * [`verbs`] — the classic one-sided verb set ([`verbs::RdmaNic`]).
//! * [`bufqueue`] — registered buffer queues (the paper's free lists,
//!   "represented as a RDMA queue pair", §3.2).
//! * [`error`] — NACK-style error codes.
//! * [`sync`] — std-only locks and the bounded MPMC channel shared by
//!   every crate in the workspace (no registry dependencies).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod bufqueue;
pub mod error;
pub mod region;
pub mod sync;
pub mod verbs;

pub use arena::MemoryArena;
pub use bufqueue::BufferQueue;
pub use error::RdmaError;
pub use region::{AccessFlags, RegionTable, Rkey};
pub use verbs::{Completion, RdmaNic, WorkRequest};
