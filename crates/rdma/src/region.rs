//! Memory registration and rkey-based protection.
//!
//! RDMA only allows remote access to memory the host has registered; each
//! registration yields an *rkey* the client must present. PRISM's indirect
//! operations reuse this mechanism (§3.1): an operation is rejected "if
//! either the target address or the location pointed to by the target
//! address is in a memory region with a different rkey (or that has not
//! been registered at all)".
//!
//! # Fast-path design
//!
//! Every remote verb and every PRISM primitive validates an rkey, so the
//! lookup sits on the data plane's hottest path. The original table was a
//! `RwLock<HashMap>` — a lock acquisition plus a hash per operation. It
//! is now fully **lock-free on the read path**:
//!
//! * rkeys are dense (`next_key` is an [`AtomicU32`] counter, keys are
//!   never reused), so a key maps directly to a slot index — no hashing;
//! * slots live in fixed-size immutable chunks published exactly once
//!   through [`OnceLock`] (an atomic pointer swap); readers index into
//!   whatever chunks are already published and never take a lock;
//! * a slot's `addr`/`len` are written before its state word is
//!   release-stored to LIVE, and validation acquire-loads the state word
//!   first, so a reader that observes LIVE also observes the extent.
//!   [`RegionTable::deregister`] only clears the state word — slots are
//!   write-once, which is what makes the lock-free protocol this simple.
//!
//! Registration is a CPU-side control-plane action (§3.2) and may be as
//! slow as it likes; it pays one `fetch_add` plus (rarely) one chunk
//! allocation.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::error::RdmaError;

/// A remote key naming one registered memory region.
///
/// The low 24 bits are a dense slot index; the top 8 bits carry the
/// server's **incarnation** at the time the key was issued (zero until
/// the first amnesia restart, so plain `Rkey(n)` literals keep working).
/// After an amnesia crash the table's incarnation is bumped and every
/// pre-crash key is fenced: presenting one yields
/// [`RdmaError::StaleIncarnation`] instead of silently reading
/// reinitialized memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rkey(pub u32);

/// Bits of an rkey that index the slot table; the rest is incarnation.
const RKEY_INDEX_BITS: u32 = 24;
const RKEY_INDEX_MASK: u32 = (1 << RKEY_INDEX_BITS) - 1;

impl Rkey {
    /// The dense slot-index part of the key.
    pub fn index(self) -> u32 {
        self.0 & RKEY_INDEX_MASK
    }

    /// The incarnation stamp the key was issued under (low 8 bits of the
    /// table incarnation at issue time).
    pub fn incarnation(self) -> u64 {
        (self.0 >> RKEY_INDEX_BITS) as u64
    }

    /// The same registration re-stamped for incarnation `inc` — what a
    /// client receives when it re-handshakes after a server's amnesia
    /// restart.
    pub fn restamped(self, inc: u64) -> Rkey {
        Rkey(self.index() | (((inc & 0xFF) as u32) << RKEY_INDEX_BITS))
    }
}

/// Access rights attached to a registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessFlags {
    /// Remote READ allowed.
    pub read: bool,
    /// Remote WRITE allowed.
    pub write: bool,
    /// Remote atomics (CAS / FETCH-AND-ADD / enhanced CAS) allowed.
    pub atomic: bool,
}

impl AccessFlags {
    /// Read-only registration.
    pub const READ_ONLY: AccessFlags = AccessFlags {
        read: true,
        write: false,
        atomic: false,
    };

    /// Full remote access: read, write, atomics.
    pub const FULL: AccessFlags = AccessFlags {
        read: true,
        write: true,
        atomic: true,
    };
}

/// The kind of access an operation needs, checked against [`AccessFlags`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Remote read.
    Read,
    /// Remote write.
    Write,
    /// Remote atomic read-modify-write.
    Atomic,
}

/// Slot state-word bits.
const STATE_LIVE: u32 = 1 << 3;
const STATE_READ: u32 = 1 << 0;
const STATE_WRITE: u32 = 1 << 1;
const STATE_ATOMIC: u32 = 1 << 2;

/// One registration slot. Write-once: `addr`/`len` are stored before the
/// state word goes LIVE and never change afterwards; deregistration only
/// clears the state word.
#[derive(Debug, Default)]
struct Slot {
    state: AtomicU32,
    addr: AtomicU64,
    len: AtomicU64,
    /// Incarnation the slot was last (re)stamped under. Unlike
    /// `addr`/`len` this *is* rewritten after publication — by
    /// [`RegionTable::bump_incarnation`], which runs on the recovery
    /// control plane while the server is not serving.
    inc: AtomicU64,
}

/// Registrations per chunk; chunks are allocated lazily as keys grow.
const CHUNK: usize = 1024;
/// Maximum chunks, bounding the key space at `CHUNK * NCHUNKS`.
const NCHUNKS: usize = 1024;

/// The host's table of registered regions.
///
/// Registration is a CPU-side control-plane action (§3.2: "memory
/// registrations ... are done by the server CPU"); validation happens on
/// the data plane for every remote operation and is lock-free (see the
/// module docs).
#[derive(Debug)]
pub struct RegionTable {
    chunks: Box<[OnceLock<Box<[Slot]>>]>,
    next_key: AtomicU32,
    /// Bumped once per amnesia restart; new and restamped keys carry its
    /// low 8 bits, and validation fences keys whose stamp disagrees.
    incarnation: AtomicU64,
}

impl Default for RegionTable {
    fn default() -> Self {
        Self::new()
    }
}

impl RegionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RegionTable {
            chunks: (0..NCHUNKS).map(|_| OnceLock::new()).collect(),
            next_key: AtomicU32::new(1),
            incarnation: AtomicU64::new(0),
        }
    }

    /// The slot for `key`, if that key has ever been registered. Only the
    /// index bits select the slot; the incarnation stamp is checked
    /// separately by `validate`.
    #[inline]
    fn slot(&self, key: Rkey) -> Option<&Slot> {
        let idx = (key.index() as usize).checked_sub(1)?;
        let chunk = self.chunks.get(idx / CHUNK)?.get()?;
        Some(&chunk[idx % CHUNK])
    }

    /// Registers `[addr, addr+len)` with the given rights and returns the
    /// new region's rkey.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or the rkey space (`CHUNK * NCHUNKS` keys)
    /// is exhausted.
    pub fn register(&self, addr: u64, len: u64, flags: AccessFlags) -> Rkey {
        assert!(len > 0, "RegionTable::register: empty region");
        let key = self.next_key.fetch_add(1, Ordering::Relaxed);
        let idx = key as usize - 1;
        assert!(idx < CHUNK * NCHUNKS, "rkey space exhausted");
        debug_assert!(CHUNK * NCHUNKS <= RKEY_INDEX_MASK as usize);
        let chunk =
            self.chunks[idx / CHUNK].get_or_init(|| (0..CHUNK).map(|_| Slot::default()).collect());
        let slot = &chunk[idx % CHUNK];
        let inc = self.incarnation.load(Ordering::Relaxed);
        slot.addr.store(addr, Ordering::Relaxed);
        slot.len.store(len, Ordering::Relaxed);
        slot.inc.store(inc, Ordering::Relaxed);
        let mut state = STATE_LIVE;
        if flags.read {
            state |= STATE_READ;
        }
        if flags.write {
            state |= STATE_WRITE;
        }
        if flags.atomic {
            state |= STATE_ATOMIC;
        }
        // Publish: readers that acquire-load LIVE observe addr/len.
        slot.state.store(state, Ordering::Release);
        Rkey(key).restamped(inc)
    }

    /// The server's current incarnation (0 until the first amnesia
    /// restart).
    pub fn current_incarnation(&self) -> u64 {
        self.incarnation.load(Ordering::Relaxed)
    }

    /// Advances the incarnation after an amnesia restart and restamps
    /// every live registration, fencing all previously issued rkeys.
    /// Control-plane only: runs while the recovering server is not
    /// serving, so the non-atomic walk cannot race the data plane.
    /// Returns the new incarnation.
    pub fn bump_incarnation(&self) -> u64 {
        let inc = self.incarnation.fetch_add(1, Ordering::Relaxed) + 1;
        for chunk in self.chunks.iter().filter_map(|c| c.get()) {
            for slot in chunk.iter() {
                if slot.state.load(Ordering::Acquire) & STATE_LIVE != 0 {
                    slot.inc.store(inc, Ordering::Relaxed);
                }
            }
        }
        inc
    }

    /// Removes a registration. Returns whether the key existed.
    pub fn deregister(&self, key: Rkey) -> bool {
        match self.slot(key) {
            Some(slot) => slot.state.swap(0, Ordering::Release) & STATE_LIVE != 0,
            None => false,
        }
    }

    /// Checks that `[addr, addr+len)` lies inside the region named by
    /// `key` and that the region grants `access`. Lock-free.
    pub fn validate(
        &self,
        key: Rkey,
        addr: u64,
        len: u64,
        access: Access,
    ) -> Result<(), RdmaError> {
        let slot = self.slot(key).ok_or(RdmaError::InvalidRkey(key.0))?;
        let state = slot.state.load(Ordering::Acquire);
        if state & STATE_LIVE == 0 {
            return Err(RdmaError::InvalidRkey(key.0));
        }
        let slot_inc = slot.inc.load(Ordering::Relaxed);
        if key.incarnation() != slot_inc & 0xFF {
            return Err(RdmaError::StaleIncarnation {
                seen: key.incarnation(),
                current: self.incarnation.load(Ordering::Relaxed),
            });
        }
        let raddr = slot.addr.load(Ordering::Relaxed);
        let rlen = slot.len.load(Ordering::Relaxed);
        let inside = addr >= raddr && addr.saturating_add(len) <= raddr + rlen;
        let needed = match access {
            Access::Read => STATE_READ,
            Access::Write => STATE_WRITE,
            Access::Atomic => STATE_ATOMIC,
        };
        if !inside || state & needed == 0 {
            return Err(RdmaError::AccessDenied {
                rkey: key.0,
                addr,
                len,
            });
        }
        Ok(())
    }

    /// The `(addr, len)` extent of a registration, if it exists. Used by
    /// servers to enumerate their own regions.
    pub fn extent(&self, key: Rkey) -> Option<(u64, u64)> {
        let slot = self.slot(key)?;
        if slot.state.load(Ordering::Acquire) & STATE_LIVE == 0 {
            return None;
        }
        Some((
            slot.addr.load(Ordering::Relaxed),
            slot.len.load(Ordering::Relaxed),
        ))
    }

    /// Number of live registrations. Control-plane only: walks every
    /// allocated chunk.
    pub fn count(&self) -> usize {
        self.chunks
            .iter()
            .filter_map(|c| c.get())
            .flat_map(|chunk| chunk.iter())
            .filter(|s| s.state.load(Ordering::Acquire) & STATE_LIVE != 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_validate_deregister() {
        let t = RegionTable::new();
        let k = t.register(0x1000, 0x100, AccessFlags::FULL);
        assert!(t.validate(k, 0x1000, 0x100, Access::Read).is_ok());
        assert!(t.validate(k, 0x10ff, 1, Access::Write).is_ok());
        assert!(t.deregister(k));
        assert_eq!(
            t.validate(k, 0x1000, 1, Access::Read).unwrap_err(),
            RdmaError::InvalidRkey(k.0)
        );
        assert!(!t.deregister(k));
    }

    #[test]
    fn distinct_keys_per_registration() {
        let t = RegionTable::new();
        let a = t.register(0x1000, 8, AccessFlags::FULL);
        let b = t.register(0x1000, 8, AccessFlags::FULL);
        assert_ne!(a, b);
        assert_eq!(t.count(), 2);
    }

    #[test]
    fn out_of_range_denied() {
        let t = RegionTable::new();
        let k = t.register(0x1000, 0x100, AccessFlags::FULL);
        for (addr, len) in [(0xfffu64, 2u64), (0x10ff, 2), (0x2000, 1), (u64::MAX, 8)] {
            assert!(matches!(
                t.validate(k, addr, len, Access::Read),
                Err(RdmaError::AccessDenied { .. })
            ));
        }
    }

    #[test]
    fn access_rights_enforced() {
        let t = RegionTable::new();
        let k = t.register(0x1000, 64, AccessFlags::READ_ONLY);
        assert!(t.validate(k, 0x1000, 8, Access::Read).is_ok());
        assert!(t.validate(k, 0x1000, 8, Access::Write).is_err());
        assert!(t.validate(k, 0x1000, 8, Access::Atomic).is_err());
    }

    #[test]
    fn wrong_key_does_not_grant_neighbor_region() {
        let t = RegionTable::new();
        let a = t.register(0x1000, 64, AccessFlags::FULL);
        let _b = t.register(0x2000, 64, AccessFlags::FULL);
        // Key `a` must not reach region `b` even though some key covers it.
        assert!(t.validate(a, 0x2000, 8, Access::Read).is_err());
    }

    #[test]
    fn extent_reports_registration() {
        let t = RegionTable::new();
        let k = t.register(0x5000, 128, AccessFlags::FULL);
        assert_eq!(t.extent(k), Some((0x5000, 128)));
        assert_eq!(t.extent(Rkey(999)), None);
    }

    #[test]
    fn unregistered_and_stale_keys_rejected() {
        let t = RegionTable::new();
        assert_eq!(
            t.validate(Rkey(0), 0, 1, Access::Read).unwrap_err(),
            RdmaError::InvalidRkey(0)
        );
        assert_eq!(
            t.validate(Rkey(7), 0, 1, Access::Read).unwrap_err(),
            RdmaError::InvalidRkey(7)
        );
        let k = t.register(0x1000, 64, AccessFlags::FULL);
        t.deregister(k);
        assert_eq!(t.extent(k), None);
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn registrations_spill_across_chunks() {
        let t = RegionTable::new();
        let keys: Vec<_> = (0..(CHUNK as u64 + 5))
            .map(|i| t.register(0x1000 + i * 64, 64, AccessFlags::FULL))
            .collect();
        for (i, k) in keys.iter().enumerate() {
            assert!(t
                .validate(*k, 0x1000 + i as u64 * 64, 64, Access::Read)
                .is_ok());
        }
        assert_eq!(t.count(), CHUNK + 5);
    }

    #[test]
    fn bump_incarnation_fences_old_keys() {
        let t = RegionTable::new();
        let k = t.register(0x1000, 64, AccessFlags::FULL);
        assert_eq!(k.incarnation(), 0);
        assert_eq!(t.current_incarnation(), 0);
        assert_eq!(t.bump_incarnation(), 1);
        // Pre-crash key: deterministically fenced, not garbage.
        assert_eq!(
            t.validate(k, 0x1000, 8, Access::Read).unwrap_err(),
            RdmaError::StaleIncarnation {
                seen: 0,
                current: 1
            }
        );
        // Re-handshaked key for the same slot works.
        let k2 = k.restamped(t.current_incarnation());
        assert_eq!(k2.index(), k.index());
        assert_eq!(k2.incarnation(), 1);
        assert!(t.validate(k2, 0x1000, 8, Access::Read).is_ok());
        // New registrations are born into the new incarnation.
        let fresh = t.register(0x2000, 64, AccessFlags::FULL);
        assert_eq!(fresh.incarnation(), 1);
        assert!(t.validate(fresh, 0x2000, 8, Access::Write).is_ok());
        // Counting and extents still see the live slots.
        assert_eq!(t.count(), 2);
        assert_eq!(t.extent(k2), Some((0x1000, 64)));
    }

    #[test]
    fn restamp_round_trips_index() {
        let k = Rkey(42);
        for inc in [0u64, 1, 7, 255, 256, 1000] {
            let s = k.restamped(inc);
            assert_eq!(s.index(), 42);
            assert_eq!(s.incarnation(), inc & 0xFF);
        }
    }

    #[test]
    fn concurrent_register_and_validate() {
        use std::sync::Arc;
        let t = Arc::new(RegionTable::new());
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for j in 0..200u64 {
                        let addr = 0x10_0000 * (i + 1) as u64 + j * 64;
                        let k = t.register(addr, 64, AccessFlags::FULL);
                        assert!(t.validate(k, addr, 64, Access::Write).is_ok());
                        assert!(t.validate(k, addr + 64, 1, Access::Read).is_err());
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.count(), 8 * 200);
    }
}
