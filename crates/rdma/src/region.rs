//! Memory registration and rkey-based protection.
//!
//! RDMA only allows remote access to memory the host has registered; each
//! registration yields an *rkey* the client must present. PRISM's indirect
//! operations reuse this mechanism (§3.1): an operation is rejected "if
//! either the target address or the location pointed to by the target
//! address is in a memory region with a different rkey (or that has not
//! been registered at all)".

use std::collections::HashMap;

use crate::error::RdmaError;
use crate::sync::RwLock;

/// A remote key naming one registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rkey(pub u32);

/// Access rights attached to a registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessFlags {
    /// Remote READ allowed.
    pub read: bool,
    /// Remote WRITE allowed.
    pub write: bool,
    /// Remote atomics (CAS / FETCH-AND-ADD / enhanced CAS) allowed.
    pub atomic: bool,
}

impl AccessFlags {
    /// Read-only registration.
    pub const READ_ONLY: AccessFlags = AccessFlags {
        read: true,
        write: false,
        atomic: false,
    };

    /// Full remote access: read, write, atomics.
    pub const FULL: AccessFlags = AccessFlags {
        read: true,
        write: true,
        atomic: true,
    };
}

/// The kind of access an operation needs, checked against [`AccessFlags`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Remote read.
    Read,
    /// Remote write.
    Write,
    /// Remote atomic read-modify-write.
    Atomic,
}

#[derive(Debug, Clone)]
struct Region {
    addr: u64,
    len: u64,
    flags: AccessFlags,
}

/// The host's table of registered regions.
///
/// Registration is a CPU-side control-plane action (§3.2: "memory
/// registrations ... are done by the server CPU"); validation happens on
/// the data plane for every remote operation.
#[derive(Debug, Default)]
pub struct RegionTable {
    regions: RwLock<HashMap<Rkey, Region>>,
    next_key: RwLock<u32>,
}

impl RegionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RegionTable {
            regions: RwLock::new(HashMap::new()),
            next_key: RwLock::new(1),
        }
    }

    /// Registers `[addr, addr+len)` with the given rights and returns the
    /// new region's rkey.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn register(&self, addr: u64, len: u64, flags: AccessFlags) -> Rkey {
        assert!(len > 0, "RegionTable::register: empty region");
        let mut next = self.next_key.write();
        let key = Rkey(*next);
        *next = next.checked_add(1).expect("rkey space exhausted");
        self.regions
            .write()
            .insert(key, Region { addr, len, flags });
        key
    }

    /// Removes a registration. Returns whether the key existed.
    pub fn deregister(&self, key: Rkey) -> bool {
        self.regions.write().remove(&key).is_some()
    }

    /// Checks that `[addr, addr+len)` lies inside the region named by
    /// `key` and that the region grants `access`.
    pub fn validate(
        &self,
        key: Rkey,
        addr: u64,
        len: u64,
        access: Access,
    ) -> Result<(), RdmaError> {
        let regions = self.regions.read();
        let region = regions.get(&key).ok_or(RdmaError::InvalidRkey(key.0))?;
        let inside = addr >= region.addr && addr.saturating_add(len) <= region.addr + region.len;
        let allowed = match access {
            Access::Read => region.flags.read,
            Access::Write => region.flags.write,
            Access::Atomic => region.flags.atomic,
        };
        if !inside || !allowed {
            return Err(RdmaError::AccessDenied {
                rkey: key.0,
                addr,
                len,
            });
        }
        Ok(())
    }

    /// The `(addr, len)` extent of a registration, if it exists. Used by
    /// servers to enumerate their own regions.
    pub fn extent(&self, key: Rkey) -> Option<(u64, u64)> {
        self.regions.read().get(&key).map(|r| (r.addr, r.len))
    }

    /// Number of live registrations.
    pub fn count(&self) -> usize {
        self.regions.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_validate_deregister() {
        let t = RegionTable::new();
        let k = t.register(0x1000, 0x100, AccessFlags::FULL);
        assert!(t.validate(k, 0x1000, 0x100, Access::Read).is_ok());
        assert!(t.validate(k, 0x10ff, 1, Access::Write).is_ok());
        assert!(t.deregister(k));
        assert_eq!(
            t.validate(k, 0x1000, 1, Access::Read).unwrap_err(),
            RdmaError::InvalidRkey(k.0)
        );
        assert!(!t.deregister(k));
    }

    #[test]
    fn distinct_keys_per_registration() {
        let t = RegionTable::new();
        let a = t.register(0x1000, 8, AccessFlags::FULL);
        let b = t.register(0x1000, 8, AccessFlags::FULL);
        assert_ne!(a, b);
        assert_eq!(t.count(), 2);
    }

    #[test]
    fn out_of_range_denied() {
        let t = RegionTable::new();
        let k = t.register(0x1000, 0x100, AccessFlags::FULL);
        for (addr, len) in [(0xfffu64, 2u64), (0x10ff, 2), (0x2000, 1), (u64::MAX, 8)] {
            assert!(matches!(
                t.validate(k, addr, len, Access::Read),
                Err(RdmaError::AccessDenied { .. })
            ));
        }
    }

    #[test]
    fn access_rights_enforced() {
        let t = RegionTable::new();
        let k = t.register(0x1000, 64, AccessFlags::READ_ONLY);
        assert!(t.validate(k, 0x1000, 8, Access::Read).is_ok());
        assert!(t.validate(k, 0x1000, 8, Access::Write).is_err());
        assert!(t.validate(k, 0x1000, 8, Access::Atomic).is_err());
    }

    #[test]
    fn wrong_key_does_not_grant_neighbor_region() {
        let t = RegionTable::new();
        let a = t.register(0x1000, 64, AccessFlags::FULL);
        let _b = t.register(0x2000, 64, AccessFlags::FULL);
        // Key `a` must not reach region `b` even though some key covers it.
        assert!(t.validate(a, 0x2000, 8, Access::Read).is_err());
    }

    #[test]
    fn extent_reports_registration() {
        let t = RegionTable::new();
        let k = t.register(0x5000, 128, AccessFlags::FULL);
        assert_eq!(t.extent(k), Some((0x5000, 128)));
        assert_eq!(t.extent(Rkey(999)), None);
    }
}
