//! Registered buffer queues — the free lists behind PRISM's ALLOCATE.
//!
//! The paper represents a free list "the same way as a queue pair — a
//! standard RDMA structure containing a list of free buffers" (§4.2).
//! Server code *posts* fixed-size buffers; the data plane *pops* them to
//! satisfy ALLOCATE requests. All buffers in one queue share a size class;
//! applications register several queues for different size classes (§3.2,
//! "using buffers sized as powers of two guarantees a maximum space
//! overhead of 2x").

use std::collections::{HashSet, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use crate::error::RdmaError;
use crate::sync::Mutex;

/// Hasher for buffer addresses: a 64-bit finalizer (splitmix-style
/// avalanche) instead of the default SipHash. Addresses are
/// server-internal values, not attacker-controlled keys, so the
/// DoS-resistance SipHash buys is wasted on the ALLOCATE hot path —
/// the membership probe runs on every pop and post.
#[derive(Default)]
pub struct AddrHasher(u64);

impl Hasher for AddrHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut x = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = x ^ (x >> 31);
    }
}

type AddrSet = HashSet<u64, BuildHasherDefault<AddrHasher>>;

#[derive(Debug, Default)]
struct Inner {
    fifo: VecDeque<u64>,
    members: AddrSet,
    posted_total: u64,
}

/// A FIFO of equally-sized free buffers registered for ALLOCATE.
///
/// Posting is idempotent: an address already on the queue is not added
/// again. This makes client-driven reclamation and server-side GC
/// sweeps (§3.2's two alternatives) safe to combine — a duplicate free
/// notification cannot cause double allocation.
#[derive(Debug)]
pub struct BufferQueue {
    bufs: Mutex<Inner>,
    buf_len: u64,
}

impl BufferQueue {
    /// Creates an empty queue whose buffers are `buf_len` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if `buf_len` is zero.
    pub fn new(buf_len: u64) -> Self {
        assert!(buf_len > 0, "BufferQueue::new: zero buffer length");
        BufferQueue {
            bufs: Mutex::new(Inner::default()),
            buf_len,
        }
    }

    /// Size class of this queue's buffers.
    pub fn buf_len(&self) -> u64 {
        self.buf_len
    }

    /// Posts one free buffer at `addr`.
    ///
    /// The caller (the PRISM engine) is responsible for holding the
    /// posting gate so that buffers are only recycled once concurrent NIC
    /// operations have completed (§3.2).
    pub fn post(&self, addr: u64) {
        let mut q = self.bufs.lock();
        if q.members.insert(addr) {
            q.fifo.push_back(addr);
            q.posted_total += 1;
        }
    }

    /// Posts many buffers at once (duplicates skipped).
    pub fn post_many(&self, addrs: impl IntoIterator<Item = u64>) {
        let mut q = self.bufs.lock();
        for a in addrs {
            if q.members.insert(a) {
                q.fifo.push_back(a);
                q.posted_total += 1;
            }
        }
    }

    /// Pops the first free buffer, or fails with Receiver-Not-Ready if the
    /// queue is empty (the NIC's standard flow-control answer, §4.2).
    pub fn pop(&self) -> Result<u64, RdmaError> {
        let mut q = self.bufs.lock();
        match q.fifo.pop_front() {
            Some(addr) => {
                q.members.remove(&addr);
                Ok(addr)
            }
            None => Err(RdmaError::ReceiverNotReady),
        }
    }

    /// Replaces the queue's contents with exactly `addrs`, restarting
    /// the posted-total counter — the amnesia-recovery path
    /// (`FreeLists::reset`) rebuilding a free list whose pre-crash
    /// contents described ownership that no longer exists. The caller
    /// must hold the posting gate exclusively so no pop is in flight.
    pub fn reset_in_place(&self, addrs: impl IntoIterator<Item = u64>) {
        let mut q = self.bufs.lock();
        q.fifo.clear();
        q.members = AddrSet::default();
        q.posted_total = 0;
        for a in addrs {
            if q.members.insert(a) {
                q.fifo.push_back(a);
                q.posted_total += 1;
            }
        }
    }

    /// Number of buffers currently available.
    pub fn available(&self) -> usize {
        self.bufs.lock().fifo.len()
    }

    /// Snapshot of the free addresses (for GC sweeps and diagnostics).
    pub fn snapshot(&self) -> Vec<u64> {
        self.bufs.lock().fifo.iter().copied().collect()
    }

    /// Whether `addr` is currently free.
    pub fn contains(&self, addr: u64) -> bool {
        self.bufs.lock().members.contains(&addr)
    }

    /// Total buffers ever posted (for the server's refill heuristic:
    /// PRISM-KV's server "periodically checks if more buffers are
    /// needed", §6.1).
    pub fn posted_total(&self) -> u64 {
        self.bufs.lock().posted_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = BufferQueue::new(64);
        q.post(0x1000);
        q.post(0x2000);
        assert_eq!(q.pop().unwrap(), 0x1000);
        assert_eq!(q.pop().unwrap(), 0x2000);
    }

    #[test]
    fn double_post_is_idempotent() {
        let q = BufferQueue::new(64);
        q.post(0x1000);
        q.post(0x1000);
        assert_eq!(q.available(), 1, "duplicate post must be ignored");
        assert_eq!(q.pop().unwrap(), 0x1000);
        assert!(q.pop().is_err());
        // After popping, the address may legitimately be freed again.
        q.post(0x1000);
        assert_eq!(q.available(), 1);
    }

    #[test]
    fn snapshot_and_contains() {
        let q = BufferQueue::new(64);
        q.post_many([1, 2, 3]);
        assert_eq!(q.snapshot(), vec![1, 2, 3]);
        assert!(q.contains(2));
        q.pop().unwrap();
        assert!(!q.contains(1));
    }

    #[test]
    fn empty_queue_is_rnr() {
        let q = BufferQueue::new(64);
        assert_eq!(q.pop().unwrap_err(), RdmaError::ReceiverNotReady);
    }

    #[test]
    fn post_many_and_counters() {
        let q = BufferQueue::new(64);
        q.post_many([1, 2, 3]);
        assert_eq!(q.available(), 3);
        assert_eq!(q.posted_total(), 3);
        q.pop().unwrap();
        assert_eq!(q.available(), 2);
        assert_eq!(q.posted_total(), 3, "posted_total counts posts, not pops");
    }

    #[test]
    fn reset_in_place_replaces_contents_and_counter() {
        let q = BufferQueue::new(64);
        q.post_many([1, 2, 3]);
        q.pop().unwrap();
        q.reset_in_place([0x9000, 0x9040]);
        assert_eq!(q.available(), 2);
        assert_eq!(q.posted_total(), 2, "reset restarts the posted counter");
        assert!(!q.contains(2), "pre-reset members are gone");
        assert_eq!(q.pop().unwrap(), 0x9000);
    }

    #[test]
    fn concurrent_pops_never_double_allocate() {
        let q = Arc::new(BufferQueue::new(64));
        q.post_many((0..10_000).map(|i| 0x1_0000 + i * 64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(a) = q.pop() {
                        got.push(a);
                    }
                    got
                })
            })
            .collect();
        let mut all = HashSet::new();
        let mut total = 0;
        for h in handles {
            for a in h.join().unwrap() {
                total += 1;
                assert!(all.insert(a), "buffer {a:#x} allocated twice");
            }
        }
        assert_eq!(total, 10_000);
    }
}
