//! Error codes for the simulated RDMA substrate.
//!
//! These mirror the NACK classes a real NIC generates: remote access
//! errors for bad addresses or keys, alignment faults for atomics, and
//! Receiver-Not-Ready flow control. PRISM's chaining treats any of these
//! as "operation unsuccessful" (Table 1).

use std::fmt;

/// An error produced by a simulated RDMA or PRISM operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaError {
    /// The access touches bytes outside the arena.
    OutOfBounds {
        /// First byte of the offending access.
        addr: u64,
        /// Length of the offending access.
        len: u64,
    },
    /// No registered region carries this rkey.
    InvalidRkey(u32),
    /// The target range is not fully covered by the region with this rkey,
    /// or the region lacks the required access right.
    AccessDenied {
        /// The rkey presented with the operation.
        rkey: u32,
        /// First byte of the offending access.
        addr: u64,
        /// Length of the offending access.
        len: u64,
    },
    /// Atomic operand address not naturally aligned.
    Misaligned {
        /// The unaligned address.
        addr: u64,
        /// Required alignment in bytes.
        required: u64,
    },
    /// An ALLOCATE found the free list empty (maps to Receiver Not Ready;
    /// §4.2 uses RNR as the flow-control backstop).
    ReceiverNotReady,
    /// Atomic operand longer than the 32-byte maximum (§3.3).
    OperandTooLong(u64),
    /// An ALLOCATE payload does not fit the free list's buffer size class.
    BufferTooSmall {
        /// Bytes the payload needs.
        need: u64,
        /// Bytes the size class provides.
        have: u64,
    },
    /// An ALLOCATE named a free list that was never registered.
    UnknownFreeList(u32),
    /// A chained operation was skipped because a previous operation in the
    /// chain failed or a conditional CAS did not execute (§3.4).
    ChainAborted,
    /// An indirect pointer dereference produced an address that failed
    /// validation (§3.1: both the pointer and its target must be covered
    /// by the same rkey).
    BadIndirectTarget(u64),
    /// The rkey was minted under an older incarnation of the server's
    /// memory: the server crashed with amnesia and re-registered its
    /// arena since the key was issued. Fencing pre-crash keys turns
    /// "silently read garbage from reinitialized memory" into a
    /// deterministic NACK the client can recover from by refreshing its
    /// connection state (the crux of RDMA fault tolerance in Aguilera
    /// et al., "The Impact of RDMA on Agreement").
    StaleIncarnation {
        /// Incarnation encoded in the presented rkey.
        seen: u64,
        /// The server's current incarnation.
        current: u64,
    },
    /// The frame failed its integrity check: the receiving NIC's CRC
    /// over the message did not match, so the payload was discarded
    /// before execution. The transport-level NACK for in-flight
    /// corruption — clients treat it like a lost message and retry;
    /// it never carries partial data.
    Corrupt,
    /// The request was routed under an older shard-map epoch: the
    /// cluster resharded since the client fetched its map, so the key
    /// the request targets may live on a different server now. The
    /// routing analog of [`RdmaError::StaleIncarnation`]: instead of
    /// silently serving (or mutating) a possibly-moved key, the server
    /// fences the request with a deterministic NACK and the client
    /// recovers by refetching the shard map and rerouting.
    StaleEpoch {
        /// Epoch the request was stamped with.
        seen: u64,
        /// The server's current shard-map epoch.
        current: u64,
    },
    /// The server refused admission: its dispatch queue was already
    /// deep enough that this request's queueing delay would exceed the
    /// configured admission bound. Overload protection for gray
    /// failures — a degraded server NACKs the overflow immediately
    /// instead of building a convoy, and clients shed load (give the
    /// op up against its deadline budget) instead of retry-storming.
    Busy {
        /// The queueing delay this request would have seen, in ns.
        wait_ns: u64,
    },
}

impl fmt::Display for RdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RdmaError::OutOfBounds { addr, len } => {
                write!(f, "access [{addr:#x}, +{len}) outside arena")
            }
            RdmaError::InvalidRkey(rkey) => write!(f, "invalid rkey {rkey:#x}"),
            RdmaError::AccessDenied { rkey, addr, len } => {
                write!(f, "rkey {rkey:#x} does not permit [{addr:#x}, +{len})")
            }
            RdmaError::Misaligned { addr, required } => {
                write!(f, "address {addr:#x} not {required}-byte aligned")
            }
            RdmaError::ReceiverNotReady => write!(f, "receiver not ready (free list empty)"),
            RdmaError::OperandTooLong(len) => {
                write!(f, "atomic operand of {len} bytes exceeds 32-byte maximum")
            }
            RdmaError::BufferTooSmall { need, have } => {
                write!(
                    f,
                    "payload of {need} bytes exceeds buffer size class {have}"
                )
            }
            RdmaError::UnknownFreeList(id) => write!(f, "free list {id} not registered"),
            RdmaError::ChainAborted => write!(f, "chained operation skipped"),
            RdmaError::BadIndirectTarget(addr) => {
                write!(f, "indirect pointer target {addr:#x} failed validation")
            }
            RdmaError::StaleIncarnation { seen, current } => {
                write!(
                    f,
                    "rkey from incarnation {seen} fenced (server is at incarnation {current})"
                )
            }
            RdmaError::Corrupt => write!(f, "frame failed integrity check (CRC mismatch)"),
            RdmaError::StaleEpoch { seen, current } => {
                write!(
                    f,
                    "request routed under shard-map epoch {seen} fenced (server is at epoch {current})"
                )
            }
            RdmaError::Busy { wait_ns } => {
                write!(
                    f,
                    "admission refused (queueing delay would be {wait_ns} ns)"
                )
            }
        }
    }
}

impl std::error::Error for RdmaError {}

/// Fixed wire size of an encoded [`RdmaError`]: a code byte plus three
/// little-endian parameter words (`u64`, `u64`, `u32`).
pub const ERROR_WIRE_LEN: usize = 21;

impl RdmaError {
    /// Encodes the error into its fixed-size wire form (a NACK code
    /// plus parameters), for reply serialization.
    pub fn to_wire(self) -> [u8; ERROR_WIRE_LEN] {
        let (code, a, b, c): (u8, u64, u64, u32) = match self {
            RdmaError::OutOfBounds { addr, len } => (0, addr, len, 0),
            RdmaError::InvalidRkey(rkey) => (1, 0, 0, rkey),
            RdmaError::AccessDenied { rkey, addr, len } => (2, addr, len, rkey),
            RdmaError::Misaligned { addr, required } => (3, addr, required, 0),
            RdmaError::ReceiverNotReady => (4, 0, 0, 0),
            RdmaError::OperandTooLong(len) => (5, len, 0, 0),
            RdmaError::BufferTooSmall { need, have } => (6, need, have, 0),
            RdmaError::UnknownFreeList(id) => (7, 0, 0, id),
            RdmaError::ChainAborted => (8, 0, 0, 0),
            RdmaError::BadIndirectTarget(addr) => (9, addr, 0, 0),
            RdmaError::StaleIncarnation { seen, current } => (10, seen, current, 0),
            RdmaError::Corrupt => (11, 0, 0, 0),
            RdmaError::StaleEpoch { seen, current } => (12, seen, current, 0),
            RdmaError::Busy { wait_ns } => (13, wait_ns, 0, 0),
        };
        let mut out = [0u8; ERROR_WIRE_LEN];
        out[0] = code;
        out[1..9].copy_from_slice(&a.to_le_bytes());
        out[9..17].copy_from_slice(&b.to_le_bytes());
        out[17..21].copy_from_slice(&c.to_le_bytes());
        out
    }

    /// Decodes an error from its wire form; `None` for unknown codes.
    pub fn from_wire(bytes: &[u8; ERROR_WIRE_LEN]) -> Option<RdmaError> {
        let a = u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes"));
        let b = u64::from_le_bytes(bytes[9..17].try_into().expect("8 bytes"));
        let c = u32::from_le_bytes(bytes[17..21].try_into().expect("4 bytes"));
        Some(match bytes[0] {
            0 => RdmaError::OutOfBounds { addr: a, len: b },
            1 => RdmaError::InvalidRkey(c),
            2 => RdmaError::AccessDenied {
                rkey: c,
                addr: a,
                len: b,
            },
            3 => RdmaError::Misaligned {
                addr: a,
                required: b,
            },
            4 => RdmaError::ReceiverNotReady,
            5 => RdmaError::OperandTooLong(a),
            6 => RdmaError::BufferTooSmall { need: a, have: b },
            7 => RdmaError::UnknownFreeList(c),
            8 => RdmaError::ChainAborted,
            9 => RdmaError::BadIndirectTarget(a),
            10 => RdmaError::StaleIncarnation {
                seen: a,
                current: b,
            },
            11 => RdmaError::Corrupt,
            12 => RdmaError::StaleEpoch {
                seen: a,
                current: b,
            },
            13 => RdmaError::Busy { wait_ns: a },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RdmaError::AccessDenied {
            rkey: 0x10,
            addr: 0x2000,
            len: 8,
        };
        let s = e.to_string();
        assert!(s.contains("0x10") && s.contains("0x2000"));
        assert!(RdmaError::ReceiverNotReady
            .to_string()
            .contains("free list"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(RdmaError::InvalidRkey(1), RdmaError::InvalidRkey(1));
        assert_ne!(RdmaError::InvalidRkey(1), RdmaError::InvalidRkey(2));
    }

    #[test]
    fn wire_form_round_trips_every_variant() {
        let all = [
            RdmaError::OutOfBounds { addr: 7, len: 9 },
            RdmaError::InvalidRkey(3),
            RdmaError::AccessDenied {
                rkey: 1,
                addr: 2,
                len: 3,
            },
            RdmaError::Misaligned {
                addr: 11,
                required: 8,
            },
            RdmaError::ReceiverNotReady,
            RdmaError::OperandTooLong(64),
            RdmaError::BufferTooSmall { need: 10, have: 4 },
            RdmaError::UnknownFreeList(5),
            RdmaError::ChainAborted,
            RdmaError::BadIndirectTarget(0xDEAD),
            RdmaError::StaleIncarnation {
                seen: 2,
                current: 5,
            },
            RdmaError::Corrupt,
            RdmaError::StaleEpoch {
                seen: 1,
                current: 3,
            },
            RdmaError::Busy { wait_ns: 12_345 },
        ];
        for e in all {
            assert_eq!(RdmaError::from_wire(&e.to_wire()), Some(e));
        }
        let mut bad = RdmaError::ChainAborted.to_wire();
        bad[0] = 0xFF;
        assert_eq!(RdmaError::from_wire(&bad), None);
    }
}
