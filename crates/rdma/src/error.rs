//! Error codes for the simulated RDMA substrate.
//!
//! These mirror the NACK classes a real NIC generates: remote access
//! errors for bad addresses or keys, alignment faults for atomics, and
//! Receiver-Not-Ready flow control. PRISM's chaining treats any of these
//! as "operation unsuccessful" (Table 1).

use std::fmt;

/// An error produced by a simulated RDMA or PRISM operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaError {
    /// The access touches bytes outside the arena.
    OutOfBounds {
        /// First byte of the offending access.
        addr: u64,
        /// Length of the offending access.
        len: u64,
    },
    /// No registered region carries this rkey.
    InvalidRkey(u32),
    /// The target range is not fully covered by the region with this rkey,
    /// or the region lacks the required access right.
    AccessDenied {
        /// The rkey presented with the operation.
        rkey: u32,
        /// First byte of the offending access.
        addr: u64,
        /// Length of the offending access.
        len: u64,
    },
    /// Atomic operand address not naturally aligned.
    Misaligned {
        /// The unaligned address.
        addr: u64,
        /// Required alignment in bytes.
        required: u64,
    },
    /// An ALLOCATE found the free list empty (maps to Receiver Not Ready;
    /// §4.2 uses RNR as the flow-control backstop).
    ReceiverNotReady,
    /// Atomic operand longer than the 32-byte maximum (§3.3).
    OperandTooLong(u64),
    /// An ALLOCATE payload does not fit the free list's buffer size class.
    BufferTooSmall {
        /// Bytes the payload needs.
        need: u64,
        /// Bytes the size class provides.
        have: u64,
    },
    /// An ALLOCATE named a free list that was never registered.
    UnknownFreeList(u32),
    /// A chained operation was skipped because a previous operation in the
    /// chain failed or a conditional CAS did not execute (§3.4).
    ChainAborted,
    /// An indirect pointer dereference produced an address that failed
    /// validation (§3.1: both the pointer and its target must be covered
    /// by the same rkey).
    BadIndirectTarget(u64),
}

impl fmt::Display for RdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RdmaError::OutOfBounds { addr, len } => {
                write!(f, "access [{addr:#x}, +{len}) outside arena")
            }
            RdmaError::InvalidRkey(rkey) => write!(f, "invalid rkey {rkey:#x}"),
            RdmaError::AccessDenied { rkey, addr, len } => {
                write!(f, "rkey {rkey:#x} does not permit [{addr:#x}, +{len})")
            }
            RdmaError::Misaligned { addr, required } => {
                write!(f, "address {addr:#x} not {required}-byte aligned")
            }
            RdmaError::ReceiverNotReady => write!(f, "receiver not ready (free list empty)"),
            RdmaError::OperandTooLong(len) => {
                write!(f, "atomic operand of {len} bytes exceeds 32-byte maximum")
            }
            RdmaError::BufferTooSmall { need, have } => {
                write!(
                    f,
                    "payload of {need} bytes exceeds buffer size class {have}"
                )
            }
            RdmaError::UnknownFreeList(id) => write!(f, "free list {id} not registered"),
            RdmaError::ChainAborted => write!(f, "chained operation skipped"),
            RdmaError::BadIndirectTarget(addr) => {
                write!(f, "indirect pointer target {addr:#x} failed validation")
            }
        }
    }
}

impl std::error::Error for RdmaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RdmaError::AccessDenied {
            rkey: 0x10,
            addr: 0x2000,
            len: 8,
        };
        let s = e.to_string();
        assert!(s.contains("0x10") && s.contains("0x2000"));
        assert!(RdmaError::ReceiverNotReady
            .to_string()
            .contains("free list"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(RdmaError::InvalidRkey(1), RdmaError::InvalidRkey(1));
        assert_ne!(RdmaError::InvalidRkey(1), RdmaError::InvalidRkey(2));
    }
}
