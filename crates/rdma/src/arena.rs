//! The simulated host memory: a flat byte buffer with cache-line
//! granularity seqlocks.
//!
//! The arena reproduces the memory semantics the PRISM protocols depend
//! on (§6.1, §7.3 of the paper):
//!
//! * accesses that fit within one 64-byte cache line are single-copy
//!   atomic — an indirect read of a hash-table slot "is guaranteed to read
//!   a well-formed address [because] addresses fit within a cache line";
//! * larger transfers are performed line by line, so a reader concurrent
//!   with a writer may observe a *torn* value across lines — exactly why
//!   the protocols use write-once out-of-place buffers;
//! * atomics (up to 32 bytes, §3.3) lock the seqlock groups they cover in
//!   a global (stripe-index) order and are therefore atomic with respect
//!   to every other arena access, matching "atomic with respect to other
//!   PRISM operations".
//!
//! # Fast-path design
//!
//! Storage is one flat `Vec<AtomicU64>` (8 little-endian bytes per word,
//! 8 words per line) instead of the original `Vec<RwLock<[u8; 64]>>`:
//! no per-line allocation, no pthread lock per line touched, and byte
//! overhead within a few percent of capacity (asserted by a test).
//! Coherence is provided by *striped per-line seqlocks*, hand-rolled on
//! `std::sync::atomic` (the workspace has no registry dependencies):
//!
//! * **readers** are optimistic and lock-free — load the span's sequence
//!   (spin while odd), copy the words, and retry if the sequence moved;
//! * **writers** acquire the span's stripe by CAS-ing the sequence from
//!   even to odd, store the words, and release with `seq + 2`;
//! * **atomics** write-acquire the one or two stripes covering the
//!   operand in ascending stripe order (deadlock-free) so the
//!   read-modify-write excludes every reader and writer of those lines.
//!
//! One seqlock covers a [`GROUP`]-byte group of eight consecutive lines,
//! amortizing the lock acquisition of multi-line transfers (one CAS per
//! 512 bytes instead of per 64). This only *strengthens* atomicity —
//! transfers tear at group boundaries, which are line boundaries, so the
//! per-line single-copy guarantee is unchanged — while keeping the
//! contention unit small. Groups map to stripes (`group & mask`); arenas
//! up to `MAX_STRIPES` groups get exactly one stripe per group, larger
//! arenas share stripes (a false conflict costs one retry, never
//! correctness).
//!
//! Addresses are virtual: the arena starts at [`MemoryArena::BASE`] so
//! that 0 can serve as a null pointer in application data structures.

use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};

use crate::error::RdmaError;

/// Cache-line size: the single-copy atomicity granularity.
pub const LINE: usize = 64;

/// Words per cache line (`AtomicU64` granules).
const WORDS_PER_LINE: usize = LINE / 8;

/// Bytes covered by one seqlock: eight consecutive lines. Transfers
/// tear only at group boundaries (which are line boundaries), so the
/// per-line single-copy atomicity contract is preserved while multi-line
/// transfers pay one lock acquisition per group.
pub const GROUP: usize = 8 * LINE;

/// Upper bound on the seqlock stripe table (16 KB of `AtomicU32`s).
const MAX_STRIPES: usize = 4096;

/// Byte-addressable simulated host memory.
///
/// Cloneable handles are obtained by wrapping in `Arc`; all methods take
/// `&self` and are safe for concurrent use from many threads.
pub struct MemoryArena {
    /// Flat storage: `len / 8` words, little-endian bytes.
    words: Vec<AtomicU64>,
    /// Striped per-group seqlocks; even = stable, odd = write in flight.
    seqs: Vec<AtomicU32>,
    /// Maps a group index to its stripe: `group & stripe_mask`.
    stripe_mask: usize,
    len: u64,
}

impl MemoryArena {
    /// The lowest valid arena address. Nonzero so applications can use 0
    /// as a null pointer.
    pub const BASE: u64 = 0x1_0000;

    /// Creates an arena of `len` bytes, rounded up to whole cache lines,
    /// zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: u64) -> Self {
        assert!(len > 0, "MemoryArena::new: zero length");
        let nlines = len.div_ceil(LINE as u64) as usize;
        let nwords = nlines * WORDS_PER_LINE;
        let words = (0..nwords).map(|_| AtomicU64::new(0)).collect();
        let ngroups = (nlines * LINE).div_ceil(GROUP);
        let stripes = ngroups.next_power_of_two().min(MAX_STRIPES);
        let seqs = (0..stripes).map(|_| AtomicU32::new(0)).collect();
        MemoryArena {
            words,
            seqs,
            stripe_mask: stripes - 1,
            len: nlines as u64 * LINE as u64,
        }
    }

    /// Total capacity in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the arena has zero capacity (never true; see [`MemoryArena::new`]).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One past the highest valid address.
    pub fn end(&self) -> u64 {
        Self::BASE + self.len
    }

    /// Approximate heap + struct footprint in bytes: the flat word
    /// buffer, the seqlock stripe table, and the handle itself. Exposed
    /// so tests can pin the overhead of the layout (< 5% beyond
    /// capacity, vs ~3× for the old lock-per-line arena).
    pub fn footprint_bytes(&self) -> u64 {
        (self.words.capacity() * std::mem::size_of::<AtomicU64>()
            + self.seqs.capacity() * std::mem::size_of::<AtomicU32>()
            + std::mem::size_of::<Self>()) as u64
    }

    fn check(&self, addr: u64, len: u64) -> Result<(), RdmaError> {
        if addr < Self::BASE || addr.saturating_add(len) > self.end() {
            return Err(RdmaError::OutOfBounds { addr, len });
        }
        Ok(())
    }

    #[inline]
    fn seq_for(&self, group: usize) -> &AtomicU32 {
        &self.seqs[group & self.stripe_mask]
    }

    /// Copies `out.len()` bytes starting at byte offset `off` (which must
    /// stay within one line) out of the word buffer. Caller is the
    /// seqlock read protocol; loads are relaxed and validated afterwards.
    #[inline]
    fn copy_out(&self, off: usize, out: &mut [u8]) {
        if off.is_multiple_of(8) {
            // Word-aligned fast path: one load per word, no per-byte
            // offset arithmetic. This is the shape of every line-sized
            // transfer, so it dominates READ throughput. The zip keeps
            // the loop free of bounds checks.
            let words = &self.words[off / 8..off / 8 + out.len().div_ceil(8)];
            let mut chunks = out.chunks_exact_mut(8);
            for (chunk, w) in (&mut chunks).zip(words) {
                chunk.copy_from_slice(&w.load(Ordering::Relaxed).to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = words[words.len() - 1].load(Ordering::Relaxed).to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
            return;
        }
        let mut off = off;
        let mut i = 0;
        while i < out.len() {
            let wi = off / 8;
            let in_word = off % 8;
            let n = (8 - in_word).min(out.len() - i);
            let bytes = self.words[wi].load(Ordering::Relaxed).to_le_bytes();
            out[i..i + n].copy_from_slice(&bytes[in_word..in_word + n]);
            i += n;
            off += n;
        }
    }

    /// Stores `data` at byte offset `off` (within one line). Caller must
    /// hold the line's stripe; partial words read-modify-write safely
    /// because the lock excludes every other writer of the line.
    #[inline]
    fn copy_in(&self, off: usize, data: &[u8]) {
        if off.is_multiple_of(8) {
            // Word-aligned fast path, mirroring `copy_out`.
            let words = &self.words[off / 8..off / 8 + data.len().div_ceil(8)];
            let mut chunks = data.chunks_exact(8);
            for (chunk, w) in (&mut chunks).zip(words) {
                w.store(
                    u64::from_le_bytes(chunk.try_into().expect("8 bytes")),
                    Ordering::Relaxed,
                );
            }
            let rem = chunks.remainder();
            if !rem.is_empty() {
                let w = &words[words.len() - 1];
                let mut bytes = w.load(Ordering::Relaxed).to_le_bytes();
                bytes[..rem.len()].copy_from_slice(rem);
                w.store(u64::from_le_bytes(bytes), Ordering::Relaxed);
            }
            return;
        }
        let mut off = off;
        let mut i = 0;
        while i < data.len() {
            let wi = off / 8;
            let in_word = off % 8;
            let n = (8 - in_word).min(data.len() - i);
            let w = &self.words[wi];
            if n == 8 {
                w.store(
                    u64::from_le_bytes(data[i..i + 8].try_into().expect("8 bytes")),
                    Ordering::Relaxed,
                );
            } else {
                let mut bytes = w.load(Ordering::Relaxed).to_le_bytes();
                bytes[in_word..in_word + n].copy_from_slice(&data[i..i + n]);
                w.store(u64::from_le_bytes(bytes), Ordering::Relaxed);
            }
            i += n;
            off += n;
        }
    }

    /// Seqlock read of one group's span: optimistic, retried until a
    /// stable (even, unchanged) sequence brackets the copy.
    #[inline]
    fn group_read(&self, group: usize, off: usize, out: &mut [u8]) {
        let seq = self.seq_for(group);
        loop {
            let s1 = seq.load(Ordering::Acquire);
            if s1 & 1 == 0 {
                self.copy_out(off, out);
                fence(Ordering::Acquire);
                if seq.load(Ordering::Relaxed) == s1 {
                    return;
                }
            }
            std::hint::spin_loop();
        }
    }

    /// Write-acquires a stripe: CAS its sequence from even to odd.
    #[inline]
    fn lock(seq: &AtomicU32) -> u32 {
        loop {
            let s = seq.load(Ordering::Relaxed);
            if s & 1 == 0
                && seq
                    .compare_exchange_weak(
                        s,
                        s.wrapping_add(1),
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
            {
                return s;
            }
            std::hint::spin_loop();
        }
    }

    /// Releases a stripe locked at sequence `s`.
    #[inline]
    fn unlock(seq: &AtomicU32, s: u32) {
        seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Seqlock write of one group's span.
    #[inline]
    fn group_write(&self, group: usize, off: usize, data: &[u8]) {
        let seq = self.seq_for(group);
        let s = Self::lock(seq);
        self.copy_in(off, data);
        Self::unlock(seq, s);
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// The read is performed line by line: it is atomic within each cache
    /// line but may observe a concurrent writer's partial update across
    /// lines (a torn read), as on real hardware.
    pub fn read_into(&self, addr: u64, buf: &mut [u8]) -> Result<(), RdmaError> {
        self.check(addr, buf.len() as u64)?;
        let mut off = (addr - Self::BASE) as usize;
        let mut filled = 0;
        while filled < buf.len() {
            let in_group = off % GROUP;
            let n = (GROUP - in_group).min(buf.len() - filled);
            self.group_read(off / GROUP, off, &mut buf[filled..filled + n]);
            filled += n;
            off += n;
        }
        Ok(())
    }

    /// Reads `len` bytes starting at `addr` into a fresh buffer. Hot
    /// paths should prefer [`MemoryArena::read_into`] with a reused
    /// buffer; this wrapper allocates.
    pub fn read(&self, addr: u64, len: u64) -> Result<Vec<u8>, RdmaError> {
        let mut buf = vec![0u8; len as usize];
        self.read_into(addr, &mut buf)?;
        Ok(buf)
    }

    /// Writes `data` starting at `addr`, line by line (same tearing
    /// semantics as [`MemoryArena::read_into`]).
    pub fn write(&self, addr: u64, data: &[u8]) -> Result<(), RdmaError> {
        self.check(addr, data.len() as u64)?;
        let mut off = (addr - Self::BASE) as usize;
        let mut written = 0;
        while written < data.len() {
            let in_group = off % GROUP;
            let n = (GROUP - in_group).min(data.len() - written);
            self.group_write(off / GROUP, off, &data[written..written + n]);
            written += n;
            off += n;
        }
        Ok(())
    }

    /// Runs `f` over the `len` bytes at `addr` with exclusive access —
    /// the implementation primitive behind CAS and FETCH-AND-ADD.
    ///
    /// The stripes covering the operand's groups are write-acquired in
    /// ascending stripe order (deadlock-free), so the read-modify-write
    /// is atomic with respect to every other arena operation. `len` is
    /// limited to 32 bytes, the enhanced-CAS maximum (§3.3), so at most
    /// two groups are held.
    pub fn atomic<R>(
        &self,
        addr: u64,
        len: u64,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, RdmaError> {
        if len > 32 {
            return Err(RdmaError::OperandTooLong(len));
        }
        self.check(addr, len)?;
        let off = (addr - Self::BASE) as usize;
        let first = off / GROUP;
        let last = (off + len as usize - 1) / GROUP;
        let sa = first & self.stripe_mask;
        let sb = last & self.stripe_mask;
        let (lo, hi) = (sa.min(sb), sa.max(sb));
        // Lock stripes in ascending index order; a shared stripe is
        // locked once.
        let s_lo = Self::lock(&self.seqs[lo]);
        let s_hi = if hi != lo {
            Some(Self::lock(&self.seqs[hi]))
        } else {
            None
        };
        let mut scratch = [0u8; 32];
        let operand = &mut scratch[..len as usize];
        self.copy_out(off, operand);
        let r = f(operand);
        self.copy_in(off, operand);
        if let Some(s) = s_hi {
            Self::unlock(&self.seqs[hi], s);
        }
        Self::unlock(&self.seqs[lo], s_lo);
        Ok(r)
    }

    /// Zeroes the whole arena — an amnesia restart losing all host
    /// memory. Group-by-group under the seqlocks (tearing at group
    /// boundaries is fine: the server is not serving while it recovers,
    /// and any straggling reader sees zeros, not garbage).
    pub fn wipe(&self) {
        const ZEROS: [u8; GROUP] = [0u8; GROUP];
        let mut addr = Self::BASE;
        while addr < self.end() {
            let n = (self.end() - addr).min(GROUP as u64);
            self.write(addr, &ZEROS[..n as usize])
                .expect("wipe stays in bounds");
            addr += n;
        }
    }

    /// Flips one bit of the byte at `addr` — the fault fabric's bit-rot
    /// primitive. Goes through [`MemoryArena::atomic`] so the flip is a
    /// proper read-modify-write under the stripe locks: concurrent
    /// readers see either the old or the rotted byte, never a torn
    /// intermediate.
    pub fn flip_bit(&self, addr: u64, bit: u8) -> Result<(), RdmaError> {
        assert!(bit < 8, "bit index out of range");
        self.atomic(addr, 1, |b| b[0] ^= 1 << bit)
    }

    /// Convenience: reads a little-endian u64 (must not cross a line if
    /// atomicity is required; an 8-byte aligned address never does).
    pub fn read_u64(&self, addr: u64) -> Result<u64, RdmaError> {
        let mut b = [0u8; 8];
        self.read_into(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Convenience: writes a little-endian u64.
    pub fn write_u64(&self, addr: u64, v: u64) -> Result<(), RdmaError> {
        self.write(addr, &v.to_le_bytes())
    }
}

impl std::fmt::Debug for MemoryArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryArena")
            .field("len", &self.len)
            .field("lines", &(self.words.len() / WORDS_PER_LINE))
            .field("stripes", &self.seqs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_trips_at_various_offsets() {
        let a = MemoryArena::new(4096);
        for (off, len) in [(0u64, 1usize), (63, 2), (60, 100), (1, 511), (4000, 96)] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let addr = MemoryArena::BASE + off;
            a.write(addr, &data).unwrap();
            assert_eq!(
                a.read(addr, len as u64).unwrap(),
                data,
                "off={off} len={len}"
            );
        }
    }

    #[test]
    fn zero_initialized() {
        let a = MemoryArena::new(128);
        assert_eq!(a.read(MemoryArena::BASE, 128).unwrap(), vec![0u8; 128]);
    }

    #[test]
    fn rounds_up_to_whole_lines() {
        let a = MemoryArena::new(65);
        assert_eq!(a.len(), 128);
        a.write(a.end() - 1, &[9]).unwrap();
    }

    #[test]
    fn bounds_are_enforced() {
        let a = MemoryArena::new(128);
        assert!(matches!(
            a.read(MemoryArena::BASE - 1, 4),
            Err(RdmaError::OutOfBounds { .. })
        ));
        assert!(matches!(
            a.write(a.end() - 2, &[0; 4]),
            Err(RdmaError::OutOfBounds { .. })
        ));
        // Overflow-safe.
        assert!(a.read(u64::MAX - 2, 8).is_err());
    }

    #[test]
    fn u64_helpers() {
        let a = MemoryArena::new(64);
        a.write_u64(MemoryArena::BASE + 8, 0xDEAD_BEEF).unwrap();
        assert_eq!(a.read_u64(MemoryArena::BASE + 8).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn atomic_modifies_in_place() {
        let a = MemoryArena::new(128);
        let addr = MemoryArena::BASE + 16;
        a.write_u64(addr, 41).unwrap();
        let old = a
            .atomic(addr, 8, |bytes| {
                let old = u64::from_le_bytes(bytes.try_into().unwrap());
                bytes.copy_from_slice(&(old + 1).to_le_bytes());
                old
            })
            .unwrap();
        assert_eq!(old, 41);
        assert_eq!(a.read_u64(addr).unwrap(), 42);
    }

    #[test]
    fn atomic_across_line_boundary() {
        let a = MemoryArena::new(256);
        let addr = MemoryArena::BASE + 56; // 16-byte operand spanning lines 0 and 1
        a.write(addr, &[1u8; 16]).unwrap();
        a.atomic(addr, 16, |b| b.iter_mut().for_each(|x| *x = 2))
            .unwrap();
        assert_eq!(a.read(addr, 16).unwrap(), vec![2u8; 16]);
    }

    #[test]
    fn atomic_rejects_oversized_operand() {
        let a = MemoryArena::new(128);
        assert_eq!(
            a.atomic(MemoryArena::BASE, 33, |_| ()).unwrap_err(),
            RdmaError::OperandTooLong(33)
        );
    }

    #[test]
    fn concurrent_fetch_add_loses_no_updates() {
        let a = Arc::new(MemoryArena::new(64));
        let addr = MemoryArena::BASE;
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        a.atomic(addr, 8, |b| {
                            let v = u64::from_le_bytes(b.try_into().unwrap());
                            b.copy_from_slice(&(v + 1).to_le_bytes());
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(a.read_u64(addr).unwrap(), 8_000);
    }

    #[test]
    fn concurrent_cross_line_fetch_add_loses_no_updates() {
        // Same invariant with the operand spanning two lines, exercising
        // the two-stripe lock path.
        let a = Arc::new(MemoryArena::new(256));
        let addr = MemoryArena::BASE + 56;
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        a.atomic(addr, 16, |b| {
                            let v = u64::from_le_bytes(b[..8].try_into().unwrap());
                            b[..8].copy_from_slice(&(v + 1).to_le_bytes());
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(a.read_u64(addr).unwrap(), 8_000);
    }

    #[test]
    fn within_line_reads_never_tear() {
        // A writer flips an aligned 8-byte word between two values; readers
        // must only ever observe one of the two.
        let a = Arc::new(MemoryArena::new(64));
        let addr = MemoryArena::BASE;
        a.write_u64(addr, u64::MAX).unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let a = Arc::clone(&a);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    v = if v == 0 { u64::MAX } else { 0 };
                    a.write_u64(addr, v).unwrap();
                }
            })
        };
        for _ in 0..50_000 {
            let v = a.read_u64(addr).unwrap();
            assert!(v == 0 || v == u64::MAX, "torn read within a line: {v:#x}");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn multi_line_transfers_tear_only_at_line_boundaries() {
        // A writer flips a 256-byte (4-line) value between all-zeros and
        // all-ones. A concurrent reader may see a mix across lines (torn
        // multi-line transfer — the semantics §6.1's protocols defend
        // against) but every individual 64-byte line must be uniform.
        let a = Arc::new(MemoryArena::new(512));
        let addr = MemoryArena::BASE;
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let a = Arc::clone(&a);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 0u8;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    v = if v == 0 { 0xFF } else { 0 };
                    a.write(addr, &[v; 256]).unwrap();
                }
            })
        };
        let mut buf = [0u8; 256];
        for _ in 0..20_000 {
            a.read_into(addr, &mut buf).unwrap();
            for line in buf.chunks(LINE) {
                assert!(
                    line.iter().all(|&b| b == line[0]),
                    "torn read within a line"
                );
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn wipe_zeroes_everything() {
        let a = MemoryArena::new(3 * GROUP as u64 + 100);
        a.write(MemoryArena::BASE + 7, &[0xAB; 900]).unwrap();
        a.write(a.end() - 64, &[0xCD; 64]).unwrap();
        a.wipe();
        assert_eq!(
            a.read(MemoryArena::BASE, a.len()).unwrap(),
            vec![0u8; a.len() as usize]
        );
    }

    #[test]
    fn flip_bit_rots_exactly_one_bit() {
        let a = MemoryArena::new(4096);
        let addr = MemoryArena::BASE + 100;
        a.write(addr, &[0b1010_1010]).unwrap();
        a.flip_bit(addr, 0).unwrap();
        assert_eq!(a.read(addr, 1).unwrap(), [0b1010_1011]);
        a.flip_bit(addr, 7).unwrap();
        assert_eq!(a.read(addr, 1).unwrap(), [0b0010_1011]);
        // Self-inverse: rot twice restores the byte.
        a.flip_bit(addr, 7).unwrap();
        a.flip_bit(addr, 0).unwrap();
        assert_eq!(a.read(addr, 1).unwrap(), [0b1010_1010]);
        // Out-of-arena rot is rejected like any access.
        assert!(a.flip_bit(MemoryArena::BASE + 5000, 0).is_err());
    }

    #[test]
    fn flat_layout_overhead_under_5_percent() {
        // The old arena allocated a pthread RwLock per 64-byte line
        // (~3× capacity for large arenas); the flat layout must stay
        // within 5% of capacity.
        let len = 4u64 << 20; // 4 MiB
        let a = MemoryArena::new(len);
        let footprint = a.footprint_bytes();
        assert!(
            footprint < len + len / 20,
            "footprint {footprint} exceeds 105% of {len}"
        );
    }
}
