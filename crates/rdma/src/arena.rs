//! The simulated host memory: a byte-addressable arena with cache-line
//! granularity locking.
//!
//! The arena reproduces the memory semantics the PRISM protocols depend
//! on (§6.1, §7.3 of the paper):
//!
//! * accesses that fit within one 64-byte cache line are single-copy
//!   atomic — an indirect read of a hash-table slot "is guaranteed to read
//!   a well-formed address [because] addresses fit within a cache line";
//! * larger transfers are performed line by line, so a reader concurrent
//!   with a writer may observe a *torn* value across lines — exactly why
//!   the protocols use write-once out-of-place buffers;
//! * atomics (up to 32 bytes, §3.3) lock the lines they cover in address
//!   order and are therefore atomic with respect to every other arena
//!   access, matching "atomic with respect to other PRISM operations".
//!
//! Addresses are virtual: the arena starts at [`MemoryArena::BASE`] so
//! that 0 can serve as a null pointer in application data structures.

use crate::error::RdmaError;
use crate::sync::RwLock;

/// Cache-line size: the single-copy atomicity granularity.
pub const LINE: usize = 64;

/// Byte-addressable simulated host memory.
///
/// Cloneable handles are obtained by wrapping in `Arc`; all methods take
/// `&self` and are safe for concurrent use from many threads.
pub struct MemoryArena {
    lines: Vec<RwLock<[u8; LINE]>>,
    len: u64,
}

impl MemoryArena {
    /// The lowest valid arena address. Nonzero so applications can use 0
    /// as a null pointer.
    pub const BASE: u64 = 0x1_0000;

    /// Creates an arena of `len` bytes, rounded up to whole cache lines,
    /// zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: u64) -> Self {
        assert!(len > 0, "MemoryArena::new: zero length");
        let nlines = len.div_ceil(LINE as u64) as usize;
        let mut lines = Vec::with_capacity(nlines);
        for _ in 0..nlines {
            lines.push(RwLock::new([0u8; LINE]));
        }
        MemoryArena {
            lines,
            len: nlines as u64 * LINE as u64,
        }
    }

    /// Total capacity in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the arena has zero capacity (never true; see [`MemoryArena::new`]).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One past the highest valid address.
    pub fn end(&self) -> u64 {
        Self::BASE + self.len
    }

    fn check(&self, addr: u64, len: u64) -> Result<(), RdmaError> {
        if addr < Self::BASE || addr.saturating_add(len) > self.end() {
            return Err(RdmaError::OutOfBounds { addr, len });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// The read is performed line by line: it is atomic within each cache
    /// line but may observe a concurrent writer's partial update across
    /// lines (a torn read), as on real hardware.
    pub fn read_into(&self, addr: u64, buf: &mut [u8]) -> Result<(), RdmaError> {
        self.check(addr, buf.len() as u64)?;
        let mut off = (addr - Self::BASE) as usize;
        let mut filled = 0;
        while filled < buf.len() {
            let line = off / LINE;
            let in_line = off % LINE;
            let n = (LINE - in_line).min(buf.len() - filled);
            let guard = self.lines[line].read();
            buf[filled..filled + n].copy_from_slice(&guard[in_line..in_line + n]);
            filled += n;
            off += n;
        }
        Ok(())
    }

    /// Reads `len` bytes starting at `addr` into a fresh buffer.
    pub fn read(&self, addr: u64, len: u64) -> Result<Vec<u8>, RdmaError> {
        let mut buf = vec![0u8; len as usize];
        self.read_into(addr, &mut buf)?;
        Ok(buf)
    }

    /// Writes `data` starting at `addr`, line by line (same tearing
    /// semantics as [`MemoryArena::read_into`]).
    pub fn write(&self, addr: u64, data: &[u8]) -> Result<(), RdmaError> {
        self.check(addr, data.len() as u64)?;
        let mut off = (addr - Self::BASE) as usize;
        let mut written = 0;
        while written < data.len() {
            let line = off / LINE;
            let in_line = off % LINE;
            let n = (LINE - in_line).min(data.len() - written);
            let mut guard = self.lines[line].write();
            guard[in_line..in_line + n].copy_from_slice(&data[written..written + n]);
            written += n;
            off += n;
        }
        Ok(())
    }

    /// Runs `f` over the `len` bytes at `addr` with exclusive access —
    /// the implementation primitive behind CAS and FETCH-AND-ADD.
    ///
    /// The lines covering the operand are write-locked in address order
    /// (deadlock-free), so the read-modify-write is atomic with respect to
    /// every other arena operation. `len` is limited to 32 bytes, the
    /// enhanced-CAS maximum (§3.3), so at most two lines are held.
    pub fn atomic<R>(
        &self,
        addr: u64,
        len: u64,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, RdmaError> {
        if len > 32 {
            return Err(RdmaError::OperandTooLong(len));
        }
        self.check(addr, len)?;
        let off = (addr - Self::BASE) as usize;
        let first = off / LINE;
        let last = (off + len as usize - 1) / LINE;
        let mut scratch = [0u8; 32];
        let operand = &mut scratch[..len as usize];
        if first == last {
            let mut guard = self.lines[first].write();
            let in_line = off % LINE;
            operand.copy_from_slice(&guard[in_line..in_line + len as usize]);
            let r = f(operand);
            guard[in_line..in_line + len as usize].copy_from_slice(operand);
            Ok(r)
        } else {
            // Lock the two lines in address order; release together.
            let mut g1 = self.lines[first].write();
            let mut g2 = self.lines[last].write();
            let in_line = off % LINE;
            let n1 = LINE - in_line;
            let n2 = len as usize - n1;
            operand[..n1].copy_from_slice(&g1[in_line..]);
            operand[n1..].copy_from_slice(&g2[..n2]);
            let r = f(operand);
            g1[in_line..].copy_from_slice(&operand[..n1]);
            g2[..n2].copy_from_slice(&operand[n1..]);
            Ok(r)
        }
    }

    /// Convenience: reads a little-endian u64 (must not cross a line if
    /// atomicity is required; an 8-byte aligned address never does).
    pub fn read_u64(&self, addr: u64) -> Result<u64, RdmaError> {
        let mut b = [0u8; 8];
        self.read_into(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Convenience: writes a little-endian u64.
    pub fn write_u64(&self, addr: u64, v: u64) -> Result<(), RdmaError> {
        self.write(addr, &v.to_le_bytes())
    }
}

impl std::fmt::Debug for MemoryArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryArena")
            .field("len", &self.len)
            .field("lines", &self.lines.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_trips_at_various_offsets() {
        let a = MemoryArena::new(4096);
        for (off, len) in [(0u64, 1usize), (63, 2), (60, 100), (1, 511), (4000, 96)] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let addr = MemoryArena::BASE + off;
            a.write(addr, &data).unwrap();
            assert_eq!(
                a.read(addr, len as u64).unwrap(),
                data,
                "off={off} len={len}"
            );
        }
    }

    #[test]
    fn zero_initialized() {
        let a = MemoryArena::new(128);
        assert_eq!(a.read(MemoryArena::BASE, 128).unwrap(), vec![0u8; 128]);
    }

    #[test]
    fn rounds_up_to_whole_lines() {
        let a = MemoryArena::new(65);
        assert_eq!(a.len(), 128);
        a.write(a.end() - 1, &[9]).unwrap();
    }

    #[test]
    fn bounds_are_enforced() {
        let a = MemoryArena::new(128);
        assert!(matches!(
            a.read(MemoryArena::BASE - 1, 4),
            Err(RdmaError::OutOfBounds { .. })
        ));
        assert!(matches!(
            a.write(a.end() - 2, &[0; 4]),
            Err(RdmaError::OutOfBounds { .. })
        ));
        // Overflow-safe.
        assert!(a.read(u64::MAX - 2, 8).is_err());
    }

    #[test]
    fn u64_helpers() {
        let a = MemoryArena::new(64);
        a.write_u64(MemoryArena::BASE + 8, 0xDEAD_BEEF).unwrap();
        assert_eq!(a.read_u64(MemoryArena::BASE + 8).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn atomic_modifies_in_place() {
        let a = MemoryArena::new(128);
        let addr = MemoryArena::BASE + 16;
        a.write_u64(addr, 41).unwrap();
        let old = a
            .atomic(addr, 8, |bytes| {
                let old = u64::from_le_bytes(bytes.try_into().unwrap());
                bytes.copy_from_slice(&(old + 1).to_le_bytes());
                old
            })
            .unwrap();
        assert_eq!(old, 41);
        assert_eq!(a.read_u64(addr).unwrap(), 42);
    }

    #[test]
    fn atomic_across_line_boundary() {
        let a = MemoryArena::new(256);
        let addr = MemoryArena::BASE + 56; // 16-byte operand spanning lines 0 and 1
        a.write(addr, &[1u8; 16]).unwrap();
        a.atomic(addr, 16, |b| b.iter_mut().for_each(|x| *x = 2))
            .unwrap();
        assert_eq!(a.read(addr, 16).unwrap(), vec![2u8; 16]);
    }

    #[test]
    fn atomic_rejects_oversized_operand() {
        let a = MemoryArena::new(128);
        assert_eq!(
            a.atomic(MemoryArena::BASE, 33, |_| ()).unwrap_err(),
            RdmaError::OperandTooLong(33)
        );
    }

    #[test]
    fn concurrent_fetch_add_loses_no_updates() {
        let a = Arc::new(MemoryArena::new(64));
        let addr = MemoryArena::BASE;
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        a.atomic(addr, 8, |b| {
                            let v = u64::from_le_bytes(b.try_into().unwrap());
                            b.copy_from_slice(&(v + 1).to_le_bytes());
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(a.read_u64(addr).unwrap(), 8_000);
    }

    #[test]
    fn within_line_reads_never_tear() {
        // A writer flips an aligned 8-byte word between two values; readers
        // must only ever observe one of the two.
        let a = Arc::new(MemoryArena::new(64));
        let addr = MemoryArena::BASE;
        a.write_u64(addr, u64::MAX).unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let a = Arc::clone(&a);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    v = if v == 0 { u64::MAX } else { 0 };
                    a.write_u64(addr, v).unwrap();
                }
            })
        };
        for _ in 0..50_000 {
            let v = a.read_u64(addr).unwrap();
            assert!(v == 0 || v == u64::MAX, "torn read within a line: {v:#x}");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        writer.join().unwrap();
    }
}
