//! Std-only synchronization primitives for the whole workspace.
//!
//! The repository builds with zero registry dependencies (see
//! `scripts/check_hermetic.sh`), so the `parking_lot` locks and the
//! `crossbeam` bounded channel the code originally used are replaced by
//! thin wrappers over `std::sync`. The wrappers keep `parking_lot`'s
//! ergonomics — `lock()` / `read()` / `write()` return guards directly —
//! by treating lock poisoning as recoverable: a panicking holder does
//! not wedge every later accessor (protocol state is reconstructible,
//! and tests intentionally drive panics through property harnesses).
//!
//! [`bounded`] provides the multi-producer **multi-consumer** channel
//! that `LiveServer`'s worker pool needs (std's `mpsc` receiver cannot
//! be cloned), implemented as a `Mutex<VecDeque>` plus two condvars.

use std::collections::VecDeque;
use std::fmt;
use std::sync::PoisonError;
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` returns the guard directly,
/// recovering from poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose `read()` / `write()` return guards
/// directly, recovering from poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent value is handed back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`] when the queue is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

struct ChannelState<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Channel<T> {
    state: StdMutex<ChannelState<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Creates a bounded multi-producer multi-consumer FIFO channel.
/// Sends block while the queue holds `capacity` items — the
/// back-pressure a NIC receive queue applies.
///
/// # Panics
///
/// Panics if `capacity` is zero (a rendezvous channel is not needed
/// here; the smallest queue is one slot).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "bounded: zero capacity");
    let chan = Arc::new(Channel {
        state: StdMutex::new(ChannelState {
            queue: VecDeque::with_capacity(capacity),
            senders: 1,
            receivers: 1,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

/// Sending half of a [`bounded`] channel.
pub struct Sender<T> {
    chan: Arc<Channel<T>>,
}

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while the channel is full. Fails (and
    /// returns the value) once every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self
            .chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            if state.queue.len() < self.chan.capacity {
                state.queue.push_back(value);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .chan
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self
            .chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        state.senders -= 1;
        if state.senders == 0 {
            // Wake receivers so they can observe disconnection.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

/// Receiving half of a [`bounded`] channel. Cloneable: multiple workers
/// may drain one queue.
pub struct Receiver<T> {
    chan: Arc<Channel<T>>,
}

impl<T> Receiver<T> {
    /// Dequeues the next value, blocking while the channel is empty.
    /// Fails once the queue is drained and every sender has been
    /// dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self
            .chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .chan
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeues the next value if one is ready right now.
    pub fn try_recv(&self) -> Option<T> {
        let mut state = self
            .chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let value = state.queue.pop_front();
        if value.is_some() {
            self.chan.not_full.notify_one();
        }
        value
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self
            .chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake senders so their blocked sends can fail fast.
            self.chan.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn channel_fifo_and_disconnect() {
        let (tx, rx) = bounded::<u32>(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn bounded_send_blocks_until_drained() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let sent = Arc::new(AtomicUsize::new(0));
        let t = {
            let tx = tx.clone();
            let sent = Arc::clone(&sent);
            std::thread::spawn(move || {
                tx.send(2).unwrap();
                sent.store(1, Ordering::SeqCst);
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(sent.load(Ordering::SeqCst), 0, "send must block when full");
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn mpmc_drains_every_item_exactly_once() {
        let (tx, rx) = bounded::<u64>(64);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }
}
