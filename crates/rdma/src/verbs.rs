//! The classic one-sided RDMA verb set, executed against the simulated
//! arena with rkey validation.
//!
//! [`RdmaNic`] is one host's NIC data plane: it owns a reference to the
//! host's memory and region table and executes remote operations with the
//! same checks and atomicity rules as hardware. The lock-based ABD
//! baseline (§7.2) and FaRM's one-sided reads (§8.1) are built directly
//! on these verbs; PRISM's extended engine lives in `prism-core` and
//! shares the same arena, so PRISM and classic atomics are atomic with
//! respect to each other.

use std::sync::Arc;

use crate::arena::MemoryArena;
use crate::error::RdmaError;
use crate::region::{Access, AccessFlags, RegionTable, Rkey};

/// One host's simulated RDMA NIC data plane.
#[derive(Debug, Clone)]
pub struct RdmaNic {
    arena: Arc<MemoryArena>,
    regions: Arc<RegionTable>,
}

impl RdmaNic {
    /// Creates a NIC over a fresh arena of `mem_len` bytes.
    pub fn new(mem_len: u64) -> Self {
        RdmaNic {
            arena: Arc::new(MemoryArena::new(mem_len)),
            regions: Arc::new(RegionTable::new()),
        }
    }

    /// Creates a NIC sharing an existing arena and region table (used by
    /// the PRISM engine so both verb sets hit the same memory).
    pub fn with_shared(arena: Arc<MemoryArena>, regions: Arc<RegionTable>) -> Self {
        RdmaNic { arena, regions }
    }

    /// The host memory this NIC serves.
    pub fn arena(&self) -> &Arc<MemoryArena> {
        &self.arena
    }

    /// The host's registration table.
    pub fn regions(&self) -> &Arc<RegionTable> {
        &self.regions
    }

    /// Host-side registration helper: registers `[addr, addr+len)`.
    pub fn register(&self, addr: u64, len: u64, flags: AccessFlags) -> Rkey {
        self.regions.register(addr, len, flags)
    }

    /// One-sided READ of `len` bytes at `addr`.
    pub fn read(&self, rkey: Rkey, addr: u64, len: u64) -> Result<Vec<u8>, RdmaError> {
        self.regions.validate(rkey, addr, len, Access::Read)?;
        self.arena.read(addr, len)
    }

    /// One-sided WRITE of `data` at `addr`.
    pub fn write(&self, rkey: Rkey, addr: u64, data: &[u8]) -> Result<(), RdmaError> {
        self.regions
            .validate(rkey, addr, data.len() as u64, Access::Write)?;
        self.arena.write(addr, data)
    }

    /// Classic 64-bit compare-and-swap: if `*addr == compare` then
    /// `*addr = swap`. Returns the previous value either way, as the verb
    /// does on hardware.
    ///
    /// The operand must be 8-byte aligned (InfiniBand requirement).
    pub fn cas64(&self, rkey: Rkey, addr: u64, compare: u64, swap: u64) -> Result<u64, RdmaError> {
        self.check_atomic_target(rkey, addr)?;
        self.arena.atomic(addr, 8, |bytes| {
            let old = u64::from_le_bytes(bytes.try_into().expect("8-byte operand"));
            if old == compare {
                bytes.copy_from_slice(&swap.to_le_bytes());
            }
            old
        })
    }

    /// Classic 64-bit fetch-and-add. Returns the previous value.
    pub fn fetch_add(&self, rkey: Rkey, addr: u64, add: u64) -> Result<u64, RdmaError> {
        self.check_atomic_target(rkey, addr)?;
        self.arena.atomic(addr, 8, |bytes| {
            let old = u64::from_le_bytes(bytes.try_into().expect("8-byte operand"));
            bytes.copy_from_slice(&old.wrapping_add(add).to_le_bytes());
            old
        })
    }

    fn check_atomic_target(&self, rkey: Rkey, addr: u64) -> Result<(), RdmaError> {
        if addr % 8 != 0 {
            return Err(RdmaError::Misaligned { addr, required: 8 });
        }
        self.regions.validate(rkey, addr, 8, Access::Atomic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::MemoryArena;

    fn nic() -> (RdmaNic, Rkey) {
        let nic = RdmaNic::new(4096);
        let k = nic.register(MemoryArena::BASE, 4096, AccessFlags::FULL);
        (nic, k)
    }

    #[test]
    fn read_write_round_trip() {
        let (nic, k) = nic();
        let addr = MemoryArena::BASE + 100;
        nic.write(k, addr, b"hello rdma").unwrap();
        assert_eq!(nic.read(k, addr, 10).unwrap(), b"hello rdma");
    }

    #[test]
    fn rkey_is_required() {
        let (nic, _k) = nic();
        let bogus = Rkey(0xdead);
        assert_eq!(
            nic.read(bogus, MemoryArena::BASE, 8).unwrap_err(),
            RdmaError::InvalidRkey(0xdead)
        );
    }

    #[test]
    fn cas_succeeds_and_fails_correctly() {
        let (nic, k) = nic();
        let addr = MemoryArena::BASE + 64;
        nic.arena().write_u64(addr, 7).unwrap();
        // Matching compare swaps and returns old value.
        assert_eq!(nic.cas64(k, addr, 7, 9).unwrap(), 7);
        assert_eq!(nic.arena().read_u64(addr).unwrap(), 9);
        // Mismatched compare leaves memory alone but still returns old.
        assert_eq!(nic.cas64(k, addr, 7, 11).unwrap(), 9);
        assert_eq!(nic.arena().read_u64(addr).unwrap(), 9);
    }

    #[test]
    fn fetch_add_accumulates() {
        let (nic, k) = nic();
        let addr = MemoryArena::BASE;
        assert_eq!(nic.fetch_add(k, addr, 5).unwrap(), 0);
        assert_eq!(nic.fetch_add(k, addr, 3).unwrap(), 5);
        assert_eq!(nic.arena().read_u64(addr).unwrap(), 8);
    }

    #[test]
    fn atomics_require_alignment() {
        let (nic, k) = nic();
        assert_eq!(
            nic.cas64(k, MemoryArena::BASE + 3, 0, 1).unwrap_err(),
            RdmaError::Misaligned {
                addr: MemoryArena::BASE + 3,
                required: 8
            }
        );
    }

    #[test]
    fn read_only_region_rejects_write_and_atomic() {
        let nic = RdmaNic::new(4096);
        let k = nic.register(MemoryArena::BASE, 64, AccessFlags::READ_ONLY);
        assert!(nic.read(k, MemoryArena::BASE, 8).is_ok());
        assert!(nic.write(k, MemoryArena::BASE, &[0; 8]).is_err());
        assert!(nic.cas64(k, MemoryArena::BASE, 0, 1).is_err());
    }

    #[test]
    fn concurrent_cas_lock_acquisition_is_exclusive() {
        // Model the ABDLOCK pattern: many clients CAS 0 -> id; exactly one
        // must win each round.
        use std::sync::Arc;
        let (nic, k) = nic();
        let nic = Arc::new(nic);
        let addr = MemoryArena::BASE + 8;
        for _round in 0..50 {
            nic.arena().write_u64(addr, 0).unwrap();
            let winners: usize = {
                let handles: Vec<_> = (1..=8u64)
                    .map(|id| {
                        let nic = Arc::clone(&nic);
                        std::thread::spawn(move || {
                            (nic.cas64(k, addr, 0, id).unwrap() == 0) as usize
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            };
            assert_eq!(winners, 1, "exactly one client acquires the lock");
        }
    }
}
