//! The classic one-sided RDMA verb set, executed against the simulated
//! arena with rkey validation.
//!
//! [`RdmaNic`] is one host's NIC data plane: it owns a reference to the
//! host's memory and region table and executes remote operations with the
//! same checks and atomicity rules as hardware. The lock-based ABD
//! baseline (§7.2) and FaRM's one-sided reads (§8.1) are built directly
//! on these verbs; PRISM's extended engine lives in `prism-core` and
//! shares the same arena, so PRISM and classic atomics are atomic with
//! respect to each other.

use std::sync::Arc;

use crate::arena::MemoryArena;
use crate::error::RdmaError;
use crate::region::{Access, AccessFlags, RegionTable, Rkey};

/// One host's simulated RDMA NIC data plane.
#[derive(Debug, Clone)]
pub struct RdmaNic {
    arena: Arc<MemoryArena>,
    regions: Arc<RegionTable>,
}

impl RdmaNic {
    /// Creates a NIC over a fresh arena of `mem_len` bytes.
    pub fn new(mem_len: u64) -> Self {
        RdmaNic {
            arena: Arc::new(MemoryArena::new(mem_len)),
            regions: Arc::new(RegionTable::new()),
        }
    }

    /// Creates a NIC sharing an existing arena and region table (used by
    /// the PRISM engine so both verb sets hit the same memory).
    pub fn with_shared(arena: Arc<MemoryArena>, regions: Arc<RegionTable>) -> Self {
        RdmaNic { arena, regions }
    }

    /// The host memory this NIC serves.
    pub fn arena(&self) -> &Arc<MemoryArena> {
        &self.arena
    }

    /// The host's registration table.
    pub fn regions(&self) -> &Arc<RegionTable> {
        &self.regions
    }

    /// Host-side registration helper: registers `[addr, addr+len)`.
    pub fn register(&self, addr: u64, len: u64, flags: AccessFlags) -> Rkey {
        self.regions.register(addr, len, flags)
    }

    /// One-sided READ of `len` bytes at `addr` into a fresh buffer.
    ///
    /// Thin wrapper over [`RdmaNic::read_into`]; hot paths should reuse
    /// a response buffer instead of allocating per op.
    pub fn read(&self, rkey: Rkey, addr: u64, len: u64) -> Result<Vec<u8>, RdmaError> {
        let mut buf = vec![0u8; len as usize];
        self.read_into(rkey, addr, &mut buf)?;
        Ok(buf)
    }

    /// One-sided READ of `buf.len()` bytes at `addr` into a
    /// caller-provided buffer (zero-alloc fast path).
    pub fn read_into(&self, rkey: Rkey, addr: u64, buf: &mut [u8]) -> Result<(), RdmaError> {
        self.regions
            .validate(rkey, addr, buf.len() as u64, Access::Read)?;
        self.arena.read_into(addr, buf)
    }

    /// One-sided WRITE of `data` at `addr`.
    pub fn write(&self, rkey: Rkey, addr: u64, data: &[u8]) -> Result<(), RdmaError> {
        self.regions
            .validate(rkey, addr, data.len() as u64, Access::Write)?;
        self.arena.write(addr, data)
    }

    /// Classic 64-bit compare-and-swap: if `*addr == compare` then
    /// `*addr = swap`. Returns the previous value either way, as the verb
    /// does on hardware.
    ///
    /// The operand must be 8-byte aligned (InfiniBand requirement).
    pub fn cas64(&self, rkey: Rkey, addr: u64, compare: u64, swap: u64) -> Result<u64, RdmaError> {
        self.check_atomic_target(rkey, addr)?;
        self.arena.atomic(addr, 8, |bytes| {
            let old = u64::from_le_bytes(bytes.try_into().expect("8-byte operand"));
            if old == compare {
                bytes.copy_from_slice(&swap.to_le_bytes());
            }
            old
        })
    }

    /// Classic 64-bit fetch-and-add. Returns the previous value.
    pub fn fetch_add(&self, rkey: Rkey, addr: u64, add: u64) -> Result<u64, RdmaError> {
        self.check_atomic_target(rkey, addr)?;
        self.arena.atomic(addr, 8, |bytes| {
            let old = u64::from_le_bytes(bytes.try_into().expect("8-byte operand"));
            bytes.copy_from_slice(&old.wrapping_add(add).to_le_bytes());
            old
        })
    }

    fn check_atomic_target(&self, rkey: Rkey, addr: u64) -> Result<(), RdmaError> {
        if !addr.is_multiple_of(8) {
            return Err(RdmaError::Misaligned { addr, required: 8 });
        }
        self.regions.validate(rkey, addr, 8, Access::Atomic)
    }

    /// Posts a batch of work requests in one doorbell ring and returns
    /// their completions (allocating form of
    /// [`RdmaNic::post_batch_into`]).
    pub fn post_batch(&self, wrs: &[WorkRequest]) -> Vec<Completion> {
        let mut cq = Vec::new();
        self.post_batch_into(wrs, &mut cq);
        cq
    }

    /// Posts a batch of work requests in one doorbell ring, draining the
    /// completions into `cq` (cleared and reused, including each
    /// completion's data buffer — the zero-alloc steady state).
    ///
    /// This models doorbell batching on a real NIC: the driver chains N
    /// work requests, rings the doorbell once, and polls one completion
    /// batch — amortizing the per-submission overhead that dominates
    /// small-op workloads (Storm; "RDMA vs. RPC"). In the simulation the
    /// saved cost is the per-call bookkeeping; the simnet cost model
    /// separately charges one dispatch instead of N.
    ///
    /// Requests execute in posting order. Completion `i` corresponds to
    /// request `i` (`wr_id == i`); a faulted request yields an error
    /// completion and later requests still execute, as on an unsignaled
    /// queue pair with per-WR completions.
    pub fn post_batch_into(&self, wrs: &[WorkRequest], cq: &mut Vec<Completion>) {
        cq.truncate(wrs.len());
        while cq.len() < wrs.len() {
            cq.push(Completion::default());
        }
        for (i, (wr, c)) in wrs.iter().zip(cq.iter_mut()).enumerate() {
            c.wr_id = i;
            c.error = None;
            let mut data = std::mem::take(&mut c.data);
            data.clear();
            let result = match wr {
                WorkRequest::Read { rkey, addr, len } => {
                    data.resize(*len as usize, 0);
                    self.read_into(*rkey, *addr, &mut data)
                }
                WorkRequest::Write {
                    rkey,
                    addr,
                    data: payload,
                } => self.write(*rkey, *addr, payload),
                WorkRequest::Cas64 {
                    rkey,
                    addr,
                    compare,
                    swap,
                } => self.cas64(*rkey, *addr, *compare, *swap).map(|old| {
                    data.extend_from_slice(&old.to_le_bytes());
                }),
                WorkRequest::FetchAdd { rkey, addr, add } => {
                    self.fetch_add(*rkey, *addr, *add).map(|old| {
                        data.extend_from_slice(&old.to_le_bytes());
                    })
                }
            };
            if let Err(e) = result {
                data.clear();
                c.error = Some(e);
            }
            c.data = data;
        }
    }
}

/// One verb in a doorbell batch (see [`RdmaNic::post_batch_into`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkRequest {
    /// One-sided READ of `len` bytes; the completion carries the data.
    Read {
        /// Region key.
        rkey: Rkey,
        /// Target address.
        addr: u64,
        /// Bytes to read.
        len: u64,
    },
    /// One-sided WRITE of `data`.
    Write {
        /// Region key.
        rkey: Rkey,
        /// Target address.
        addr: u64,
        /// Payload.
        data: Vec<u8>,
    },
    /// Classic 64-bit compare-and-swap; the completion carries the old
    /// value (8 bytes LE).
    Cas64 {
        /// Region key.
        rkey: Rkey,
        /// Target address (8-byte aligned).
        addr: u64,
        /// Expected value.
        compare: u64,
        /// Replacement value.
        swap: u64,
    },
    /// Classic 64-bit fetch-and-add; the completion carries the old
    /// value (8 bytes LE).
    FetchAdd {
        /// Region key.
        rkey: Rkey,
        /// Target address (8-byte aligned).
        addr: u64,
        /// Addend.
        add: u64,
    },
}

/// Completion of one batched work request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Completion {
    /// Index of the work request within its batch.
    pub wr_id: usize,
    /// READ data or atomic old value (8 bytes LE); empty for WRITE.
    pub data: Vec<u8>,
    /// The NACK, if the verb faulted.
    pub error: Option<RdmaError>,
}

impl Completion {
    /// Whether the work request completed without a NACK.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::MemoryArena;

    fn nic() -> (RdmaNic, Rkey) {
        let nic = RdmaNic::new(4096);
        let k = nic.register(MemoryArena::BASE, 4096, AccessFlags::FULL);
        (nic, k)
    }

    #[test]
    fn read_write_round_trip() {
        let (nic, k) = nic();
        let addr = MemoryArena::BASE + 100;
        nic.write(k, addr, b"hello rdma").unwrap();
        assert_eq!(nic.read(k, addr, 10).unwrap(), b"hello rdma");
    }

    #[test]
    fn rkey_is_required() {
        let (nic, _k) = nic();
        let bogus = Rkey(0xdead);
        assert_eq!(
            nic.read(bogus, MemoryArena::BASE, 8).unwrap_err(),
            RdmaError::InvalidRkey(0xdead)
        );
    }

    #[test]
    fn cas_succeeds_and_fails_correctly() {
        let (nic, k) = nic();
        let addr = MemoryArena::BASE + 64;
        nic.arena().write_u64(addr, 7).unwrap();
        // Matching compare swaps and returns old value.
        assert_eq!(nic.cas64(k, addr, 7, 9).unwrap(), 7);
        assert_eq!(nic.arena().read_u64(addr).unwrap(), 9);
        // Mismatched compare leaves memory alone but still returns old.
        assert_eq!(nic.cas64(k, addr, 7, 11).unwrap(), 9);
        assert_eq!(nic.arena().read_u64(addr).unwrap(), 9);
    }

    #[test]
    fn fetch_add_accumulates() {
        let (nic, k) = nic();
        let addr = MemoryArena::BASE;
        assert_eq!(nic.fetch_add(k, addr, 5).unwrap(), 0);
        assert_eq!(nic.fetch_add(k, addr, 3).unwrap(), 5);
        assert_eq!(nic.arena().read_u64(addr).unwrap(), 8);
    }

    #[test]
    fn atomics_require_alignment() {
        let (nic, k) = nic();
        assert_eq!(
            nic.cas64(k, MemoryArena::BASE + 3, 0, 1).unwrap_err(),
            RdmaError::Misaligned {
                addr: MemoryArena::BASE + 3,
                required: 8
            }
        );
    }

    #[test]
    fn read_only_region_rejects_write_and_atomic() {
        let nic = RdmaNic::new(4096);
        let k = nic.register(MemoryArena::BASE, 64, AccessFlags::READ_ONLY);
        assert!(nic.read(k, MemoryArena::BASE, 8).is_ok());
        assert!(nic.write(k, MemoryArena::BASE, &[0; 8]).is_err());
        assert!(nic.cas64(k, MemoryArena::BASE, 0, 1).is_err());
    }

    #[test]
    fn read_into_matches_read() {
        let (nic, k) = nic();
        let addr = MemoryArena::BASE + 256;
        nic.write(k, addr, &[0xAB; 96]).unwrap();
        let mut buf = [0u8; 96];
        nic.read_into(k, addr, &mut buf).unwrap();
        assert_eq!(buf.to_vec(), nic.read(k, addr, 96).unwrap());
        assert!(matches!(
            nic.read_into(Rkey(0xbad), addr, &mut buf),
            Err(RdmaError::InvalidRkey(0xbad))
        ));
    }

    #[test]
    fn doorbell_batch_executes_in_order_with_per_wr_completions() {
        let (nic, k) = nic();
        let a = MemoryArena::BASE;
        nic.arena().write_u64(a + 64, 10).unwrap();
        let wrs = vec![
            WorkRequest::Write {
                rkey: k,
                addr: a,
                data: b"batched!".to_vec(),
            },
            WorkRequest::Read {
                rkey: k,
                addr: a,
                len: 8,
            },
            WorkRequest::FetchAdd {
                rkey: k,
                addr: a + 64,
                add: 5,
            },
            WorkRequest::Cas64 {
                rkey: k,
                addr: a + 64,
                compare: 15,
                swap: 99,
            },
            // A faulted WR must not abort the rest of the batch.
            WorkRequest::Read {
                rkey: Rkey(0xdead),
                addr: a,
                len: 8,
            },
        ];
        let cq = nic.post_batch(&wrs);
        assert_eq!(cq.len(), 5);
        assert!(cq[0].is_ok() && cq[0].data.is_empty());
        assert_eq!(cq[1].data, b"batched!");
        assert_eq!(cq[2].data, 10u64.to_le_bytes());
        assert_eq!(cq[3].data, 15u64.to_le_bytes());
        assert_eq!(cq[4].error, Some(RdmaError::InvalidRkey(0xdead)));
        assert_eq!(nic.arena().read_u64(a + 64).unwrap(), 99);
        assert_eq!(
            cq.iter().map(|c| c.wr_id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn completion_queue_buffers_are_reused() {
        let (nic, k) = nic();
        let a = MemoryArena::BASE;
        let wrs = vec![WorkRequest::Read {
            rkey: k,
            addr: a,
            len: 512,
        }];
        let mut cq = Vec::new();
        nic.post_batch_into(&wrs, &mut cq);
        let cap_before = cq[0].data.capacity();
        let ptr_before = cq[0].data.as_ptr();
        nic.post_batch_into(&wrs, &mut cq);
        assert_eq!(cq[0].data.capacity(), cap_before);
        assert_eq!(
            cq[0].data.as_ptr(),
            ptr_before,
            "data buffer must be reused"
        );
    }

    #[test]
    fn concurrent_cas_lock_acquisition_is_exclusive() {
        // Model the ABDLOCK pattern: many clients CAS 0 -> id; exactly one
        // must win each round.
        use std::sync::Arc;
        let (nic, k) = nic();
        let nic = Arc::new(nic);
        let addr = MemoryArena::BASE + 8;
        for _round in 0..50 {
            nic.arena().write_u64(addr, 0).unwrap();
            let winners: usize = {
                let handles: Vec<_> = (1..=8u64)
                    .map(|id| {
                        let nic = Arc::clone(&nic);
                        std::thread::spawn(move || {
                            (nic.cas64(k, addr, 0, id).unwrap() == 0) as usize
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            };
            assert_eq!(winners, 1, "exactly one client acquires the lock");
        }
    }
}
