//! On-disk formats: segment header, record frames, and the manifest.
//!
//! Every file begins with a fixed 20-byte header — magic (8 B ASCII
//! tag), version (u16 LE), flags (u16 LE), reserved (u32 LE), then a
//! CRC32 over those 16 bytes — so a damaged header is detected before
//! any record is trusted. Records are length-prefixed and carry their
//! own CRC over the entire frame body, so a torn tail or a rotted bit
//! surfaces as a typed [`StoreError`], never as silently-wrong bytes.
//!
//! ```text
//! segment file            record frame (repeated after header)
//! +------------------+    +-------------------------------------+
//! | magic    8 B     |    | len       u32 LE   payload length   |
//! | version  u16 LE  |    | epoch     u64 LE                    |
//! | flags    u16 LE  |    | inc       u64 LE   incarnation      |
//! | reserved u32 LE  |    | key       u64 LE   slot / block id  |
//! | hdr_crc  u32 LE  |    | payload   len B                     |
//! +------------------+    | crc       u32 LE   over all above   |
//! | record frames …  |    +-------------------------------------+
//! ```
//!
//! The manifest (`PRSMMAN1`) shares the header, then holds a count and
//! `(seq, len, records)` per sealed segment, a checkpoint sequence
//! number (segments below it are fully covered by a checkpoint fold
//! and replay skips decoding them), all closed by a CRC over the entry
//! table. Manifests written before the checkpoint field existed are
//! exactly four bytes shorter; decode accepts both lengths, reading
//! the legacy form as checkpoint 0 (nothing covered).

use prism_core::crc::crc32;

/// Magic tag opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"PRSMSEG1";
/// Magic tag opening the manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"PRSMMAN1";
/// Current format version for both file kinds.
pub const VERSION: u16 = 1;
/// Fixed header length (magic + version + flags + reserved + CRC).
pub const HEADER_LEN: usize = 20;
/// Record frame overhead: len + epoch + inc + key prefix plus the CRC.
pub const FRAME_OVERHEAD: usize = 4 + 8 + 8 + 8 + 4;
/// Ceiling on a record payload; a corrupted length field past this is
/// rejected as [`StoreError::RecordOverrun`] instead of driving a huge
/// allocation.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Typed decode failure. Every way a header, record, or manifest can be
/// damaged maps to one of these — decode never panics and never accepts
/// bytes whose CRC disagrees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// Fewer than [`HEADER_LEN`] bytes where a header must be.
    HeaderTruncated,
    /// The 8-byte magic tag does not match the expected file kind.
    BadMagic,
    /// Unknown format version.
    BadVersion { seen: u16 },
    /// Flags word carries bits this version does not define.
    BadFlags { seen: u16 },
    /// Header CRC mismatch.
    HeaderCorrupt { seen: u32, want: u32 },
    /// A record frame runs past the end of the segment (torn write).
    RecordTruncated,
    /// A record length field exceeds [`MAX_PAYLOAD`].
    RecordOverrun { len: u32 },
    /// Record CRC mismatch (bit rot or a tear inside the frame).
    RecordCorrupt { seen: u32, want: u32 },
    /// The manifest ends before its declared entry table.
    ManifestTruncated,
    /// Manifest entry-table CRC mismatch.
    ManifestCorrupt { seen: u32, want: u32 },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::HeaderTruncated => write!(f, "file shorter than its header"),
            StoreError::BadMagic => write!(f, "magic tag mismatch"),
            StoreError::BadVersion { seen } => write!(f, "unknown format version {seen}"),
            StoreError::BadFlags { seen } => write!(f, "undefined flag bits {seen:#06x}"),
            StoreError::HeaderCorrupt { seen, want } => {
                write!(f, "header crc {seen:#010x} != {want:#010x}")
            }
            StoreError::RecordTruncated => write!(f, "record frame torn at end of segment"),
            StoreError::RecordOverrun { len } => {
                write!(f, "record length {len} exceeds payload ceiling")
            }
            StoreError::RecordCorrupt { seen, want } => {
                write!(f, "record crc {seen:#010x} != {want:#010x}")
            }
            StoreError::ManifestTruncated => write!(f, "manifest shorter than its entry table"),
            StoreError::ManifestCorrupt { seen, want } => {
                write!(f, "manifest crc {seen:#010x} != {want:#010x}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// One durable record: the unit of replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Cluster epoch in force when the record was appended; replay uses
    /// it to fence entries whose home moved in a reshard.
    pub epoch: u64,
    /// Server incarnation that wrote the record.
    pub inc: u64,
    /// Application key: KV slot index or RS block index.
    pub key: u64,
    /// Application payload (self-verifying entry or block image; empty
    /// payloads are tombstones/fences by caller convention).
    pub payload: Vec<u8>,
}

/// Manifest entry for one sealed (immutable, fully synced) segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealedSeg {
    pub seq: u32,
    pub len: u64,
    pub records: u32,
}

/// Decoded manifest contents: the sealed-segment table plus the
/// checkpoint watermark.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Sealed segments, in sequence order.
    pub sealed: Vec<SealedSeg>,
    /// Segments with `seq < checkpoint` are fully covered by a
    /// checkpoint fold (written into segment `checkpoint` itself) and
    /// replay may skip decoding them. Zero means nothing is covered.
    pub checkpoint: u32,
}

/// Encodes a file header for the given magic tag.
pub fn encode_header(magic: &[u8; 8]) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(magic);
    h[8..10].copy_from_slice(&VERSION.to_le_bytes());
    // flags (2 B) and reserved (4 B) stay zero in version 1.
    let crc = crc32(&h[..16]);
    h[16..20].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Validates a file header against the expected magic tag.
pub fn decode_header(bytes: &[u8], magic: &[u8; 8]) -> Result<(), StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::HeaderTruncated);
    }
    let want = crc32(&bytes[..16]);
    let seen = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    if seen != want {
        return Err(StoreError::HeaderCorrupt { seen, want });
    }
    if &bytes[..8] != magic {
        return Err(StoreError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
    if version != VERSION {
        return Err(StoreError::BadVersion { seen: version });
    }
    let flags = u16::from_le_bytes(bytes[10..12].try_into().unwrap());
    if flags != 0 {
        return Err(StoreError::BadFlags { seen: flags });
    }
    Ok(())
}

/// Appends one record frame to `out`.
pub fn encode_record_into(rec: &Record, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&(rec.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&rec.epoch.to_le_bytes());
    out.extend_from_slice(&rec.inc.to_le_bytes());
    out.extend_from_slice(&rec.key.to_le_bytes());
    out.extend_from_slice(&rec.payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Decodes one record frame from the front of `bytes`, returning the
/// record and the number of bytes consumed.
pub fn decode_record(bytes: &[u8]) -> Result<(Record, usize), StoreError> {
    if bytes.len() < FRAME_OVERHEAD {
        return Err(StoreError::RecordTruncated);
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(StoreError::RecordOverrun { len });
    }
    let total = FRAME_OVERHEAD + len as usize;
    if bytes.len() < total {
        return Err(StoreError::RecordTruncated);
    }
    let body = total - 4;
    let want = crc32(&bytes[..body]);
    let seen = u32::from_le_bytes(bytes[body..total].try_into().unwrap());
    if seen != want {
        return Err(StoreError::RecordCorrupt { seen, want });
    }
    Ok((
        Record {
            epoch: u64::from_le_bytes(bytes[4..12].try_into().unwrap()),
            inc: u64::from_le_bytes(bytes[12..20].try_into().unwrap()),
            key: u64::from_le_bytes(bytes[20..28].try_into().unwrap()),
            payload: bytes[28..body].to_vec(),
        },
        total,
    ))
}

/// Encodes the full manifest file (header + entry table + checkpoint +
/// table CRC, the CRC covering the checkpoint field too).
pub fn encode_manifest(sealed: &[SealedSeg], checkpoint: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + 12 + sealed.len() * 16);
    out.extend_from_slice(&encode_header(MANIFEST_MAGIC));
    let table_start = out.len();
    out.extend_from_slice(&(sealed.len() as u32).to_le_bytes());
    for s in sealed {
        out.extend_from_slice(&s.seq.to_le_bytes());
        out.extend_from_slice(&s.len.to_le_bytes());
        out.extend_from_slice(&s.records.to_le_bytes());
    }
    out.extend_from_slice(&checkpoint.to_le_bytes());
    let crc = crc32(&out[table_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes a full manifest file. Accepts both the current layout
/// (entry table + checkpoint + CRC) and the pre-checkpoint legacy
/// layout (entry table + CRC, exactly four bytes shorter), which reads
/// as checkpoint 0; any other length is a typed truncation error.
pub fn decode_manifest(bytes: &[u8]) -> Result<Manifest, StoreError> {
    decode_header(bytes, MANIFEST_MAGIC)?;
    let rest = &bytes[HEADER_LEN..];
    if rest.len() < 8 {
        return Err(StoreError::ManifestTruncated);
    }
    let count = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
    let table = 4 + count * 16;
    let body = if rest.len() == table + 8 {
        table + 4 // current layout: checkpoint rides inside the CRC
    } else if rest.len() == table + 4 {
        table // legacy layout: no checkpoint field
    } else {
        return Err(StoreError::ManifestTruncated);
    };
    let want = crc32(&rest[..body]);
    let seen = u32::from_le_bytes(rest[body..body + 4].try_into().unwrap());
    if seen != want {
        return Err(StoreError::ManifestCorrupt { seen, want });
    }
    let mut sealed = Vec::with_capacity(count);
    for i in 0..count {
        let e = &rest[4 + i * 16..4 + (i + 1) * 16];
        sealed.push(SealedSeg {
            seq: u32::from_le_bytes(e[0..4].try_into().unwrap()),
            len: u64::from_le_bytes(e[4..12].try_into().unwrap()),
            records: u32::from_le_bytes(e[12..16].try_into().unwrap()),
        });
    }
    let checkpoint = if body == table {
        0
    } else {
        u32::from_le_bytes(rest[table..table + 4].try_into().unwrap())
    };
    Ok(Manifest { sealed, checkpoint })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips() {
        let rec = Record {
            epoch: 3,
            inc: 7,
            key: 42,
            payload: vec![9u8; 65],
        };
        let mut buf = Vec::new();
        encode_record_into(&rec, &mut buf);
        let (back, used) = decode_record(&buf).unwrap();
        assert_eq!(back, rec);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn header_roundtrips_and_rejects_wrong_magic() {
        let h = encode_header(SEGMENT_MAGIC);
        assert_eq!(decode_header(&h, SEGMENT_MAGIC), Ok(()));
        assert_eq!(decode_header(&h, MANIFEST_MAGIC), Err(StoreError::BadMagic));
    }

    #[test]
    fn manifest_roundtrips() {
        let sealed = vec![
            SealedSeg {
                seq: 0,
                len: 4096,
                records: 31,
            },
            SealedSeg {
                seq: 1,
                len: 4100,
                records: 32,
            },
        ];
        let bytes = encode_manifest(&sealed, 2);
        let m = decode_manifest(&bytes).unwrap();
        assert_eq!(m.sealed, sealed);
        assert_eq!(m.checkpoint, 2);
    }

    #[test]
    fn legacy_manifest_without_checkpoint_still_decodes() {
        // A pre-checkpoint manifest: entry table closed directly by the
        // CRC, no checkpoint word. Current decode must read it as
        // checkpoint 0 so old disks replay in full.
        let sealed = [SealedSeg {
            seq: 3,
            len: 512,
            records: 7,
        }];
        let mut out = Vec::new();
        out.extend_from_slice(&encode_header(MANIFEST_MAGIC));
        let table_start = out.len();
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&sealed[0].seq.to_le_bytes());
        out.extend_from_slice(&sealed[0].len.to_le_bytes());
        out.extend_from_slice(&sealed[0].records.to_le_bytes());
        let crc = crc32(&out[table_start..]);
        out.extend_from_slice(&crc.to_le_bytes());
        let m = decode_manifest(&out).unwrap();
        assert_eq!(m.sealed, sealed);
        assert_eq!(m.checkpoint, 0);
    }

    #[test]
    fn truncated_record_is_typed_not_panic() {
        let rec = Record {
            epoch: 1,
            inc: 1,
            key: 1,
            payload: vec![5; 40],
        };
        let mut buf = Vec::new();
        encode_record_into(&rec, &mut buf);
        for cut in 0..buf.len() {
            let err = decode_record(&buf[..cut]).unwrap_err();
            assert!(matches!(
                err,
                StoreError::RecordTruncated
                    | StoreError::RecordCorrupt { .. }
                    | StoreError::RecordOverrun { .. }
            ));
        }
    }
}
