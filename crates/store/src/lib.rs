//! Simulated-disk durable tier for PRISM servers.
//!
//! Amnesia recovery before this crate rebuilt a wiped server purely from
//! quorum resync over the network. `prism-store` gives each server a
//! local, self-verifying log so a restart can *replay* what the disk
//! kept and fetch only the delta from its peers:
//!
//! * [`SimDisk`] — an in-memory disk with explicit sync points. Bytes
//!   appended after the last `sync` are vulnerable to crash tears;
//!   bytes at rest are vulnerable to scheduled bit rot. Both faults
//!   draw from caller-supplied [`SimRng`] streams so zero-knob plans
//!   stay bit-identical.
//! * [`segment`] — the CRC32-framed on-disk format: a magic + version +
//!   flags header (itself CRC-guarded), length-prefixed records
//!   carrying `(epoch, incarnation, key, payload, record CRC)`, and a
//!   manifest listing sealed segments. Every decode failure is a typed
//!   [`StoreError`]; no input panics or silently passes.
//! * [`SegmentStore`] — append / barrier / replay over a set of
//!   segment files. Replay stops at the first torn or corrupt frame of
//!   each segment, truncates that tail, and rebuilds the manifest from
//!   what actually survived.
//! * [`DurableStats`] — shared counters (`replayed`, `delta_resynced`,
//!   `segments_truncated`) the harness folds into `RunResult` to prove
//!   the recovery-traffic cut.
//!
//! [`SimRng`]: prism_simnet::rng::SimRng

pub mod disk;
pub mod segment;
pub mod store;

pub use disk::SimDisk;
pub use segment::{Manifest, Record, SealedSeg, StoreError};
pub use store::{DurableStats, Replay, SegmentStore};
