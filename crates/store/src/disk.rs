//! In-memory simulated disk with explicit sync points.
//!
//! The durability contract mirrors a real file system's: `append` puts
//! bytes in the page cache, `sync` makes them crash-durable. A crash
//! tear ([`SimDisk::tear_tail`]) can drop any suffix of the *unsynced*
//! region of each file — never synced bytes. At-rest bit rot
//! ([`SimDisk::rot`]) ignores sync entirely: it models media decay and
//! may flip any bit on the disk. Both take a caller-owned [`SimRng`] so
//! fault draws live on dedicated streams and zero-knob plans replay
//! bit-identically.

use std::collections::BTreeMap;
use std::sync::Mutex;

use prism_simnet::rng::SimRng;

#[derive(Default)]
struct DiskFile {
    bytes: Vec<u8>,
    /// Bytes `[0, synced)` survive any crash; the tail past it may tear.
    synced: usize,
}

/// A named-file in-memory disk. All operations are `&self`; a single
/// mutex guards the file table (the simulation is single-threaded, the
/// lock only satisfies `Sync`).
#[derive(Default)]
pub struct SimDisk {
    files: Mutex<BTreeMap<String, DiskFile>>,
}

impl SimDisk {
    pub fn new() -> Self {
        SimDisk::default()
    }

    /// Appends `data` to `name`, creating the file if needed. The new
    /// bytes are *not* durable until [`sync`](SimDisk::sync).
    pub fn append(&self, name: &str, data: &[u8]) {
        let mut files = self.files.lock().unwrap();
        files
            .entry(name.to_string())
            .or_default()
            .bytes
            .extend_from_slice(data);
    }

    /// Makes every byte of `name` crash-durable.
    pub fn sync(&self, name: &str) {
        let mut files = self.files.lock().unwrap();
        if let Some(f) = files.get_mut(name) {
            f.synced = f.bytes.len();
        }
    }

    /// Atomically replaces `name` with `data`, already durable — the
    /// write-temp-then-rename idiom collapsed to one step.
    pub fn write_sync(&self, name: &str, data: &[u8]) {
        let mut files = self.files.lock().unwrap();
        let f = files.entry(name.to_string()).or_default();
        f.bytes = data.to_vec();
        f.synced = f.bytes.len();
    }

    pub fn read(&self, name: &str) -> Option<Vec<u8>> {
        self.files
            .lock()
            .unwrap()
            .get(name)
            .map(|f| f.bytes.clone())
    }

    pub fn len(&self, name: &str) -> Option<usize> {
        self.files.lock().unwrap().get(name).map(|f| f.bytes.len())
    }

    pub fn is_empty(&self) -> bool {
        self.files.lock().unwrap().is_empty()
    }

    /// Truncates `name` to `len` bytes (used by replay to cut a torn or
    /// corrupt tail). The synced watermark is clamped alongside.
    pub fn truncate(&self, name: &str, len: usize) {
        let mut files = self.files.lock().unwrap();
        if let Some(f) = files.get_mut(name) {
            f.bytes.truncate(len);
            f.synced = f.synced.min(len);
        }
    }

    pub fn remove(&self, name: &str) {
        self.files.lock().unwrap().remove(name);
    }

    /// Names of all files starting with `prefix`, in sorted order.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .lock()
            .unwrap()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Crash tear: for every file with an unsynced tail, drop a seeded
    /// suffix of that tail (at least one byte of it). Synced bytes are
    /// untouched. Returns the total bytes dropped. Files are visited in
    /// name order, so a given RNG stream tears deterministically.
    pub fn tear_tail(&self, rng: &mut SimRng) -> u64 {
        let mut files = self.files.lock().unwrap();
        let mut dropped = 0u64;
        for f in files.values_mut() {
            let unsynced = f.bytes.len() - f.synced;
            if unsynced == 0 {
                continue;
            }
            // Keep a seeded prefix of the unsynced region: the crash
            // caught the tail mid-write.
            let keep = rng.gen_range(unsynced as u64) as usize;
            dropped += (unsynced - keep) as u64;
            f.bytes.truncate(f.synced + keep);
            f.synced = f.synced.min(f.bytes.len());
        }
        dropped
    }

    /// At-rest bit rot: flips `bits` seeded bits anywhere on the disk
    /// (sync offers no protection against media decay). Returns the
    /// number of flips applied (0 if the disk is empty).
    pub fn rot(&self, rng: &mut SimRng, bits: u32) -> u32 {
        let mut files = self.files.lock().unwrap();
        let total: usize = files.values().map(|f| f.bytes.len()).sum();
        if total == 0 {
            return 0;
        }
        let mut applied = 0;
        for _ in 0..bits {
            let mut at = rng.gen_range(total as u64) as usize;
            let bit = rng.gen_range(8) as u8;
            for f in files.values_mut() {
                if at < f.bytes.len() {
                    f.bytes[at] ^= 1 << bit;
                    applied += 1;
                    break;
                }
                at -= f.bytes.len();
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tear_never_touches_synced_bytes() {
        let disk = SimDisk::new();
        disk.append("f", b"durable-part");
        disk.sync("f");
        disk.append("f", b"tail-at-risk");
        let mut rng = SimRng::new(7);
        let dropped = disk.tear_tail(&mut rng);
        assert!(dropped >= 1);
        let bytes = disk.read("f").unwrap();
        assert!(bytes.starts_with(b"durable-part"));
        assert!(bytes.len() < b"durable-part".len() + b"tail-at-risk".len());
    }

    #[test]
    fn tear_is_a_noop_on_fully_synced_files() {
        let disk = SimDisk::new();
        disk.append("f", b"all-synced");
        disk.sync("f");
        let mut rng = SimRng::new(7);
        assert_eq!(disk.tear_tail(&mut rng), 0);
        assert_eq!(disk.read("f").unwrap(), b"all-synced");
    }

    #[test]
    fn rot_flips_exactly_the_requested_bits() {
        let disk = SimDisk::new();
        disk.append("f", &[0u8; 64]);
        disk.sync("f");
        let mut rng = SimRng::new(9);
        assert_eq!(disk.rot(&mut rng, 3), 3);
        let ones: u32 = disk.read("f").unwrap().iter().map(|b| b.count_ones()).sum();
        assert!((1..=3).contains(&ones)); // flips may collide
    }

    #[test]
    fn same_seed_tears_identically() {
        let run = |seed| {
            let disk = SimDisk::new();
            disk.append("a", &[1u8; 100]);
            disk.sync("a");
            disk.append("a", &[2u8; 50]);
            disk.append("b", &[3u8; 30]);
            let mut rng = SimRng::new(seed);
            disk.tear_tail(&mut rng);
            (disk.read("a").unwrap(), disk.read("b").unwrap())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
