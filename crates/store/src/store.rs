//! The per-server segment store: append, barrier, replay.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::disk::SimDisk;
use crate::segment::{
    decode_header, decode_manifest, decode_record, encode_header, encode_manifest,
    encode_record_into, Manifest, Record, SealedSeg, HEADER_LEN, SEGMENT_MAGIC,
};

/// Default segment size ceiling; an append past it seals the active
/// segment (sync + manifest update) and opens the next.
pub const DEFAULT_SEGMENT_LIMIT: usize = 8 * 1024;

/// Shared recovery counters, folded into `RunResult` by the harness.
/// Reset at the warmup/measure boundary alongside the integrity stats.
#[derive(Default)]
pub struct DurableStats {
    replayed: AtomicU64,
    delta_resynced: AtomicU64,
    segments_truncated: AtomicU64,
}

impl DurableStats {
    pub fn new() -> Self {
        DurableStats::default()
    }

    pub fn add_replayed(&self, n: u64) {
        self.replayed.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_delta_resynced(&self, n: u64) {
        self.delta_resynced.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_segments_truncated(&self, n: u64) {
        self.segments_truncated.fetch_add(n, Ordering::Relaxed);
    }

    pub fn replayed(&self) -> u64 {
        self.replayed.load(Ordering::Relaxed)
    }

    pub fn delta_resynced(&self) -> u64 {
        self.delta_resynced.load(Ordering::Relaxed)
    }

    pub fn segments_truncated(&self) -> u64 {
        self.segments_truncated.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.replayed.store(0, Ordering::Relaxed);
        self.delta_resynced.store(0, Ordering::Relaxed);
        self.segments_truncated.store(0, Ordering::Relaxed);
    }
}

/// What a [`SegmentStore::replay`] recovered from the local disk.
#[derive(Debug, Default)]
pub struct Replay {
    /// Valid records, in append order. Later records for the same key
    /// supersede earlier ones (last-wins fold is the caller's).
    pub records: Vec<Record>,
    /// Segments whose tail was cut (or whose header was unreadable) —
    /// at least one frame was torn or corrupt.
    pub segments_truncated: u64,
    /// Individual frames rejected by CRC/length validation.
    pub corrupt_frames: u64,
    /// False when the manifest itself failed to decode; replay then
    /// rebuilds it from the segment files found on disk.
    pub manifest_ok: bool,
    /// Sealed segments skipped wholesale because the manifest's
    /// checkpoint covers them — their records live in the checkpoint
    /// fold, so decoding them would be pure waste.
    pub segments_skipped: u64,
}

struct Inner {
    active_seq: u32,
    active_len: usize,
    active_records: u32,
    sealed: Vec<SealedSeg>,
    /// Segments below this sequence are covered by a checkpoint fold
    /// (see [`SegmentStore::checkpoint`]); replay skips decoding them.
    checkpoint: u32,
}

/// Append-only log of CRC-framed segments for one server, on a shared
/// [`SimDisk`]. Appends go to the active segment; once it passes the
/// size limit it is synced, recorded in the manifest, and a fresh
/// segment is opened. `barrier()` is the fsync point: everything
/// appended before it survives any crash tear.
pub struct SegmentStore {
    disk: Arc<SimDisk>,
    prefix: String,
    limit: usize,
    inner: Mutex<Inner>,
}

impl SegmentStore {
    pub fn new(disk: Arc<SimDisk>, prefix: &str) -> Self {
        SegmentStore::with_limit(disk, prefix, DEFAULT_SEGMENT_LIMIT)
    }

    pub fn with_limit(disk: Arc<SimDisk>, prefix: &str, limit: usize) -> Self {
        let store = SegmentStore {
            disk,
            prefix: prefix.to_string(),
            limit,
            inner: Mutex::new(Inner {
                active_seq: 0,
                active_len: HEADER_LEN,
                active_records: 0,
                sealed: Vec::new(),
                checkpoint: 0,
            }),
        };
        store.create_segment(0);
        store
            .disk
            .write_sync(&store.manifest_name(), &encode_manifest(&[], 0));
        store
    }

    pub fn disk(&self) -> &Arc<SimDisk> {
        &self.disk
    }

    fn segment_name(&self, seq: u32) -> String {
        format!("{}/seg-{seq:06}.log", self.prefix)
    }

    fn manifest_name(&self) -> String {
        format!("{}/manifest", self.prefix)
    }

    fn create_segment(&self, seq: u32) {
        // The header is written and synced up front, so a tear can only
        // cost record frames, never the file's identity.
        self.disk
            .write_sync(&self.segment_name(seq), &encode_header(SEGMENT_MAGIC));
    }

    /// Appends one record to the active segment (not yet durable; see
    /// [`barrier`](SegmentStore::barrier)). Seals the segment and opens
    /// the next when the size limit is passed.
    pub fn append(&self, rec: &Record) {
        let mut inner = self.inner.lock().unwrap();
        let mut frame = Vec::with_capacity(crate::segment::FRAME_OVERHEAD + rec.payload.len());
        encode_record_into(rec, &mut frame);
        let name = self.segment_name(inner.active_seq);
        self.disk.append(&name, &frame);
        inner.active_len += frame.len();
        inner.active_records += 1;
        if inner.active_len >= self.limit {
            self.disk.sync(&name);
            let sealed = SealedSeg {
                seq: inner.active_seq,
                len: inner.active_len as u64,
                records: inner.active_records,
            };
            inner.sealed.push(sealed);
            self.disk.write_sync(
                &self.manifest_name(),
                &encode_manifest(&inner.sealed, inner.checkpoint),
            );
            inner.active_seq += 1;
            inner.active_len = HEADER_LEN;
            inner.active_records = 0;
            self.create_segment(inner.active_seq);
        }
    }

    /// Fsync barrier: every record appended so far survives crash tears.
    pub fn barrier(&self) {
        let inner = self.inner.lock().unwrap();
        self.disk.sync(&self.segment_name(inner.active_seq));
    }

    /// Replays the log from disk after an amnesia restart.
    ///
    /// Segments are scanned in sequence order. Within each, decoding
    /// stops at the first torn or corrupt frame and the tail past the
    /// last good frame is physically truncated; a segment whose header
    /// is damaged is dropped wholly (reset to an empty header). The
    /// manifest is consulted as a cross-check only — when it is
    /// unreadable the segment files on disk are the source of truth —
    /// and is rebuilt afterwards to match what actually survived, so
    /// the next replay starts clean. Appends continue in the last
    /// surviving segment.
    pub fn replay(&self) -> Replay {
        let mut inner = self.inner.lock().unwrap();
        let manifest: Option<Manifest> = self
            .disk
            .read(&self.manifest_name())
            .and_then(|b| decode_manifest(&b).ok());
        let mut out = Replay {
            manifest_ok: manifest.is_some(),
            ..Replay::default()
        };
        // The checkpoint watermark is only trusted from an intact
        // manifest: with the manifest gone, everything is rescanned
        // (the fold supersedes covered records under last-wins anyway,
        // so a full scan is slower, never wrong).
        let manifest = manifest.unwrap_or_default();
        let seg_prefix = format!("{}/seg-", self.prefix);
        let names = self.disk.list(&seg_prefix);
        let mut survivors: Vec<SealedSeg> = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let seq = name
                .strip_prefix(&seg_prefix)
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u32>().ok())
                .unwrap_or(i as u32);
            if seq < manifest.checkpoint {
                if let Some(e) = manifest.sealed.iter().find(|e| e.seq == seq) {
                    // Covered by the checkpoint fold: skip decoding.
                    out.segments_skipped += 1;
                    survivors.push(*e);
                    continue;
                }
                // A covered segment the manifest does not list (it
                // should): fall through to the full scan.
            }
            let bytes = self.disk.read(name).unwrap_or_default();
            if let Err(_e) = decode_header(&bytes, SEGMENT_MAGIC) {
                // Unreadable identity: nothing in this segment can be
                // trusted. Reset it to an empty, well-formed segment.
                out.segments_truncated += 1;
                out.corrupt_frames += 1;
                self.create_segment(seq);
                survivors.push(SealedSeg {
                    seq,
                    len: HEADER_LEN as u64,
                    records: 0,
                });
                continue;
            }
            let mut off = HEADER_LEN;
            let mut records = 0u32;
            let mut torn = false;
            while off < bytes.len() {
                match decode_record(&bytes[off..]) {
                    Ok((rec, used)) => {
                        out.records.push(rec);
                        off += used;
                        records += 1;
                    }
                    Err(_e) => {
                        // First bad frame: cut the tail, keep the
                        // prefix. Anything lost here is healed from
                        // replicas by the delta resync.
                        out.corrupt_frames += 1;
                        out.segments_truncated += 1;
                        self.disk.truncate(name, off);
                        torn = true;
                        break;
                    }
                }
            }
            let len = if torn { off } else { bytes.len() };
            survivors.push(SealedSeg {
                seq,
                len: len as u64,
                records,
            });
        }
        // Rebuild bookkeeping from the survivors: all but the last are
        // sealed, the last becomes the active segment again.
        let active = survivors.pop().unwrap_or(SealedSeg {
            seq: 0,
            len: HEADER_LEN as u64,
            records: 0,
        });
        if names.is_empty() {
            self.create_segment(active.seq);
        }
        for s in &survivors {
            self.disk.sync(&self.segment_name(s.seq));
        }
        self.disk.sync(&self.segment_name(active.seq));
        self.disk.write_sync(
            &self.manifest_name(),
            &encode_manifest(&survivors, manifest.checkpoint),
        );
        inner.active_seq = active.seq;
        inner.active_len = active.len as usize;
        inner.active_records = active.records;
        inner.sealed = survivors;
        inner.checkpoint = manifest.checkpoint;
        out
    }

    /// Takes a checkpoint: seals the active segment, writes `fold` —
    /// the caller's compact full-state image (latest record per live
    /// key) — into a fresh segment, syncs it, and only then advances
    /// the manifest's checkpoint watermark past every older segment.
    /// From then on [`SegmentStore::replay`] skips decoding the covered
    /// segments entirely: the fold supersedes their records under the
    /// last-wins fold, so replay cost is bounded by live state plus the
    /// appends since the last checkpoint instead of log history. The
    /// ordering makes the cut crash-safe — a crash before the manifest
    /// write leaves the old watermark and a full (correct) replay; rot
    /// inside the fold is caught by the frame CRCs and healed from
    /// replicas like any other damaged segment.
    pub fn checkpoint(&self, fold: &[Record]) {
        let mut inner = self.inner.lock().unwrap();
        // Seal the active segment as-is.
        let name = self.segment_name(inner.active_seq);
        self.disk.sync(&name);
        let sealed = SealedSeg {
            seq: inner.active_seq,
            len: inner.active_len as u64,
            records: inner.active_records,
        };
        inner.sealed.push(sealed);
        // Write the fold into the next segment and make it durable.
        let seq = inner.active_seq + 1;
        self.create_segment(seq);
        let name = self.segment_name(seq);
        let mut bytes = Vec::new();
        for rec in fold {
            encode_record_into(rec, &mut bytes);
        }
        self.disk.append(&name, &bytes);
        self.disk.sync(&name);
        inner.active_seq = seq;
        inner.active_len = HEADER_LEN + bytes.len();
        inner.active_records = fold.len() as u32;
        inner.checkpoint = seq;
        self.disk
            .write_sync(&self.manifest_name(), &encode_manifest(&inner.sealed, seq));
    }

    /// Drops every file of this store and reopens it empty — the
    /// fresh-replica (no local disk) baseline.
    pub fn wipe(&self) {
        let mut inner = self.inner.lock().unwrap();
        for name in self.disk.list(&format!("{}/", self.prefix)) {
            self.disk.remove(&name);
        }
        inner.active_seq = 0;
        inner.active_len = HEADER_LEN;
        inner.active_records = 0;
        inner.sealed.clear();
        inner.checkpoint = 0;
        self.create_segment(0);
        self.disk
            .write_sync(&self.manifest_name(), &encode_manifest(&[], 0));
    }

    /// Sealed-segment manifest as currently tracked (for tests).
    pub fn sealed(&self) -> Vec<SealedSeg> {
        self.inner.lock().unwrap().sealed.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_simnet::rng::SimRng;

    fn rec(key: u64, fill: u8) -> Record {
        Record {
            epoch: 1,
            inc: 1,
            key,
            payload: vec![fill; 48],
        }
    }

    fn store() -> SegmentStore {
        SegmentStore::with_limit(Arc::new(SimDisk::new()), "s0", 512)
    }

    #[test]
    fn append_replay_roundtrips_across_seals() {
        let s = store();
        for i in 0..40 {
            s.append(&rec(i, i as u8));
        }
        s.barrier();
        assert!(!s.sealed().is_empty(), "limit 512 must force seals");
        let replay = s.replay();
        assert_eq!(replay.records.len(), 40);
        assert_eq!(replay.segments_truncated, 0);
        assert!(replay.manifest_ok);
        for (i, r) in replay.records.iter().enumerate() {
            assert_eq!(r.key, i as u64);
        }
    }

    #[test]
    fn torn_tail_is_truncated_and_synced_prefix_survives() {
        // Large limit: no seal (which would sync) before the tear.
        let s = SegmentStore::with_limit(Arc::new(SimDisk::new()), "s0", 4096);
        for i in 0..4 {
            s.append(&rec(i, 7));
        }
        s.barrier();
        for i in 4..7 {
            s.append(&rec(i, 8));
        }
        // No barrier: records 4..7 ride in the unsynced tail.
        let mut rng = SimRng::new(3);
        assert!(s.disk().tear_tail(&mut rng) > 0);
        let replay = s.replay();
        assert!(replay.records.len() >= 4, "synced records must survive");
        assert!(replay.records.len() < 7, "the tear must cost something");
        for (i, r) in replay.records.iter().enumerate() {
            assert_eq!(r.key, i as u64, "surviving prefix is in order");
        }
        // A second replay of the truncated log is clean and identical.
        let again = s.replay();
        assert_eq!(again.records, replay.records);
        assert_eq!(again.segments_truncated, 0);
    }

    #[test]
    fn rotted_frame_is_detected_never_misread() {
        let s = store();
        for i in 0..10 {
            s.append(&rec(i, 9));
        }
        s.barrier();
        let mut rng = SimRng::new(11);
        s.disk().rot(&mut rng, 4);
        let replay = s.replay();
        // Whatever survives decodes exactly as written (CRC passed);
        // damaged frames only ever shorten the result.
        for r in &replay.records {
            assert_eq!(r.payload, vec![9u8; 48]);
        }
        assert!(replay.records.len() <= 10);
    }

    #[test]
    fn appends_continue_after_replay() {
        let s = store();
        for i in 0..5 {
            s.append(&rec(i, 1));
        }
        s.barrier();
        s.replay();
        for i in 5..10 {
            s.append(&rec(i, 2));
        }
        s.barrier();
        let replay = s.replay();
        assert_eq!(replay.records.len(), 10);
    }

    #[test]
    fn checkpoint_bounds_replay_and_preserves_state() {
        let s = store();
        for i in 0..40 {
            s.append(&rec(i % 8, i as u8));
        }
        s.barrier();
        let full = s.replay();
        assert_eq!(full.records.len(), 40);
        assert_eq!(full.segments_skipped, 0);
        // Fold: latest record per key (what a caller would checkpoint).
        let mut latest: std::collections::BTreeMap<u64, Record> = Default::default();
        for r in &full.records {
            latest.insert(r.key, r.clone());
        }
        let fold: Vec<Record> = latest.into_values().collect();
        s.checkpoint(&fold);
        let after = s.replay();
        assert!(
            after.segments_skipped > 0,
            "covered segments must be skipped"
        );
        assert_eq!(
            after.records.len(),
            fold.len(),
            "replay decodes only the fold, not the covered history"
        );
        // The fold carries the same final state the full log did.
        let mut from_fold: std::collections::BTreeMap<u64, &Record> = Default::default();
        for r in &after.records {
            from_fold.insert(r.key, r);
        }
        for r in &full.records {
            assert_eq!(from_fold[&r.key].payload.len(), r.payload.len());
        }
        // Appends continue past the checkpoint and replay picks them up.
        s.append(&rec(100, 5));
        s.barrier();
        let more = s.replay();
        assert_eq!(more.records.len(), fold.len() + 1);
        assert!(more.segments_skipped >= after.segments_skipped);
    }

    #[test]
    fn lost_manifest_falls_back_to_full_scan_not_data_loss() {
        let s = store();
        for i in 0..30 {
            s.append(&rec(i, 1));
        }
        s.barrier();
        let fold: Vec<Record> = s.replay().records;
        s.checkpoint(&fold);
        // Destroy the manifest: the checkpoint watermark is gone, so
        // replay rescans everything — slower, but the last-wins fold
        // still lands on the same state because the fold segment sorts
        // after every covered segment.
        s.disk().remove(&format!("{}/manifest", "s0"));
        let r = s.replay();
        assert!(!r.manifest_ok);
        assert_eq!(r.segments_skipped, 0, "no manifest, no skipping");
        assert!(
            r.records.len() >= 2 * fold.len(),
            "full history rescanned ({} records)",
            r.records.len()
        );
    }

    #[test]
    fn wipe_leaves_an_empty_openable_store() {
        let s = store();
        for i in 0..20 {
            s.append(&rec(i, 3));
        }
        s.barrier();
        s.wipe();
        let replay = s.replay();
        assert!(replay.records.is_empty());
        assert_eq!(replay.segments_truncated, 0);
        s.append(&rec(0, 4));
        s.barrier();
        assert_eq!(s.replay().records.len(), 1);
    }
}
