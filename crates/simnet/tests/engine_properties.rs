//! Property tests for the DES kernel: determinism, event ordering, and
//! histogram accuracy under arbitrary inputs. Runs on the in-repo
//! `prism-testkit` harness; failures print a `PRISM_TEST_SEED` for
//! exact replay.

use prism_simnet::engine::{Actor, Context, Simulation};
use prism_simnet::metrics::Histogram;
use prism_simnet::resources::{LinkShaper, ServiceCenter};
use prism_simnet::time::{SimDuration, SimTime};
use prism_testkit::{for_all, gens, Config};

/// Records delivery times to verify global ordering.
struct Recorder;

impl Actor<u64> for Recorder {
    fn on_message(&mut self, delay: u64, ctx: &mut Context<'_, u64>) {
        let now = ctx.now().as_nanos();
        let last = ctx.metrics().counter("last");
        assert!(now >= last, "events delivered out of time order");
        // Counters only grow; emulate set-by-delta.
        ctx.metrics().add("last", now - last);
        if delay > 0 {
            let me = ctx.self_id();
            ctx.send_in(me, SimDuration::from_nanos(delay % 1000), delay / 2);
        }
    }
}

/// Delivery respects virtual time order for any seed schedule.
#[test]
fn events_in_time_order() {
    let gen = gens::vec(gens::range_u64(1..100_000), 1..50);
    for_all(
        "events_in_time_order",
        &Config::with_cases(64),
        &gen,
        |delays| {
            let mut sim = Simulation::new(0);
            let a = sim.add_actor(Box::new(Recorder));
            for &d in delays {
                sim.post(a, d);
            }
            sim.run();
        },
    );
}

/// Identical seeds and schedules give identical final clocks.
#[test]
fn runs_are_deterministic() {
    let gen = gens::t2(gens::u64s(), gens::vec(gens::range_u64(1..10_000), 1..20));
    for_all(
        "runs_are_deterministic",
        &Config::with_cases(64),
        &gen,
        |(seed, delays)| {
            let run = |seed: u64, delays: &[u64]| {
                let mut sim = Simulation::new(seed);
                let a = sim.add_actor(Box::new(Recorder));
                for &d in delays {
                    sim.post(a, d);
                }
                sim.run();
                sim.now()
            };
            assert_eq!(run(*seed, delays), run(*seed, delays));
        },
    );
}

/// Histogram means are exact (sum-based), quantiles within bucket
/// error, for arbitrary sample sets.
#[test]
fn histogram_mean_exact() {
    let gen = gens::vec(gens::range_u64(1..10_000_000), 1..200);
    for_all(
        "histogram_mean_exact",
        &Config::with_cases(64),
        &gen,
        |samples| {
            let mut h = Histogram::new();
            for &s in samples {
                h.record(SimDuration::from_nanos(s));
            }
            let expected = samples.iter().sum::<u64>() as f64 / samples.len() as f64 / 1000.0;
            assert!((h.mean_micros() - expected).abs() < 1e-6);
            let max = *samples.iter().max().expect("nonempty") as f64 / 1000.0;
            assert!((h.max_micros() - max).abs() < 1e-9);
            // p100 quantile lands within ~2% of the max.
            let p100 = h.quantile_micros(1.0);
            assert!((p100 - max).abs() / max < 0.02, "p100 {p100} max {max}");
        },
    );
}

/// A link never reorders and never exceeds its bandwidth: total
/// serialization time >= bytes / bandwidth.
#[test]
fn link_conserves_bandwidth() {
    let gen = gens::vec(
        gens::t2(gens::range_u64(0..10_000), gens::range_u64(1..5_000)),
        1..50,
    );
    for_all(
        "link_conserves_bandwidth",
        &Config::with_cases(64),
        &gen,
        |msgs| {
            let mut link = LinkShaper::new_gbps(8.0); // 1 byte/ns
            let mut last_done = SimTime::ZERO;
            let mut total_bytes = 0u64;
            let mut first_start = None;
            for &(at, bytes) in msgs {
                let t = SimTime::from_nanos(at);
                let done = link.transmit(t, bytes);
                assert!(done >= last_done, "FIFO order violated");
                last_done = done;
                total_bytes += bytes;
                first_start.get_or_insert(t.max(SimTime::ZERO));
            }
            // last bit leaves no earlier than total_bytes ns after the
            // first transmission could have started.
            assert!(
                last_done.as_nanos() >= total_bytes,
                "{} bytes done at {}ns",
                total_bytes,
                last_done.as_nanos()
            );
        },
    );
}

/// A service center with k workers never runs more than k jobs
/// concurrently: total busy time across any window <= k * window.
#[test]
fn service_center_capacity() {
    let gen = gens::t2(
        gens::vec(
            gens::t2(gens::range_u64(0..100_000), gens::range_u64(1..10_000)),
            1..60,
        ),
        gens::range_usize(1..8),
    );
    for_all(
        "service_center_capacity",
        &Config::with_cases(64),
        &gen,
        |(jobs, workers)| {
            let workers = *workers;
            let mut sc = ServiceCenter::new(workers);
            let mut max_done = 0u64;
            let mut min_start = u64::MAX;
            for &(at, service) in jobs {
                let done = sc.admit(SimTime::from_nanos(at), SimDuration::from_nanos(service));
                max_done = max_done.max(done.as_nanos());
                min_start = min_start.min(at);
            }
            let busy: u64 = jobs.iter().map(|&(_, s)| s).sum();
            let window = max_done - min_start;
            assert!(
                busy <= window * workers as u64 + 1,
                "busy {busy} > {workers} x {window}"
            );
        },
    );
}
