//! Differential property test: the timer-wheel event queue is
//! observationally equivalent to the binary-heap oracle
//! ([`QueueKind::Heap`], the original kernel queue).
//!
//! Random schedule scripts — mixed-magnitude delays spanning every wheel
//! level, same-instant ties, fan-out cascades from inside callbacks, and
//! `run_until` segmentation at arbitrary deadlines — must produce
//! *identical* delivery logs (time, item, destination, in order) and
//! identical final clocks on both queues. Failures shrink to a minimal
//! script and print a `PRISM_TEST_SEED` for exact replay.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use prism_simnet::engine::{Actor, ActorId, Context, QueueKind, Simulation};
use prism_simnet::time::{SimDuration, SimTime};
use prism_testkit::{for_all, gens, Config};

const ACTORS: usize = 3;
const DELIVERY_BUDGET: u32 = 400;

/// One script item: a delay (built from a magnitude and raw bits, so
/// delays cover everything from 0 ns ties to multi-level wheel hops) and
/// a fan-out count for messages scheduled from inside the callback.
type Script = Vec<(u64, u64, u64)>;

fn item_delay(shift: u64, raw: u64) -> u64 {
    // Uniform in [0, 2^(shift % 45)): small shifts exercise level-0
    // batching, large ones the upper wheel levels and their carries.
    raw & ((1u64 << (shift % 45)) - 1)
}

/// Replays `script` on the given queue implementation and returns the
/// full delivery log plus the clock observed after every segment.
fn run_script(
    kind: QueueKind,
    script: &Script,
    deadlines: &[u64],
) -> (Vec<(u64, u64, u64)>, Vec<u64>) {
    struct Node {
        log: Rc<RefCell<Vec<(u64, u64, u64)>>>,
        script: Rc<Script>,
        budget: Rc<Cell<u32>>,
    }
    impl Actor<u64> for Node {
        fn on_message(&mut self, id: u64, ctx: &mut Context<'_, u64>) {
            let me = ctx.self_id().index() as u64;
            self.log.borrow_mut().push((ctx.now().as_nanos(), id, me));
            let left = self.budget.get();
            if left == 0 {
                return;
            }
            let (_, _, fanout) = self.script[id as usize % self.script.len()];
            let spawn = (fanout % 3) as u32;
            self.budget.set(left.saturating_sub(spawn.max(1)));
            for k in 0..spawn {
                let child =
                    (id.wrapping_mul(31).wrapping_add(k as u64 + 1)) % self.script.len() as u64;
                let (shift, raw, _) = self.script[child as usize];
                let dst = ActorId::from_index(((id + k as u64) as usize + 1) % ACTORS);
                ctx.send_in(dst, SimDuration::from_nanos(item_delay(shift, raw)), child);
            }
        }
    }

    let log = Rc::new(RefCell::new(Vec::new()));
    let budget = Rc::new(Cell::new(DELIVERY_BUDGET));
    let script = Rc::new(script.clone());
    let mut sim = Simulation::with_queue(0, kind);
    for _ in 0..ACTORS {
        sim.add_actor(Box::new(Node {
            log: Rc::clone(&log),
            script: Rc::clone(&script),
            budget: Rc::clone(&budget),
        }));
    }
    for (i, &(shift, raw, _)) in script.iter().enumerate() {
        // Seed the run from time zero, one message per item, including
        // same-instant ties when delays collide.
        let _ = (shift, raw);
        sim.post(ActorId::from_index(i % ACTORS), i as u64);
    }
    let mut clocks = Vec::new();
    let mut deadline = 0u64;
    for &inc in deadlines {
        deadline = deadline.saturating_add(inc);
        sim.run_until(SimTime::from_nanos(deadline));
        clocks.push(sim.now().as_nanos());
    }
    sim.run();
    clocks.push(sim.now().as_nanos());
    let log = log.borrow().clone();
    (log, clocks)
}

/// The wheel dispatches every random script exactly like the heap
/// oracle: same (time, sequence) order, same destinations, same clocks
/// at every `run_until` segment boundary.
#[test]
fn wheel_matches_heap_oracle_on_random_schedules() {
    let gen = gens::t2(
        gens::vec(
            gens::t3(gens::range_u64(0..45), gens::u64s(), gens::range_u64(0..16)),
            1..24,
        ),
        gens::vec(gens::range_u64(0..1 << 30), 0..5),
    );
    for_all(
        "wheel_matches_heap_oracle_on_random_schedules",
        &Config::with_cases(96),
        &gen,
        |(script, deadlines)| {
            let wheel = run_script(QueueKind::Wheel, script, deadlines);
            let heap = run_script(QueueKind::Heap, script, deadlines);
            assert_eq!(
                wheel.1, heap.1,
                "segment clocks diverged between wheel and heap"
            );
            assert_eq!(
                wheel.0.len(),
                heap.0.len(),
                "delivery counts diverged between wheel and heap"
            );
            for (i, (w, h)) in wheel.0.iter().zip(heap.0.iter()).enumerate() {
                assert_eq!(w, h, "delivery #{i} diverged between wheel and heap");
            }
        },
    );
}
