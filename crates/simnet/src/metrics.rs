//! Metrics collection: named counters and log-bucketed latency histograms.
//!
//! The experiment harness records one latency sample per completed
//! operation and a handful of counters (operations completed, aborts,
//! retries). Histograms use logarithmic bucketing with 64 sub-buckets per
//! octave, giving ~1.6 % relative error — ample for reproducing the paper's
//! average-latency plots while staying allocation-free per sample.

use std::collections::BTreeMap;

use crate::time::SimDuration;

const SUB_BUCKETS: u64 = 64;
const SUB_BITS: u32 = 6;

/// A log-bucketed histogram of durations in nanoseconds.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    buckets: BTreeMap<u64, u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            min_ns: u64::MAX,
            ..Default::default()
        }
    }

    fn bucket_of(ns: u64) -> u64 {
        if ns < SUB_BUCKETS {
            return ns;
        }
        let octave = 63 - ns.leading_zeros() as u64;
        let shift = octave - SUB_BITS as u64;
        let sub = (ns >> shift) - SUB_BUCKETS;
        (octave - SUB_BITS as u64 + 1) * SUB_BUCKETS + sub
    }

    fn bucket_midpoint(bucket: u64) -> u64 {
        if bucket < SUB_BUCKETS {
            return bucket;
        }
        let octave = bucket / SUB_BUCKETS - 1 + SUB_BITS as u64;
        let sub = bucket % SUB_BUCKETS;
        let shift = octave - SUB_BITS as u64;
        let low = (SUB_BUCKETS + sub) << shift;
        low + (1u64 << shift) / 2
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        *self.buckets.entry(Self::bucket_of(ns)).or_insert(0) += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean in fractional microseconds, or 0 if empty.
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_ns as f64 / self.count as f64 / 1_000.0
    }

    /// Largest recorded sample in microseconds, or 0 if empty.
    pub fn max_micros(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.max_ns as f64 / 1_000.0
    }

    /// Smallest recorded sample in microseconds, or 0 if empty.
    pub fn min_micros(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.min_ns as f64 / 1_000.0
    }

    /// Approximate value at quantile `q` in `[0, 1]`, in microseconds.
    pub fn quantile_micros(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (&bucket, &n) in &self.buckets {
            seen += n;
            if seen >= target {
                return Self::bucket_midpoint(bucket) as f64 / 1_000.0;
            }
        }
        self.max_ns as f64 / 1_000.0
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&b, &n) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        *self = Histogram::new();
    }
}

/// Named counters and histograms for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty metrics sink.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `n` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Current value of counter `name` (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a duration into histogram `name`.
    pub fn record(&mut self, name: &str, d: SimDuration) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(d);
    }

    /// The histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Clears all counters and histograms (e.g. after warm-up).
    pub fn reset(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }

    /// Iterates over counter names and values.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_mean_and_extremes() {
        let mut h = Histogram::new();
        for us in [1u64, 2, 3, 4] {
            h.record(SimDuration::micros(us));
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean_micros() - 2.5).abs() < 1e-9);
        assert!((h.max_micros() - 4.0).abs() < 1e-9);
        assert!((h.min_micros() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::micros(i));
        }
        let p50 = h.quantile_micros(0.5);
        let p99 = h.quantile_micros(0.99);
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.05, "p99 {p99}");
    }

    #[test]
    fn histogram_bucketing_error_is_bounded() {
        // Every value must land in a bucket whose midpoint is within ~1.6 %.
        for ns in [100u64, 1_000, 10_000, 123_456, 9_999_999] {
            let b = Histogram::bucket_of(ns);
            let mid = Histogram::bucket_midpoint(b);
            let err = (mid as f64 - ns as f64).abs() / ns as f64;
            assert!(err < 0.02, "ns={ns} mid={mid} err={err}");
        }
    }

    #[test]
    fn histogram_small_values_exact() {
        for ns in 0..64u64 {
            let b = Histogram::bucket_of(ns);
            assert_eq!(Histogram::bucket_midpoint(b), ns);
        }
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimDuration::micros(1));
        b.record(SimDuration::micros(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean_micros() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.add("ops", 3);
        m.add("ops", 4);
        assert_eq!(m.counter("ops"), 7);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Metrics::new();
        m.add("ops", 1);
        m.record("lat", SimDuration::micros(5));
        m.reset();
        assert_eq!(m.counter("ops"), 0);
        assert!(m.histogram("lat").is_none());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.mean_micros(), 0.0);
        assert_eq!(h.max_micros(), 0.0);
        assert_eq!(h.quantile_micros(0.5), 0.0);
    }
}
