//! The discrete-event simulation engine: a virtual clock, a deterministic
//! event queue, and a set of message-driven actors.
//!
//! Actors implement [`Actor`] and communicate only through messages
//! scheduled on the virtual clock. Ties in delivery time are broken by
//! insertion order, so a run is fully deterministic given its seed and the
//! order in which actors are registered.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifies an actor within one [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(usize);

impl ActorId {
    /// The raw index of the actor, in registration order.
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds an id from a raw index, for callers that compute peer ids
    /// from known registration order. Sending to an id that was never
    /// registered panics at *send* time ([`Context::send_in`],
    /// [`Context::send_at`], [`Simulation::post`]), so a misconfigured
    /// experiment fails at the line that computed the bad id rather
    /// than deep inside the event loop.
    pub fn from_index(i: usize) -> ActorId {
        ActorId(i)
    }
}

/// A simulation participant driven entirely by messages.
pub trait Actor<M> {
    /// Called once before the first event is processed.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Called for every message delivered to this actor.
    fn on_message(&mut self, msg: M, ctx: &mut Context<'_, M>);
}

#[derive(Debug)]
struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    dst: ActorId,
    msg: M,
}

// Order by (time, sequence) — `BinaryHeap` is a max-heap, so entries are
// wrapped in `Reverse` at the call sites.
impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The mutable simulation state shared with actors during a callback.
struct Kernel<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    rng: SimRng,
    metrics: Metrics,
    stopped: bool,
    /// Number of registered actors, mirrored from the simulation so
    /// sends can be validated without borrowing the actor table.
    actors: usize,
}

impl<M> Kernel<M> {
    fn push(&mut self, at: SimTime, dst: ActorId, msg: M) {
        assert!(
            dst.0 < self.actors,
            "message for unregistered actor {dst:?} ({} registered); \
             check the id passed to send_in/send_at/post",
            self.actors
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, dst, msg }));
    }
}

/// Handle given to actors while they process a message.
///
/// Allows scheduling new messages, reading the clock, drawing random
/// numbers, and recording metrics.
pub struct Context<'a, M> {
    kernel: &'a mut Kernel<M>,
    self_id: ActorId,
}

impl<M> Context<'_, M> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// The id of the actor currently running.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Delivers `msg` to `dst` after `delay`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` was never registered, naming the bad id — so a
    /// miscomputed [`ActorId::from_index`] fails here, at the send
    /// site, not later inside the event loop.
    pub fn send_in(&mut self, dst: ActorId, delay: SimDuration, msg: M) {
        let at = self.kernel.now + delay;
        self.kernel.push(at, dst, msg);
    }

    /// Delivers `msg` to `dst` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (the simulator cannot rewind) or
    /// if `dst` was never registered.
    pub fn send_at(&mut self, dst: ActorId, at: SimTime, msg: M) {
        assert!(at >= self.kernel.now, "Context::send_at: time in the past");
        self.kernel.push(at, dst, msg);
    }

    /// The simulation's deterministic random number generator.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.kernel.rng
    }

    /// The simulation's metrics sink.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.kernel.metrics
    }

    /// Requests that the simulation stop after the current callback.
    pub fn stop(&mut self) {
        self.kernel.stopped = true;
    }
}

/// A complete simulation: actors plus the event queue and clock.
pub struct Simulation<M> {
    actors: Vec<Box<dyn Actor<M>>>,
    kernel: Kernel<M>,
    started: bool,
}

impl<M> Simulation<M> {
    /// Creates an empty simulation with the given random seed.
    pub fn new(seed: u64) -> Self {
        Simulation {
            actors: Vec::new(),
            kernel: Kernel {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                rng: SimRng::new(seed),
                metrics: Metrics::new(),
                stopped: false,
                actors: 0,
            },
            started: false,
        }
    }

    /// Registers an actor and returns its id. Registration order is part of
    /// the deterministic run definition.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = ActorId(self.actors.len());
        self.actors.push(actor);
        self.kernel.actors = self.actors.len();
        id
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Enqueues a message for delivery at the current time (time zero before
    /// the run starts).
    ///
    /// # Panics
    ///
    /// Panics if `dst` was never registered.
    pub fn post(&mut self, dst: ActorId, msg: M) {
        let now = self.kernel.now;
        self.kernel.push(now, dst, msg);
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// Read access to collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.kernel.metrics
    }

    /// Mutable access to collected metrics (e.g. to reset after warm-up).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.kernel.metrics
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for idx in 0..self.actors.len() {
            let id = ActorId(idx);
            // Temporarily move the actor out so the kernel can be borrowed
            // mutably alongside it without aliasing.
            let mut actor = std::mem::replace(&mut self.actors[idx], Box::new(Inert));
            actor.on_start(&mut Context {
                kernel: &mut self.kernel,
                self_id: id,
            });
            self.actors[idx] = actor;
        }
    }

    /// Runs until the event queue drains or an actor calls [`Context::stop`].
    pub fn run(&mut self) {
        self.run_until(SimTime::from_nanos(u64::MAX));
    }

    /// Runs until `deadline` (inclusive), the queue drains, or an actor
    /// calls [`Context::stop`]. The clock never advances past `deadline`.
    ///
    /// # Panics
    ///
    /// Panics if a message targets an unregistered actor (a backstop —
    /// sends validate their destination eagerly, so this only fires if
    /// an event somehow bypassed [`Context`]/[`Simulation::post`]).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start_if_needed();
        while !self.kernel.stopped {
            let Some(Reverse(ev)) = self.kernel.queue.peek() else {
                break;
            };
            if ev.at > deadline {
                self.kernel.now = deadline;
                break;
            }
            let Reverse(ev) = self.kernel.queue.pop().expect("peeked event vanished");
            self.kernel.now = ev.at;
            assert!(
                ev.dst.0 < self.actors.len(),
                "message for unregistered actor {:?}",
                ev.dst
            );
            let mut actor = std::mem::replace(&mut self.actors[ev.dst.0], Box::new(Inert));
            actor.on_message(
                ev.msg,
                &mut Context {
                    kernel: &mut self.kernel,
                    self_id: ev.dst,
                },
            );
            self.actors[ev.dst.0] = actor;
        }
    }

    /// Runs for `span` of virtual time from the current clock.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.kernel.now + span;
        self.run_until(deadline);
    }

    /// Whether [`Context::stop`] has been called.
    pub fn is_stopped(&self) -> bool {
        self.kernel.stopped
    }

    /// Consumes the simulation and returns its metrics.
    pub fn into_metrics(self) -> Metrics {
        self.kernel.metrics
    }
}

/// Placeholder actor swapped in while the real actor is running, so that a
/// re-entrant send to self is queued rather than delivered re-entrantly.
struct Inert;

impl<M> Actor<M> for Inert {
    fn on_message(&mut self, _msg: M, _ctx: &mut Context<'_, M>) {
        unreachable!("Inert actor should never receive messages");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes each message back to the sender with a 1 us delay, counting
    /// deliveries.
    struct Counter {
        seen: Vec<u32>,
    }

    impl Actor<u32> for Counter {
        fn on_message(&mut self, msg: u32, _ctx: &mut Context<'_, u32>) {
            self.seen.push(msg);
        }
    }

    #[test]
    fn delivers_in_time_order() {
        struct Driver;
        impl Actor<u32> for Driver {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                let dst = ActorId(1);
                ctx.send_in(dst, SimDuration::micros(5), 5);
                ctx.send_in(dst, SimDuration::micros(1), 1);
                ctx.send_in(dst, SimDuration::micros(3), 3);
            }
            fn on_message(&mut self, _: u32, _: &mut Context<'_, u32>) {}
        }
        let mut sim = Simulation::new(0);
        sim.add_actor(Box::new(Driver));
        let c = sim.add_actor(Box::new(Counter { seen: vec![] }));
        sim.run();
        assert_eq!(c.index(), 1);
        assert_eq!(sim.now().as_nanos(), 5_000);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        struct Probe {
            order: Vec<u32>,
        }
        impl Actor<u32> for Probe {
            fn on_message(&mut self, msg: u32, _: &mut Context<'_, u32>) {
                self.order.push(msg);
            }
        }
        struct Driver;
        impl Actor<u32> for Driver {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                for i in 0..4 {
                    ctx.send_in(ActorId(1), SimDuration::micros(1), i);
                }
            }
            fn on_message(&mut self, _: u32, _: &mut Context<'_, u32>) {}
        }
        let mut sim = Simulation::new(0);
        sim.add_actor(Box::new(Driver));
        sim.add_actor(Box::new(Probe { order: vec![] }));
        // Drive and inspect via metrics channel: use a fresh sim whose probe
        // records into metrics instead, to keep actor state observable.
        sim.run();
        // The probe actor is owned by the simulation; re-run the scenario
        // with counters in metrics to assert ordering.
        let mut sim = Simulation::new(0);
        struct Probe2;
        impl Actor<u32> for Probe2 {
            fn on_message(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
                let n = ctx.metrics().counter("n");
                ctx.metrics().add("n", 1);
                assert_eq!(msg as u64, n, "messages delivered out of order");
            }
        }
        struct Driver2;
        impl Actor<u32> for Driver2 {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                for i in 0..4 {
                    ctx.send_in(ActorId(1), SimDuration::micros(1), i);
                }
            }
            fn on_message(&mut self, _: u32, _: &mut Context<'_, u32>) {}
        }
        sim.add_actor(Box::new(Driver2));
        sim.add_actor(Box::new(Probe2));
        sim.run();
        assert_eq!(sim.metrics().counter("n"), 4);
    }

    #[test]
    fn run_until_respects_deadline() {
        struct SelfPing;
        impl Actor<u32> for SelfPing {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                let me = ctx.self_id();
                ctx.send_in(me, SimDuration::micros(1), 0);
            }
            fn on_message(&mut self, _: u32, ctx: &mut Context<'_, u32>) {
                let me = ctx.self_id();
                ctx.metrics().add("ticks", 1);
                ctx.send_in(me, SimDuration::micros(1), 0);
            }
        }
        let mut sim = Simulation::new(0);
        sim.add_actor(Box::new(SelfPing));
        sim.run_until(SimTime::from_nanos(10_500));
        assert_eq!(sim.metrics().counter("ticks"), 10);
        assert_eq!(sim.now().as_nanos(), 10_500);
        // Continuing resumes from the deadline without replaying events.
        sim.run_until(SimTime::from_nanos(20_500));
        assert_eq!(sim.metrics().counter("ticks"), 20);
    }

    #[test]
    fn stop_halts_immediately() {
        struct Stopper;
        impl Actor<u32> for Stopper {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                let me = ctx.self_id();
                ctx.send_in(me, SimDuration::micros(1), 0);
                ctx.send_in(me, SimDuration::micros(2), 1);
            }
            fn on_message(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
                assert_eq!(msg, 0, "second message must not be delivered");
                ctx.stop();
            }
        }
        let mut sim = Simulation::new(0);
        sim.add_actor(Box::new(Stopper));
        sim.run();
        assert!(sim.is_stopped());
        assert_eq!(sim.now().as_nanos(), 1_000);
    }

    #[test]
    #[should_panic(expected = "unregistered actor")]
    fn unknown_destination_panics() {
        let mut sim: Simulation<u32> = Simulation::new(0);
        sim.add_actor(Box::new(Counter { seen: vec![] }));
        sim.post(ActorId(5), 1);
        sim.run();
    }

    #[test]
    #[should_panic(expected = "unregistered actor ActorId(9)")]
    fn send_to_unregistered_actor_fails_at_send_time() {
        // The panic must fire inside the sending callback (send time),
        // naming the bad id — not later when the event loop would have
        // tried to deliver it.
        struct BadSender;
        impl Actor<u32> for BadSender {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send_in(ActorId::from_index(9), SimDuration::micros(1), 0);
                unreachable!("send_in must reject the unregistered destination");
            }
            fn on_message(&mut self, _: u32, _: &mut Context<'_, u32>) {}
        }
        let mut sim = Simulation::new(0);
        sim.add_actor(Box::new(BadSender));
        sim.run();
    }

    #[test]
    fn identical_seeds_produce_identical_runs() {
        fn run(seed: u64) -> u64 {
            struct Random;
            impl Actor<u32> for Random {
                fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                    let me = ctx.self_id();
                    ctx.send_in(me, SimDuration::micros(1), 0);
                }
                fn on_message(&mut self, _: u32, ctx: &mut Context<'_, u32>) {
                    let jitter = ctx.rng().gen_range(1_000);
                    ctx.metrics().add("sum", jitter);
                    if ctx.metrics().counter("sum") < 50_000 {
                        let me = ctx.self_id();
                        ctx.send_in(me, SimDuration::from_nanos(jitter + 1), 0);
                    }
                }
            }
            let mut sim = Simulation::new(seed);
            sim.add_actor(Box::new(Random));
            sim.run();
            sim.now().as_nanos()
        }
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
