//! The discrete-event simulation engine: a virtual clock, a deterministic
//! event queue, and a set of message-driven actors.
//!
//! Actors implement [`Actor`] and communicate only through messages
//! scheduled on the virtual clock. Ties in delivery time are broken by
//! insertion order, so a run is fully deterministic given its seed and the
//! order in which actors are registered.
//!
//! # Event queue
//!
//! The kernel dispatches events in `(time, sequence)` order. Two queue
//! implementations provide that order (selectable via [`QueueKind`]):
//!
//! * [`QueueKind::Wheel`] (the default) — a bucketed hierarchical timer
//!   wheel: ten levels of 64 slots each (6 bits of nanoseconds per level,
//!   covering 2^60 ns ≈ 36 years of virtual time), a per-level occupancy
//!   bitmap for O(1) next-slot search, and a far-future overflow heap for
//!   the rare event beyond the wheel's horizon. Event records live in a
//!   slab with intrusive free/next links, so steady-state scheduling
//!   allocates nothing, and all events sharing a timestamp are drained as
//!   one batch and dispatched in sequence order.
//! * [`QueueKind::Heap`] — the original binary-heap queue, kept as the
//!   reference oracle for differential property tests and before/after
//!   benchmarks. Both implementations are observationally equivalent;
//!   `crates/simnet/tests/wheel_oracle.rs` holds the property test that
//!   pins this.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifies an actor within one [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(usize);

impl ActorId {
    /// The raw index of the actor, in registration order.
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds an id from a raw index, for callers that compute peer ids
    /// from known registration order. Sending to an id that was never
    /// registered panics at *send* time ([`Context::send_in`],
    /// [`Context::send_at`], [`Simulation::post`]), so a misconfigured
    /// experiment fails at the line that computed the bad id rather
    /// than deep inside the event loop.
    pub fn from_index(i: usize) -> ActorId {
        ActorId(i)
    }
}

/// A simulation participant driven entirely by messages.
pub trait Actor<M> {
    /// Called once before the first event is processed.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Called for every message delivered to this actor.
    fn on_message(&mut self, msg: M, ctx: &mut Context<'_, M>);
}

/// Selects the event-queue implementation backing a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Hierarchical timer wheel with a far-future overflow heap — the
    /// default, built for runs with hundreds of thousands of
    /// outstanding timers (open-loop load generation).
    Wheel,
    /// The original `BinaryHeap<(time, seq)>` queue. O(log n) per event
    /// with a large constant at high occupancy; retained as the
    /// reference oracle for differential tests and benchmarks.
    Heap,
}

/// One scheduled event, as stored by the heap oracle.
#[derive(Debug)]
struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    dst: ActorId,
    msg: M,
}

// Order by (time, sequence) — `BinaryHeap` is a max-heap, so entries are
// wrapped in `Reverse` at the call sites.
impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One event of a same-timestamp dispatch batch. The message is taken
/// out (leaving `None`) when delivered.
struct BatchEntry<M> {
    seq: u64,
    dst: ActorId,
    msg: Option<M>,
}

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const LEVELS: usize = 10;
/// Events whose timestamp differs from the cursor in bit 60 or above
/// overflow the wheel and wait in a far-future heap.
const WHEEL_BITS: u32 = SLOT_BITS * LEVELS as u32;
const NIL: u32 = u32::MAX;

/// Slab-resident event record with an intrusive link, shared by the
/// per-slot lists and the free list.
struct SlabEntry<M> {
    at: u64,
    seq: u64,
    dst: ActorId,
    next: u32,
    msg: Option<M>,
}

/// Bucketed hierarchical timer wheel.
///
/// Level `l` buckets events by bits `[6l, 6l+6)` of their absolute
/// nanosecond timestamp. An event is filed at the *highest level where
/// its timestamp digit differs from the cursor's* — which makes the slot
/// index unambiguous (no modular aliasing) and guarantees every filed
/// event sits strictly ahead of the cursor at its level. When the cursor
/// enters a higher-level slot, that slot's events cascade down to finer
/// levels; by the time an event's timestamp is reached it sits in a
/// level-0 slot holding exactly the events of that nanosecond, which is
/// drained as one batch and dispatched in sequence order.
struct TimerWheel<M> {
    slab: Vec<SlabEntry<M>>,
    /// Head of the slab free list.
    free: u32,
    /// Per-level, per-slot intrusive list heads.
    heads: [[u32; SLOTS]; LEVELS],
    /// Per-level slot-occupancy bitmaps.
    occ: [u64; LEVELS],
    /// The wheel cursor: only advances to slot starts and batch times
    /// already cleared for dispatch, so it never passes the kernel
    /// clock. Inserts always satisfy `at >= cursor`.
    cursor: u64,
    /// Events beyond the wheel horizon, ordered by `(at, seq)`.
    overflow: BinaryHeap<Reverse<(u64, u64, u32)>>,
    len: usize,
}

impl<M> TimerWheel<M> {
    fn new() -> Self {
        TimerWheel {
            slab: Vec::new(),
            free: NIL,
            heads: [[NIL; SLOTS]; LEVELS],
            occ: [0; LEVELS],
            cursor: 0,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    fn push(&mut self, at: SimTime, seq: u64, dst: ActorId, msg: M) {
        let at = at.as_nanos();
        debug_assert!(at >= self.cursor, "wheel insert behind the cursor");
        let idx = if self.free != NIL {
            let idx = self.free;
            let e = &mut self.slab[idx as usize];
            self.free = e.next;
            e.at = at;
            e.seq = seq;
            e.dst = dst;
            e.next = NIL;
            e.msg = Some(msg);
            idx
        } else {
            let idx = self.slab.len();
            assert!(idx < NIL as usize, "event slab exhausted");
            self.slab.push(SlabEntry {
                at,
                seq,
                dst,
                next: NIL,
                msg: Some(msg),
            });
            idx as u32
        };
        self.len += 1;
        self.file(idx);
    }

    /// Files a slab entry into the level/slot derived from its
    /// timestamp's highest digit differing from the cursor, or into the
    /// overflow heap when that digit is beyond the wheel horizon.
    fn file(&mut self, idx: u32) {
        let e = &self.slab[idx as usize];
        let (at, seq) = (e.at, e.seq);
        let x = at ^ self.cursor;
        let level = if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / SLOT_BITS) as usize
        };
        if level >= LEVELS {
            self.overflow.push(Reverse((at, seq, idx)));
            return;
        }
        let slot = ((at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let e = &mut self.slab[idx as usize];
        e.next = self.heads[level][slot];
        self.heads[level][slot] = idx;
        self.occ[level] |= 1 << slot;
    }

    /// Re-files every event of a level `>= 1` slot the cursor just
    /// entered; each lands at a strictly lower level (its digit at
    /// `level` now matches the cursor's).
    fn cascade(&mut self, level: usize, slot: usize) {
        let mut idx = self.heads[level][slot];
        self.heads[level][slot] = NIL;
        self.occ[level] &= !(1 << slot);
        while idx != NIL {
            let next = self.slab[idx as usize].next;
            self.file(idx);
            idx = next;
        }
    }

    /// Drains the level-0 slot holding timestamp `t` into `out`, sorted
    /// by sequence number, returning entries to the free list.
    fn drain_slot(&mut self, slot: usize, out: &mut Vec<BatchEntry<M>>) {
        let start = out.len();
        let mut idx = self.heads[0][slot];
        self.heads[0][slot] = NIL;
        self.occ[0] &= !(1 << slot);
        while idx != NIL {
            let e = &mut self.slab[idx as usize];
            out.push(BatchEntry {
                seq: e.seq,
                dst: e.dst,
                msg: e.msg.take(),
            });
            let next = e.next;
            e.next = self.free;
            self.free = idx;
            idx = next;
            self.len -= 1;
        }
        out[start..].sort_unstable_by_key(|b| b.seq);
    }

    /// Finds the earliest pending timestamp, and — if it does not exceed
    /// `limit` — advances the cursor to it, drains its whole batch into
    /// `out` (sequence order) and returns it. Returns `None`, with the
    /// cursor parked at or before `limit`, when the queue is empty or
    /// the next event lies past `limit`.
    fn pop_batch(&mut self, limit: u64, out: &mut Vec<BatchEntry<M>>) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Level 0: events inside the cursor's current 64 ns window.
            let cur0 = (self.cursor & (SLOTS as u64 - 1)) as u32;
            let bits = self.occ[0] & (!0u64 << cur0);
            if bits != 0 {
                let slot = bits.trailing_zeros() as u64;
                let t = (self.cursor & !(SLOTS as u64 - 1)) + slot;
                if t > limit {
                    return None;
                }
                self.cursor = t;
                self.drain_slot(slot as usize, out);
                return Some(t);
            }
            // Climb: enter the nearest occupied slot of the lowest
            // level that has one ahead of the cursor, cascading its
            // events down, then rescan from level 0.
            let mut advanced = false;
            for level in 1..LEVELS {
                let shift = SLOT_BITS * level as u32;
                let cur = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as u32;
                let bits = self.occ[level] & (!0u64 << cur);
                if bits == 0 {
                    continue;
                }
                let slot = bits.trailing_zeros() as u64;
                let slot_start =
                    (self.cursor & !((1u64 << (shift + SLOT_BITS)) - 1)) | (slot << shift);
                if slot_start > limit {
                    return None;
                }
                self.cursor = slot_start;
                self.cascade(level, slot as usize);
                advanced = true;
                break;
            }
            if advanced {
                continue;
            }
            // The wheel proper is empty: jump the cursor to the first
            // overflow event and pull in everything now within horizon.
            let &Reverse((at, _, _)) = self.overflow.peek()?;
            if at > limit {
                return None;
            }
            self.cursor = at;
            while let Some(&Reverse((a, _, _))) = self.overflow.peek() {
                if (a ^ self.cursor) >> WHEEL_BITS != 0 {
                    break;
                }
                let Reverse((_, _, idx)) = self.overflow.pop().expect("peeked entry vanished");
                self.file(idx);
            }
        }
    }
}

/// The original binary-heap event queue, retained as the reference
/// oracle (see [`QueueKind::Heap`]).
struct HeapQueue<M> {
    heap: BinaryHeap<Reverse<Scheduled<M>>>,
}

impl<M> HeapQueue<M> {
    fn pop_batch(&mut self, limit: u64, out: &mut Vec<BatchEntry<M>>) -> Option<u64> {
        let at = self.heap.peek()?.0.at;
        if at.as_nanos() > limit {
            return None;
        }
        while let Some(Reverse(ev)) = self.heap.peek() {
            if ev.at != at {
                break;
            }
            let Reverse(ev) = self.heap.pop().expect("peeked event vanished");
            out.push(BatchEntry {
                seq: ev.seq,
                dst: ev.dst,
                msg: Some(ev.msg),
            });
        }
        Some(at.as_nanos())
    }
}

/// The kernel's event queue: timer wheel or heap oracle. One queue
/// exists per engine, so the wheel's inline level arrays (the size gap
/// clippy flags) cost a few KB once, not per event.
#[allow(clippy::large_enum_variant)]
enum EventQueue<M> {
    Wheel(TimerWheel<M>),
    Heap(HeapQueue<M>),
}

impl<M> EventQueue<M> {
    fn push(&mut self, at: SimTime, seq: u64, dst: ActorId, msg: M) {
        match self {
            EventQueue::Wheel(w) => w.push(at, seq, dst, msg),
            EventQueue::Heap(h) => h.heap.push(Reverse(Scheduled { at, seq, dst, msg })),
        }
    }

    fn pop_batch(&mut self, limit: SimTime, out: &mut Vec<BatchEntry<M>>) -> Option<SimTime> {
        match self {
            EventQueue::Wheel(w) => w.pop_batch(limit.as_nanos(), out),
            EventQueue::Heap(h) => h.pop_batch(limit.as_nanos(), out),
        }
        .map(SimTime::from_nanos)
    }

    fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(w) => w.len,
            EventQueue::Heap(h) => h.heap.len(),
        }
    }
}

/// The mutable simulation state shared with actors during a callback.
struct Kernel<M> {
    now: SimTime,
    seq: u64,
    queue: EventQueue<M>,
    /// The same-timestamp batch currently being dispatched, and the
    /// next entry to deliver. Reused across batches: zero allocation in
    /// steady state.
    batch: Vec<BatchEntry<M>>,
    batch_pos: usize,
    rng: SimRng,
    metrics: Metrics,
    stopped: bool,
    /// Number of registered actors, mirrored from the simulation so
    /// sends can be validated without borrowing the actor table.
    actors: usize,
}

impl<M> Kernel<M> {
    fn push(&mut self, at: SimTime, dst: ActorId, msg: M) {
        assert!(
            dst.0 < self.actors,
            "message for unregistered actor {dst:?} ({} registered); \
             check the id passed to send_in/send_at/post",
            self.actors
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, seq, dst, msg);
    }
}

/// Handle given to actors while they process a message.
///
/// Allows scheduling new messages, reading the clock, drawing random
/// numbers, and recording metrics.
pub struct Context<'a, M> {
    kernel: &'a mut Kernel<M>,
    self_id: ActorId,
}

impl<M> Context<'_, M> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// The id of the actor currently running.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Delivers `msg` to `dst` after `delay`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` was never registered, naming the bad id — so a
    /// miscomputed [`ActorId::from_index`] fails here, at the send
    /// site, not later inside the event loop.
    pub fn send_in(&mut self, dst: ActorId, delay: SimDuration, msg: M) {
        let at = self.kernel.now + delay;
        self.kernel.push(at, dst, msg);
    }

    /// Delivers `msg` to `dst` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (the simulator cannot rewind) or
    /// if `dst` was never registered.
    pub fn send_at(&mut self, dst: ActorId, at: SimTime, msg: M) {
        assert!(at >= self.kernel.now, "Context::send_at: time in the past");
        self.kernel.push(at, dst, msg);
    }

    /// The simulation's deterministic random number generator.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.kernel.rng
    }

    /// The simulation's metrics sink.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.kernel.metrics
    }

    /// Requests that the simulation stop after the current callback.
    pub fn stop(&mut self) {
        self.kernel.stopped = true;
    }
}

/// A complete simulation: actors plus the event queue and clock.
pub struct Simulation<M> {
    actors: Vec<Box<dyn Actor<M>>>,
    kernel: Kernel<M>,
    started: bool,
}

impl<M> Simulation<M> {
    /// Creates an empty simulation with the given random seed, backed
    /// by the timer-wheel event queue.
    pub fn new(seed: u64) -> Self {
        Simulation::with_queue(seed, QueueKind::Wheel)
    }

    /// Creates an empty simulation with an explicit queue
    /// implementation — [`QueueKind::Heap`] selects the reference
    /// oracle for differential tests and before/after benchmarks.
    pub fn with_queue(seed: u64, queue: QueueKind) -> Self {
        let queue = match queue {
            QueueKind::Wheel => EventQueue::Wheel(TimerWheel::new()),
            QueueKind::Heap => EventQueue::Heap(HeapQueue {
                heap: BinaryHeap::new(),
            }),
        };
        Simulation {
            actors: Vec::new(),
            kernel: Kernel {
                now: SimTime::ZERO,
                seq: 0,
                queue,
                batch: Vec::new(),
                batch_pos: 0,
                rng: SimRng::new(seed),
                metrics: Metrics::new(),
                stopped: false,
                actors: 0,
            },
            started: false,
        }
    }

    /// Registers an actor and returns its id. Registration order is part of
    /// the deterministic run definition.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = ActorId(self.actors.len());
        self.actors.push(actor);
        self.kernel.actors = self.actors.len();
        id
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Enqueues a message for delivery at the current time (time zero before
    /// the run starts).
    ///
    /// # Panics
    ///
    /// Panics if `dst` was never registered.
    pub fn post(&mut self, dst: ActorId, msg: M) {
        let now = self.kernel.now;
        self.kernel.push(now, dst, msg);
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// Read access to collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.kernel.metrics
    }

    /// Mutable access to collected metrics (e.g. to reset after warm-up).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.kernel.metrics
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for idx in 0..self.actors.len() {
            let id = ActorId(idx);
            // Temporarily move the actor out so the kernel can be borrowed
            // mutably alongside it without aliasing.
            let mut actor = std::mem::replace(&mut self.actors[idx], Box::new(Inert));
            actor.on_start(&mut Context {
                kernel: &mut self.kernel,
                self_id: id,
            });
            self.actors[idx] = actor;
        }
    }

    /// Runs until the event queue drains or an actor calls [`Context::stop`].
    pub fn run(&mut self) {
        self.run_until(SimTime::from_nanos(u64::MAX));
    }

    /// Runs until `deadline` (inclusive), the queue drains, or an actor
    /// calls [`Context::stop`]. The clock never advances past `deadline`.
    ///
    /// # Panics
    ///
    /// Panics if a message targets an unregistered actor (a backstop —
    /// sends validate their destination eagerly, so this only fires if
    /// an event somehow bypassed [`Context`]/[`Simulation::post`]).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start_if_needed();
        while !self.kernel.stopped {
            // Deliver the in-progress same-timestamp batch first: new
            // events landing on the current instant carry higher
            // sequence numbers than everything batched, so they are
            // picked up by the next drain, in order.
            if self.kernel.batch_pos < self.kernel.batch.len() {
                let pos = self.kernel.batch_pos;
                self.kernel.batch_pos += 1;
                let dst = self.kernel.batch[pos].dst;
                let msg = self.kernel.batch[pos]
                    .msg
                    .take()
                    .expect("batch entry delivered twice");
                assert!(
                    dst.0 < self.actors.len(),
                    "message for unregistered actor {dst:?}"
                );
                let mut actor = std::mem::replace(&mut self.actors[dst.0], Box::new(Inert));
                actor.on_message(
                    msg,
                    &mut Context {
                        kernel: &mut self.kernel,
                        self_id: dst,
                    },
                );
                self.actors[dst.0] = actor;
                continue;
            }
            self.kernel.batch.clear();
            self.kernel.batch_pos = 0;
            match self
                .kernel
                .queue
                .pop_batch(deadline, &mut self.kernel.batch)
            {
                Some(t) => self.kernel.now = t,
                None => {
                    if self.kernel.queue.len() > 0 {
                        // Events remain past the deadline: park the
                        // clock there so a later run resumes cleanly.
                        self.kernel.now = deadline;
                    }
                    break;
                }
            }
        }
    }

    /// Runs for `span` of virtual time from the current clock.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.kernel.now + span;
        self.run_until(deadline);
    }

    /// Whether [`Context::stop`] has been called.
    pub fn is_stopped(&self) -> bool {
        self.kernel.stopped
    }

    /// Consumes the simulation and returns its metrics.
    pub fn into_metrics(self) -> Metrics {
        self.kernel.metrics
    }
}

/// Placeholder actor swapped in while the real actor is running, so that a
/// re-entrant send to self is queued rather than delivered re-entrantly.
struct Inert;

impl<M> Actor<M> for Inert {
    fn on_message(&mut self, _msg: M, _ctx: &mut Context<'_, M>) {
        unreachable!("Inert actor should never receive messages");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes each message back to the sender with a 1 us delay, counting
    /// deliveries.
    struct Counter {
        seen: Vec<u32>,
    }

    impl Actor<u32> for Counter {
        fn on_message(&mut self, msg: u32, _ctx: &mut Context<'_, u32>) {
            self.seen.push(msg);
        }
    }

    #[test]
    fn delivers_in_time_order() {
        struct Driver;
        impl Actor<u32> for Driver {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                let dst = ActorId(1);
                ctx.send_in(dst, SimDuration::micros(5), 5);
                ctx.send_in(dst, SimDuration::micros(1), 1);
                ctx.send_in(dst, SimDuration::micros(3), 3);
            }
            fn on_message(&mut self, _: u32, _: &mut Context<'_, u32>) {}
        }
        let mut sim = Simulation::new(0);
        sim.add_actor(Box::new(Driver));
        let c = sim.add_actor(Box::new(Counter { seen: vec![] }));
        sim.run();
        assert_eq!(c.index(), 1);
        assert_eq!(sim.now().as_nanos(), 5_000);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        struct Probe {
            order: Vec<u32>,
        }
        impl Actor<u32> for Probe {
            fn on_message(&mut self, msg: u32, _: &mut Context<'_, u32>) {
                self.order.push(msg);
            }
        }
        struct Driver;
        impl Actor<u32> for Driver {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                for i in 0..4 {
                    ctx.send_in(ActorId(1), SimDuration::micros(1), i);
                }
            }
            fn on_message(&mut self, _: u32, _: &mut Context<'_, u32>) {}
        }
        let mut sim = Simulation::new(0);
        sim.add_actor(Box::new(Driver));
        sim.add_actor(Box::new(Probe { order: vec![] }));
        // Drive and inspect via metrics channel: use a fresh sim whose probe
        // records into metrics instead, to keep actor state observable.
        sim.run();
        // The probe actor is owned by the simulation; re-run the scenario
        // with counters in metrics to assert ordering.
        let mut sim = Simulation::new(0);
        struct Probe2;
        impl Actor<u32> for Probe2 {
            fn on_message(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
                let n = ctx.metrics().counter("n");
                ctx.metrics().add("n", 1);
                assert_eq!(msg as u64, n, "messages delivered out of order");
            }
        }
        struct Driver2;
        impl Actor<u32> for Driver2 {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                for i in 0..4 {
                    ctx.send_in(ActorId(1), SimDuration::micros(1), i);
                }
            }
            fn on_message(&mut self, _: u32, _: &mut Context<'_, u32>) {}
        }
        sim.add_actor(Box::new(Driver2));
        sim.add_actor(Box::new(Probe2));
        sim.run();
        assert_eq!(sim.metrics().counter("n"), 4);
    }

    #[test]
    fn run_until_respects_deadline() {
        struct SelfPing;
        impl Actor<u32> for SelfPing {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                let me = ctx.self_id();
                ctx.send_in(me, SimDuration::micros(1), 0);
            }
            fn on_message(&mut self, _: u32, ctx: &mut Context<'_, u32>) {
                let me = ctx.self_id();
                ctx.metrics().add("ticks", 1);
                ctx.send_in(me, SimDuration::micros(1), 0);
            }
        }
        for kind in [QueueKind::Wheel, QueueKind::Heap] {
            let mut sim = Simulation::with_queue(0, kind);
            sim.add_actor(Box::new(SelfPing));
            sim.run_until(SimTime::from_nanos(10_500));
            assert_eq!(sim.metrics().counter("ticks"), 10);
            assert_eq!(sim.now().as_nanos(), 10_500);
            // Continuing resumes from the deadline without replaying events.
            sim.run_until(SimTime::from_nanos(20_500));
            assert_eq!(sim.metrics().counter("ticks"), 20);
        }
    }

    #[test]
    fn stop_halts_immediately() {
        struct Stopper;
        impl Actor<u32> for Stopper {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                let me = ctx.self_id();
                ctx.send_in(me, SimDuration::micros(1), 0);
                ctx.send_in(me, SimDuration::micros(2), 1);
            }
            fn on_message(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
                assert_eq!(msg, 0, "second message must not be delivered");
                ctx.stop();
            }
        }
        let mut sim = Simulation::new(0);
        sim.add_actor(Box::new(Stopper));
        sim.run();
        assert!(sim.is_stopped());
        assert_eq!(sim.now().as_nanos(), 1_000);
    }

    #[test]
    fn stop_discards_rest_of_same_instant_batch() {
        // Two messages at the same timestamp: the first stops the
        // simulation, so the second must not be delivered even though it
        // was drained into the same dispatch batch.
        struct Stopper;
        impl Actor<u32> for Stopper {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                let me = ctx.self_id();
                ctx.send_in(me, SimDuration::micros(1), 0);
                ctx.send_in(me, SimDuration::micros(1), 1);
            }
            fn on_message(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
                assert_eq!(msg, 0, "stop must halt the rest of the batch");
                ctx.stop();
            }
        }
        for kind in [QueueKind::Wheel, QueueKind::Heap] {
            let mut sim = Simulation::with_queue(0, kind);
            sim.add_actor(Box::new(Stopper));
            sim.run();
            assert!(sim.is_stopped());
            assert_eq!(sim.now().as_nanos(), 1_000);
        }
    }

    #[test]
    #[should_panic(expected = "unregistered actor")]
    fn unknown_destination_panics() {
        let mut sim: Simulation<u32> = Simulation::new(0);
        sim.add_actor(Box::new(Counter { seen: vec![] }));
        sim.post(ActorId(5), 1);
        sim.run();
    }

    #[test]
    #[should_panic(expected = "unregistered actor ActorId(9)")]
    fn send_to_unregistered_actor_fails_at_send_time() {
        // The panic must fire inside the sending callback (send time),
        // naming the bad id — not later when the event loop would have
        // tried to deliver it.
        struct BadSender;
        impl Actor<u32> for BadSender {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send_in(ActorId::from_index(9), SimDuration::micros(1), 0);
                unreachable!("send_in must reject the unregistered destination");
            }
            fn on_message(&mut self, _: u32, _: &mut Context<'_, u32>) {}
        }
        let mut sim = Simulation::new(0);
        sim.add_actor(Box::new(BadSender));
        sim.run();
    }

    #[test]
    fn identical_seeds_produce_identical_runs() {
        fn run(seed: u64) -> u64 {
            struct Random;
            impl Actor<u32> for Random {
                fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                    let me = ctx.self_id();
                    ctx.send_in(me, SimDuration::micros(1), 0);
                }
                fn on_message(&mut self, _: u32, ctx: &mut Context<'_, u32>) {
                    let jitter = ctx.rng().gen_range(1_000);
                    ctx.metrics().add("sum", jitter);
                    if ctx.metrics().counter("sum") < 50_000 {
                        let me = ctx.self_id();
                        ctx.send_in(me, SimDuration::from_nanos(jitter + 1), 0);
                    }
                }
            }
            let mut sim = Simulation::new(seed);
            sim.add_actor(Box::new(Random));
            sim.run();
            sim.now().as_nanos()
        }
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    /// Delivers `script` hops, each re-armed from the previous one, and
    /// records each delivery time into the metrics channel.
    struct Hopper {
        hops: Vec<u64>,
        pos: usize,
    }
    impl Actor<u32> for Hopper {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            let me = ctx.self_id();
            ctx.send_in(me, SimDuration::from_nanos(self.hops[0]), 0);
        }
        fn on_message(&mut self, _: u32, ctx: &mut Context<'_, u32>) {
            let now = ctx.now().as_nanos();
            ctx.metrics().add("hops", 1);
            ctx.metrics().add("time_sum", now);
            self.pos += 1;
            if self.pos < self.hops.len() {
                let me = ctx.self_id();
                ctx.send_in(me, SimDuration::from_nanos(self.hops[self.pos]), 0);
            }
        }
    }

    fn hop_signature(kind: QueueKind, hops: &[u64]) -> (u64, u64, u64) {
        let mut sim = Simulation::with_queue(0, kind);
        sim.add_actor(Box::new(Hopper {
            hops: hops.to_vec(),
            pos: 0,
        }));
        sim.run();
        (
            sim.metrics().counter("hops"),
            sim.metrics().counter("time_sum"),
            sim.now().as_nanos(),
        )
    }

    #[test]
    fn wheel_crosses_epoch_boundaries_like_the_heap() {
        // Regression for wheel epoch rollover: each hop lands exactly
        // on or just past a 64^k slot boundary, the carry cases where a
        // naive delta-based wheel files events into already-passed
        // slots. The heap oracle defines correct behavior.
        let spans: &[u64] = &[
            63,
            1, // crosses the level-0 window at 64
            4031,
            1, // crosses the level-1 window at 4096
            258_047,
            1, // crosses the level-2 window at 262144
            16_513_023,
            1, // crosses the level-3 window at 16777216
            (1u64 << 36) - 16_775_232,
            1, // crosses a level-6 digit
        ];
        assert_eq!(
            hop_signature(QueueKind::Wheel, spans),
            hop_signature(QueueKind::Heap, spans)
        );
    }

    #[test]
    fn far_future_events_take_the_overflow_heap() {
        // Deltas wider than the 2^60 ns wheel horizon must park in the
        // overflow heap and still dispatch in (time, seq) order.
        struct Far;
        impl Actor<u32> for Far {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                let me = ctx.self_id();
                ctx.send_at(me, SimTime::from_nanos(1u64 << 61), 1);
                ctx.send_at(me, SimTime::from_nanos((1u64 << 61) + 5), 2);
                ctx.send_at(me, SimTime::from_nanos(500), 0);
            }
            fn on_message(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
                let n = ctx.metrics().counter("n");
                assert_eq!(msg as u64, n, "overflow events out of order");
                ctx.metrics().add("n", 1);
            }
        }
        let mut sim = Simulation::new(0);
        sim.add_actor(Box::new(Far));
        sim.run();
        assert_eq!(sim.metrics().counter("n"), 3);
        assert_eq!(sim.now().as_nanos(), (1u64 << 61) + 5);
    }

    #[test]
    fn clock_saturates_at_the_far_future_horizon() {
        // Regression for the latent u64 tick overflow: scheduling past
        // u64::MAX used to wrap (release) or panic (debug) inside
        // `SimTime + SimDuration`. It now saturates: the event lands at
        // the horizon and the run terminates cleanly.
        struct Edge;
        impl Actor<u32> for Edge {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                let me = ctx.self_id();
                ctx.send_at(me, SimTime::from_nanos(u64::MAX - 10), 0);
            }
            fn on_message(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
                ctx.metrics().add("n", 1);
                if msg == 0 {
                    let me = ctx.self_id();
                    // now + 100 overflows u64: saturates to u64::MAX.
                    ctx.send_in(me, SimDuration::from_nanos(100), 1);
                }
            }
        }
        let mut sim = Simulation::new(0);
        sim.add_actor(Box::new(Edge));
        sim.run();
        assert_eq!(sim.metrics().counter("n"), 2);
        assert_eq!(sim.now().as_nanos(), u64::MAX);
    }
}
