//! Adaptive timeout estimation: a windowed quantile tracker over
//! observed round-trip times.
//!
//! The fixed exponential retry schedule (`8 µs << n`, capped at 64 µs)
//! is wrong across the simnet's fabric tiers: at rack scale it waits an
//! order of magnitude too long, at DC scale it fires before a healthy
//! reply can possibly arrive. The [`RttEstimator`] replaces it with a
//! timeout derived from what the client actually measured — a high
//! quantile of the last `cap` RTT samples, scaled by a safety
//! multiplier and clamped to a sane band.
//!
//! The tracker is deliberately boring: a fixed-capacity ring of `u64`
//! nanosecond samples and an exact order-statistic quantile computed by
//! sorting a copy on demand. No RNG, no floating point in the estimate
//! path, no decay constants — two clients observing the same sample
//! sequence produce bit-identical estimates, which is what lets
//! adaptive-timeout runs replay exactly under `PRISM_TEST_SEED`.

use crate::time::SimDuration;

/// Windowed quantile tracker over observed round-trip times.
///
/// The estimate is an exact order statistic of the current window
/// (index `(len - 1) * num / den` of the sorted samples), so it is
/// always one of the observed values — never above the window maximum,
/// never below the minimum — and shifting every sample by a constant
/// shifts the estimate by exactly that constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RttEstimator {
    window: Vec<u64>,
    next: usize,
    cap: usize,
    /// Quantile numerator/denominator (e.g. 99/100 for p99).
    num: u32,
    den: u32,
}

impl RttEstimator {
    /// Default window capacity: large enough to hold a stable tail,
    /// small enough to track a regime change within a few hundred ops.
    pub const DEFAULT_CAP: usize = 256;

    /// Samples required before the estimator trusts itself; below this
    /// it reports `None` and callers fall back to the fixed schedule.
    pub const MIN_SAMPLES: usize = 16;

    /// Creates a tracker for the `num/den` quantile over the last
    /// `cap` samples.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero or the quantile is not in `(0, 1]`.
    pub fn new(cap: usize, num: u32, den: u32) -> Self {
        assert!(cap > 0, "estimator window must hold at least one sample");
        assert!(num > 0 && num <= den, "quantile must be in (0, 1]");
        RttEstimator {
            window: Vec::with_capacity(cap),
            next: 0,
            cap,
            num,
            den,
        }
    }

    /// A p99 tracker over the default window.
    pub fn p99() -> Self {
        Self::new(Self::DEFAULT_CAP, 99, 100)
    }

    /// Records one observed round trip.
    pub fn observe(&mut self, rtt: SimDuration) {
        let ns = rtt.as_nanos();
        if self.window.len() < self.cap {
            self.window.push(ns);
        } else {
            self.window[self.next] = ns;
        }
        self.next = (self.next + 1) % self.cap;
    }

    /// Number of samples currently in the window.
    pub fn samples(&self) -> usize {
        self.window.len()
    }

    /// The tracked quantile of the current window, or `None` while
    /// fewer than [`Self::MIN_SAMPLES`] samples have been observed.
    pub fn quantile(&self) -> Option<SimDuration> {
        if self.window.len() < Self::MIN_SAMPLES {
            return None;
        }
        Some(SimDuration::from_nanos(self.quantile_raw()))
    }

    /// The tracked quantile with no warm-up gate (used by the property
    /// tests; empty windows return zero).
    pub fn quantile_ungated(&self) -> SimDuration {
        if self.window.is_empty() {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.quantile_raw())
    }

    fn quantile_raw(&self) -> u64 {
        let mut sorted = self.window.clone();
        sorted.sort_unstable();
        let idx = (sorted.len() - 1) * self.num as usize / self.den as usize;
        sorted[idx]
    }

    /// The adaptive per-request timeout: `mult ×` the tracked quantile,
    /// clamped to `[floor, ceil]`; `fallback` until the window warms up.
    /// The floor keeps a briefly-fast window from firing timeouts into
    /// healthy tail latency; the ceiling keeps one gray window from
    /// poisoning the timeout for the rest of the run.
    pub fn timeout(
        &self,
        mult: u32,
        floor: SimDuration,
        ceil: SimDuration,
        fallback: SimDuration,
    ) -> SimDuration {
        match self.quantile() {
            Some(q) => SimDuration::from_nanos(
                (q.as_nanos().saturating_mul(mult as u64))
                    .clamp(floor.as_nanos(), ceil.as_nanos().max(floor.as_nanos())),
            ),
            None => fallback,
        }
    }

    /// The hedge delay: issue the second copy of an eligible read once
    /// the first has been outstanding for the tracked quantile (i.e.
    /// once it is statistically in the tail), clamped below by `floor`.
    /// `fallback` until the window warms up.
    pub fn hedge_delay(&self, floor: SimDuration, fallback: SimDuration) -> SimDuration {
        match self.quantile() {
            Some(q) => SimDuration::from_nanos(q.as_nanos().max(floor.as_nanos())),
            None => fallback,
        }
    }

    /// Adaptive retry backoff: the tracked quantile doubled per retry
    /// (capped at 8 doublings), falling back to the fixed schedule
    /// until the window warms up. Backoff scaling with the observed
    /// RTT is what keeps the retry schedule meaningful across fabric
    /// tiers — a fixed 8 µs base is several RTTs at rack scale and a
    /// fraction of one across a simulated DC.
    pub fn backoff(&self, retry: u32, fallback: SimDuration) -> SimDuration {
        match self.quantile() {
            Some(q) => {
                let exp = retry.saturating_sub(1).min(8);
                SimDuration::from_nanos(q.as_nanos().saturating_mul(1u64 << exp))
            }
            None => fallback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_is_an_observed_order_statistic() {
        let mut e = RttEstimator::new(8, 1, 2);
        for ns in [50, 10, 40, 20, 30] {
            e.observe(SimDuration::from_nanos(ns));
        }
        // Sorted window [10,20,30,40,50]; index (5-1)*1/2 = 2 → 30.
        assert_eq!(e.quantile_ungated().as_nanos(), 30);
    }

    #[test]
    fn window_evicts_oldest_sample() {
        let mut e = RttEstimator::new(4, 1, 1);
        for ns in [100, 1, 1, 1, 1] {
            e.observe(SimDuration::from_nanos(ns));
        }
        // The 100 ns outlier fell out of the 4-sample window.
        assert_eq!(e.quantile_ungated().as_nanos(), 1);
        assert_eq!(e.samples(), 4);
    }

    #[test]
    fn timeout_falls_back_until_warm_and_clamps_after() {
        let mut e = RttEstimator::p99();
        let fallback = SimDuration::micros(60);
        let floor = SimDuration::micros(2);
        let ceil = SimDuration::micros(500);
        assert_eq!(e.timeout(4, floor, ceil, fallback), fallback);
        for _ in 0..RttEstimator::MIN_SAMPLES {
            e.observe(SimDuration::from_nanos(1_000));
        }
        // 4 × 1 µs = 4 µs, inside the band.
        assert_eq!(e.timeout(4, floor, ceil, fallback).as_nanos(), 4_000);
        // A tiny quantile clamps up to the floor.
        assert_eq!(e.timeout(1, floor, ceil, fallback), floor);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1]")]
    fn zero_quantile_rejected() {
        let _ = RttEstimator::new(8, 0, 100);
    }

    // Satellite: quantile-tracker bounds. The estimate is always an
    // element of the live window (so within observed [min, max]),
    // bit-identical across two trackers fed the same samples (the
    // prop_check harness itself replays failures under
    // PRISM_TEST_SEED), and shifting every sample by a constant shifts
    // the estimate by exactly that constant — the monotone-under-shift
    // law an order statistic must satisfy.
    prism_testkit::prop_check!(
        estimator_bounds_and_shift_monotonicity,
        cases = 128,
        prism_testkit::gens::t2(
            prism_testkit::gens::vec(prism_testkit::gens::range_u64(1..1_000_000), 1..300),
            prism_testkit::gens::range_u64(0..100_000),
        ),
        |&(ref samples, shift): &(Vec<u64>, u64)| {
            const CAP: usize = 64;
            let mut a = RttEstimator::new(CAP, 99, 100);
            let mut b = RttEstimator::new(CAP, 99, 100);
            let mut shifted = RttEstimator::new(CAP, 99, 100);
            for &s in samples {
                a.observe(SimDuration::from_nanos(s));
                b.observe(SimDuration::from_nanos(s));
                shifted.observe(SimDuration::from_nanos(s + shift));
            }
            assert_eq!(a, b, "same samples must produce identical trackers");
            let q = a.quantile_ungated().as_nanos();
            assert_eq!(q, b.quantile_ungated().as_nanos());
            // The live window is the last CAP samples (ring eviction).
            let live = &samples[samples.len().saturating_sub(CAP)..];
            assert!(live.contains(&q), "estimate must be an observed sample");
            let min = *live.iter().min().expect("nonempty");
            let max = *live.iter().max().expect("nonempty");
            assert!(q >= min && q <= max, "estimate outside observed range");
            assert_eq!(
                shifted.quantile_ungated().as_nanos(),
                q + shift,
                "constant shift of the input must shift the estimate exactly"
            );
            // The derived timeout is monotone in the estimate: the
            // shifted tracker can never produce a smaller timeout.
            let floor = SimDuration::ZERO;
            let ceil = SimDuration::from_nanos(u64::MAX / 8);
            let fb = SimDuration::micros(60);
            assert!(shifted.timeout(4, floor, ceil, fb) >= a.timeout(4, floor, ceil, fb));
        }
    );
}
