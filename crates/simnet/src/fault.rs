//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] describes the adversity a run is subjected to:
//! per-message drop and duplication probabilities, extra delivery
//! jitter, scheduled server crash/restart windows, and client↔server
//! partition windows. The plan itself is pure data — the harness's
//! actors consult it at message-delivery time and draw all fault
//! randomness from dedicated [`SimRng`](crate::rng::SimRng) streams
//! forked off [`FaultPlan::seed`], so:
//!
//! * a run with the default (no-op) plan consumes exactly the same
//!   random numbers as a build without the fault layer, keeping every
//!   calibrated latency/throughput figure bit-identical, and
//! * two runs with the same plan and the same run seed produce
//!   identical schedules, metrics, and outcomes (`PRISM_TEST_SEED`
//!   replay works under faults).
//!
//! The failure model (see DESIGN.md §9): a crashed server silently
//!   drops every request that arrives inside its window — replies
//!   already serialized onto the wire still deliver, like a real
//!   network holding packets in flight — and recovers with its memory
//!   intact (fail-recover, not fail-stop-amnesia). Partitions sever
//!   the client→server request leg. Clients recover lost traffic via
//!   request timeouts that synthesize error replies, which the
//!   protocol machines treat exactly like a NACK from the transport.

use crate::time::{SimDuration, SimTime};

/// A scheduled outage of one server: every request arriving at
/// `server` within `[from, until)` is silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// Index of the crashed server (experiment server-list order).
    pub server: usize,
    /// Start of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive) — the restart instant.
    pub until: SimTime,
}

impl CrashWindow {
    /// Whether this window covers `server` at time `at`.
    pub fn covers(&self, server: usize, at: SimTime) -> bool {
        self.server == server && at >= self.from && at < self.until
    }
}

/// A scheduled partition: requests from `client` to `server` sent
/// within `[from, until)` are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Index of the partitioned client (experiment client order).
    pub client: usize,
    /// Index of the unreachable server.
    pub server: usize,
    /// Start of the partition (inclusive).
    pub from: SimTime,
    /// End of the partition (exclusive).
    pub until: SimTime,
}

impl Partition {
    /// Whether this partition severs `client`→`server` at time `at`.
    pub fn covers(&self, client: usize, server: usize, at: SimTime) -> bool {
        self.client == client && self.server == server && at >= self.from && at < self.until
    }
}

/// A deterministic fault schedule for one simulation run.
///
/// The [`Default`] plan is a no-op: nothing is dropped, duplicated,
/// delayed, crashed, or partitioned, and the harness bypasses the
/// fault machinery entirely (no extra events, no extra RNG draws).
/// Build an adversarial plan from [`FaultPlan::seeded`] plus the
/// `with_*` combinators.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault-decision RNG streams (independent of the run
    /// seed so the same workload can be replayed under different
    /// adversity, and vice versa).
    pub seed: u64,
    /// Probability that any request or reply is dropped in flight.
    pub drop_prob: f64,
    /// Probability that a reply is delivered twice. Only the reply leg
    /// duplicates: re-delivering a request would re-execute
    /// non-idempotent chains (an ALLOCATE would leak a buffer per
    /// duplicate), which models a NIC retransmitting *into* memory —
    /// a different failure class than the fabric's.
    pub dup_prob: f64,
    /// Maximum extra per-message delivery delay, in nanoseconds
    /// (uniform in `[0, jitter_ns)`).
    pub jitter_ns: u64,
    /// Per-request client timeout. When it fires before the reply, the
    /// client synthesizes a transport-error reply for that request and
    /// the protocol machine takes its failure path. `ZERO` disables
    /// timeouts (only sensible for jitter-only plans).
    pub timeout: SimDuration,
    /// Scheduled server outages.
    pub crashes: Vec<CrashWindow>,
    /// Scheduled client→server partitions.
    pub partitions: Vec<Partition>,
}

impl FaultPlan {
    /// A plan with fault RNG seeded and the default request timeout
    /// (200 µs — an order of magnitude above the testbed's unloaded
    /// round trips, small enough to retry many times per run) but no
    /// faults enabled yet. Combine with the `with_*` methods.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            timeout: SimDuration::micros(200),
            ..FaultPlan::default()
        }
    }

    /// Sets message loss and reply duplication probabilities.
    pub fn with_loss(mut self, drop_prob: f64, dup_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob), "drop_prob out of range");
        assert!((0.0..=1.0).contains(&dup_prob), "dup_prob out of range");
        self.drop_prob = drop_prob;
        self.dup_prob = dup_prob;
        self
    }

    /// Sets the maximum extra per-message delivery jitter.
    pub fn with_jitter(mut self, jitter_ns: u64) -> Self {
        self.jitter_ns = jitter_ns;
        self
    }

    /// Overrides the per-request timeout.
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Adds a crash/restart window for `server`.
    pub fn with_crash(mut self, server: usize, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "empty crash window");
        self.crashes.push(CrashWindow {
            server,
            from,
            until,
        });
        self
    }

    /// Adds a partition window between `client` and `server`.
    pub fn with_partition(
        mut self,
        client: usize,
        server: usize,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(from < until, "empty partition window");
        self.partitions.push(Partition {
            client,
            server,
            from,
            until,
        });
        self
    }

    /// Whether the plan injects no faults at all. The harness uses this
    /// to bypass the fault machinery so default runs stay bit-identical
    /// to a fault-free build (`timeout` alone does not arm the layer —
    /// with no faults there is nothing to time out).
    pub fn is_noop(&self) -> bool {
        self.drop_prob == 0.0
            && self.dup_prob == 0.0
            && self.jitter_ns == 0
            && self.crashes.is_empty()
            && self.partitions.is_empty()
    }

    /// Whether `server` is inside any crash window at `at`.
    pub fn crashed(&self, server: usize, at: SimTime) -> bool {
        self.crashes.iter().any(|w| w.covers(server, at))
    }

    /// Whether `client`→`server` is severed at `at`.
    pub fn partitioned(&self, client: usize, server: usize, at: SimTime) -> bool {
        self.partitions.iter().any(|p| p.covers(client, server, at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop() {
        let p = FaultPlan::default();
        assert!(p.is_noop());
        assert!(!p.crashed(0, SimTime::ZERO));
        assert!(!p.partitioned(0, 0, SimTime::ZERO));
    }

    #[test]
    fn seeded_plan_without_faults_is_still_noop() {
        // A timeout alone must not arm the fault layer: nothing can be
        // lost, so nothing can time out, and default runs stay
        // bit-identical.
        assert!(FaultPlan::seeded(7).is_noop());
        assert!(!FaultPlan::seeded(7).with_loss(0.01, 0.0).is_noop());
    }

    #[test]
    fn crash_window_is_half_open() {
        let p =
            FaultPlan::seeded(1).with_crash(2, SimTime::from_nanos(100), SimTime::from_nanos(200));
        assert!(!p.crashed(2, SimTime::from_nanos(99)));
        assert!(p.crashed(2, SimTime::from_nanos(100)));
        assert!(p.crashed(2, SimTime::from_nanos(199)));
        assert!(!p.crashed(2, SimTime::from_nanos(200)));
        assert!(!p.crashed(1, SimTime::from_nanos(150)));
    }

    #[test]
    fn partition_matches_exact_pair() {
        let p = FaultPlan::seeded(1).with_partition(3, 0, SimTime::ZERO, SimTime::from_nanos(50));
        assert!(p.partitioned(3, 0, SimTime::from_nanos(10)));
        assert!(!p.partitioned(3, 1, SimTime::from_nanos(10)));
        assert!(!p.partitioned(2, 0, SimTime::from_nanos(10)));
        assert!(!p.partitioned(3, 0, SimTime::from_nanos(50)));
    }

    #[test]
    #[should_panic(expected = "drop_prob out of range")]
    fn loss_probability_is_validated() {
        let _ = FaultPlan::seeded(1).with_loss(1.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty crash window")]
    fn empty_crash_window_rejected() {
        let _ = FaultPlan::seeded(1).with_crash(0, SimTime::from_nanos(5), SimTime::from_nanos(5));
    }
}
