//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] describes the adversity a run is subjected to:
//! per-message drop and duplication probabilities, extra delivery
//! jitter, scheduled server crash/restart windows, and client↔server
//! partition windows. The plan itself is pure data — the harness's
//! actors consult it at message-delivery time and draw all fault
//! randomness from dedicated [`SimRng`](crate::rng::SimRng) streams
//! forked off [`FaultPlan::seed`], so:
//!
//! * a run with the default (no-op) plan consumes exactly the same
//!   random numbers as a build without the fault layer, keeping every
//!   calibrated latency/throughput figure bit-identical, and
//! * two runs with the same plan and the same run seed produce
//!   identical schedules, metrics, and outcomes (`PRISM_TEST_SEED`
//!   replay works under faults).
//!
//! The failure model (see DESIGN.md §9): a crashed server silently
//!   drops every request that arrives inside its window — replies
//!   already serialized onto the wire still deliver, like a real
//!   network holding packets in flight. A [`CrashMode::Recover`] window
//!   restarts with memory intact (fail-recover); a
//!   [`CrashMode::Amnesia`] window restarts with the arena wiped under
//!   a bumped incarnation (fail-stop-amnesia — the failure class the
//!   paper's replication and recovery protocols exist for, §7–8).
//!   Client-crash windows model the other side: a crashed client drops
//!   its in-flight state and restarts fresh, leaving whatever server
//!   metadata it owned (TX prepares, FaRM locks) dangling for the
//!   lease sweeps to reclaim. Partitions sever the client→server
//!   request leg. Clients recover lost traffic via request timeouts
//!   that synthesize error replies, which the protocol machines treat
//!   exactly like a NACK from the transport.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// What a server's memory looks like when its crash window ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashMode {
    /// Fail-recover: the server restarts with its memory intact.
    #[default]
    Recover,
    /// Fail-stop-amnesia: the server restarts with its arena wiped and
    /// its incarnation bumped; every pre-crash rkey is fenced and the
    /// application-level recovery protocol (RS rejoin, lock reset) must
    /// run before the replica is useful again.
    Amnesia,
}

/// A scheduled outage of one server: every request arriving at
/// `server` within `[from, until)` is silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// Index of the crashed server (experiment server-list order).
    pub server: usize,
    /// Start of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive) — the restart instant.
    pub until: SimTime,
    /// Memory semantics of the restart.
    pub mode: CrashMode,
}

impl CrashWindow {
    /// Whether this window covers `server` at time `at`.
    pub fn covers(&self, server: usize, at: SimTime) -> bool {
        self.server == server && at >= self.from && at < self.until
    }
}

/// A scheduled partition: requests from `client` to `server` sent
/// within `[from, until)` are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Index of the partitioned client (experiment client order).
    pub client: usize,
    /// Index of the unreachable server.
    pub server: usize,
    /// Start of the partition (inclusive).
    pub from: SimTime,
    /// End of the partition (exclusive).
    pub until: SimTime,
}

impl Partition {
    /// Whether this partition severs `client`→`server` at time `at`.
    pub fn covers(&self, client: usize, server: usize, at: SimTime) -> bool {
        self.client == client && self.server == server && at >= self.from && at < self.until
    }
}

/// A scheduled client crash: within `[from, until)` the client is dead
/// (incoming replies, timers, and kicks are dropped); at `until` it
/// restarts with fresh protocol state, abandoning whatever operation —
/// and whatever server-side metadata — it had in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientCrashWindow {
    /// Index of the crashed client (experiment client order).
    pub client: usize,
    /// Start of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive) — the restart instant.
    pub until: SimTime,
}

impl ClientCrashWindow {
    /// Whether this window covers `client` at time `at`.
    pub fn covers(&self, client: usize, at: SimTime) -> bool {
        self.client == client && at >= self.from && at < self.until
    }
}

/// A scheduled gray-failure slowdown: while `[from, until)` covers
/// `server`, every message it processes or emits takes `factor`× its
/// normal service and propagation time. The server stays alive — it
/// answers everything, just late — which is exactly the failure class
/// binary crash detection cannot see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowdownWindow {
    /// Index of the degraded server (experiment server-list order).
    pub server: usize,
    /// Start of the degradation (inclusive).
    pub from: SimTime,
    /// End of the degradation (exclusive).
    pub until: SimTime,
    /// Latency multiplier applied to the server's processing and reply
    /// path while the window is active (≥ 2).
    pub factor: u32,
}

impl SlowdownWindow {
    /// Whether this window covers `server` at time `at`.
    pub fn covers(&self, server: usize, at: SimTime) -> bool {
        self.server == server && at >= self.from && at < self.until
    }
}

/// A flapping link: within `[from, until)` the `client`↔`server` link
/// cycles deterministically — up for `up`, then down for the remainder
/// of each `period`, starting from `from`. Both legs are severed during
/// the down phase. The schedule is pure data (no RNG draws at delivery
/// time), so zero-knob plans stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlapWindow {
    /// Index of the flapping client (experiment client order).
    pub client: usize,
    /// Index of the server at the other end of the link.
    pub server: usize,
    /// Start of the flapping regime (inclusive).
    pub from: SimTime,
    /// End of the flapping regime (exclusive).
    pub until: SimTime,
    /// Full up+down cycle length.
    pub period: SimDuration,
    /// Up-phase length at the start of each cycle (`< period`).
    pub up: SimDuration,
}

impl FlapWindow {
    /// Whether the link is in a down phase for this pair at time `at`.
    pub fn down(&self, client: usize, server: usize, at: SimTime) -> bool {
        if self.client != client || self.server != server || at < self.from || at >= self.until {
            return false;
        }
        let phase = (at.as_nanos() - self.from.as_nanos()) % self.period.as_nanos().max(1);
        phase >= self.up.as_nanos()
    }
}

/// Client/server tail-tolerance policy: the mitigation half of the
/// gray-failure story. Every knob is opt-in (default off) because each
/// one changes event timing — arming any of them forfeits bit-identity
/// with policy-free runs, exactly like arming a fault.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TailPolicy {
    /// Adaptive per-request timeout: a windowed-quantile RTT estimate
    /// replaces the fixed plan timeout once enough samples accumulate,
    /// so the timeout tracks the fabric tier instead of a constant.
    pub adaptive_timeout: bool,
    /// Hedge idempotent reads: re-issue a still-outstanding eligible
    /// request after an adaptive-p99 delay; the losing reply is
    /// harvested through the stale-reply path, so nothing leaks.
    pub hedge: bool,
    /// Server-side admission bound: a request whose queueing delay
    /// would exceed this many nanoseconds is refused with a typed
    /// `Busy` NACK instead of joining the convoy. `0` disables.
    pub admission_ns: u64,
    /// Deadline-aware retry budget: once an operation has been in
    /// flight this long, further transport retries are shed (the op is
    /// abandoned and counted) instead of joining a retry storm.
    /// `ZERO` disables.
    pub retry_deadline: SimDuration,
}

impl TailPolicy {
    /// Whether every knob is at its default (policy disabled).
    pub fn is_off(&self) -> bool {
        *self == TailPolicy::default()
    }
}

/// A scheduled at-rest bit-rot event: at `at`, `bits` seeded single-bit
/// flips land inside `[addr, addr + len)` of `server`'s arena.
///
/// Rot models the memory-corruption half of the failure model — a
/// partially-failed DIMM, a torn persist, radiation — and is therefore
/// constrained to crash windows: live PRISM servers hand their memory
/// to the NIC, and the simulator's arena is otherwise only mutated by
/// verbs. [`FaultPlan::validate`] enforces the constraint loudly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotEvent {
    /// Index of the affected server.
    pub server: usize,
    /// When the rot lands; must fall inside a crash window of `server`.
    pub at: SimTime,
    /// Base of the damaged byte range (arena address).
    pub addr: u64,
    /// Length of the damaged byte range.
    pub len: u64,
    /// How many seeded single-bit flips to scatter over the range.
    pub bits: u32,
}

/// A scheduled at-rest *disk* bit-rot event: at `at`, `bits` seeded
/// single-bit flips land somewhere on `server`'s simulated disk.
///
/// Unlike memory rot ([`RotEvent`]), disk rot is not confined to crash
/// windows — segment files are at rest the moment they are written, and
/// media decay does not wait for an outage. The damage stays latent
/// until the next amnesia replay, where the segment CRCs detect it and
/// the torn/corrupt tail is truncated and healed from replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRotEvent {
    /// Index of the affected server.
    pub server: usize,
    /// When the rot lands.
    pub at: SimTime,
    /// How many seeded single-bit flips to scatter over the disk.
    pub bits: u32,
}

/// A deterministic fault schedule for one simulation run.
///
/// The [`Default`] plan is a no-op: nothing is dropped, duplicated,
/// delayed, crashed, partitioned, or corrupted, and the harness
/// bypasses the fault machinery entirely (no extra events, no extra
/// RNG draws). Build an adversarial plan from [`FaultPlan::seeded`]
/// plus the `with_*` combinators.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault-decision RNG streams (independent of the run
    /// seed so the same workload can be replayed under different
    /// adversity, and vice versa).
    pub seed: u64,
    /// Probability that any request or reply is dropped in flight.
    pub drop_prob: f64,
    /// Probability that a reply is delivered twice. Only the reply leg
    /// duplicates: re-delivering a request would re-execute
    /// non-idempotent chains (an ALLOCATE would leak a buffer per
    /// duplicate), which models a NIC retransmitting *into* memory —
    /// a different failure class than the fabric's.
    pub dup_prob: f64,
    /// Maximum extra per-message delivery delay, in nanoseconds
    /// (uniform in `[0, jitter_ns)`).
    pub jitter_ns: u64,
    /// Per-request client timeout. When it fires before the reply, the
    /// client synthesizes a transport-error reply for that request and
    /// the protocol machine takes its failure path. `ZERO` disables
    /// timeouts (only sensible for jitter-only plans).
    pub timeout: SimDuration,
    /// Scheduled server outages.
    pub crashes: Vec<CrashWindow>,
    /// Scheduled client→server partitions.
    pub partitions: Vec<Partition>,
    /// Scheduled client crashes.
    pub client_crashes: Vec<ClientCrashWindow>,
    /// Probability that a request is corrupted in flight (one seeded
    /// bit of its encoded frame flipped before delivery).
    pub flip_req_prob: f64,
    /// Probability that a reply is corrupted in flight.
    pub flip_reply_prob: f64,
    /// Probability that a multi-line WRITE arriving at a *crashed*
    /// server is torn: a seeded prefix of its 64-byte cache-line groups
    /// lands in memory before the crash takes the rest. Requires at
    /// least one crash window to ever fire.
    pub torn_write_prob: f64,
    /// Scheduled at-rest bit-rot events (each inside a crash window).
    pub rot: Vec<RotEvent>,
    /// Probability that an amnesia crash tears the server's simulated
    /// disk: a seeded suffix of each file's *unsynced* tail is dropped
    /// before the restart replays the log. Draws from a dedicated
    /// per-server RNG stream; requires at least one amnesia window.
    pub disk_torn_prob: f64,
    /// Scheduled at-rest disk bit-rot events (each on its own RNG
    /// stream, so zero-knob plans stay bit-identical).
    pub disk_rot: Vec<DiskRotEvent>,
    /// Scheduled gray-failure slowdown windows (server alive but slow).
    pub slowdowns: Vec<SlowdownWindow>,
    /// Scheduled one-way partitions severing only the server→client
    /// *reply* leg (requests execute; the answers vanish). The symmetric
    /// request-leg class stays in [`FaultPlan::partitions`].
    pub reply_partitions: Vec<Partition>,
    /// Scheduled flapping links (deterministic duty-cycle up/down).
    pub flaps: Vec<FlapWindow>,
    /// Tail-tolerance policy (adaptive timeouts, hedging, admission
    /// control, deadline shedding). Defaults to fully off.
    pub tail: TailPolicy,
}

impl FaultPlan {
    /// A plan with fault RNG seeded and the default request timeout
    /// (200 µs — an order of magnitude above the testbed's unloaded
    /// round trips, small enough to retry many times per run) but no
    /// faults enabled yet. Combine with the `with_*` methods.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            timeout: SimDuration::micros(200),
            ..FaultPlan::default()
        }
    }

    /// Sets message loss and reply duplication probabilities.
    pub fn with_loss(mut self, drop_prob: f64, dup_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob), "drop_prob out of range");
        assert!((0.0..=1.0).contains(&dup_prob), "dup_prob out of range");
        self.drop_prob = drop_prob;
        self.dup_prob = dup_prob;
        self
    }

    /// Sets the maximum extra per-message delivery jitter.
    pub fn with_jitter(mut self, jitter_ns: u64) -> Self {
        self.jitter_ns = jitter_ns;
        self
    }

    /// Overrides the per-request timeout.
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Adds a fail-recover crash/restart window for `server`.
    pub fn with_crash(mut self, server: usize, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "empty crash window");
        self.crashes.push(CrashWindow {
            server,
            from,
            until,
            mode: CrashMode::Recover,
        });
        self
    }

    /// Adds a fail-stop-amnesia crash window for `server`: at `until`
    /// the server restarts with its memory wiped and incarnation bumped.
    pub fn with_amnesia_crash(mut self, server: usize, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "empty crash window");
        self.crashes.push(CrashWindow {
            server,
            from,
            until,
            mode: CrashMode::Amnesia,
        });
        self
    }

    /// Adds a client crash window: at `until` the client restarts with
    /// fresh protocol state.
    pub fn with_client_crash(mut self, client: usize, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "empty client crash window");
        self.client_crashes.push(ClientCrashWindow {
            client,
            from,
            until,
        });
        self
    }

    /// Sets in-flight corruption probabilities for the request and
    /// reply legs. Each corrupted frame has one seeded bit flipped, so
    /// the CRC framing detects it with certainty — `corrupt detected`
    /// equals `corrupt injected` for flip-only plans.
    pub fn with_flips(mut self, flip_req_prob: f64, flip_reply_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&flip_req_prob),
            "flip_req_prob out of range"
        );
        assert!(
            (0.0..=1.0).contains(&flip_reply_prob),
            "flip_reply_prob out of range"
        );
        self.flip_req_prob = flip_req_prob;
        self.flip_reply_prob = flip_reply_prob;
        self
    }

    /// Sets the torn-write probability for WRITEs arriving at crashed
    /// servers. [`validate`](Self::validate) rejects a plan that arms
    /// this without any crash window — it could never fire.
    pub fn with_torn_writes(mut self, torn_write_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&torn_write_prob),
            "torn_write_prob out of range"
        );
        self.torn_write_prob = torn_write_prob;
        self
    }

    /// Adds an at-rest rot event: `bits` seeded bit flips over
    /// `[addr, addr + len)` of `server`'s arena at time `at`, which
    /// must fall inside one of `server`'s crash windows (add the crash
    /// first; [`validate`](Self::validate) enforces the coverage).
    pub fn with_rot(mut self, server: usize, at: SimTime, addr: u64, len: u64, bits: u32) -> Self {
        assert!(len > 0, "empty rot range");
        assert!(bits > 0, "rot event with zero bit flips");
        self.rot.push(RotEvent {
            server,
            at,
            addr,
            len,
            bits,
        });
        self
    }

    /// Sets the disk-tear probability for amnesia restarts: with this
    /// probability the crash drops a seeded suffix of every file's
    /// unsynced tail before the restart replays the log.
    /// [`validate`](Self::validate) rejects a plan that arms this
    /// without any amnesia window — it could never fire.
    pub fn with_disk_torn_writes(mut self, disk_torn_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&disk_torn_prob),
            "disk_torn_prob out of range"
        );
        self.disk_torn_prob = disk_torn_prob;
        self
    }

    /// Adds an at-rest disk rot event: `bits` seeded bit flips land on
    /// `server`'s simulated disk at time `at`. Disk rot needs no crash
    /// window — segment files are at rest whenever they are not being
    /// appended, and the damage stays latent until the next replay.
    pub fn with_disk_rot(mut self, server: usize, at: SimTime, bits: u32) -> Self {
        assert!(bits > 0, "disk rot event with zero bit flips");
        self.disk_rot.push(DiskRotEvent { server, at, bits });
        self
    }

    /// Adds a gray-failure slowdown window: while it covers `server`,
    /// every message the server processes or emits is stretched by
    /// `factor`×.
    pub fn with_slowdown(
        mut self,
        server: usize,
        from: SimTime,
        until: SimTime,
        factor: u32,
    ) -> Self {
        assert!(from < until, "empty slowdown window");
        assert!(factor >= 2, "slowdown factor below 2 is not a slowdown");
        self.slowdowns.push(SlowdownWindow {
            server,
            from,
            until,
            factor,
        });
        self
    }

    /// Adds a one-way partition severing only the server→client reply
    /// leg within `[from, until)`: requests still arrive and execute,
    /// but the answers vanish — the asymmetric half of the gray model.
    pub fn with_reply_partition(
        mut self,
        client: usize,
        server: usize,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(from < until, "empty reply-partition window");
        self.reply_partitions.push(Partition {
            client,
            server,
            from,
            until,
        });
        self
    }

    /// Adds a flapping link for the `client`↔`server` pair: within
    /// `[from, until)` the link cycles up for `up` then down for the
    /// rest of each `period`, severing both legs during down phases.
    pub fn with_flap(
        mut self,
        client: usize,
        server: usize,
        from: SimTime,
        until: SimTime,
        period: SimDuration,
        up: SimDuration,
    ) -> Self {
        assert!(from < until, "empty flap window");
        assert!(period > SimDuration::ZERO, "flap period must be positive");
        assert!(up < period, "flap up phase must leave a down phase");
        self.flaps.push(FlapWindow {
            client,
            server,
            from,
            until,
            period,
            up,
        });
        self
    }

    /// Installs the tail-tolerance policy (adaptive timeouts, hedging,
    /// admission control, deadline shedding). Any non-default knob arms
    /// the fault layer: policies change event timing, so a policy run
    /// can never be bit-identical to a policy-free one.
    pub fn with_tail_policy(mut self, tail: TailPolicy) -> Self {
        self.tail = tail;
        self
    }

    /// Adds a partition window between `client` and `server`.
    pub fn with_partition(
        mut self,
        client: usize,
        server: usize,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(from < until, "empty partition window");
        self.partitions.push(Partition {
            client,
            server,
            from,
            until,
        });
        self
    }

    /// Whether the plan injects no faults at all. The harness uses this
    /// to bypass the fault machinery so default runs stay bit-identical
    /// to a fault-free build (`timeout` alone does not arm the layer —
    /// with no faults there is nothing to time out).
    pub fn is_noop(&self) -> bool {
        self.drop_prob == 0.0
            && self.dup_prob == 0.0
            && self.jitter_ns == 0
            && self.crashes.is_empty()
            && self.partitions.is_empty()
            && self.client_crashes.is_empty()
            && !self.injects_corruption()
            && !self.injects_disk_faults()
            && !self.injects_gray()
            && self.tail.is_off()
    }

    /// Whether the plan injects gray failures (slowdown windows,
    /// reply-leg partitions, or flapping links). All three classes are
    /// pure schedule data consulted at delivery time — no RNG draws —
    /// so plans without them replay the exact draw sequences they had
    /// before the gray class existed.
    pub fn injects_gray(&self) -> bool {
        !self.slowdowns.is_empty() || !self.reply_partitions.is_empty() || !self.flaps.is_empty()
    }

    /// Whether the plan injects disk faults (crash tears of unsynced
    /// segment tails, or at-rest disk rot). When false, the harness
    /// creates no disk-fault RNG streams, so pre-existing plans replay
    /// the exact draw sequences they had before the durable tier
    /// existed.
    pub fn injects_disk_faults(&self) -> bool {
        self.disk_torn_prob > 0.0 || !self.disk_rot.is_empty()
    }

    /// Whether the plan injects any corruption (in-flight flips, torn
    /// writes, or at-rest rot). When false, the harness draws nothing
    /// from the corruption RNG streams, so pre-existing plans replay
    /// the exact draw sequences they had before the corruption layer
    /// existed.
    pub fn injects_corruption(&self) -> bool {
        self.flip_req_prob > 0.0
            || self.flip_reply_prob > 0.0
            || self.torn_write_prob > 0.0
            || !self.rot.is_empty()
    }

    /// Whether `server` is inside any crash window at `at`.
    pub fn crashed(&self, server: usize, at: SimTime) -> bool {
        self.crashes.iter().any(|w| w.covers(server, at))
    }

    /// Whether `client`→`server` is severed at `at`. Flap down phases
    /// sever the request leg exactly like a symmetric partition.
    pub fn partitioned(&self, client: usize, server: usize, at: SimTime) -> bool {
        self.partitions.iter().any(|p| p.covers(client, server, at))
            || self.flaps.iter().any(|f| f.down(client, server, at))
    }

    /// Whether the `server`→`client` reply leg is severed at `at`
    /// (one-way partition, or a flap down phase).
    pub fn reply_partitioned(&self, client: usize, server: usize, at: SimTime) -> bool {
        self.reply_partitions
            .iter()
            .any(|p| p.covers(client, server, at))
            || self.flaps.iter().any(|f| f.down(client, server, at))
    }

    /// Latency multiplier for `server` at `at`: the largest factor of
    /// any covering slowdown window, or 1 when healthy.
    pub fn slowdown_factor(&self, server: usize, at: SimTime) -> u64 {
        self.slowdowns
            .iter()
            .filter(|w| w.covers(server, at))
            .map(|w| w.factor as u64)
            .max()
            .unwrap_or(1)
    }

    /// Whether `client` is inside any client crash window at `at`.
    pub fn client_crashed(&self, client: usize, at: SimTime) -> bool {
        self.client_crashes.iter().any(|w| w.covers(client, at))
    }

    /// Restart instants (window ends) of `server`'s amnesia windows, in
    /// schedule order. The harness schedules a wipe-and-rejoin event at
    /// each; fail-recover windows need no event — the memory was never
    /// lost.
    pub fn amnesia_restarts(&self, server: usize) -> Vec<SimTime> {
        self.crashes
            .iter()
            .filter(|w| w.server == server && w.mode == CrashMode::Amnesia)
            .map(|w| w.until)
            .collect()
    }

    /// Restart instants of `client`'s crash windows, in schedule order.
    pub fn client_restarts(&self, client: usize) -> Vec<SimTime> {
        self.client_crashes
            .iter()
            .filter(|w| w.client == client)
            .map(|w| w.until)
            .collect()
    }

    /// Checks every window against the run's actual topology, so a
    /// window naming a server or client that does not exist fails loudly
    /// at run start instead of silently never firing.
    ///
    /// # Panics
    ///
    /// Panics on any out-of-range server or client index.
    pub fn validate(&self, n_servers: usize, n_clients: usize) {
        for w in &self.crashes {
            assert!(
                w.server < n_servers,
                "crash window names server {} but the run has {n_servers}",
                w.server
            );
        }
        for p in &self.partitions {
            assert!(
                p.server < n_servers,
                "partition names server {} but the run has {n_servers}",
                p.server
            );
            assert!(
                p.client < n_clients,
                "partition names client {} but the run has {n_clients}",
                p.client
            );
        }
        for w in &self.client_crashes {
            assert!(
                w.client < n_clients,
                "client crash window names client {} but the run has {n_clients}",
                w.client
            );
        }
        assert!(
            self.torn_write_prob == 0.0 || !self.crashes.is_empty(),
            "torn writes armed but no crash window is scheduled — they could never fire"
        );
        for r in &self.rot {
            assert!(
                r.server < n_servers,
                "rot event names server {} but the run has {n_servers}",
                r.server
            );
            assert!(
                self.crashes.iter().any(|w| w.covers(r.server, r.at)),
                "rot event at t={}ns is outside every crash window of server {} — \
                 at-rest rot only lands while the server is down",
                r.at.as_nanos(),
                r.server
            );
        }
        assert!(
            self.disk_torn_prob == 0.0 || self.crashes.iter().any(|w| w.mode == CrashMode::Amnesia),
            "disk tears armed but no amnesia window is scheduled — they could never fire"
        );
        for r in &self.disk_rot {
            assert!(
                r.server < n_servers,
                "disk rot event names server {} but the run has {n_servers}",
                r.server
            );
        }
        for w in &self.slowdowns {
            assert!(
                w.server < n_servers,
                "slowdown window names server {} but the run has {n_servers}",
                w.server
            );
        }
        for p in &self.reply_partitions {
            assert!(
                p.server < n_servers,
                "reply partition names server {} but the run has {n_servers}",
                p.server
            );
            assert!(
                p.client < n_clients,
                "reply partition names client {} but the run has {n_clients}",
                p.client
            );
        }
        for f in &self.flaps {
            assert!(
                f.server < n_servers,
                "flap window names server {} but the run has {n_servers}",
                f.server
            );
            assert!(
                f.client < n_clients,
                "flap window names client {} but the run has {n_clients}",
                f.client
            );
        }
    }

    /// Generates a composed chaos schedule from a seed: `spec.horizon`
    /// is sliced into per-fault lanes and each requested fault gets a
    /// window with seeded start and length. Pure function of
    /// `(seed, spec)`, so two calls produce identical plans and a
    /// chaos run replays bit-exactly from its seed.
    pub fn chaos(seed: u64, spec: &ChaosSpec) -> FaultPlan {
        let mut rng = SimRng::new(seed ^ 0xC4A0_5CAD);
        let horizon = spec.horizon.as_nanos().max(16);
        // Windows live in the middle half of the horizon so clients
        // observe both pre-fault and post-recovery service.
        let lo = horizon / 4;
        let hi = horizon * 3 / 4;
        let window = |rng: &mut SimRng| {
            let len = (horizon / 64 + rng.gen_range(horizon / 16)).max(1);
            let from = lo + rng.gen_range(hi - lo);
            let until = (from + len).min(horizon - 1);
            (
                SimTime::from_nanos(from),
                SimTime::from_nanos(until.max(from + 1)),
            )
        };
        let mut plan = FaultPlan::seeded(seed).with_loss(spec.drop_prob, spec.dup_prob);
        plan.jitter_ns = spec.jitter_ns;
        // Corruption knobs copy straight across (no RNG draws, so specs
        // that leave them zero generate the exact plans they always did).
        plan.flip_req_prob = spec.flip_req_prob;
        plan.flip_reply_prob = spec.flip_reply_prob;
        for _ in 0..spec.server_crashes {
            let server = rng.gen_range(spec.servers as u64) as usize;
            let (from, until) = window(&mut rng);
            plan = if rng.gen_bool(spec.amnesia_fraction) {
                plan.with_amnesia_crash(server, from, until)
            } else {
                plan.with_crash(server, from, until)
            };
        }
        for _ in 0..spec.client_crashes {
            let client = rng.gen_range(spec.clients as u64) as usize;
            let (from, until) = window(&mut rng);
            plan = plan.with_client_crash(client, from, until);
        }
        for _ in 0..spec.partitions {
            let client = rng.gen_range(spec.clients as u64) as usize;
            let server = rng.gen_range(spec.servers as u64) as usize;
            let (from, until) = window(&mut rng);
            plan = plan.with_partition(client, server, from, until);
        }
        // Torn writes need a crash window to fire in; arming them on a
        // crash-free schedule would fail validation.
        if !plan.crashes.is_empty() {
            plan.torn_write_prob = spec.torn_write_prob;
        }
        // Disk tears fire at amnesia restarts; arm them only when the
        // drawn schedule has one (a straight copy, no draws).
        if plan.crashes.iter().any(|w| w.mode == CrashMode::Amnesia) {
            plan.disk_torn_prob = spec.disk_torn_prob;
        }
        // Disk rot draws come after the crash/partition classes, so
        // specs that leave the knob zero generate byte-identical plans
        // to the pre-durability fabric.
        for _ in 0..spec.disk_rot_events {
            let server = rng.gen_range(spec.servers as u64) as usize;
            let at = SimTime::from_nanos(lo + rng.gen_range(hi - lo));
            let bits = 1 + rng.gen_range(3) as u32;
            plan = plan.with_disk_rot(server, at, bits);
        }
        // Gray-failure draws come last of all (the newest class draws
        // after every older one, per the standing convention), so
        // zero-knob specs reproduce the exact plans the pre-gray
        // fabric generated.
        for _ in 0..spec.slowdowns {
            let server = rng.gen_range(spec.servers as u64) as usize;
            let (from, until) = window(&mut rng);
            plan = plan.with_slowdown(server, from, until, spec.slowdown_factor.max(2));
        }
        for _ in 0..spec.reply_partitions {
            let client = rng.gen_range(spec.clients as u64) as usize;
            let server = rng.gen_range(spec.servers as u64) as usize;
            let (from, until) = window(&mut rng);
            plan = plan.with_reply_partition(client, server, from, until);
        }
        for _ in 0..spec.flaps {
            let client = rng.gen_range(spec.clients as u64) as usize;
            let server = rng.gen_range(spec.servers as u64) as usize;
            let (from, until) = window(&mut rng);
            let period = (horizon / 128).max(2) + rng.gen_range((horizon / 64).max(1));
            plan = plan.with_flap(
                client,
                server,
                from,
                until,
                SimDuration::from_nanos(period),
                SimDuration::from_nanos(period / 2),
            );
        }
        // The tail policy copies straight across: pure config, no draws.
        plan.tail = spec.tail.clone();
        plan.validate(spec.servers, spec.clients);
        plan
    }
}

/// Shape of a generated chaos schedule (see [`FaultPlan::chaos`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Servers in the run (window targets are drawn from this range).
    pub servers: usize,
    /// Clients in the run.
    pub clients: usize,
    /// Length of the run being subjected to chaos; all windows land in
    /// its middle half.
    pub horizon: SimDuration,
    /// Number of server crash windows to schedule.
    pub server_crashes: usize,
    /// Probability that a server crash is amnesia rather than recover.
    pub amnesia_fraction: f64,
    /// Number of client crash windows to schedule.
    pub client_crashes: usize,
    /// Number of partition windows to schedule.
    pub partitions: usize,
    /// Background message-loss probability.
    pub drop_prob: f64,
    /// Background reply-duplication probability.
    pub dup_prob: f64,
    /// Background delivery jitter, in nanoseconds.
    pub jitter_ns: u64,
    /// Background request-leg corruption probability.
    pub flip_req_prob: f64,
    /// Background reply-leg corruption probability.
    pub flip_reply_prob: f64,
    /// Torn-write probability for WRITEs hitting crashed servers (only
    /// takes effect when the schedule includes server crashes).
    pub torn_write_prob: f64,
    /// Disk-tear probability for amnesia restarts (only takes effect
    /// when the drawn schedule includes an amnesia window).
    pub disk_torn_prob: f64,
    /// Number of at-rest disk bit-rot events to schedule.
    pub disk_rot_events: usize,
    /// Number of gray slowdown windows to schedule.
    pub slowdowns: usize,
    /// Latency multiplier for drawn slowdown windows (clamped to ≥ 2).
    pub slowdown_factor: u32,
    /// Number of one-way (reply-leg) partition windows to schedule.
    pub reply_partitions: usize,
    /// Number of flapping-link windows to schedule.
    pub flaps: usize,
    /// Tail-tolerance policy copied onto the generated plan.
    pub tail: TailPolicy,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop() {
        let p = FaultPlan::default();
        assert!(p.is_noop());
        assert!(!p.crashed(0, SimTime::ZERO));
        assert!(!p.partitioned(0, 0, SimTime::ZERO));
    }

    #[test]
    fn seeded_plan_without_faults_is_still_noop() {
        // A timeout alone must not arm the fault layer: nothing can be
        // lost, so nothing can time out, and default runs stay
        // bit-identical.
        assert!(FaultPlan::seeded(7).is_noop());
        assert!(!FaultPlan::seeded(7).with_loss(0.01, 0.0).is_noop());
    }

    #[test]
    fn crash_window_is_half_open() {
        let p =
            FaultPlan::seeded(1).with_crash(2, SimTime::from_nanos(100), SimTime::from_nanos(200));
        assert!(!p.crashed(2, SimTime::from_nanos(99)));
        assert!(p.crashed(2, SimTime::from_nanos(100)));
        assert!(p.crashed(2, SimTime::from_nanos(199)));
        assert!(!p.crashed(2, SimTime::from_nanos(200)));
        assert!(!p.crashed(1, SimTime::from_nanos(150)));
    }

    #[test]
    fn partition_matches_exact_pair() {
        let p = FaultPlan::seeded(1).with_partition(3, 0, SimTime::ZERO, SimTime::from_nanos(50));
        assert!(p.partitioned(3, 0, SimTime::from_nanos(10)));
        assert!(!p.partitioned(3, 1, SimTime::from_nanos(10)));
        assert!(!p.partitioned(2, 0, SimTime::from_nanos(10)));
        assert!(!p.partitioned(3, 0, SimTime::from_nanos(50)));
    }

    #[test]
    #[should_panic(expected = "drop_prob out of range")]
    fn loss_probability_is_validated() {
        let _ = FaultPlan::seeded(1).with_loss(1.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty crash window")]
    fn empty_crash_window_rejected() {
        let _ = FaultPlan::seeded(1).with_crash(0, SimTime::from_nanos(5), SimTime::from_nanos(5));
    }

    #[test]
    fn amnesia_and_client_windows_arm_the_plan() {
        let t = SimTime::from_nanos;
        let p = FaultPlan::seeded(2).with_amnesia_crash(1, t(10), t(20));
        assert!(!p.is_noop());
        assert_eq!(p.crashes[0].mode, CrashMode::Amnesia);
        assert_eq!(p.amnesia_restarts(1), vec![t(20)]);
        assert!(p.amnesia_restarts(0).is_empty());
        // A recover crash schedules no amnesia restart.
        let p = FaultPlan::seeded(2).with_crash(0, t(10), t(20));
        assert!(p.amnesia_restarts(0).is_empty());

        let p = FaultPlan::seeded(3).with_client_crash(4, t(30), t(50));
        assert!(!p.is_noop());
        assert!(p.client_crashed(4, t(30)));
        assert!(p.client_crashed(4, t(49)));
        assert!(!p.client_crashed(4, t(50)));
        assert!(!p.client_crashed(3, t(40)));
        assert_eq!(p.client_restarts(4), vec![t(50)]);
    }

    #[test]
    #[should_panic(expected = "names server 3 but the run has 2")]
    fn validate_rejects_out_of_range_server() {
        FaultPlan::seeded(1)
            .with_crash(3, SimTime::ZERO, SimTime::from_nanos(1))
            .validate(2, 4);
    }

    #[test]
    #[should_panic(expected = "names client 9 but the run has 4")]
    fn validate_rejects_out_of_range_client() {
        FaultPlan::seeded(1)
            .with_client_crash(9, SimTime::ZERO, SimTime::from_nanos(1))
            .validate(2, 4);
    }

    #[test]
    #[should_panic(expected = "partition names client")]
    fn validate_rejects_out_of_range_partition_client() {
        FaultPlan::seeded(1)
            .with_partition(7, 0, SimTime::ZERO, SimTime::from_nanos(1))
            .validate(2, 4);
    }

    #[test]
    fn corruption_modes_arm_the_plan() {
        let t = SimTime::from_nanos;
        assert!(FaultPlan::seeded(1).with_flips(0.0, 0.0).is_noop());
        assert!(!FaultPlan::seeded(1).with_flips(0.01, 0.0).is_noop());
        assert!(!FaultPlan::seeded(1).with_flips(0.0, 0.01).is_noop());
        let p = FaultPlan::seeded(1)
            .with_crash(0, t(10), t(20))
            .with_torn_writes(0.5);
        assert!(!p.is_noop() && p.injects_corruption());
        let p =
            FaultPlan::seeded(1)
                .with_crash(0, t(10), t(20))
                .with_rot(0, t(15), 0x1_0000, 64, 3);
        assert!(p.injects_corruption());
        p.validate(1, 1);
        // Loss-only plans report no corruption, so the harness draws
        // nothing from the corruption streams for them.
        assert!(!FaultPlan::seeded(1)
            .with_loss(0.1, 0.1)
            .injects_corruption());
    }

    #[test]
    #[should_panic(expected = "flip_req_prob out of range")]
    fn flip_probability_is_validated() {
        let _ = FaultPlan::seeded(1).with_flips(2.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "torn writes armed but no crash window")]
    fn torn_writes_require_a_crash_window() {
        FaultPlan::seeded(1).with_torn_writes(0.5).validate(2, 2);
    }

    #[test]
    fn disk_faults_arm_the_plan() {
        let t = SimTime::from_nanos;
        let p = FaultPlan::seeded(1)
            .with_amnesia_crash(0, t(10), t(20))
            .with_disk_torn_writes(0.5);
        assert!(!p.is_noop() && p.injects_disk_faults());
        assert!(!p.injects_corruption(), "disk faults are their own class");
        p.validate(1, 1);
        let p = FaultPlan::seeded(1).with_disk_rot(0, t(30), 2);
        assert!(!p.is_noop() && p.injects_disk_faults());
        // Disk rot needs no crash window: the damage is at rest.
        p.validate(1, 1);
    }

    #[test]
    #[should_panic(expected = "disk tears armed but no amnesia window")]
    fn disk_tears_require_an_amnesia_window() {
        let t = SimTime::from_nanos;
        // A recover window is not enough: recover restarts never replay.
        FaultPlan::seeded(1)
            .with_crash(0, t(10), t(20))
            .with_disk_torn_writes(0.5)
            .validate(2, 2);
    }

    #[test]
    #[should_panic(expected = "disk rot event names server 7")]
    fn disk_rot_on_unknown_server_rejected() {
        FaultPlan::seeded(1)
            .with_disk_rot(7, SimTime::from_nanos(5), 1)
            .validate(2, 2);
    }

    #[test]
    #[should_panic(expected = "outside every crash window")]
    fn rot_outside_crash_windows_rejected() {
        let t = SimTime::from_nanos;
        FaultPlan::seeded(1)
            .with_crash(0, t(10), t(20))
            .with_rot(0, t(25), 0x1_0000, 64, 1)
            .validate(2, 2)
    }

    #[test]
    #[should_panic(expected = "rot event names server 5")]
    fn rot_on_unknown_server_rejected() {
        let t = SimTime::from_nanos;
        let mut p = FaultPlan::seeded(1).with_crash(1, t(10), t(20));
        p.rot.push(RotEvent {
            server: 5,
            at: t(15),
            addr: 0x1_0000,
            len: 64,
            bits: 1,
        });
        p.validate(2, 2)
    }

    // Satellite: window-composition semantics under overlap and shared
    // boundaries. Any set of windows must behave as the half-open union
    // of its members — crashed(s, t) iff some window [from, until)
    // contains t — with adjacency ([a,b) + [b,c)) leaving no gap at b
    // and no coverage at c.
    prism_testkit::prop_check!(
        window_composition_is_half_open_union,
        cases = 128,
        prism_testkit::gens::vec(
            prism_testkit::gens::t3(
                prism_testkit::gens::range_u64(0..3),  // server
                prism_testkit::gens::range_u64(0..60), // from
                prism_testkit::gens::range_u64(1..40), // length
            ),
            1..6,
        ),
        |windows: &Vec<(u64, u64, u64)>| {
            let mut plan = FaultPlan::seeded(11);
            for &(server, from, len) in windows {
                plan = plan.with_crash(
                    server as usize,
                    SimTime::from_nanos(from),
                    SimTime::from_nanos(from + len),
                );
            }
            for server in 0..3usize {
                for t in 0..110u64 {
                    let expect = windows
                        .iter()
                        .any(|&(s, from, len)| s as usize == server && t >= from && t < from + len);
                    assert_eq!(
                        plan.crashed(server, SimTime::from_nanos(t)),
                        expect,
                        "server {server} at t={t}"
                    );
                }
            }
            // Adjacent windows sharing a boundary: appending [until,
            // until+len) to the first window leaves no gap at the shared
            // edge, and coverage stays exactly the union (the far edge
            // is covered only if some *other* window already covers it).
            if let Some(&(s, from, len)) = windows.first() {
                let p2 = plan.clone().with_crash(
                    s as usize,
                    SimTime::from_nanos(from + len),
                    SimTime::from_nanos(from + 2 * len),
                );
                assert!(p2.crashed(s as usize, SimTime::from_nanos(from + len)));
                let far = from + 2 * len;
                let covered_elsewhere = windows
                    .iter()
                    .any(|&(s2, f2, l2)| s2 == s && far >= f2 && far < f2 + l2);
                assert_eq!(
                    p2.crashed(s as usize, SimTime::from_nanos(far)),
                    covered_elsewhere
                );
            }
        }
    );

    // Satellite: the chaos generator is a pure function of (seed, spec),
    // and every generated plan validates against its own topology with
    // windows inside the horizon.
    prism_testkit::prop_check!(
        chaos_schedules_are_deterministic_and_in_range,
        cases = 64,
        prism_testkit::gens::t2(
            prism_testkit::gens::u64s(),
            prism_testkit::gens::range_u64(0..4),
        ),
        |&(seed, knobs): &(u64, u64)| {
            let spec = ChaosSpec {
                servers: 3,
                clients: 4,
                horizon: SimDuration::micros(500),
                server_crashes: knobs as usize,
                amnesia_fraction: 0.5,
                client_crashes: knobs as usize,
                partitions: knobs as usize,
                drop_prob: 0.01,
                dup_prob: 0.005,
                jitter_ns: 100,
                flip_req_prob: 0.002,
                flip_reply_prob: 0.002,
                torn_write_prob: 0.5,
                disk_torn_prob: 0.5,
                disk_rot_events: knobs as usize,
                slowdowns: knobs as usize,
                slowdown_factor: 8,
                reply_partitions: knobs as usize,
                flaps: knobs as usize,
                tail: TailPolicy {
                    adaptive_timeout: true,
                    hedge: true,
                    admission_ns: 50_000,
                    retry_deadline: SimDuration::micros(300),
                },
            };
            let a = FaultPlan::chaos(seed, &spec);
            let b = FaultPlan::chaos(seed, &spec);
            assert_eq!(a, b, "same (seed, spec) must produce identical plans");
            assert_eq!(a.flip_req_prob, spec.flip_req_prob);
            assert_eq!(
                a.torn_write_prob,
                if a.crashes.is_empty() { 0.0 } else { 0.5 },
                "torn writes only armed when a crash window exists"
            );
            assert_eq!(
                a.disk_torn_prob,
                if a.crashes.iter().any(|w| w.mode == CrashMode::Amnesia) {
                    0.5
                } else {
                    0.0
                },
                "disk tears only armed when an amnesia window exists"
            );
            assert_eq!(a.disk_rot.len(), spec.disk_rot_events);
            // Corruption and disk knobs draw nothing (disk rot draws
            // come last): zeroing them reproduces the exact same
            // windows.
            let mut clean_spec = spec.clone();
            clean_spec.flip_req_prob = 0.0;
            clean_spec.flip_reply_prob = 0.0;
            clean_spec.torn_write_prob = 0.0;
            clean_spec.disk_torn_prob = 0.0;
            clean_spec.disk_rot_events = 0;
            clean_spec.slowdowns = 0;
            clean_spec.reply_partitions = 0;
            clean_spec.flaps = 0;
            clean_spec.tail = TailPolicy::default();
            let clean = FaultPlan::chaos(seed, &clean_spec);
            assert_eq!(clean.crashes, a.crashes);
            assert_eq!(clean.partitions, a.partitions);
            assert_eq!(clean.client_crashes, a.client_crashes);
            assert!(clean.disk_rot.is_empty() && clean.disk_torn_prob == 0.0);
            assert!(!clean.injects_gray() && clean.tail.is_off());
            // Gray draws come last: zeroing only the gray knobs leaves
            // every older class (disk rot included) byte-identical.
            let mut gray_free = spec.clone();
            gray_free.slowdowns = 0;
            gray_free.reply_partitions = 0;
            gray_free.flaps = 0;
            gray_free.tail = TailPolicy::default();
            let gf = FaultPlan::chaos(seed, &gray_free);
            assert_eq!(gf.crashes, a.crashes);
            assert_eq!(gf.partitions, a.partitions);
            assert_eq!(gf.client_crashes, a.client_crashes);
            assert_eq!(gf.disk_rot, a.disk_rot);
            assert!(!gf.injects_gray());
            assert_eq!(a.crashes.len(), spec.server_crashes);
            assert_eq!(a.client_crashes.len(), spec.client_crashes);
            assert_eq!(a.partitions.len(), spec.partitions);
            assert_eq!(a.slowdowns.len(), spec.slowdowns);
            assert_eq!(a.reply_partitions.len(), spec.reply_partitions);
            assert_eq!(a.flaps.len(), spec.flaps);
            assert_eq!(a.tail, spec.tail);
            let horizon = spec.horizon.as_nanos();
            for w in &a.crashes {
                assert!(w.from < w.until && w.until.as_nanos() < horizon);
            }
            for w in &a.client_crashes {
                assert!(w.from < w.until && w.until.as_nanos() < horizon);
            }
            for p in &a.partitions {
                assert!(p.from < p.until && p.until.as_nanos() < horizon);
            }
            for w in &a.slowdowns {
                assert!(w.from < w.until && w.until.as_nanos() < horizon);
                assert!(w.factor >= 2);
            }
            for p in &a.reply_partitions {
                assert!(p.from < p.until && p.until.as_nanos() < horizon);
            }
            for f in &a.flaps {
                assert!(f.from < f.until && f.until.as_nanos() < horizon);
                assert!(f.up < f.period);
            }
        }
    );

    #[test]
    fn gray_windows_arm_the_plan() {
        let t = SimTime::from_nanos;
        let p = FaultPlan::seeded(5).with_slowdown(1, t(100), t(200), 8);
        assert!(!p.is_noop() && p.injects_gray());
        assert_eq!(p.slowdown_factor(1, t(99)), 1);
        assert_eq!(p.slowdown_factor(1, t(100)), 8);
        assert_eq!(p.slowdown_factor(1, t(199)), 8);
        assert_eq!(p.slowdown_factor(1, t(200)), 1);
        assert_eq!(p.slowdown_factor(0, t(150)), 1);
        // Overlapping windows take the worst factor.
        let p = p.with_slowdown(1, t(150), t(180), 16);
        assert_eq!(p.slowdown_factor(1, t(160)), 16);
        assert_eq!(p.slowdown_factor(1, t(190)), 8);
        p.validate(2, 1);

        let p = FaultPlan::seeded(5).with_reply_partition(2, 0, t(10), t(50));
        assert!(!p.is_noop() && p.injects_gray());
        assert!(p.reply_partitioned(2, 0, t(10)));
        assert!(p.reply_partitioned(2, 0, t(49)));
        assert!(!p.reply_partitioned(2, 0, t(50)));
        // The request leg stays up: that is what makes it one-way.
        assert!(!p.partitioned(2, 0, t(20)));
        p.validate(1, 3);
    }

    #[test]
    fn flap_duty_cycle_is_deterministic() {
        let t = SimTime::from_nanos;
        let p = FaultPlan::seeded(5).with_flap(
            0,
            1,
            t(100),
            t(300),
            SimDuration::from_nanos(40),
            SimDuration::from_nanos(10),
        );
        assert!(!p.is_noop() && p.injects_gray());
        // Cycle 1: up [100,110), down [110,140). Both legs sever in the
        // down phase.
        for (at, down) in [(100, false), (109, false), (110, true), (139, true)] {
            assert_eq!(p.partitioned(0, 1, t(at)), down, "req leg at t={at}");
            assert_eq!(
                p.reply_partitioned(0, 1, t(at)),
                down,
                "reply leg at t={at}"
            );
        }
        // Cycle 2 repeats the pattern; outside the window the link is up.
        assert!(!p.partitioned(0, 1, t(140)));
        assert!(p.partitioned(0, 1, t(150)));
        assert!(!p.partitioned(0, 1, t(300)));
        assert!(!p.partitioned(1, 1, t(115)), "other client unaffected");
        p.validate(2, 1);
    }

    #[test]
    fn tail_policy_arms_the_plan() {
        let mut p = FaultPlan::seeded(5);
        assert!(p.is_noop());
        p.tail.adaptive_timeout = true;
        assert!(!p.is_noop(), "adaptive timeouts change event timing");
        let p = FaultPlan::seeded(5).with_tail_policy(TailPolicy {
            hedge: true,
            ..TailPolicy::default()
        });
        assert!(!p.is_noop() && !p.injects_gray());
    }

    #[test]
    #[should_panic(expected = "slowdown factor below 2")]
    fn unit_slowdown_factor_rejected() {
        let _ = FaultPlan::seeded(1).with_slowdown(0, SimTime::ZERO, SimTime::from_nanos(1), 1);
    }

    #[test]
    #[should_panic(expected = "flap up phase must leave a down phase")]
    fn flap_without_down_phase_rejected() {
        let _ = FaultPlan::seeded(1).with_flap(
            0,
            0,
            SimTime::ZERO,
            SimTime::from_nanos(100),
            SimDuration::from_nanos(10),
            SimDuration::from_nanos(10),
        );
    }

    #[test]
    #[should_panic(expected = "slowdown window names server 4")]
    fn slowdown_on_unknown_server_rejected() {
        FaultPlan::seeded(1)
            .with_slowdown(4, SimTime::ZERO, SimTime::from_nanos(1), 4)
            .validate(2, 2);
    }

    #[test]
    #[should_panic(expected = "reply partition names client 9")]
    fn reply_partition_on_unknown_client_rejected() {
        FaultPlan::seeded(1)
            .with_reply_partition(9, 0, SimTime::ZERO, SimTime::from_nanos(1))
            .validate(2, 4);
    }
}
