//! Contended resources of the simulated testbed.
//!
//! The PRISM paper attributes its throughput limits to three resources:
//! the server's network link (40 Gb/s), the pool of dedicated RPC / PRISM
//! dispatch cores (16 of them, §6.2), and NIC processing. [`LinkShaper`]
//! models a link's serialization and queueing; [`ServiceCenter`] models a
//! fixed pool of workers with FIFO admission.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A point-to-point link direction with finite bandwidth.
///
/// Messages serialize one after another; a message arriving while the link
/// is busy queues behind the in-flight bytes. Propagation delay is added by
/// the caller (it depends on deployment, not on the link).
#[derive(Debug, Clone)]
pub struct LinkShaper {
    bits_per_sec: f64,
    busy_until: SimTime,
    bytes_sent: u64,
}

impl LinkShaper {
    /// Creates a link with the given bandwidth in gigabits per second.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not positive.
    pub fn new_gbps(gbps: f64) -> Self {
        assert!(gbps > 0.0, "LinkShaper: bandwidth must be positive");
        LinkShaper {
            bits_per_sec: gbps * 1e9,
            busy_until: SimTime::ZERO,
            bytes_sent: 0,
        }
    }

    /// Serialization time for `bytes` at this link's bandwidth.
    pub fn serialization(&self, bytes: u64) -> SimDuration {
        let secs = (bytes as f64 * 8.0) / self.bits_per_sec;
        SimDuration::from_nanos((secs * 1e9).round() as u64)
    }

    /// Sends `bytes` at `now`; returns the time the last bit leaves the
    /// link (queueing + serialization, no propagation).
    pub fn transmit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.busy_until.max(now);
        let done = start + self.serialization(bytes);
        self.busy_until = done;
        self.bytes_sent += bytes;
        done
    }

    /// Total bytes ever transmitted, for utilization reporting.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Resets queue state and counters (e.g. between sweep points).
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.bytes_sent = 0;
    }
}

/// A pool of identical workers with FIFO admission.
///
/// Models the paper's 16 dedicated server cores that execute RPC handlers
/// and PRISM software primitives (§6.2). `admit` returns when the work
/// finishes; the worker is occupied for exactly the service time.
#[derive(Debug, Clone)]
pub struct ServiceCenter {
    free_at: BinaryHeap<Reverse<SimTime>>,
    workers: usize,
    busy_ns: u128,
}

impl ServiceCenter {
    /// Creates a pool of `workers` workers, all idle at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "ServiceCenter: need at least one worker");
        let mut free_at = BinaryHeap::with_capacity(workers);
        for _ in 0..workers {
            free_at.push(Reverse(SimTime::ZERO));
        }
        ServiceCenter {
            free_at,
            workers,
            busy_ns: 0,
        }
    }

    /// Admits a job arriving at `now` needing `service` of worker time;
    /// returns its completion time.
    pub fn admit(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let Reverse(free) = self.free_at.pop().expect("worker heap never empty");
        let start = free.max(now);
        let done = start + service;
        self.free_at.push(Reverse(done));
        self.busy_ns += service.as_nanos() as u128;
        done
    }

    /// The queueing delay a job arriving at `now` would see before a
    /// worker picks it up, without admitting it. Zero when a worker is
    /// idle. Admission control peeks at this to decide whether to NACK
    /// a request instead of letting it join a convoy.
    pub fn would_wait(&self, now: SimTime) -> SimDuration {
        let Reverse(free) = *self.free_at.peek().expect("worker heap never empty");
        if free <= now {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(free.as_nanos() - now.as_nanos())
        }
    }

    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total busy worker-nanoseconds, for utilization reporting.
    pub fn busy_nanos(&self) -> u128 {
        self.busy_ns
    }

    /// Resets all workers to idle.
    pub fn reset(&mut self) {
        let n = self.workers;
        self.free_at.clear();
        for _ in 0..n {
            self.free_at.push(Reverse(SimTime::ZERO));
        }
        self.busy_ns = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_serialization_matches_bandwidth() {
        let link = LinkShaper::new_gbps(40.0);
        // 512 bytes at 40 Gb/s = 102.4 ns.
        assert_eq!(link.serialization(512).as_nanos(), 102);
    }

    #[test]
    fn link_queues_back_to_back_messages() {
        let mut link = LinkShaper::new_gbps(8.0); // 1 byte/ns
        let t0 = SimTime::ZERO;
        let a = link.transmit(t0, 100);
        let b = link.transmit(t0, 100);
        assert_eq!(a.as_nanos(), 100);
        assert_eq!(b.as_nanos(), 200, "second message queues behind first");
        assert_eq!(link.bytes_sent(), 200);
    }

    #[test]
    fn link_idles_between_spaced_messages() {
        let mut link = LinkShaper::new_gbps(8.0);
        link.transmit(SimTime::ZERO, 100);
        let late = link.transmit(SimTime::from_nanos(500), 100);
        assert_eq!(late.as_nanos(), 600);
    }

    #[test]
    fn link_reset_clears_state() {
        let mut link = LinkShaper::new_gbps(8.0);
        link.transmit(SimTime::ZERO, 1000);
        link.reset();
        assert_eq!(link.bytes_sent(), 0);
        assert_eq!(link.transmit(SimTime::ZERO, 8).as_nanos(), 8);
    }

    #[test]
    fn service_center_parallelism() {
        let mut sc = ServiceCenter::new(2);
        let s = SimDuration::micros(10);
        let a = sc.admit(SimTime::ZERO, s);
        let b = sc.admit(SimTime::ZERO, s);
        let c = sc.admit(SimTime::ZERO, s);
        assert_eq!(a.as_nanos(), 10_000);
        assert_eq!(b.as_nanos(), 10_000, "two workers run in parallel");
        assert_eq!(c.as_nanos(), 20_000, "third job waits for a worker");
    }

    #[test]
    fn would_wait_peeks_without_admitting() {
        let mut sc = ServiceCenter::new(1);
        assert_eq!(sc.would_wait(SimTime::ZERO), SimDuration::ZERO);
        sc.admit(SimTime::ZERO, SimDuration::micros(10));
        // The lone worker is busy until t=10 µs; a job arriving at t=4 µs
        // would wait 6 µs. Peeking does not change the heap.
        let at = SimTime::from_nanos(4_000);
        assert_eq!(sc.would_wait(at).as_nanos(), 6_000);
        assert_eq!(sc.would_wait(at).as_nanos(), 6_000);
        assert_eq!(
            sc.would_wait(SimTime::from_nanos(20_000)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn service_center_tracks_busy_time() {
        let mut sc = ServiceCenter::new(1);
        sc.admit(SimTime::ZERO, SimDuration::micros(3));
        sc.admit(SimTime::ZERO, SimDuration::micros(4));
        assert_eq!(sc.busy_nanos(), 7_000);
    }

    #[test]
    fn service_center_idle_worker_starts_immediately() {
        let mut sc = ServiceCenter::new(1);
        sc.admit(SimTime::ZERO, SimDuration::micros(1));
        let done = sc.admit(SimTime::from_nanos(5_000), SimDuration::micros(1));
        assert_eq!(done.as_nanos(), 6_000);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        ServiceCenter::new(0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        LinkShaper::new_gbps(0.0);
    }
}
