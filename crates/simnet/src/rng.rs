//! Deterministic random number generation for simulation runs.
//!
//! Every simulation owns a single [`SimRng`] seeded from the run seed, so a
//! run is a pure function of (seed, configuration). The generator is a
//! 64-bit SplitMix64 — small, fast, and with well-understood statistical
//! quality for workload generation (it is the seeding generator recommended
//! by the xoshiro authors).

/// A deterministic 64-bit generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams for practical purposes.
    pub fn new(seed: u64) -> Self {
        SimRng {
            // Avoid the all-zero fixed point neighborhood by pre-mixing.
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SimRng::gen_range: zero bound");
        // Lemire's multiply-shift rejection method for unbiased bounded values.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[0.0, 1.0)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Forks an independent generator, e.g. one per actor.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Exponentially distributed value with the given mean (for open-loop
    /// arrival processes).
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        // Inverse transform; `1.0 - u` avoids ln(0).
        -mean * (1.0 - self.gen_f64()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            assert!(r.gen_range(13) < 13);
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut r = SimRng::new(4);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.gen_range(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SimRng::new(5);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_f64_roughly_uniform() {
        let mut r = SimRng::new(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_exp_has_requested_mean() {
        let mut r = SimRng::new(8);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.gen_exp(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn fork_is_independent() {
        let mut a = SimRng::new(9);
        let mut c = a.fork();
        let x = a.next_u64();
        let y = c.next_u64();
        assert_ne!(x, y);
    }

    #[test]
    #[should_panic(expected = "zero bound")]
    fn gen_range_zero_bound_panics() {
        SimRng::new(1).gen_range(0);
    }
}
