//! The calibrated cost model: every latency constant the reproduction uses,
//! each tied to a number reported in the PRISM paper.
//!
//! The paper's measurements (§2.1, §4.3, Figures 1–2) pin down the
//! endpoints of the model:
//!
//! * one-sided RDMA op, 512 B, direct 25 GbE link: **2.5 µs** (§4.3);
//! * PRISM software primitives add **2.5–2.8 µs** on top (§4.3);
//! * one extra PCIe round trip: **~0.9 µs** (§4.3, citing Neugebauer et
//!   al. [35]) — the marginal cost of indirection on a hardware NIC;
//! * BlueField smart NIC: slower ARM dispatch plus **~3 µs** host-memory
//!   access (§4.3, footnote 1);
//! * two-sided eRPC, 512 B, 40 GbE: **5.6 µs**; one-sided READ there:
//!   **3.2 µs** (§2.1);
//! * added network latency: ToR switch **0.6 µs**, three-tier cluster
//!   **3 µs**, datacenter **24 µs** (Figure 2, §5).
//!
//! The model decomposes a round trip into client overhead, NIC processing,
//! wire propagation, PCIe host-memory access, serialization (computed from
//! bandwidth by [`crate::resources::LinkShaper`]), and CPU service for
//! software-dispatched operations. The decomposition is chosen so the sums
//! reproduce the paper's endpoint numbers; the individual terms are then
//! reused compositionally by the experiment harness.

use crate::time::SimDuration;

/// Where the simulated machines sit relative to each other; sets the extra
/// round-trip network latency per Figure 2 and §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Deployment {
    /// Direct NIC-to-NIC cable (Figure 1's worst case for PRISM).
    Direct,
    /// One top-of-rack switch: +0.6 µs per round trip (§5).
    Rack,
    /// Three-tier cluster network: +3 µs per round trip (Figure 2).
    Cluster,
    /// Reported Microsoft datacenter RDMA latency: +24 µs (Figure 2, [12]).
    Datacenter,
}

impl Deployment {
    /// Extra round-trip latency added by the network fabric.
    pub fn extra_rtt(self) -> SimDuration {
        match self {
            Deployment::Direct => SimDuration::ZERO,
            Deployment::Rack => SimDuration::from_nanos(600),
            Deployment::Cluster => SimDuration::micros(3),
            Deployment::Datacenter => SimDuration::micros(24),
        }
    }

    /// Human-readable label used in harness output.
    pub fn label(self) -> &'static str {
        match self {
            Deployment::Direct => "direct",
            Deployment::Rack => "rack",
            Deployment::Cluster => "cluster",
            Deployment::Datacenter => "datacenter",
        }
    }
}

/// How remote operations are executed (the four bars of Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Classic one-sided RDMA executed by the NIC ASIC.
    RdmaHw,
    /// PRISM primitives executed by dedicated host cores (the paper's
    /// software prototype, §4.1).
    PrismSw,
    /// PRISM primitives executed on a BlueField smart NIC's ARM cores
    /// (§4.3), with off-path host memory access.
    PrismBlueField,
    /// Projected fixed-function NIC implementation of PRISM (§4.3):
    /// RDMA cost plus extra PCIe round trips.
    PrismHwProjected,
}

impl Platform {
    /// Label used in harness output (matches Figure 1's legend).
    pub fn label(self) -> &'static str {
        match self {
            Platform::RdmaHw => "RDMA",
            Platform::PrismSw => "PRISM SW",
            Platform::PrismBlueField => "PRISM BlueField",
            Platform::PrismHwProjected => "PRISM HW (proj.)",
        }
    }
}

/// The remote primitives whose latency Figure 1 reports, plus the plain
/// two-sided RPC used by the baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// One-sided READ (512 B in Figure 1).
    Read,
    /// One-sided WRITE.
    Write,
    /// READ with the indirect bit set (one pointer chase).
    IndirectRead,
    /// ALLOCATE: pop a buffer, write payload, return its address.
    Allocate,
    /// Enhanced CAS: masked, up-to-32-byte, arithmetic comparison.
    EnhancedCas,
}

impl Primitive {
    /// All primitives, in Figure 1's bar order.
    pub const ALL: [Primitive; 5] = [
        Primitive::Read,
        Primitive::Write,
        Primitive::IndirectRead,
        Primitive::Allocate,
        Primitive::EnhancedCas,
    ];

    /// Label used in harness output.
    pub fn label(self) -> &'static str {
        match self {
            Primitive::Read => "Read",
            Primitive::Write => "Write",
            Primitive::IndirectRead => "Indirect Read",
            Primitive::Allocate => "Allocate",
            Primitive::EnhancedCas => "Enhanced-CAS",
        }
    }

    /// Host-memory accesses beyond the single access a plain READ/WRITE
    /// performs. Drives the PCIe surcharge of the hardware projection and
    /// the host-access surcharge on the BlueField.
    fn extra_host_accesses(self) -> u64 {
        match self {
            Primitive::Read | Primitive::Write => 0,
            // Pointer fetch, then the data access.
            Primitive::IndirectRead => 1,
            // Free-list pop (on-NIC queue) then payload write; address
            // return rides the response.
            Primitive::Allocate => 1,
            // 32-byte masked read-modify-write takes one extra transaction
            // relative to the 8-byte atomic the adder already serves.
            Primitive::EnhancedCas => 1,
        }
    }

    /// CPU execution time of this primitive in the software prototype, on
    /// top of the base transport cost. Calibrated so the Figure 1 bars add
    /// 2.5–2.8 µs over RDMA (§4.3).
    fn sw_exec(self) -> SimDuration {
        match self {
            Primitive::Read | Primitive::Write => SimDuration::from_nanos(2_500),
            Primitive::IndirectRead => SimDuration::from_nanos(2_500),
            Primitive::Allocate => SimDuration::from_nanos(2_600),
            Primitive::EnhancedCas => SimDuration::from_nanos(2_800),
        }
    }
}

/// Every calibrated constant of the simulated testbed.
///
/// Fields are public so experiments can report exactly what they ran with;
/// construct via [`CostModel::fig1`] (direct 25 GbE microbenchmark rig) or
/// [`CostModel::testbed`] (the 40 GbE application cluster of §5).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Client request post + completion polling overhead per operation.
    pub client_overhead: SimDuration,
    /// Fixed NIC processing per message, per NIC traversal.
    pub nic_proc: SimDuration,
    /// One-way wire propagation on a direct cable.
    pub wire_oneway: SimDuration,
    /// One PCIe round trip: NIC access to host memory (§4.3 cites ~0.9 µs).
    pub pcie_rt: SimDuration,
    /// DMA of an inbound request into host memory before CPU dispatch
    /// (software paths only).
    pub host_dma: SimDuration,
    /// Worker occupancy per two-sided RPC (limits RPC throughput on the
    /// 16-core pool).
    pub rpc_core_occupancy: SimDuration,
    /// Extra latency of a two-sided RPC beyond occupancy: polling,
    /// dispatch, response post. Calibrated so 512 B RPC = 5.6 µs (§2.1).
    pub rpc_dispatch: SimDuration,
    /// Worker occupancy per PRISM software primitive (lean dispatch loop).
    pub prism_core_occupancy: SimDuration,
    /// Extra occupancy per additional chained primitive after the first.
    pub prism_chain_step: SimDuration,
    /// ARM dispatch overhead on the BlueField.
    pub bluefield_dispatch: SimDuration,
    /// BlueField host-memory access (off-path, via internal switch): ~3 µs.
    pub bluefield_host_access: SimDuration,
    /// Link bandwidth in Gb/s.
    pub link_gbps: f64,
    /// Per-message wire overhead in bytes (Ethernet + IB/UDP headers).
    pub header_bytes: u64,
    /// Dedicated server cores for RPC + PRISM dispatch (§6.2: 16).
    pub server_cores: usize,
    /// Where the machines sit (extra round-trip latency).
    pub deployment: Deployment,
}

impl CostModel {
    /// The Figure 1 microbenchmark rig: two machines, ConnectX-5 25 GbE,
    /// direct cable (§4.3).
    pub fn fig1() -> Self {
        CostModel {
            client_overhead: SimDuration::from_nanos(300),
            nic_proc: SimDuration::from_nanos(200),
            wire_oneway: SimDuration::from_nanos(150),
            pcie_rt: SimDuration::from_nanos(900),
            host_dma: SimDuration::from_nanos(900),
            rpc_core_occupancy: SimDuration::from_nanos(1_200),
            rpc_dispatch: SimDuration::from_nanos(1_100),
            prism_core_occupancy: SimDuration::from_nanos(500),
            prism_chain_step: SimDuration::from_nanos(150),
            bluefield_dispatch: SimDuration::from_nanos(2_000),
            bluefield_host_access: SimDuration::from_nanos(3_000),
            link_gbps: 25.0,
            header_bytes: 66,
            server_cores: 16,
            deployment: Deployment::Direct,
        }
    }

    /// The application testbed of §5: 12 machines, 40 GbE, one Arista ToR
    /// switch (+0.6 µs).
    pub fn testbed() -> Self {
        CostModel {
            link_gbps: 40.0,
            deployment: Deployment::Rack,
            ..CostModel::fig1()
        }
    }

    /// The same rig moved to a different deployment tier (Figure 2).
    pub fn with_deployment(mut self, d: Deployment) -> Self {
        self.deployment = d;
        self
    }

    /// Serialization delay of `bytes` payload plus headers at link speed.
    pub fn serialization(&self, payload_bytes: u64) -> SimDuration {
        let bits = (payload_bytes + self.header_bytes) as f64 * 8.0;
        SimDuration::from_nanos((bits / self.link_gbps).round() as u64)
    }

    /// Base transport round trip common to every remote operation:
    /// client overhead, two NIC traversals each way, wire both ways plus
    /// deployment surcharge, and response serialization.
    fn transport_rtt(&self, response_payload: u64) -> SimDuration {
        self.client_overhead
            + self.nic_proc * 4
            + self.wire_oneway * 2
            + self.deployment.extra_rtt()
            + self.serialization(response_payload)
    }

    /// Latency of one one-sided hardware RDMA op with a `payload`-byte
    /// response (READ) or request (WRITE): transport plus one PCIe host
    /// memory access.
    pub fn rdma_onesided_rtt(&self, payload: u64) -> SimDuration {
        self.transport_rtt(payload) + self.pcie_rt
    }

    /// Latency of one two-sided RPC carrying `payload` bytes in the
    /// response, excluding any queueing (the DES adds queueing).
    pub fn rpc_rtt(&self, payload: u64) -> SimDuration {
        self.transport_rtt(payload) + self.host_dma + self.rpc_core_occupancy + self.rpc_dispatch
    }

    /// Unloaded latency of `primitive` on `platform` with a 512 B payload —
    /// the closed form behind Figures 1 and 2.
    pub fn primitive_latency(&self, platform: Platform, primitive: Primitive) -> SimDuration {
        self.primitive_latency_sized(platform, primitive, 512)
    }

    /// [`CostModel::primitive_latency`] with an explicit payload size.
    pub fn primitive_latency_sized(
        &self,
        platform: Platform,
        primitive: Primitive,
        payload: u64,
    ) -> SimDuration {
        let payload = if primitive == Primitive::EnhancedCas {
            32 // CAS operands are at most 32 bytes (§3.3).
        } else {
            payload
        };
        match platform {
            Platform::RdmaHw => self.rdma_onesided_rtt(payload),
            Platform::PrismSw => {
                // Request DMA'd to host memory; a dedicated core executes
                // the primitive directly against host memory (§4.1).
                self.transport_rtt(payload) + self.host_dma + primitive.sw_exec()
            }
            Platform::PrismBlueField => {
                // Off-path ARM cores; every host-memory access crosses the
                // internal switch at ~3 µs (§4.3 footnote 1).
                let host_accesses = 1 + primitive.extra_host_accesses();
                self.transport_rtt(payload)
                    + self.bluefield_dispatch
                    + self.bluefield_host_access * host_accesses
            }
            Platform::PrismHwProjected => {
                // RDMA op plus one extra PCIe round trip per extra host
                // access (§4.3's performance model).
                self.rdma_onesided_rtt(payload) + self.pcie_rt * primitive.extra_host_accesses()
            }
        }
    }

    /// Occupancy of one dispatch core while executing a PRISM chain of
    /// `ops` primitives (software platform).
    pub fn prism_chain_occupancy(&self, ops: u64) -> SimDuration {
        if ops == 0 {
            return SimDuration::ZERO;
        }
        self.prism_core_occupancy + self.prism_chain_step * (ops - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(d: SimDuration) -> f64 {
        d.as_micros_f64()
    }

    #[test]
    fn fig1_rdma_read_is_about_2_5us() {
        let m = CostModel::fig1();
        let rtt = us(m.rdma_onesided_rtt(512));
        assert!((rtt - 2.5).abs() < 0.15, "direct RDMA read 512B = {rtt}us");
    }

    #[test]
    fn prism_sw_adds_2_5_to_2_8_us() {
        let m = CostModel::fig1();
        for p in Primitive::ALL {
            let hw = us(m.primitive_latency(Platform::RdmaHw, p));
            let sw = us(m.primitive_latency(Platform::PrismSw, p));
            let extra = sw - hw;
            assert!(
                (2.4..=2.9).contains(&extra),
                "{}: PRISM SW overhead {extra}us",
                p.label()
            );
        }
    }

    #[test]
    fn section2_testbed_numbers() {
        // §2.1: 512 B one-sided read ≈ 3.2 µs, eRPC ≈ 5.6 µs (40 GbE + ToR).
        let m = CostModel::testbed();
        let onesided = us(m.rdma_onesided_rtt(512));
        let rpc = us(m.rpc_rtt(512));
        assert!((onesided - 3.2).abs() < 0.3, "one-sided = {onesided}us");
        assert!((rpc - 5.6).abs() < 0.4, "eRPC = {rpc}us");
        // The §2.1 punchline: two one-sided reads are slower than one RPC.
        assert!(2.0 * onesided > rpc);
    }

    #[test]
    fn bluefield_is_slowest_platform() {
        let m = CostModel::fig1();
        for p in Primitive::ALL {
            let bf = m.primitive_latency(Platform::PrismBlueField, p);
            for other in [
                Platform::RdmaHw,
                Platform::PrismSw,
                Platform::PrismHwProjected,
            ] {
                assert!(
                    bf > m.primitive_latency(other, p),
                    "{}: BlueField must be slowest (§4.3)",
                    p.label()
                );
            }
        }
    }

    #[test]
    fn hw_projection_close_to_rdma() {
        let m = CostModel::fig1();
        let rdma = us(m.primitive_latency(Platform::RdmaHw, Primitive::IndirectRead));
        let proj = us(m.primitive_latency(Platform::PrismHwProjected, Primitive::IndirectRead));
        assert!((proj - rdma - 0.9).abs() < 1e-6, "one extra PCIe RT");
    }

    #[test]
    fn fig2_prism_sw_beats_two_rdma_reads_at_every_tier() {
        for d in [
            Deployment::Rack,
            Deployment::Cluster,
            Deployment::Datacenter,
        ] {
            let m = CostModel::fig1().with_deployment(d);
            let two_reads = us(m.rdma_onesided_rtt(8)) + us(m.rdma_onesided_rtt(512));
            let prism = us(m.primitive_latency(Platform::PrismSw, Primitive::IndirectRead));
            assert!(
                prism < two_reads,
                "{}: PRISM SW {prism}us vs 2xRDMA {two_reads}us",
                d.label()
            );
        }
    }

    #[test]
    fn fig2_gap_grows_with_network_latency() {
        let gap = |d: Deployment| {
            let m = CostModel::fig1().with_deployment(d);
            let two = us(m.rdma_onesided_rtt(8)) + us(m.rdma_onesided_rtt(512));
            two - us(m.primitive_latency(Platform::PrismSw, Primitive::IndirectRead))
        };
        assert!(gap(Deployment::Rack) < gap(Deployment::Cluster));
        assert!(gap(Deployment::Cluster) < gap(Deployment::Datacenter));
    }

    #[test]
    fn chain_occupancy_scales_with_length() {
        let m = CostModel::fig1();
        assert_eq!(m.prism_chain_occupancy(0), SimDuration::ZERO);
        let one = m.prism_chain_occupancy(1);
        let three = m.prism_chain_occupancy(3);
        assert_eq!(
            three.as_nanos(),
            one.as_nanos() + 2 * m.prism_chain_step.as_nanos()
        );
    }

    #[test]
    fn serialization_uses_headers() {
        let m = CostModel::fig1(); // 25 Gb/s
                                   // (512 + 66) * 8 / 25 = 184.96 ns
        assert_eq!(m.serialization(512).as_nanos(), 185);
    }

    #[test]
    fn deployment_labels_and_surcharges() {
        assert_eq!(Deployment::Rack.extra_rtt().as_nanos(), 600);
        assert_eq!(Deployment::Datacenter.extra_rtt().as_nanos(), 24_000);
        assert_eq!(Deployment::Cluster.label(), "cluster");
    }
}
