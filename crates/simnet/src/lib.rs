//! Deterministic discrete-event simulation kernel for the PRISM reproduction.
//!
//! The PRISM paper (SOSP 2021) evaluates its systems on a physical testbed:
//! Mellanox ConnectX-5 NICs, a BlueField smart NIC, 40 Gb Ethernet and up to
//! 12 Xeon machines. That hardware is not available here, so this crate
//! provides the substitution described in `DESIGN.md`: a deterministic
//! discrete-event simulator with a cost model calibrated against every
//! latency the paper reports. The *protocols* (PRISM-KV, PRISM-RS, PRISM-TX
//! and their baselines) execute their real logic against real bytes in
//! registered memory; this crate only attaches virtual time to those
//! operations and models the three resources the paper identifies as
//! bottlenecks — link serialization, server RPC cores, and NIC processing.
//!
//! The kernel is intentionally small:
//!
//! * [`time`] — virtual nanosecond clock.
//! * [`engine`] — event queue, actors, deterministic scheduling.
//! * [`resources`] — link shapers and multi-worker service centers.
//! * [`latency`] — the calibrated [`latency::CostModel`].
//! * [`metrics`] — latency histograms and throughput counters.
//! * [`rng`] — seeded, deterministic random number generation.
//! * [`fault`] — seeded fault plans (loss, duplication, jitter,
//!   crash/restart windows, partitions, gray failures) for adversarial
//!   runs.
//! * [`estimator`] — windowed-quantile RTT tracking for adaptive
//!   timeouts, hedging delays, and backoff.
//!
//! # Examples
//!
//! ```
//! use prism_simnet::engine::{Actor, Context, Simulation};
//! use prism_simnet::time::SimDuration;
//!
//! struct Ping;
//!
//! impl Actor<u32> for Ping {
//!     fn on_message(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
//!         if msg < 3 {
//!             let me = ctx.self_id();
//!             ctx.send_in(me, SimDuration::micros(1), msg + 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let ping = sim.add_actor(Box::new(Ping));
//! sim.post(ping, 0u32);
//! sim.run();
//! assert_eq!(sim.now().as_micros_f64(), 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod estimator;
pub mod fault;
pub mod latency;
pub mod metrics;
pub mod resources;
pub mod rng;
pub mod time;

pub use engine::{Actor, ActorId, Context, QueueKind, Simulation};
pub use fault::FaultPlan;
pub use latency::CostModel;
pub use time::{SimDuration, SimTime};
