//! Virtual time for the discrete-event simulator.
//!
//! All simulated time is kept in integer nanoseconds so that event ordering
//! is exact and runs are bit-for-bit reproducible. [`SimTime`] is a point on
//! the virtual clock; [`SimDuration`] is a span between two points.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time, in nanoseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The zero point of the virtual clock.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional microseconds, for reporting.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as fractional seconds, for throughput computation.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; the simulator never
    /// observes time running backwards.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is after self"),
        )
    }

    /// Saturating version of [`SimTime::since`], clamping at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(
            us.is_finite() && us >= 0.0,
            "SimDuration::from_micros_f64: invalid value {us}"
        );
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

// Additive clock arithmetic saturates at the u64 horizon rather than
// wrapping (release) or panicking (debug): long-running simulations arm
// timers relative to `now` with spans like `run()`'s u64::MAX deadline,
// and a timer pushed past the horizon should simply never fire early —
// it parks at the horizon, which `run_until` treats as "the far future".
impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        let d = t.since(SimTime::from_nanos(1_000));
        assert_eq!(d.as_nanos(), 4_000);
        assert_eq!((d * 2).as_nanos(), 8_000);
        assert_eq!((d / 4).as_nanos(), 1_000);
        assert_eq!((d - SimDuration::micros(10)).as_nanos(), 0);
    }

    #[test]
    fn fractional_micros() {
        let d = SimDuration::from_micros_f64(2.5);
        assert_eq!(d.as_nanos(), 2_500);
        assert!((d.as_micros_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "earlier is after self")]
    fn since_panics_on_backwards_time() {
        let _ = SimTime::from_nanos(1).since(SimTime::from_nanos(2));
    }

    #[test]
    fn additions_saturate_at_the_horizon() {
        let t = SimTime::from_nanos(u64::MAX - 5) + SimDuration::from_nanos(100);
        assert_eq!(t.as_nanos(), u64::MAX);
        let d = SimDuration::from_nanos(u64::MAX) + SimDuration::from_nanos(1);
        assert_eq!(d.as_nanos(), u64::MAX);
    }

    #[test]
    fn saturating_since_clamps() {
        let d = SimTime::from_nanos(1).saturating_since(SimTime::from_nanos(2));
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", SimDuration::micros(2)), "2.000us");
        assert_eq!(format!("{}", SimTime::from_nanos(1500)), "1.500us");
    }
}
