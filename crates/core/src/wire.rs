//! Wire encoding of PRISM chains and responses.
//!
//! The paper adds five flag bits to the RDMA base transport header
//! (§4.2): two indirection flags, a bounded-pointer flag, and the
//! conditional and redirection flags. This module defines the concrete
//! request format the reproduction uses — one header per op, flags in a
//! single byte — plus the response format. Besides round-tripping chains
//! between client and server, the encoders give the experiment harness
//! exact request/response byte counts for link-bandwidth accounting.

use crate::buf::{Buf, BufMut};

use crate::engine::{OpResult, OpStatus};
use crate::op::{DataArg, FreeListId, PrismOp, Redirect, MAX_CAS_LEN};
use crate::value::CasMode;
use prism_rdma::RdmaError;

/// Wire failure: a decode found a truncated or malformed buffer, or an
/// encode was handed a payload/count too large for its length prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError(pub &'static str);

/// Largest inline payload the `u32` length prefix can carry.
pub const MAX_INLINE_LEN: usize = u32::MAX as usize;

/// Largest op/result/batch count the `u16` count prefix can carry.
pub const MAX_COUNT: usize = u16::MAX as usize;

/// Checked `u32` length prefix: payloads beyond [`MAX_INLINE_LEN`] are
/// rejected instead of silently truncated (`len as u32` used to wrap,
/// corrupting every later byte of the message).
pub fn u32_len(len: usize) -> Result<u32, WireError> {
    u32::try_from(len).map_err(|_| WireError("payload exceeds u32 length prefix"))
}

/// Checked `u16` count prefix: chains/results/batches beyond
/// [`MAX_COUNT`] entries are rejected instead of silently truncated.
pub fn u16_count(n: usize) -> Result<u16, WireError> {
    u16::try_from(n).map_err(|_| WireError("count exceeds u16 prefix"))
}

impl WireError {
    /// The frame-level checksum failure: the message framing CRCs
    /// (header and whole-body, appended by `msg::{Request,Reply}::encode`)
    /// did not match the received bytes. Distinguished from the
    /// truncation/malformed-structure errors so callers can route
    /// corruption to the retry path instead of treating it as a
    /// protocol bug.
    pub const CORRUPT: WireError = WireError("corrupt frame: checksum mismatch");

    /// Whether this error is the frame-corruption error.
    pub fn is_corrupt(&self) -> bool {
        self.0 == Self::CORRUPT.0
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

const OP_READ: u8 = 0;
const OP_WRITE: u8 = 1;
const OP_ALLOCATE: u8 = 2;
const OP_CAS: u8 = 3;

// Flag bits (the paper's five BTH flags, plus one distinguishing the two
// operand sources of our Mellanox-style CAS).
const F_INDIRECT: u8 = 1 << 0;
const F_BOUNDED: u8 = 1 << 1;
const F_CONDITIONAL: u8 = 1 << 2;
const F_REDIRECT: u8 = 1 << 3;
const F_COMPARE_REMOTE: u8 = 1 << 4;
const F_SWAP_REMOTE: u8 = 1 << 5;

fn put_data_arg(buf: &mut Vec<u8>, arg: &DataArg) -> Result<(), WireError> {
    match arg {
        DataArg::Inline(d) => {
            buf.put_u32_le(u32_len(d.len())?);
            buf.put_slice(d);
        }
        DataArg::Remote { addr, rkey } => {
            buf.put_u64_le(*addr);
            buf.put_u32_le(*rkey);
        }
    }
    Ok(())
}

fn get_inline(buf: &mut &[u8]) -> Result<Vec<u8>, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError("truncated inline length"));
    }
    let len = buf.get_u32_le() as usize;
    // `take` + `to_vec` is one memcpy into an uninitialized allocation;
    // the previous `vec![0u8; len]` + `copy_to_slice` zero-filled the
    // buffer first, paying for every payload byte twice.
    match crate::buf::take(buf, len) {
        Some(bytes) => Ok(bytes.to_vec()),
        None => Err(WireError("truncated inline data")),
    }
}

fn get_data_arg(buf: &mut &[u8], remote: bool) -> Result<DataArg, WireError> {
    if remote {
        if buf.remaining() < 12 {
            return Err(WireError("truncated remote data arg"));
        }
        let addr = buf.get_u64_le();
        let rkey = buf.get_u32_le();
        Ok(DataArg::Remote { addr, rkey })
    } else {
        Ok(DataArg::Inline(get_inline(buf)?))
    }
}

fn put_redirect(buf: &mut Vec<u8>, r: &Redirect) {
    buf.put_u64_le(r.addr);
    buf.put_u32_le(r.rkey);
}

fn get_redirect(buf: &mut &[u8]) -> Result<Redirect, WireError> {
    if buf.remaining() < 12 {
        return Err(WireError("truncated redirect"));
    }
    let addr = buf.get_u64_le();
    let rkey = buf.get_u32_le();
    Ok(Redirect { addr, rkey })
}

/// Encodes a chain into a request message.
///
/// Fails (rather than truncating the length prefixes) if the chain has
/// more than [`MAX_COUNT`] ops or an inline payload exceeds
/// [`MAX_INLINE_LEN`] bytes.
pub fn encode_chain(chain: &[PrismOp]) -> Result<Vec<u8>, WireError> {
    let mut buf = Vec::with_capacity(64 * chain.len());
    encode_chain_into(chain, &mut buf)?;
    Ok(buf)
}

/// [`encode_chain`] writing into a caller-supplied buffer (appended),
/// so message framing can build a whole frame without the intermediate
/// chain-body `Vec`. Byte-for-byte identical output to [`encode_chain`].
pub fn encode_chain_into(chain: &[PrismOp], buf: &mut Vec<u8>) -> Result<(), WireError> {
    buf.put_u16_le(u16_count(chain.len())?);
    for op in chain {
        match op {
            PrismOp::Read {
                addr,
                len,
                rkey,
                indirect,
                bounded,
                conditional,
                redirect,
            } => {
                buf.put_u8(OP_READ);
                let mut flags = 0;
                if *indirect {
                    flags |= F_INDIRECT;
                }
                if *bounded {
                    flags |= F_BOUNDED;
                }
                if *conditional {
                    flags |= F_CONDITIONAL;
                }
                if redirect.is_some() {
                    flags |= F_REDIRECT;
                }
                buf.put_u8(flags);
                buf.put_u64_le(*addr);
                buf.put_u32_le(*len);
                buf.put_u32_le(*rkey);
                if let Some(r) = redirect {
                    put_redirect(buf, r);
                }
            }
            PrismOp::Write {
                addr,
                rkey,
                data,
                len,
                addr_indirect,
                addr_bounded,
                conditional,
            } => {
                buf.put_u8(OP_WRITE);
                let mut flags = 0;
                if *addr_indirect {
                    flags |= F_INDIRECT;
                }
                if *addr_bounded {
                    flags |= F_BOUNDED;
                }
                if *conditional {
                    flags |= F_CONDITIONAL;
                }
                if matches!(data, DataArg::Remote { .. }) {
                    flags |= F_SWAP_REMOTE;
                }
                buf.put_u8(flags);
                buf.put_u64_le(*addr);
                buf.put_u32_le(*len);
                buf.put_u32_le(*rkey);
                put_data_arg(buf, data)?;
            }
            PrismOp::Allocate {
                freelist,
                data,
                conditional,
                redirect,
            } => {
                buf.put_u8(OP_ALLOCATE);
                let mut flags = 0;
                if *conditional {
                    flags |= F_CONDITIONAL;
                }
                if redirect.is_some() {
                    flags |= F_REDIRECT;
                }
                buf.put_u8(flags);
                buf.put_u32_le(freelist.0);
                buf.put_u32_le(u32_len(data.len())?);
                buf.put_slice(data);
                if let Some(r) = redirect {
                    put_redirect(buf, r);
                }
            }
            PrismOp::Cas {
                mode,
                target,
                rkey,
                compare,
                swap,
                len,
                compare_mask,
                swap_mask,
                target_indirect,
                conditional,
            } => {
                buf.put_u8(OP_CAS);
                let mut flags = 0;
                if *target_indirect {
                    flags |= F_INDIRECT;
                }
                if *conditional {
                    flags |= F_CONDITIONAL;
                }
                if matches!(compare, DataArg::Remote { .. }) {
                    flags |= F_COMPARE_REMOTE;
                }
                if matches!(swap, DataArg::Remote { .. }) {
                    flags |= F_SWAP_REMOTE;
                }
                buf.put_u8(flags);
                buf.put_u8(mode.code());
                buf.put_u64_le(*target);
                buf.put_u32_le(*len);
                buf.put_u32_le(*rkey);
                put_data_arg(buf, compare)?;
                put_data_arg(buf, swap)?;
                buf.put_slice(compare_mask);
                buf.put_slice(swap_mask);
            }
        }
    }
    Ok(())
}

/// Decodes a request message back into a chain.
pub fn decode_chain(mut buf: &[u8]) -> Result<Vec<PrismOp>, WireError> {
    if buf.remaining() < 2 {
        return Err(WireError("truncated chain header"));
    }
    let count = buf.get_u16_le() as usize;
    let mut chain = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 2 {
            return Err(WireError("truncated op header"));
        }
        let opcode = buf.get_u8();
        let flags = buf.get_u8();
        let conditional = flags & F_CONDITIONAL != 0;
        let op = match opcode {
            OP_READ => {
                if buf.remaining() < 16 {
                    return Err(WireError("truncated READ"));
                }
                let addr = buf.get_u64_le();
                let len = buf.get_u32_le();
                let rkey = buf.get_u32_le();
                let redirect = if flags & F_REDIRECT != 0 {
                    Some(get_redirect(&mut buf)?)
                } else {
                    None
                };
                PrismOp::Read {
                    addr,
                    len,
                    rkey,
                    indirect: flags & F_INDIRECT != 0,
                    bounded: flags & F_BOUNDED != 0,
                    conditional,
                    redirect,
                }
            }
            OP_WRITE => {
                if buf.remaining() < 16 {
                    return Err(WireError("truncated WRITE"));
                }
                let addr = buf.get_u64_le();
                let len = buf.get_u32_le();
                let rkey = buf.get_u32_le();
                let data = get_data_arg(&mut buf, flags & F_SWAP_REMOTE != 0)?;
                PrismOp::Write {
                    addr,
                    rkey,
                    data,
                    len,
                    addr_indirect: flags & F_INDIRECT != 0,
                    addr_bounded: flags & F_BOUNDED != 0,
                    conditional,
                }
            }
            OP_ALLOCATE => {
                if buf.remaining() < 4 {
                    return Err(WireError("truncated ALLOCATE"));
                }
                let freelist = FreeListId(buf.get_u32_le());
                let data = get_inline(&mut buf)?;
                let redirect = if flags & F_REDIRECT != 0 {
                    Some(get_redirect(&mut buf)?)
                } else {
                    None
                };
                PrismOp::Allocate {
                    freelist,
                    data,
                    conditional,
                    redirect,
                }
            }
            OP_CAS => {
                if buf.remaining() < 17 {
                    return Err(WireError("truncated CAS"));
                }
                let mode = CasMode::from_code(buf.get_u8()).ok_or(WireError("bad CAS mode"))?;
                let target = buf.get_u64_le();
                let len = buf.get_u32_le();
                let rkey = buf.get_u32_le();
                let compare = get_data_arg(&mut buf, flags & F_COMPARE_REMOTE != 0)?;
                let swap = get_data_arg(&mut buf, flags & F_SWAP_REMOTE != 0)?;
                if buf.remaining() < 2 * MAX_CAS_LEN {
                    return Err(WireError("truncated CAS masks"));
                }
                let compare_mask: [u8; MAX_CAS_LEN] = crate::buf::take(&mut buf, MAX_CAS_LEN)
                    .expect("length checked")
                    .try_into()
                    .expect("exact length");
                let swap_mask: [u8; MAX_CAS_LEN] = crate::buf::take(&mut buf, MAX_CAS_LEN)
                    .expect("length checked")
                    .try_into()
                    .expect("exact length");
                PrismOp::Cas {
                    mode,
                    target,
                    rkey,
                    compare,
                    swap,
                    len,
                    compare_mask,
                    swap_mask,
                    target_indirect: flags & F_INDIRECT != 0,
                    conditional,
                }
            }
            _ => return Err(WireError("unknown opcode")),
        };
        chain.push(op);
    }
    Ok(chain)
}

const ST_OK: u8 = 0;
const ST_CAS_FAILED: u8 = 1;
const ST_SKIPPED: u8 = 2;
const ST_ERROR: u8 = 3;

/// Encodes the per-op results of a chain into a response message.
///
/// Fails (rather than truncating the length prefixes) if there are
/// more than [`MAX_COUNT`] results or a result payload exceeds
/// [`MAX_INLINE_LEN`] bytes.
pub fn encode_response(results: &[OpResult]) -> Result<Vec<u8>, WireError> {
    let mut buf = Vec::new();
    encode_response_into(results, &mut buf)?;
    Ok(buf)
}

/// [`encode_response`] writing into a caller-supplied buffer (appended);
/// byte-for-byte identical output, no intermediate `Vec`.
pub fn encode_response_into(results: &[OpResult], buf: &mut Vec<u8>) -> Result<(), WireError> {
    buf.put_u16_le(u16_count(results.len())?);
    for r in results {
        match &r.status {
            OpStatus::Ok => buf.put_u8(ST_OK),
            OpStatus::CasFailed => buf.put_u8(ST_CAS_FAILED),
            OpStatus::Skipped => buf.put_u8(ST_SKIPPED),
            OpStatus::Error(_) => buf.put_u8(ST_ERROR),
        }
        buf.put_u32_le(u32_len(r.data.len())?);
        buf.put_slice(&r.data);
    }
    Ok(())
}

/// Decodes a response message. Error detail is collapsed to
/// [`RdmaError::ChainAborted`] — real NACKs carry only a syndrome byte,
/// and clients only branch on success/failure class.
pub fn decode_response(mut buf: &[u8]) -> Result<Vec<OpResult>, WireError> {
    if buf.remaining() < 2 {
        return Err(WireError("truncated response header"));
    }
    let count = buf.get_u16_le() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 5 {
            return Err(WireError("truncated result"));
        }
        let status = buf.get_u8();
        let len = buf.get_u32_le() as usize;
        let data = match crate::buf::take(&mut buf, len) {
            Some(bytes) => bytes.to_vec(),
            None => return Err(WireError("truncated result data")),
        };
        let status = match status {
            ST_OK => OpStatus::Ok,
            ST_CAS_FAILED => OpStatus::CasFailed,
            ST_SKIPPED => OpStatus::Skipped,
            ST_ERROR => OpStatus::Error(RdmaError::ChainAborted),
            _ => return Err(WireError("bad status byte")),
        };
        out.push(OpResult { status, data });
    }
    Ok(out)
}

fn data_arg_len(arg: &DataArg) -> Result<u64, WireError> {
    Ok(match arg {
        DataArg::Inline(d) => 4 + u32_len(d.len())? as u64,
        DataArg::Remote { .. } => 12,
    })
}

/// Encoded size of a chain, computed arithmetically — no buffer is
/// built. Mirrors [`encode_chain`] exactly; the `sizes_match_encoders`
/// test pins the two together op-by-op.
pub fn chain_wire_len(chain: &[PrismOp]) -> Result<u64, WireError> {
    u16_count(chain.len())?;
    let mut n = 2u64;
    for op in chain {
        n += match op {
            PrismOp::Read { redirect, .. } => 18 + if redirect.is_some() { 12 } else { 0 },
            PrismOp::Write { data, .. } => 18 + data_arg_len(data)?,
            PrismOp::Allocate { data, redirect, .. } => {
                10 + u32_len(data.len())? as u64 + if redirect.is_some() { 12 } else { 0 }
            }
            PrismOp::Cas { compare, swap, .. } => {
                19 + data_arg_len(compare)? + data_arg_len(swap)? + 2 * MAX_CAS_LEN as u64
            }
        };
    }
    Ok(n)
}

/// Encoded size of a result set, computed arithmetically (see
/// [`chain_wire_len`]).
pub fn response_wire_len(results: &[OpResult]) -> Result<u64, WireError> {
    u16_count(results.len())?;
    let mut n = 2u64;
    for r in results {
        n += 5 + u32_len(r.data.len())? as u64;
    }
    Ok(n)
}

/// Request size of a chain, for link-bandwidth accounting. Computed
/// without encoding: this runs on every simulated send, where the old
/// encode-and-measure implementation allocated a throwaway buffer.
///
/// # Panics
///
/// Panics if the chain exceeds the wire limits ([`MAX_COUNT`] ops,
/// [`MAX_INLINE_LEN`]-byte payloads): such a chain cannot exist on the
/// wire, so accounting for it would be meaningless.
pub fn request_len(chain: &[PrismOp]) -> u64 {
    chain_wire_len(chain).expect("chain exceeds wire limits")
}

/// Response size of a result set, for link-bandwidth accounting (see
/// [`request_len`]).
///
/// # Panics
///
/// Panics if the results exceed the wire limits (see [`request_len`]).
pub fn response_len(results: &[OpResult]) -> u64 {
    response_wire_len(results).expect("results exceed wire limits")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ops;
    use crate::op::full_mask;

    fn sample_chain() -> Vec<PrismOp> {
        vec![
            ops::read_indirect_bounded(0x1_0000, 512, 7),
            ops::write(0x2_0000, vec![1, 2, 3], 7).conditional(),
            ops::allocate(FreeListId(3), vec![9; 40]).redirect(Redirect {
                addr: 0x3_0000,
                rkey: 8,
            }),
            ops::cas_args(
                CasMode::Lt,
                0x4_0000,
                7,
                DataArg::Inline(vec![0xAA; 16]),
                DataArg::Remote {
                    addr: 0x3_0000,
                    rkey: 8,
                },
                16,
                full_mask(8),
                full_mask(16),
            )
            .conditional(),
        ]
    }

    #[test]
    fn chain_round_trips() {
        let chain = sample_chain();
        let bytes = encode_chain(&chain).expect("encode");
        let decoded = decode_chain(&bytes).unwrap();
        assert_eq!(decoded, chain);
    }

    #[test]
    fn empty_chain_round_trips() {
        let bytes = encode_chain(&[]).expect("encode");
        assert_eq!(decode_chain(&bytes).unwrap(), Vec::<PrismOp>::new());
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let bytes = encode_chain(&sample_chain()).expect("encode");
        for cut in 0..bytes.len() {
            // Every prefix must either fail cleanly or decode to a valid
            // (shorter) chain — never panic.
            let _ = decode_chain(&bytes[..cut]);
        }
        assert!(decode_chain(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut bytes = encode_chain(&sample_chain()).expect("encode");
        bytes[2] = 0x7F; // first opcode byte
        assert!(decode_chain(&bytes).is_err());
    }

    #[test]
    fn response_round_trips() {
        let results = vec![
            OpResult {
                status: OpStatus::Ok,
                data: vec![1, 2, 3],
            },
            OpResult {
                status: OpStatus::CasFailed,
                data: vec![9; 16],
            },
            OpResult {
                status: OpStatus::Skipped,
                data: vec![],
            },
        ];
        let bytes = encode_response(&results).expect("encode");
        let decoded = decode_response(&bytes).unwrap();
        assert_eq!(decoded, results);
    }

    #[test]
    fn length_prefix_guards_hold_at_the_boundary() {
        assert_eq!(u16_count(MAX_COUNT), Ok(u16::MAX));
        assert_eq!(
            u16_count(MAX_COUNT + 1),
            Err(WireError("count exceeds u16 prefix"))
        );
        assert_eq!(u32_len(MAX_INLINE_LEN), Ok(u32::MAX));
        assert_eq!(
            u32_len(MAX_INLINE_LEN + 1),
            Err(WireError("payload exceeds u32 length prefix"))
        );
    }

    #[test]
    fn oversize_chain_is_rejected_not_truncated() {
        // `chain.len() as u16` used to wrap to 0 at 65 536 ops and the
        // decoder would return an empty chain; now the boundary encodes
        // and one-past-the-boundary errors.
        let op = ops::read(0, 8, 1);
        let max = vec![op.clone(); MAX_COUNT];
        let bytes = encode_chain(&max).expect("max-count chain encodes");
        assert_eq!(decode_chain(&bytes).unwrap().len(), MAX_COUNT);
        let over = vec![op; MAX_COUNT + 1];
        assert_eq!(
            encode_chain(&over),
            Err(WireError("count exceeds u16 prefix"))
        );
    }

    #[test]
    fn oversize_response_is_rejected_not_truncated() {
        let r = OpResult {
            status: OpStatus::Ok,
            data: vec![],
        };
        let max = vec![r.clone(); MAX_COUNT];
        let bytes = encode_response(&max).expect("max-count response encodes");
        assert_eq!(decode_response(&bytes).unwrap().len(), MAX_COUNT);
        let over = vec![r; MAX_COUNT + 1];
        assert_eq!(
            encode_response(&over),
            Err(WireError("count exceeds u16 prefix"))
        );
    }

    #[test]
    fn sizes_match_encoders() {
        // The arithmetic length functions must track the encoders
        // byte-for-byte, for every op shape: flags-dependent fields
        // (redirects, remote args) change the length.
        let mut variants = sample_chain();
        variants.push(ops::read(0x10, 64, 2).redirect(Redirect {
            addr: 0x99,
            rkey: 4,
        }));
        variants.push(PrismOp::Write {
            addr: 0,
            rkey: 1,
            data: DataArg::Remote { addr: 7, rkey: 9 },
            len: 128,
            addr_indirect: true,
            addr_bounded: true,
            conditional: true,
        });
        variants.push(ops::allocate(FreeListId(1), vec![3; 17]));
        for op in &variants {
            let one = std::slice::from_ref(op);
            assert_eq!(
                request_len(one),
                encode_chain(one).expect("encode").len() as u64,
                "length mismatch for {op:?}"
            );
        }
        assert_eq!(
            request_len(&variants),
            encode_chain(&variants).expect("encode").len() as u64
        );
        assert_eq!(request_len(&[]), 2);

        let results = vec![
            OpResult {
                status: OpStatus::Ok,
                data: vec![1; 37],
            },
            OpResult {
                status: OpStatus::Error(RdmaError::ChainAborted),
                data: vec![],
            },
        ];
        assert_eq!(
            response_len(&results),
            encode_response(&results).expect("encode").len() as u64
        );
        assert_eq!(response_len(&[]), 2);
    }

    #[test]
    fn into_encoders_append_identically() {
        let chain = sample_chain();
        let owned = encode_chain(&chain).expect("encode");
        let mut buf = vec![0xEE; 3]; // pre-existing bytes must survive
        encode_chain_into(&chain, &mut buf).expect("encode_into");
        assert_eq!(&buf[..3], &[0xEE; 3]);
        assert_eq!(&buf[3..], &owned[..]);

        let results = vec![OpResult {
            status: OpStatus::CasFailed,
            data: vec![5; 9],
        }];
        let owned = encode_response(&results).expect("encode");
        let mut buf = vec![0xAB];
        encode_response_into(&results, &mut buf).expect("encode_into");
        assert_eq!(buf[0], 0xAB);
        assert_eq!(&buf[1..], &owned[..]);
    }

    #[test]
    fn sizes_track_payloads() {
        let small = request_len(&[ops::read(0, 8, 1)]);
        let big = request_len(&[ops::write(0, vec![0; 512], 1)]);
        assert!(big > small + 500, "inline data dominates request size");
        // Remote data args are pointer-sized on the wire.
        let remote = request_len(&[PrismOp::Write {
            addr: 0,
            rkey: 1,
            data: DataArg::Remote { addr: 0, rkey: 2 },
            len: 512,
            addr_indirect: false,
            addr_bounded: false,
            conditional: false,
        }]);
        assert!(remote < small + 32);
    }
}
