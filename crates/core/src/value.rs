//! Value semantics of the enhanced compare-and-swap (§3.3).
//!
//! The enhanced CAS compares `(*target & compare_mask)` against
//! `(data & compare_mask)` under an operator that may be bitwise equality
//! or an arithmetic inequality, then on success sets
//! `*target = (*target & !swap_mask) | (data & swap_mask)`.
//!
//! For the arithmetic modes the masked operand is interpreted as an
//! unsigned **big-endian** integer: the byte at the lowest address is most
//! significant. This convention makes field concatenation lexicographic —
//! PRISM-TX's single-CAS read validation compares `RC|TS` against `PW|PR`
//! (§8.2) simply by laying PW out at a lower address than PR — and it is
//! how applications in this repository store all CAS-visible metadata
//! (see [`be64`]/[`read_be64`]).

use std::cmp::Ordering;

/// Comparison operator for the enhanced CAS (§3.3: equality plus
/// "arithmetic comparison operators (greater/less than)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CasMode {
    /// Bitwise equality of the masked operands.
    Eq,
    /// Bitwise inequality.
    Ne,
    /// Masked target < masked data (big-endian unsigned).
    Lt,
    /// Masked target <= masked data.
    Le,
    /// Masked target > masked data.
    Gt,
    /// Masked target >= masked data.
    Ge,
}

impl CasMode {
    /// Stable numeric encoding for the wire format.
    pub fn code(self) -> u8 {
        match self {
            CasMode::Eq => 0,
            CasMode::Ne => 1,
            CasMode::Lt => 2,
            CasMode::Le => 3,
            CasMode::Gt => 4,
            CasMode::Ge => 5,
        }
    }

    /// Inverse of [`CasMode::code`].
    pub fn from_code(code: u8) -> Option<CasMode> {
        Some(match code {
            0 => CasMode::Eq,
            1 => CasMode::Ne,
            2 => CasMode::Lt,
            3 => CasMode::Le,
            4 => CasMode::Gt,
            5 => CasMode::Ge,
            _ => return None,
        })
    }
}

/// Compares masked byte strings as big-endian unsigned integers.
///
/// Both slices must be the same length (the operand length of the CAS).
fn masked_cmp(target: &[u8], data: &[u8], mask: &[u8]) -> Ordering {
    debug_assert_eq!(target.len(), data.len());
    debug_assert!(mask.len() >= target.len());
    // Big-endian u64 comparison is lexicographic byte comparison, so
    // the 8/16-byte operands of enhanced CAS compare in one or two
    // word ops instead of a bytewise loop.
    let n = target.len();
    let mut i = 0;
    while i + 8 <= n {
        let m = u64::from_be_bytes(mask[i..i + 8].try_into().expect("8 bytes"));
        let t = u64::from_be_bytes(target[i..i + 8].try_into().expect("8 bytes")) & m;
        let d = u64::from_be_bytes(data[i..i + 8].try_into().expect("8 bytes")) & m;
        match t.cmp(&d) {
            Ordering::Equal => i += 8,
            other => return other,
        }
    }
    while i < n {
        let t = target[i] & mask[i];
        let d = data[i] & mask[i];
        match t.cmp(&d) {
            Ordering::Equal => i += 1,
            other => return other,
        }
    }
    Ordering::Equal
}

/// Evaluates the CAS comparison: does the masked `target` satisfy `mode`
/// with respect to the masked `data`?
///
/// The comparison reads as "target MODE data" — e.g. `Gt` succeeds when
/// the current memory contents are greater than the supplied operand.
/// (Applications wanting "new value greater than current", like PRISM-RS's
/// tag install, use `Lt`: *target < data.)
pub fn cas_compare(mode: CasMode, target: &[u8], data: &[u8], mask: &[u8]) -> bool {
    let ord = masked_cmp(target, data, mask);
    match mode {
        CasMode::Eq => ord == Ordering::Equal,
        CasMode::Ne => ord != Ordering::Equal,
        CasMode::Lt => ord == Ordering::Less,
        CasMode::Le => ord != Ordering::Greater,
        CasMode::Gt => ord == Ordering::Greater,
        CasMode::Ge => ord != Ordering::Less,
    }
}

/// Applies the swap: `target = (target & !mask) | (data & mask)`.
pub fn cas_swap(target: &mut [u8], data: &[u8], mask: &[u8]) {
    debug_assert_eq!(target.len(), data.len());
    let n = target.len();
    let mut i = 0;
    while i + 8 <= n {
        let m = u64::from_ne_bytes(mask[i..i + 8].try_into().expect("8 bytes"));
        let t = u64::from_ne_bytes(target[i..i + 8].try_into().expect("8 bytes"));
        let d = u64::from_ne_bytes(data[i..i + 8].try_into().expect("8 bytes"));
        target[i..i + 8].copy_from_slice(&((t & !m) | (d & m)).to_ne_bytes());
        i += 8;
    }
    while i < n {
        target[i] = (target[i] & !mask[i]) | (data[i] & mask[i]);
        i += 1;
    }
}

/// Encodes a u64 big-endian — the byte order CAS-visible metadata uses.
pub fn be64(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

/// Decodes a big-endian u64 from the first 8 bytes of `b`.
///
/// # Panics
///
/// Panics if `b` is shorter than 8 bytes.
pub fn read_be64(b: &[u8]) -> u64 {
    u64::from_be_bytes(b[..8].try_into().expect("need 8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_unmasked_bytes() {
        let mask = [0xFF, 0xFF, 0x00, 0x00];
        assert!(cas_compare(
            CasMode::Eq,
            &[1, 2, 3, 4],
            &[1, 2, 9, 9],
            &mask
        ));
        assert!(!cas_compare(
            CasMode::Eq,
            &[1, 2, 3, 4],
            &[1, 3, 3, 4],
            &mask
        ));
    }

    #[test]
    fn big_endian_ordering() {
        // 0x0100 > 0x00FF as big-endian integers.
        let full = [0xFF; 2];
        assert!(cas_compare(CasMode::Gt, &[1, 0], &[0, 0xFF], &full));
        assert!(cas_compare(CasMode::Lt, &[0, 0xFF], &[1, 0], &full));
    }

    #[test]
    fn inequality_modes_are_consistent() {
        let full = [0xFF; 8];
        let lo = be64(5);
        let hi = be64(9);
        // target=5, data=9
        assert!(cas_compare(CasMode::Lt, &lo, &hi, &full));
        assert!(cas_compare(CasMode::Le, &lo, &hi, &full));
        assert!(!cas_compare(CasMode::Gt, &lo, &hi, &full));
        assert!(!cas_compare(CasMode::Ge, &lo, &hi, &full));
        assert!(cas_compare(CasMode::Ne, &lo, &hi, &full));
        // Equal values.
        assert!(cas_compare(CasMode::Le, &lo, &lo, &full));
        assert!(cas_compare(CasMode::Ge, &lo, &lo, &full));
        assert!(!cas_compare(CasMode::Lt, &lo, &lo, &full));
    }

    #[test]
    fn lexicographic_field_concatenation() {
        // PRISM-TX's read validation: compare RC|TS >= PW|PR with PW at
        // the lower address. If RC == PW, the second field decides.
        let mut target = Vec::new();
        target.extend_from_slice(&be64(10)); // PW
        target.extend_from_slice(&be64(7)); // PR
        let mut data = Vec::new();
        data.extend_from_slice(&be64(10)); // RC
        data.extend_from_slice(&be64(9)); // TS
        let full = [0xFF; 16];
        // target (10|7) < data (10|9): Lt holds.
        assert!(cas_compare(CasMode::Lt, &target, &data, &full));
        // If RC < PW the first field dominates regardless of TS.
        data[..8].copy_from_slice(&be64(9));
        assert!(cas_compare(CasMode::Gt, &target, &data, &full));
    }

    #[test]
    fn swap_respects_mask() {
        let mut target = [0xAAu8; 4];
        let data = [0x55u8; 4];
        let mask = [0xFF, 0x00, 0x0F, 0xFF];
        cas_swap(&mut target, &data, &mask);
        assert_eq!(target, [0x55, 0xAA, 0xA5, 0x55]);
    }

    #[test]
    fn mode_codes_round_trip() {
        for mode in [
            CasMode::Eq,
            CasMode::Ne,
            CasMode::Lt,
            CasMode::Le,
            CasMode::Gt,
            CasMode::Ge,
        ] {
            assert_eq!(CasMode::from_code(mode.code()), Some(mode));
        }
        assert_eq!(CasMode::from_code(99), None);
    }

    #[test]
    fn be64_round_trip() {
        assert_eq!(
            read_be64(&be64(0x0123_4567_89AB_CDEF)),
            0x0123_4567_89AB_CDEF
        );
    }

    #[test]
    fn be64_orders_like_integers() {
        let full = [0xFF; 8];
        for (a, b) in [(0u64, 1u64), (255, 256), (u64::MAX - 1, u64::MAX)] {
            assert!(cas_compare(CasMode::Lt, &be64(a), &be64(b), &full));
        }
    }
}
