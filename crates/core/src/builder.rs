//! Ergonomic construction of PRISM operations and chains.
//!
//! The [`ops`] module provides one constructor per Table-1 primitive with
//! the common flag combinations; [`ChainBuilder`] strings them together.
//! The canonical out-of-place-update chain (§3.5: "ALLOCATE a new buffer,
//! write data into it, and install a pointer to it into another structure
//! using CAS, all within a single round trip") looks like:
//!
//! ```
//! use prism_core::builder::{ops, ChainBuilder};
//! use prism_core::op::{full_mask, DataArg, FreeListId, Redirect};
//! use prism_core::value::CasMode;
//!
//! let scratch = Redirect { addr: 0x2_0000, rkey: 2 };
//! let old_ptr = 0x5_0000u64; // learned during the GET probe
//! let chain = ChainBuilder::new()
//!     .then(ops::allocate(FreeListId(0), b"new value".to_vec()).redirect(scratch))
//!     .then(
//!         ops::cas_args(
//!             CasMode::Eq,
//!             0x1_0000, // hash-table slot
//!             1,        // table rkey
//!             DataArg::Inline(old_ptr.to_le_bytes().to_vec()),
//!             DataArg::Remote { addr: scratch.addr, rkey: scratch.rkey },
//!             8,
//!             full_mask(8),
//!             full_mask(8),
//!         )
//!         .conditional(),
//!     )
//!     .build();
//! assert_eq!(chain.len(), 2);
//! ```

use crate::op::{DataArg, FreeListId, PrismOp, Redirect, MAX_CAS_LEN};
use crate::value::CasMode;

/// Accumulates a chain of ops.
#[derive(Debug, Default)]
pub struct ChainBuilder {
    ops: Vec<PrismOp>,
}

impl ChainBuilder {
    /// Creates an empty chain.
    pub fn new() -> Self {
        ChainBuilder::default()
    }

    /// Appends an op.
    #[must_use]
    pub fn then(mut self, op: PrismOp) -> Self {
        self.ops.push(op);
        self
    }

    /// Finishes the chain.
    pub fn build(self) -> Vec<PrismOp> {
        self.ops
    }
}

/// Flag-setting helpers on [`PrismOp`].
impl PrismOp {
    /// Sets the conditional flag (§3.4): skip unless the previous op in
    /// the chain succeeded.
    #[must_use]
    pub fn conditional(mut self) -> Self {
        match &mut self {
            PrismOp::Read { conditional, .. }
            | PrismOp::Write { conditional, .. }
            | PrismOp::Allocate { conditional, .. }
            | PrismOp::Cas { conditional, .. } => *conditional = true,
        }
        self
    }

    /// Redirects this op's output to a server-side location (§3.4).
    ///
    /// # Panics
    ///
    /// Panics for WRITE and CAS — only READ and ALLOCATE produce
    /// redirectable output (Table 1).
    #[must_use]
    pub fn redirect(mut self, r: Redirect) -> Self {
        match &mut self {
            PrismOp::Read { redirect, .. } | PrismOp::Allocate { redirect, .. } => {
                *redirect = Some(r)
            }
            PrismOp::Write { .. } | PrismOp::Cas { .. } => {
                panic!("only READ and ALLOCATE support output redirection")
            }
        }
        self
    }
}

/// Constructors for the Table-1 primitives.
pub mod ops {
    use super::*;

    /// Plain READ.
    pub fn read(addr: u64, len: u32, rkey: u32) -> PrismOp {
        PrismOp::Read {
            addr,
            len,
            rkey,
            indirect: false,
            bounded: false,
            conditional: false,
            redirect: None,
        }
    }

    /// READ with the indirect bit: `addr` holds a pointer to the data.
    pub fn read_indirect(addr: u64, len: u32, rkey: u32) -> PrismOp {
        PrismOp::Read {
            addr,
            len,
            rkey,
            indirect: true,
            bounded: false,
            conditional: false,
            redirect: None,
        }
    }

    /// READ with indirect + bounded bits: `addr` holds a `(ptr, bound)`
    /// pair; at most `bound` bytes are returned.
    pub fn read_indirect_bounded(addr: u64, len: u32, rkey: u32) -> PrismOp {
        PrismOp::Read {
            addr,
            len,
            rkey,
            indirect: true,
            bounded: true,
            conditional: false,
            redirect: None,
        }
    }

    /// Plain WRITE of inline data.
    pub fn write(addr: u64, data: Vec<u8>, rkey: u32) -> PrismOp {
        let len = data.len() as u32;
        PrismOp::Write {
            addr,
            rkey,
            data: DataArg::Inline(data),
            len,
            addr_indirect: false,
            addr_bounded: false,
            conditional: false,
        }
    }

    /// WRITE through a pointer: `addr` holds the address of the target.
    pub fn write_indirect(addr: u64, data: Vec<u8>, rkey: u32) -> PrismOp {
        let len = data.len() as u32;
        PrismOp::Write {
            addr,
            rkey,
            data: DataArg::Inline(data),
            len,
            addr_indirect: true,
            addr_bounded: false,
            conditional: false,
        }
    }

    /// ALLOCATE from `freelist`, writing `data` into the fresh buffer.
    pub fn allocate(freelist: FreeListId, data: Vec<u8>) -> PrismOp {
        PrismOp::Allocate {
            freelist,
            data,
            conditional: false,
            redirect: None,
        }
    }

    /// Enhanced CAS with inline compare and swap operands.
    #[allow(clippy::too_many_arguments)]
    pub fn cas(
        mode: CasMode,
        target: u64,
        rkey: u32,
        compare: Vec<u8>,
        swap: Vec<u8>,
        len: u32,
        compare_mask: [u8; MAX_CAS_LEN],
        swap_mask: [u8; MAX_CAS_LEN],
    ) -> PrismOp {
        PrismOp::Cas {
            mode,
            target,
            rkey,
            compare: DataArg::Inline(compare),
            swap: DataArg::Inline(swap),
            len,
            compare_mask,
            swap_mask,
            target_indirect: false,
            conditional: false,
        }
    }

    /// Enhanced CAS with explicit [`DataArg`] operands — for the
    /// `data_indirect` patterns where compare or swap is loaded from
    /// server memory (typically the connection scratch slot staged by
    /// earlier ops in the chain, §3.3).
    #[allow(clippy::too_many_arguments)]
    pub fn cas_args(
        mode: CasMode,
        target: u64,
        rkey: u32,
        compare: DataArg,
        swap: DataArg,
        len: u32,
        compare_mask: [u8; MAX_CAS_LEN],
        swap_mask: [u8; MAX_CAS_LEN],
    ) -> PrismOp {
        PrismOp::Cas {
            mode,
            target,
            rkey,
            compare,
            swap,
            len,
            compare_mask,
            swap_mask,
            target_indirect: false,
            conditional: false,
        }
    }

    /// Classic 64-bit equality CAS expressed as an enhanced CAS: if
    /// `*target == compare` then `*target = swap`. Values are big-endian
    /// (the CAS byte-order convention; equality is order-insensitive but
    /// callers mixing this with arithmetic modes get consistent layouts).
    pub fn cas64(target: u64, rkey: u32, compare: u64, swap: u64) -> PrismOp {
        cas(
            CasMode::Eq,
            target,
            rkey,
            compare.to_be_bytes().to_vec(),
            swap.to_be_bytes().to_vec(),
            8,
            crate::op::full_mask(8),
            crate::op::full_mask(8),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_in_order() {
        let chain = ChainBuilder::new()
            .then(ops::read(0x10, 8, 1))
            .then(ops::write(0x20, vec![1, 2], 1).conditional())
            .build();
        assert_eq!(chain.len(), 2);
        assert!(!chain[0].is_conditional());
        assert!(chain[1].is_conditional());
    }

    #[test]
    fn redirect_on_read_and_allocate() {
        let r = Redirect {
            addr: 0x99,
            rkey: 4,
        };
        let op = ops::read(0x10, 8, 1).redirect(r);
        match op {
            PrismOp::Read { redirect, .. } => assert_eq!(redirect, Some(r)),
            _ => unreachable!(),
        }
        let op = ops::allocate(FreeListId(0), vec![]).redirect(r);
        match op {
            PrismOp::Allocate { redirect, .. } => assert_eq!(redirect, Some(r)),
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "only READ and ALLOCATE")]
    fn redirect_on_write_panics() {
        let _ = ops::write(0, vec![], 1).redirect(Redirect { addr: 0, rkey: 0 });
    }

    #[test]
    fn indirect_constructors_set_flags() {
        match ops::read_indirect_bounded(1, 2, 3) {
            PrismOp::Read {
                indirect, bounded, ..
            } => {
                assert!(indirect && bounded);
            }
            _ => unreachable!(),
        }
        match ops::write_indirect(1, vec![0], 3) {
            PrismOp::Write { addr_indirect, .. } => assert!(addr_indirect),
            _ => unreachable!(),
        }
    }
}
