//! Per-connection state: the scratch slots used by output redirection.
//!
//! Chained operations stage intermediate results (an ALLOCATE'd address,
//! a freshly written tag) in a small per-connection buffer. The paper
//! places these in on-NIC memory — "32 B/connection suffices for our
//! applications" against a 256 KB on-NIC region (§4.2). We model that
//! region as a carved extent of the arena registered under its own rkey,
//! sized [`SCRATCH_BYTES`] per connection.
//!
//! Slots are **recycled**: closing a connection returns its scratch slot
//! to a free stack, and each slot carries a generation counter bumped on
//! close. A handle is only valid while its generation matches the
//! slot's, so a reply (or a straggling close) addressed to a connection
//! whose slot has since been reissued is fenced instead of being
//! delivered to the slot's new tenant — the same stale-handle discipline
//! the incarnation fence applies to rkeys, scoped to one connection.
//! Without recycling, any long-lived process that opens connections per
//! phase (a sweep, a reconfiguration) eventually exhausts the fixed
//! on-NIC region even though only a handful are ever live at once.

use prism_rdma::region::Rkey;
use prism_rdma::sync::Mutex;
use prism_rdma::RdmaError;

/// Scratch bytes per connection. The paper's applications need 32 B; we
/// provision 64 B so layouts can keep fields line-aligned.
pub const SCRATCH_BYTES: u64 = 64;

/// One client connection's handle to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connection {
    /// Connection id (dense, from 0). Ids are reused after close; the
    /// generation distinguishes tenants of the same slot.
    pub id: u64,
    /// Generation of the slot when this handle was issued. Stale after
    /// the connection is closed.
    pub gen: u64,
    /// Base address of this connection's scratch slot.
    pub scratch_addr: u64,
    /// Rkey of the on-NIC scratch region.
    pub scratch_rkey: Rkey,
}

/// Per-slot bookkeeping guarded by the table lock.
#[derive(Debug, Default)]
struct Slots {
    /// Current generation of each slot ever handed out. Even = slot is
    /// open under generation `gen`; odd values never occur (close bumps
    /// straight to the next issue generation on reuse).
    gens: Vec<u64>,
    /// Whether the slot is currently open.
    open: Vec<bool>,
    /// Closed slots awaiting reuse, LIFO so sweeps that open/close in
    /// phases keep touching the same hot scratch lines.
    free: Vec<u64>,
}

/// Allocates connections out of the on-NIC scratch region, recycling
/// slots on close.
#[derive(Debug)]
pub struct ConnectionTable {
    base: u64,
    capacity: u64,
    rkey: Rkey,
    slots: Mutex<Slots>,
}

impl ConnectionTable {
    /// Creates a table over a scratch region of `len` bytes registered
    /// with `rkey`.
    pub fn new(base: u64, len: u64, rkey: Rkey) -> Self {
        ConnectionTable {
            base,
            capacity: len / SCRATCH_BYTES,
            rkey,
            slots: Mutex::new(Slots::default()),
        }
    }

    /// Opens a connection, assigning it the most recently freed scratch
    /// slot, or the next never-used one if none has been freed.
    ///
    /// # Panics
    ///
    /// Panics when the scratch region is exhausted — every slot open at
    /// once. A 256 KB region holds 4096 connections at 64 B each —
    /// comfortably above the recommended concurrent-connection limit the
    /// paper cites (§4.2); hitting the panic means connections are being
    /// leaked rather than closed.
    pub fn open(&self) -> Connection {
        let mut slots = self.slots.lock();
        let id = match slots.free.pop() {
            Some(id) => id,
            None => {
                let id = slots.gens.len() as u64;
                assert!(
                    id < self.capacity,
                    "on-NIC scratch exhausted: {id} connections open, capacity {}",
                    self.capacity
                );
                slots.gens.push(0);
                slots.open.push(false);
                id
            }
        };
        slots.open[id as usize] = true;
        let gen = slots.gens[id as usize];
        Connection {
            id,
            gen,
            scratch_addr: self.base + id * SCRATCH_BYTES,
            scratch_rkey: self.rkey,
        }
    }

    /// Closes a connection, returning its scratch slot to the free
    /// stack and bumping the slot's generation so the closed handle (and
    /// any replies still addressed to it) is fenced.
    ///
    /// A stale or double close is rejected with
    /// [`RdmaError::StaleIncarnation`] carrying the slot's generations —
    /// the handle being closed was already superseded.
    pub fn close(&self, conn: Connection) -> Result<(), RdmaError> {
        let mut slots = self.slots.lock();
        let idx = conn.id as usize;
        let current = match slots.gens.get(idx) {
            Some(&g) => g,
            None => return Err(RdmaError::InvalidRkey(conn.scratch_rkey.0)),
        };
        if current != conn.gen || !slots.open[idx] {
            return Err(RdmaError::StaleIncarnation {
                seen: conn.gen,
                current,
            });
        }
        slots.gens[idx] += 1;
        slots.open[idx] = false;
        slots.free.push(conn.id);
        Ok(())
    }

    /// Whether `conn` is still the current tenant of its slot. False
    /// once the connection is closed (even if the slot was reissued) —
    /// the fence a reply path checks before touching connection scratch.
    pub fn is_current(&self, conn: Connection) -> bool {
        let slots = self.slots.lock();
        let idx = conn.id as usize;
        idx < slots.gens.len() && slots.open[idx] && slots.gens[idx] == conn.gen
    }

    /// Closes every open connection — the bulk hangup a sweep uses
    /// between points. Returns how many were open.
    pub fn close_all(&self) -> u64 {
        let mut slots = self.slots.lock();
        let mut closed = 0;
        for idx in 0..slots.gens.len() {
            if slots.open[idx] {
                slots.gens[idx] += 1;
                slots.open[idx] = false;
                slots.free.push(idx as u64);
                closed += 1;
            }
        }
        closed
    }

    /// Connections currently open.
    pub fn opened(&self) -> u64 {
        let slots = self.slots.lock();
        slots.open.iter().filter(|&&o| o).count() as u64
    }

    /// Maximum number of simultaneously open connections.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_disjoint() {
        let t = ConnectionTable::new(0x1_0000, 256, Rkey(7));
        let a = t.open();
        let b = t.open();
        assert_eq!(a.scratch_addr, 0x1_0000);
        assert_eq!(b.scratch_addr, 0x1_0000 + SCRATCH_BYTES);
        assert_eq!(a.scratch_rkey, Rkey(7));
        assert_eq!(t.opened(), 2);
        assert_eq!(t.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "scratch exhausted")]
    fn exhaustion_panics() {
        let t = ConnectionTable::new(0x1_0000, 64, Rkey(7));
        t.open();
        t.open();
    }

    #[test]
    fn closed_slots_are_recycled_with_a_new_generation() {
        // One slot of capacity: without recycling the second open would
        // panic; with it, open/close can cycle forever.
        let t = ConnectionTable::new(0x1_0000, 64, Rkey(7));
        for round in 0..10u64 {
            let c = t.open();
            assert_eq!(c.id, 0);
            assert_eq!(c.gen, round);
            assert_eq!(c.scratch_addr, 0x1_0000);
            t.close(c).unwrap();
        }
        assert_eq!(t.opened(), 0);
    }

    #[test]
    fn stale_handles_are_fenced() {
        let t = ConnectionTable::new(0x1_0000, 256, Rkey(7));
        let a = t.open();
        t.close(a).unwrap();
        // Double close is a typed rejection, not a corruption.
        assert_eq!(
            t.close(a),
            Err(RdmaError::StaleIncarnation {
                seen: 0,
                current: 1
            })
        );
        // The slot's new tenant is current; the old handle is not.
        let b = t.open();
        assert_eq!(b.id, a.id);
        assert_eq!(b.gen, a.gen + 1);
        assert!(t.is_current(b));
        assert!(!t.is_current(a));
        // Closing the old handle again cannot evict the new tenant.
        assert!(t.close(a).is_err());
        assert!(t.is_current(b));
        t.close(b).unwrap();
        assert!(!t.is_current(b));
    }

    #[test]
    fn close_all_hangs_up_every_open_connection() {
        let t = ConnectionTable::new(0x1_0000, 256, Rkey(7));
        let a = t.open();
        let b = t.open();
        let c = t.open();
        t.close(b).unwrap();
        assert_eq!(t.close_all(), 2);
        assert_eq!(t.opened(), 0);
        assert!(!t.is_current(a) && !t.is_current(c));
        // All three slots are reusable afterwards, plus the fourth.
        for _ in 0..4 {
            t.open();
        }
        assert_eq!(t.opened(), 4);
    }
}
