//! Per-connection state: the scratch slots used by output redirection.
//!
//! Chained operations stage intermediate results (an ALLOCATE'd address,
//! a freshly written tag) in a small per-connection buffer. The paper
//! places these in on-NIC memory — "32 B/connection suffices for our
//! applications" against a 256 KB on-NIC region (§4.2). We model that
//! region as a carved extent of the arena registered under its own rkey,
//! sized [`SCRATCH_BYTES`] per connection.

use std::sync::atomic::{AtomicU64, Ordering};

use prism_rdma::region::Rkey;

/// Scratch bytes per connection. The paper's applications need 32 B; we
/// provision 64 B so layouts can keep fields line-aligned.
pub const SCRATCH_BYTES: u64 = 64;

/// One client connection's handle to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connection {
    /// Connection id (dense, from 0).
    pub id: u64,
    /// Base address of this connection's scratch slot.
    pub scratch_addr: u64,
    /// Rkey of the on-NIC scratch region.
    pub scratch_rkey: Rkey,
}

/// Allocates connections out of the on-NIC scratch region.
#[derive(Debug)]
pub struct ConnectionTable {
    base: u64,
    capacity: u64,
    rkey: Rkey,
    next: AtomicU64,
}

impl ConnectionTable {
    /// Creates a table over a scratch region of `len` bytes registered
    /// with `rkey`.
    pub fn new(base: u64, len: u64, rkey: Rkey) -> Self {
        ConnectionTable {
            base,
            capacity: len / SCRATCH_BYTES,
            rkey,
            next: AtomicU64::new(0),
        }
    }

    /// Opens a connection, assigning it the next scratch slot.
    ///
    /// # Panics
    ///
    /// Panics when the scratch region is exhausted. A 256 KB region holds
    /// 4096 connections at 64 B each — comfortably above the
    /// recommended concurrent-connection limit the paper cites (§4.2).
    pub fn open(&self) -> Connection {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(
            id < self.capacity,
            "on-NIC scratch exhausted: {id} connections opened, capacity {}",
            self.capacity
        );
        Connection {
            id,
            scratch_addr: self.base + id * SCRATCH_BYTES,
            scratch_rkey: self.rkey,
        }
    }

    /// Connections opened so far.
    pub fn opened(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Maximum number of connections.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_disjoint() {
        let t = ConnectionTable::new(0x1_0000, 256, Rkey(7));
        let a = t.open();
        let b = t.open();
        assert_eq!(a.scratch_addr, 0x1_0000);
        assert_eq!(b.scratch_addr, 0x1_0000 + SCRATCH_BYTES);
        assert_eq!(a.scratch_rkey, Rkey(7));
        assert_eq!(t.opened(), 2);
        assert_eq!(t.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "scratch exhausted")]
    fn exhaustion_panics() {
        let t = ConnectionTable::new(0x1_0000, 64, Rkey(7));
        t.open();
        t.open();
    }
}
