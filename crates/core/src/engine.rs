//! The PRISM chain execution engine — the data plane of the paper's
//! software prototype (§4.1).
//!
//! A chain of [`PrismOp`]s arrives in one request and executes in order.
//! Each primitive is a short, bounded routine (a design requirement in
//! §4.1 "to prevent starvation"): at most two pointer dereferences, one
//! memory access, no loops over application data structures. Conditional
//! ops are skipped when the previous op was unsuccessful; READ/ALLOCATE
//! output can be redirected into server memory instead of the response
//! (§3.4).
//!
//! Atomicity rules (matching §3.3 and §6.1):
//! * the CAS read-modify-write is atomic with respect to all other arena
//!   accesses;
//! * pointer dereferences for indirect arguments are *not* atomic with
//!   the CAS;
//! * plain READ/WRITE are single-copy atomic only within a cache line.

use std::sync::Arc;

use prism_rdma::arena::MemoryArena;
use prism_rdma::region::{Access, RegionTable, Rkey};
use prism_rdma::RdmaError;

use crate::freelist::FreeLists;
use crate::op::{DataArg, PrismOp, Redirect, MAX_CAS_LEN};
use crate::value::{cas_compare, cas_swap};

/// How one op in a chain finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpStatus {
    /// The op executed and succeeded.
    Ok,
    /// An enhanced CAS executed but its comparison failed (unsuccessful
    /// for chaining purposes; the old value is still returned).
    CasFailed,
    /// A conditional op was skipped because the previous op failed.
    Skipped,
    /// The op faulted (NACK).
    Error(RdmaError),
}

/// Result of one op: its status plus any returned bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpResult {
    /// Outcome class.
    pub status: OpStatus,
    /// READ data, ALLOCATE'd address (8 bytes LE), or the CAS's previous
    /// target value. Empty for WRITE and for redirected output.
    pub data: Vec<u8>,
}

impl OpResult {
    fn skipped() -> Self {
        OpResult {
            status: OpStatus::Skipped,
            data: Vec::new(),
        }
    }

    fn error(e: RdmaError) -> Self {
        OpResult {
            status: OpStatus::Error(e),
            data: Vec::new(),
        }
    }

    /// Whether the op counts as successful for the conditional flag.
    pub fn succeeded(&self) -> bool {
        self.status == OpStatus::Ok
    }

    /// The returned bytes, or an error if the op did not succeed.
    pub fn expect_data(&self) -> Result<&[u8], RdmaError> {
        match &self.status {
            OpStatus::Ok => Ok(&self.data),
            OpStatus::CasFailed => Ok(&self.data),
            OpStatus::Skipped => Err(RdmaError::ChainAborted),
            OpStatus::Error(e) => Err(*e),
        }
    }
}

/// The engine: executes chains against one host's memory.
#[derive(Clone)]
pub struct PrismEngine {
    arena: Arc<MemoryArena>,
    regions: Arc<RegionTable>,
    freelists: Arc<FreeLists>,
}

impl PrismEngine {
    /// Creates an engine over the host's memory, registrations, and free
    /// lists.
    pub fn new(
        arena: Arc<MemoryArena>,
        regions: Arc<RegionTable>,
        freelists: Arc<FreeLists>,
    ) -> Self {
        PrismEngine {
            arena,
            regions,
            freelists,
        }
    }

    /// Executes a chain: ops run in order; a conditional op is skipped
    /// unless the immediately preceding op succeeded (§3.4).
    ///
    /// Thin allocating wrapper over
    /// [`PrismEngine::execute_chain_into`].
    pub fn execute_chain(&self, chain: &[PrismOp]) -> Vec<OpResult> {
        let mut results = Vec::with_capacity(chain.len());
        self.execute_chain_into(chain, &mut results);
        results
    }

    /// Executes a chain, writing per-op results into `results` — the
    /// zero-alloc fast path. `results` is truncated/extended to
    /// `chain.len()` and each existing [`OpResult::data`] buffer is
    /// reused, so a caller that drives many chains through the same
    /// results vector reaches a steady state with no per-op heap
    /// traffic.
    pub fn execute_chain_into(&self, chain: &[PrismOp], results: &mut Vec<OpResult>) {
        // Hold the posting gate for the whole chain so free-list reposts
        // cannot interleave with our allocations or reads (§3.2).
        let _gate = self.freelists.gate_read();
        results.truncate(chain.len());
        while results.len() < chain.len() {
            results.push(OpResult::skipped());
        }
        let mut prev_ok = true;
        for (op, slot) in chain.iter().zip(results.iter_mut()) {
            let mut data = std::mem::take(&mut slot.data);
            data.clear();
            let status = if op.is_conditional() && !prev_ok {
                OpStatus::Skipped
            } else {
                match self.dispatch_into(op, &mut data) {
                    Ok(status) => status,
                    Err(e) => {
                        data.clear();
                        OpStatus::Error(e)
                    }
                }
            };
            prev_ok = status == OpStatus::Ok;
            slot.status = status;
            slot.data = data;
        }
    }

    /// Executes a single op unconditionally (used by tests; chains should
    /// go through [`PrismEngine::execute_chain`]).
    pub fn execute_one(&self, op: &PrismOp) -> OpResult {
        let mut data = Vec::new();
        match self.dispatch_into(op, &mut data) {
            Ok(status) => OpResult { status, data },
            Err(e) => OpResult::error(e),
        }
    }

    /// Dispatches one op, writing its returned bytes into `out` (cleared
    /// by the caller). Returns the op's status; `Err` means NACK.
    fn dispatch_into(&self, op: &PrismOp, out: &mut Vec<u8>) -> Result<OpStatus, RdmaError> {
        match op {
            PrismOp::Read {
                addr,
                len,
                rkey,
                indirect,
                bounded,
                redirect,
                ..
            } => self.read(
                *addr,
                *len as u64,
                Rkey(*rkey),
                *indirect,
                *bounded,
                *redirect,
                out,
            ),
            PrismOp::Write {
                addr,
                rkey,
                data,
                len,
                addr_indirect,
                addr_bounded,
                ..
            } => self.write(
                *addr,
                Rkey(*rkey),
                data,
                *len as u64,
                *addr_indirect,
                *addr_bounded,
            ),
            PrismOp::Allocate {
                freelist,
                data,
                redirect,
                ..
            } => self.allocate(*freelist, data, *redirect, out),
            PrismOp::Cas {
                mode,
                target,
                rkey,
                compare,
                swap,
                len,
                compare_mask,
                swap_mask,
                target_indirect,
                ..
            } => self.cas(
                *mode,
                *target,
                Rkey(*rkey),
                compare,
                swap,
                *len as u64,
                compare_mask,
                swap_mask,
                *target_indirect,
                out,
            ),
        }
    }

    /// Dereferences an indirect target: reads the pointer (and bound, if
    /// bounded), validating both the pointer location and the pointed-to
    /// range under the *same* rkey (§3.1's security rule).
    fn deref_target(
        &self,
        addr: u64,
        len: u64,
        rkey: Rkey,
        bounded: bool,
        access: Access,
    ) -> Result<(u64, u64), RdmaError> {
        let ptr_bytes = if bounded { 16 } else { 8 };
        self.regions.validate(rkey, addr, ptr_bytes, Access::Read)?;
        let ptr = self.arena.read_u64(addr)?;
        let len = if bounded {
            let bound = self.arena.read_u64(addr + 8)?;
            len.min(bound)
        } else {
            len
        };
        if self.regions.validate(rkey, ptr, len, access).is_err() {
            return Err(RdmaError::BadIndirectTarget(ptr));
        }
        Ok((ptr, len))
    }

    /// Loads a CAS operand (≤ [`MAX_CAS_LEN`] bytes) into a
    /// caller-provided stack buffer, avoiding heap traffic. Shorter
    /// inline data is zero-extended; longer is clamped — same semantics
    /// for remote operands via the bounded read.
    fn load_operand<'a>(
        &self,
        data: &DataArg,
        buf: &'a mut [u8; MAX_CAS_LEN],
        len: u64,
    ) -> Result<&'a [u8], RdmaError> {
        let len = len as usize;
        match data {
            DataArg::Inline(d) => {
                // Copy what the operand covers and zero-extend only the
                // tail — the common full-length operand pays no fill.
                let n = d.len().min(len);
                buf[..n].copy_from_slice(&d[..n]);
                buf[n..len].fill(0);
            }
            DataArg::Remote { addr, rkey } => {
                // The bounded read overwrites the whole span.
                self.regions
                    .validate(Rkey(*rkey), *addr, len as u64, Access::Read)?;
                self.arena.read_into(*addr, &mut buf[..len])?;
            }
        }
        Ok(&buf[..len])
    }

    /// Delivers `out` either to the response (leaving it in place) or to
    /// the redirect target in server memory (clearing it, §3.4).
    fn emit_into(&self, out: &mut Vec<u8>, redirect: Option<Redirect>) -> Result<(), RdmaError> {
        if let Some(r) = redirect {
            self.regions
                .validate(Rkey(r.rkey), r.addr, out.len() as u64, Access::Write)?;
            self.arena.write(r.addr, out)?;
            out.clear();
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn read(
        &self,
        addr: u64,
        len: u64,
        rkey: Rkey,
        indirect: bool,
        bounded: bool,
        redirect: Option<Redirect>,
        out: &mut Vec<u8>,
    ) -> Result<OpStatus, RdmaError> {
        let (target, len) = if indirect {
            self.deref_target(addr, len, rkey, bounded, Access::Read)?
        } else {
            self.regions.validate(rkey, addr, len, Access::Read)?;
            (addr, len)
        };
        out.resize(len as usize, 0);
        self.arena.read_into(target, out)?;
        self.emit_into(out, redirect)?;
        Ok(OpStatus::Ok)
    }

    fn write(
        &self,
        addr: u64,
        rkey: Rkey,
        data: &DataArg,
        len: u64,
        addr_indirect: bool,
        addr_bounded: bool,
    ) -> Result<OpStatus, RdmaError> {
        let (target, len) = if addr_indirect {
            self.deref_target(addr, len, rkey, addr_bounded, Access::Write)?
        } else {
            self.regions.validate(rkey, addr, len, Access::Write)?;
            (addr, len)
        };
        match data {
            // Inline data covering the whole span is written straight
            // from the request — the hot PUT path allocates nothing.
            DataArg::Inline(d) if d.len() as u64 >= len => {
                self.arena.write(target, &d[..len as usize])?;
            }
            DataArg::Inline(d) => {
                // Shorter inline data is zero-extended (cold path).
                let mut padded = vec![0u8; len as usize];
                padded[..d.len()].copy_from_slice(d);
                self.arena.write(target, &padded)?;
            }
            DataArg::Remote {
                addr: src,
                rkey: src_rkey,
            } => {
                self.regions
                    .validate(Rkey(*src_rkey), *src, len, Access::Read)?;
                let src = *src;
                if src < target.saturating_add(len) && target < src.saturating_add(len) {
                    // Overlapping ranges: snapshot the source first so
                    // the copy keeps memcpy semantics (cold path).
                    let snapshot = self.arena.read(src, len)?;
                    self.arena.write(target, &snapshot)?;
                } else {
                    // Server-memory-to-server-memory copy, staged line
                    // by line through a stack buffer: no allocation, and
                    // the same per-line atomicity a NIC DMA would give.
                    let mut staged = 0u64;
                    let mut buf = [0u8; 64];
                    while staged < len {
                        let n = (len - staged).min(64) as usize;
                        self.arena.read_into(src + staged, &mut buf[..n])?;
                        self.arena.write(target + staged, &buf[..n])?;
                        staged += n as u64;
                    }
                }
            }
        }
        Ok(OpStatus::Ok)
    }

    fn allocate(
        &self,
        id: crate::op::FreeListId,
        data: &[u8],
        redirect: Option<Redirect>,
        out: &mut Vec<u8>,
    ) -> Result<OpStatus, RdmaError> {
        let (addr, buf_len) = self.freelists.pop(id)?;
        if data.len() as u64 > buf_len {
            // Put the buffer back: the allocation never happened. The
            // caller still holds the read gate, so a direct queue push is
            // safe here (this is the engine, not the CPU repost path).
            self.freelists_repush(id, addr);
            return Err(RdmaError::BufferTooSmall {
                need: data.len() as u64,
                have: buf_len,
            });
        }
        self.arena.write(addr, data)?;
        out.extend_from_slice(&addr.to_le_bytes());
        self.emit_into(out, redirect)?;
        Ok(OpStatus::Ok)
    }

    fn freelists_repush(&self, id: crate::op::FreeListId, addr: u64) {
        // Engine-internal undo path; bypasses the write gate on purpose
        // (we are the in-flight NIC operation).
        if let Some(len) = self.freelists.buf_len(id) {
            let _ = len;
            self.freelists.repush_internal(id, addr);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn cas(
        &self,
        mode: crate::value::CasMode,
        target: u64,
        rkey: Rkey,
        compare: &DataArg,
        swap: &DataArg,
        len: u64,
        compare_mask: &[u8; MAX_CAS_LEN],
        swap_mask: &[u8; MAX_CAS_LEN],
        target_indirect: bool,
        out: &mut Vec<u8>,
    ) -> Result<OpStatus, RdmaError> {
        if len as usize > MAX_CAS_LEN {
            return Err(RdmaError::OperandTooLong(len));
        }
        let target = if target_indirect {
            // Dereference is not atomic with the CAS (§3.3).
            let (t, _) = self.deref_target(target, len, rkey, false, Access::Atomic)?;
            t
        } else {
            target
        };
        if target % 8 != 0 {
            return Err(RdmaError::Misaligned {
                addr: target,
                required: 8,
            });
        }
        self.regions.validate(rkey, target, len, Access::Atomic)?;
        // Operand loads are not atomic with the CAS (§3.3) — they happen
        // before the target lines are locked. Both operands fit in
        // stack buffers (enhanced-CAS maximum is 32 bytes).
        let mut compare_buf = [0u8; MAX_CAS_LEN];
        let mut swap_buf = [0u8; MAX_CAS_LEN];
        let comparand = self.load_operand(compare, &mut compare_buf, len)?;
        let swap_value = self.load_operand(swap, &mut swap_buf, len)?;
        out.resize(len as usize, 0);
        let old = &mut out[..len as usize];
        let swapped = self.arena.atomic(target, len, |bytes| {
            old.copy_from_slice(bytes);
            let ok = cas_compare(mode, bytes, comparand, compare_mask);
            if ok {
                cas_swap(bytes, swap_value, swap_mask);
            }
            ok
        })?;
        Ok(if swapped {
            OpStatus::Ok
        } else {
            OpStatus::CasFailed
        })
    }
}

impl std::fmt::Debug for PrismEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrismEngine").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ops;
    use crate::op::{field_mask, full_mask, DataArg, FreeListId, Redirect};
    use crate::value::CasMode;
    use prism_rdma::region::AccessFlags;

    struct Rig {
        engine: PrismEngine,
        arena: Arc<MemoryArena>,
        regions: Arc<RegionTable>,
        freelists: Arc<FreeLists>,
        data_addr: u64,
        data_rkey: u32,
        scratch_addr: u64,
        scratch_rkey: u32,
    }

    fn rig() -> Rig {
        let arena = Arc::new(MemoryArena::new(1 << 16));
        let regions = Arc::new(RegionTable::new());
        let freelists = Arc::new(FreeLists::new());
        let engine = PrismEngine::new(
            Arc::clone(&arena),
            Arc::clone(&regions),
            Arc::clone(&freelists),
        );
        let base = MemoryArena::BASE;
        // [base, base+8K): data region. [base+8K, base+9K): scratch.
        let data_rkey = regions.register(base, 8192, AccessFlags::FULL);
        let scratch_rkey = regions.register(base + 8192, 1024, AccessFlags::FULL);
        // Free list of 128-byte buffers carved above the scratch region.
        freelists.register(FreeListId(0), 128);
        freelists
            .post(FreeListId(0), (0..8).map(|i| base + 16384 + i * 128))
            .unwrap();
        // Register the buffer pool under the data rkey's address space?
        // Buffers live outside the data region on purpose: indirect reads
        // into them must use a region that covers them.
        Rig {
            engine,
            arena,
            regions,
            freelists,
            data_addr: base,
            data_rkey: data_rkey.0,
            scratch_addr: base + 8192,
            scratch_rkey: scratch_rkey.0,
        }
    }

    #[test]
    fn plain_read_write() {
        let r = rig();
        let res = r.engine.execute_chain(&[
            ops::write(r.data_addr, b"hello".to_vec(), r.data_rkey),
            ops::read(r.data_addr, 5, r.data_rkey),
        ]);
        assert!(res[0].succeeded());
        assert_eq!(res[1].expect_data().unwrap(), b"hello");
    }

    #[test]
    fn indirect_read_follows_pointer() {
        let r = rig();
        let obj = r.data_addr + 256;
        r.arena.write(obj, b"pointed-to").unwrap();
        r.arena.write_u64(r.data_addr, obj).unwrap();
        let res = r
            .engine
            .execute_chain(&[ops::read_indirect(r.data_addr, 10, r.data_rkey)]);
        assert_eq!(res[0].expect_data().unwrap(), b"pointed-to");
    }

    #[test]
    fn bounded_indirect_read_clamps_length() {
        let r = rig();
        let obj = r.data_addr + 256;
        r.arena.write(obj, b"0123456789").unwrap();
        r.arena.write_u64(r.data_addr, obj).unwrap();
        r.arena.write_u64(r.data_addr + 8, 4).unwrap(); // bound = 4
        let res =
            r.engine
                .execute_chain(&[ops::read_indirect_bounded(r.data_addr, 512, r.data_rkey)]);
        assert_eq!(res[0].expect_data().unwrap(), b"0123");
    }

    #[test]
    fn bounded_read_shorter_request_wins() {
        let r = rig();
        let obj = r.data_addr + 256;
        r.arena.write(obj, b"0123456789").unwrap();
        r.arena.write_u64(r.data_addr, obj).unwrap();
        r.arena.write_u64(r.data_addr + 8, 8).unwrap();
        // min(len=2, bound=8) = 2
        let res =
            r.engine
                .execute_chain(&[ops::read_indirect_bounded(r.data_addr, 2, r.data_rkey)]);
        assert_eq!(res[0].expect_data().unwrap(), b"01");
    }

    #[test]
    fn null_pointer_indirection_fails_cleanly() {
        let r = rig();
        // Slot contains 0 (empty). Indirect read must NACK, not panic.
        let res = r
            .engine
            .execute_chain(&[ops::read_indirect(r.data_addr, 8, r.data_rkey)]);
        assert_eq!(
            res[0].status,
            OpStatus::Error(RdmaError::BadIndirectTarget(0))
        );
    }

    #[test]
    fn indirect_target_must_share_rkey() {
        let r = rig();
        // Pointer in the data region pointing into the scratch region:
        // rejected under §3.1's same-rkey rule.
        r.arena.write_u64(r.data_addr, r.scratch_addr).unwrap();
        let res = r
            .engine
            .execute_chain(&[ops::read_indirect(r.data_addr, 8, r.data_rkey)]);
        assert_eq!(
            res[0].status,
            OpStatus::Error(RdmaError::BadIndirectTarget(r.scratch_addr))
        );
    }

    #[test]
    fn write_indirect_stores_through_pointer() {
        let r = rig();
        let obj = r.data_addr + 512;
        r.arena.write_u64(r.data_addr, obj).unwrap();
        let res = r.engine.execute_chain(&[ops::write_indirect(
            r.data_addr,
            b"xyz".to_vec(),
            r.data_rkey,
        )]);
        assert!(res[0].succeeded());
        assert_eq!(r.arena.read(obj, 3).unwrap(), b"xyz");
    }

    #[test]
    fn allocate_pops_writes_and_returns_address() {
        let r = rig();
        let before = r.freelists.available(FreeListId(0));
        let res = r
            .engine
            .execute_chain(&[ops::allocate(FreeListId(0), b"fresh".to_vec())]);
        let addr = u64::from_le_bytes(res[0].expect_data().unwrap().try_into().unwrap());
        assert_eq!(r.arena.read(addr, 5).unwrap(), b"fresh");
        assert_eq!(r.freelists.available(FreeListId(0)), before - 1);
    }

    #[test]
    fn allocate_empty_freelist_is_rnr() {
        let r = rig();
        for _ in 0..8 {
            assert!(r
                .engine
                .execute_one(&ops::allocate(FreeListId(0), vec![]))
                .succeeded());
        }
        let res = r.engine.execute_one(&ops::allocate(FreeListId(0), vec![]));
        assert_eq!(res.status, OpStatus::Error(RdmaError::ReceiverNotReady));
    }

    #[test]
    fn allocate_oversized_payload_returns_buffer() {
        let r = rig();
        let before = r.freelists.available(FreeListId(0));
        let res = r
            .engine
            .execute_one(&ops::allocate(FreeListId(0), vec![0; 200]));
        assert!(matches!(
            res.status,
            OpStatus::Error(RdmaError::BufferTooSmall {
                need: 200,
                have: 128
            })
        ));
        assert_eq!(
            r.freelists.available(FreeListId(0)),
            before,
            "failed allocation must not leak the buffer"
        );
    }

    #[test]
    fn redirect_stages_output_in_scratch() {
        let r = rig();
        r.arena.write(r.data_addr, b"redirected-data!").unwrap();
        let res =
            r.engine.execute_chain(
                &[ops::read(r.data_addr, 16, r.data_rkey).redirect(Redirect {
                    addr: r.scratch_addr,
                    rkey: r.scratch_rkey,
                })],
            );
        assert!(res[0].succeeded());
        assert!(res[0].data.is_empty(), "redirected output not returned");
        assert_eq!(
            r.arena.read(r.scratch_addr, 16).unwrap(),
            b"redirected-data!"
        );
    }

    #[test]
    fn cas_eq_swaps_and_reports_old_value() {
        let r = rig();
        r.arena.write(r.data_addr, &7u64.to_be_bytes()).unwrap();
        let res = r
            .engine
            .execute_one(&ops::cas64(r.data_addr, r.data_rkey, 7, 9));
        assert_eq!(res.status, OpStatus::Ok);
        assert_eq!(res.data, 7u64.to_be_bytes());
        assert_eq!(r.arena.read(r.data_addr, 8).unwrap(), 9u64.to_be_bytes());
    }

    #[test]
    fn cas_failure_returns_old_value_without_swapping() {
        let r = rig();
        r.arena.write(r.data_addr, &7u64.to_be_bytes()).unwrap();
        let res = r
            .engine
            .execute_one(&ops::cas64(r.data_addr, r.data_rkey, 8, 9));
        assert_eq!(res.status, OpStatus::CasFailed);
        assert_eq!(res.data, 7u64.to_be_bytes());
        assert_eq!(r.arena.read(r.data_addr, 8).unwrap(), 7u64.to_be_bytes());
    }

    #[test]
    fn cas_gt_mode_with_field_masks() {
        // Version-install pattern: 16-byte word [version BE | payload],
        // compare version field only (install if new > current), swap all.
        let r = rig();
        let mut word = Vec::new();
        word.extend_from_slice(&5u64.to_be_bytes());
        word.extend_from_slice(&0xAAAA_AAAA_AAAA_AAAAu64.to_be_bytes());
        r.arena.write(r.data_addr, &word).unwrap();

        let mut newer = Vec::new();
        newer.extend_from_slice(&6u64.to_be_bytes());
        newer.extend_from_slice(&0xBBBB_BBBB_BBBB_BBBBu64.to_be_bytes());
        // Mode Lt: *target < data, i.e. current version < new version.
        let op = ops::cas(
            CasMode::Lt,
            r.data_addr,
            r.data_rkey,
            newer.clone(),
            newer.clone(),
            16,
            field_mask(0, 8),
            full_mask(16),
        );
        let res = r.engine.execute_one(&op);
        assert_eq!(res.status, OpStatus::Ok);
        assert_eq!(r.arena.read(r.data_addr, 16).unwrap(), newer);

        // Re-running with the same (now stale) version must fail.
        let res = r.engine.execute_one(&op);
        assert_eq!(res.status, OpStatus::CasFailed);
    }

    #[test]
    fn cas_swap_from_remote_operand() {
        // The ALLOCATE→CAS pattern: swap value staged in scratch.
        let r = rig();
        r.arena.write_u64(r.data_addr, 0).unwrap();
        r.arena
            .write(r.scratch_addr, &0x1234_5678u64.to_le_bytes())
            .unwrap();
        let op = ops::cas_args(
            CasMode::Eq,
            r.data_addr,
            r.data_rkey,
            DataArg::Inline(0u64.to_le_bytes().to_vec()),
            DataArg::Remote {
                addr: r.scratch_addr,
                rkey: r.scratch_rkey,
            },
            8,
            full_mask(8),
            full_mask(8),
        );
        let res = r.engine.execute_one(&op);
        assert_eq!(res.status, OpStatus::Ok);
        assert_eq!(r.arena.read_u64(r.data_addr).unwrap(), 0x1234_5678);
    }

    #[test]
    fn cas_target_indirect() {
        let r = rig();
        let real_target = r.data_addr + 1024;
        r.arena.write(real_target, &1u64.to_be_bytes()).unwrap();
        r.arena.write_u64(r.data_addr, real_target).unwrap();
        let op = PrismOp::Cas {
            mode: CasMode::Eq,
            target: r.data_addr,
            rkey: r.data_rkey,
            compare: DataArg::Inline(1u64.to_be_bytes().to_vec()),
            swap: DataArg::Inline(2u64.to_be_bytes().to_vec()),
            len: 8,
            compare_mask: full_mask(8),
            swap_mask: full_mask(8),
            target_indirect: true,
            conditional: false,
        };
        let res = r.engine.execute_one(&op);
        assert_eq!(res.status, OpStatus::Ok);
        assert_eq!(r.arena.read(real_target, 8).unwrap(), 2u64.to_be_bytes());
    }

    #[test]
    fn cas_rejects_misaligned_and_oversized() {
        let r = rig();
        let res = r
            .engine
            .execute_one(&ops::cas64(r.data_addr + 3, r.data_rkey, 0, 1));
        assert!(matches!(
            res.status,
            OpStatus::Error(RdmaError::Misaligned { .. })
        ));
        let op = ops::cas(
            CasMode::Eq,
            r.data_addr,
            r.data_rkey,
            vec![0; 33],
            vec![0; 33],
            33,
            full_mask(32),
            full_mask(32),
        );
        let res = r.engine.execute_one(&op);
        assert!(matches!(
            res.status,
            OpStatus::Error(RdmaError::OperandTooLong(33))
        ));
    }

    #[test]
    fn conditional_skips_after_failure() {
        let r = rig();
        r.arena.write(r.data_addr, &1u64.to_be_bytes()).unwrap();
        let res = r.engine.execute_chain(&[
            ops::cas64(r.data_addr, r.data_rkey, 99, 2), // fails
            ops::write(r.data_addr + 64, b"should not run".to_vec(), r.data_rkey).conditional(),
            ops::read(r.data_addr + 64, 4, r.data_rkey), // unconditional: runs
        ]);
        assert_eq!(res[0].status, OpStatus::CasFailed);
        assert_eq!(res[1].status, OpStatus::Skipped);
        assert!(res[2].succeeded(), "non-conditional ops always execute");
        assert_eq!(r.arena.read(r.data_addr + 64, 4).unwrap(), vec![0; 4]);
    }

    #[test]
    fn conditional_chain_runs_after_success() {
        let r = rig();
        let res = r.engine.execute_chain(&[
            ops::write(r.data_addr, b"a".to_vec(), r.data_rkey),
            ops::write(r.data_addr + 1, b"b".to_vec(), r.data_rkey).conditional(),
            ops::read(r.data_addr, 2, r.data_rkey).conditional(),
        ]);
        assert!(res.iter().all(|x| x.succeeded()));
        assert_eq!(res[2].data, b"ab");
    }

    #[test]
    fn skip_propagates_through_conditional_run() {
        let r = rig();
        // A skipped op is unsuccessful, so the next conditional op skips too.
        let res = r.engine.execute_chain(&[
            ops::read_indirect(r.data_addr, 8, r.data_rkey), // null ptr: error
            ops::write(r.data_addr, b"x".to_vec(), r.data_rkey).conditional(),
            ops::write(r.data_addr, b"y".to_vec(), r.data_rkey).conditional(),
        ]);
        assert!(matches!(res[0].status, OpStatus::Error(_)));
        assert_eq!(res[1].status, OpStatus::Skipped);
        assert_eq!(res[2].status, OpStatus::Skipped);
    }

    #[test]
    fn full_out_of_place_update_chain() {
        // The §3.5 composite: ALLOCATE → (redirect) → conditional CAS
        // installing the new pointer, exactly one round trip.
        let r = rig();
        let slot = r.data_addr; // 8-byte pointer slot, initially null
        let res = r.engine.execute_chain(&[
            ops::allocate(FreeListId(0), b"version-1".to_vec()).redirect(Redirect {
                addr: r.scratch_addr,
                rkey: r.scratch_rkey,
            }),
            ops::cas_args(
                CasMode::Eq,
                slot,
                r.data_rkey,
                DataArg::Inline(0u64.to_le_bytes().to_vec()),
                DataArg::Remote {
                    addr: r.scratch_addr,
                    rkey: r.scratch_rkey,
                },
                8,
                full_mask(8),
                full_mask(8),
            )
            .conditional(),
        ]);
        assert!(res.iter().all(|x| x.succeeded()), "{res:?}");
        let ptr = r.arena.read_u64(slot).unwrap();
        assert_eq!(r.arena.read(ptr, 9).unwrap(), b"version-1");

        // A second update expecting the old (null) pointer must fail its
        // CAS and leave the slot alone.
        let res = r.engine.execute_chain(&[
            ops::allocate(FreeListId(0), b"version-2".to_vec()).redirect(Redirect {
                addr: r.scratch_addr,
                rkey: r.scratch_rkey,
            }),
            ops::cas_args(
                CasMode::Eq,
                slot,
                r.data_rkey,
                DataArg::Inline(0u64.to_le_bytes().to_vec()),
                DataArg::Remote {
                    addr: r.scratch_addr,
                    rkey: r.scratch_rkey,
                },
                8,
                full_mask(8),
                full_mask(8),
            )
            .conditional(),
        ]);
        assert_eq!(res[1].status, OpStatus::CasFailed);
        assert_eq!(r.arena.read_u64(slot).unwrap(), ptr);
    }

    #[test]
    fn concurrent_cas_installs_are_linearizable() {
        // Many threads race ALLOCATE→CAS chains against one slot; exactly
        // one per expected-old-value generation must win.
        use std::sync::atomic::{AtomicU64, Ordering};
        let r = Arc::new(rig());
        let slot = r.data_addr;
        let wins = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let r = Arc::clone(&r);
                let wins = Arc::clone(&wins);
                std::thread::spawn(move || {
                    let op = ops::cas_args(
                        CasMode::Eq,
                        slot,
                        r.data_rkey,
                        DataArg::Inline(0u64.to_le_bytes().to_vec()),
                        DataArg::Inline((i + 1u64).to_le_bytes().to_vec()),
                        8,
                        full_mask(8),
                        full_mask(8),
                    );
                    if r.engine.execute_one(&op).succeeded() {
                        wins.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::SeqCst), 1);
        let v = r.arena.read_u64(slot).unwrap();
        assert!((1..=8).contains(&v));
    }

    #[test]
    fn read_only_region_rejects_chain_writes() {
        let r = rig();
        let ro = r
            .regions
            .register(r.data_addr + 4096, 256, AccessFlags::READ_ONLY);
        let res = r
            .engine
            .execute_one(&ops::write(r.data_addr + 4096, vec![1], ro.0));
        assert!(matches!(
            res.status,
            OpStatus::Error(RdmaError::AccessDenied { .. })
        ));
    }
}
