//! CRC-32 (IEEE 802.3, reflected) — the workspace-wide checksum.
//!
//! Pilaf's self-verifying data structures hash key/value extents so a
//! one-sided READ can detect a racing or torn write; PR 5 extends the
//! same discipline to the wire format and to every value layout
//! (PRISM-KV entries, PRISM-RS tagged blocks, TX staged buffers). All
//! of them share this one implementation so checksums computed by one
//! layer can be re-verified by another.
//!
//! CRC-32 detects *every* single-bit error and every burst error up to
//! 32 bits, which is what makes the corruption-matrix conservation
//! check exact for bit-flip faults: an injected flip is detected with
//! certainty, never probabilistically.
//!
//! The hot loop is slice-by-16: sixteen derived tables let one
//! iteration fold 16 input bytes through two 8-byte little-endian
//! words, turning the bytewise table walk (one lookup + shift per
//! byte, a serial dependency through the register every byte) into 16
//! independent lookups whose XOR reduction the CPU can overlap. The
//! construction is standard (Intel's slicing-by-8 generalized); the
//! result is bit-identical to the bytewise recurrence, which the test
//! suite asserts against a reference implementation over random
//! lengths and offsets.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320;

/// `TABLES[0]` is the classic bytewise table; `TABLES[j][b]` is the
/// CRC of byte `b` followed by `j` zero bytes, so a 16-byte block can
/// be folded in one step by indexing table `15 - position` per byte.
const SLICES: usize = 16;

fn tables() -> &'static [[u32; 256]; SLICES] {
    static TABLES: OnceLock<[[u32; 256]; SLICES]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; SLICES];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[0][i] = c;
            i += 1;
        }
        let mut j = 1usize;
        while j < SLICES {
            let mut i = 0usize;
            while i < 256 {
                let prev = t[j - 1][i];
                t[j][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
                i += 1;
            }
            j += 1;
        }
        t
    })
}

/// CRC-32 of `data` (IEEE, reflected, init/xorout `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_seeded(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Continue a CRC over another fragment. `state` is the raw register
/// (pre-xorout); use [`Crc32`] unless you are chaining manually.
fn crc32_seeded(state: u32, data: &[u8]) -> u32 {
    let t = tables();
    let mut c = state;
    let mut chunks = data.chunks_exact(SLICES);
    for chunk in &mut chunks {
        // Two 64-bit LE words; the register folds into the low word.
        let lo = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes")) ^ c as u64;
        let hi = u64::from_le_bytes(chunk[8..].try_into().expect("8 bytes"));
        c = t[15][(lo & 0xFF) as usize]
            ^ t[14][((lo >> 8) & 0xFF) as usize]
            ^ t[13][((lo >> 16) & 0xFF) as usize]
            ^ t[12][((lo >> 24) & 0xFF) as usize]
            ^ t[11][((lo >> 32) & 0xFF) as usize]
            ^ t[10][((lo >> 40) & 0xFF) as usize]
            ^ t[9][((lo >> 48) & 0xFF) as usize]
            ^ t[8][((lo >> 56) & 0xFF) as usize]
            ^ t[7][(hi & 0xFF) as usize]
            ^ t[6][((hi >> 8) & 0xFF) as usize]
            ^ t[5][((hi >> 16) & 0xFF) as usize]
            ^ t[4][((hi >> 24) & 0xFF) as usize]
            ^ t[3][((hi >> 32) & 0xFF) as usize]
            ^ t[2][((hi >> 40) & 0xFF) as usize]
            ^ t[1][((hi >> 48) & 0xFF) as usize]
            ^ t[0][((hi >> 56) & 0xFF) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// Incremental CRC-32 over multiple fragments, so layouts can checksum
/// `header || key || value` without concatenating into a scratch
/// buffer.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Fold `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.0 = crc32_seeded(self.0, data);
        self
    }

    /// Finish: returns the same value `crc32` would for the
    /// concatenated fragments.
    pub fn finish(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-slicing bytewise recurrence, kept as the reference the
    /// sliced implementation must match bit-for-bit.
    fn crc32_bytewise(data: &[u8]) -> u32 {
        let t = &tables()[0];
        let mut c = 0xFFFF_FFFFu32;
        for &b in data {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        c ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sliced_matches_bytewise_reference() {
        // Every length through several 16-byte blocks plus a tail, so
        // both the folded path and the remainder loop are exercised at
        // every alignment of the chunk boundary.
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(0x9E37_79B9) >> 13) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "sliced CRC diverges from bytewise at len {len}"
            );
        }
        // And across fragment splits, since `Crc32::update` enters the
        // sliced path with an arbitrary pre-seeded register.
        for split in [1usize, 7, 15, 16, 17, 100] {
            let mut inc = Crc32::new();
            inc.update(&data[..split]).update(&data[split..]);
            assert_eq!(inc.finish(), crc32_bytewise(&data));
        }
    }

    #[test]
    fn incremental_matches_one_shot() {
        let whole = crc32(b"header|key|value");
        let mut inc = Crc32::new();
        inc.update(b"header|").update(b"key|").update(b"value");
        assert_eq!(inc.finish(), whole);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"prism corruption canary".to_vec();
        let c0 = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut m = base.clone();
                m[byte] ^= 1 << bit;
                assert_ne!(crc32(&m), c0, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }
}
