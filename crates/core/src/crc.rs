//! CRC-32 (IEEE 802.3, reflected) — the workspace-wide checksum.
//!
//! Pilaf's self-verifying data structures hash key/value extents so a
//! one-sided READ can detect a racing or torn write; PR 5 extends the
//! same discipline to the wire format and to every value layout
//! (PRISM-KV entries, PRISM-RS tagged blocks, TX staged buffers). All
//! of them share this one implementation so checksums computed by one
//! layer can be re-verified by another.
//!
//! CRC-32 detects *every* single-bit error and every burst error up to
//! 32 bits, which is what makes the corruption-matrix conservation
//! check exact for bit-flip faults: an injected flip is detected with
//! certainty, never probabilistically.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    })
}

/// CRC-32 of `data` (IEEE, reflected, init/xorout `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_seeded(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Continue a CRC over another fragment. `state` is the raw register
/// (pre-xorout); use [`Crc32`] unless you are chaining manually.
fn crc32_seeded(state: u32, data: &[u8]) -> u32 {
    let t = table();
    let mut c = state;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// Incremental CRC-32 over multiple fragments, so layouts can checksum
/// `header || key || value` without concatenating into a scratch
/// buffer.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Fold `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.0 = crc32_seeded(self.0, data);
        self
    }

    /// Finish: returns the same value `crc32` would for the
    /// concatenated fragments.
    pub fn finish(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let whole = crc32(b"header|key|value");
        let mut inc = Crc32::new();
        inc.update(b"header|").update(b"key|").update(b"value");
        assert_eq!(inc.finish(), whole);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"prism corruption canary".to_vec();
        let c0 = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut m = base.clone();
                m[byte] ^= 1 << bit;
                assert_ne!(crc32(&m), c0, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }
}
