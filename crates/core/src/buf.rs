//! Minimal little-endian buffer codec traits.
//!
//! Drop-in replacement for the subset of the `bytes` crate the wire
//! codec used, keeping the workspace free of registry dependencies:
//! [`BufMut`] appends to a `Vec<u8>`, [`Buf`] consumes from a `&[u8]` by
//! advancing the slice in place. Reads panic when the buffer is too
//! short — callers check [`Buf::remaining`] first, exactly as they did
//! against the `bytes` API.

/// Append-side primitives, implemented for `Vec<u8>`.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Consume-side primitives, implemented for `&[u8]`: each read advances
/// the slice past the consumed bytes.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consumes one byte.
    fn get_u8(&mut self) -> u8;
    /// Consumes a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Consumes `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        u16::from_le_bytes(head.try_into().expect("sized"))
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().expect("sized"))
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().expect("sized"))
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, rest) = self.split_at(dst.len());
        *self = rest;
        dst.copy_from_slice(head);
    }
}

/// Borrows the next `n` bytes without copying, advancing the slice past
/// them, or `None` when fewer than `n` remain. The borrowed-frame
/// decode path uses this to hand length-prefixed sub-slices straight to
/// the body parsers instead of materializing intermediate `Vec`s.
pub fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Some(head)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"tail");
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reads_advance_the_slice() {
        let data = [1u8, 0, 2, 0];
        let mut r: &[u8] = &data;
        assert_eq!(r.get_u16_le(), 1);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u16_le(), 2);
    }

    #[test]
    #[should_panic]
    fn short_read_panics() {
        let mut r: &[u8] = &[1u8];
        let _ = r.get_u32_le();
    }

    #[test]
    fn take_borrows_and_advances() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r: &[u8] = &data;
        assert_eq!(take(&mut r, 2), Some(&data[..2]));
        assert_eq!(r.remaining(), 3);
        assert_eq!(take(&mut r, 4), None);
        assert_eq!(r.remaining(), 3, "failed take must not consume");
        assert_eq!(take(&mut r, 3), Some(&data[2..]));
        assert_eq!(take(&mut r, 0), Some(&[][..]));
    }
}
