//! One PRISM-capable host: memory, registrations, free lists, the chain
//! engine, classic RDMA verbs, and a two-sided RPC hook.
//!
//! [`PrismServer`] is what an application deploys per machine. It bundles
//! the shared arena with both data planes — classic verbs
//! ([`prism_rdma::RdmaNic`]) and the PRISM engine — so RDMA atomics and
//! PRISM CAS are atomic with respect to each other, exactly as they would
//! be on one NIC. The RPC hook carries the baselines' two-sided traffic
//! (Pilaf PUTs, FaRM commit phases) and the applications' buffer-reclaim
//! notifications (§3.2).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use prism_rdma::arena::MemoryArena;
use prism_rdma::region::{AccessFlags, RegionTable, Rkey};
use prism_rdma::sync::Mutex;
use prism_rdma::{RdmaError, RdmaNic};

use crate::conn::{Connection, ConnectionTable, SCRATCH_BYTES};
use crate::engine::{OpResult, PrismEngine};
use crate::freelist::FreeLists;
use crate::layout::Carver;
use crate::op::{FreeListId, PrismOp};

/// Server-side handler for two-sided RPCs.
///
/// Implementations must be cheap to call concurrently; in live mode many
/// client threads invoke the handler in parallel, mirroring the paper's
/// 16 dedicated RPC cores.
pub trait RpcHandler: Send + Sync {
    /// Handles one request, returning the response bytes.
    fn handle(&self, request: &[u8]) -> Vec<u8>;
}

impl<F> RpcHandler for F
where
    F: Fn(&[u8]) -> Vec<u8> + Send + Sync,
{
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        self(request)
    }
}

/// Observer invoked after every executed chain, with the ops and their
/// results. This is the durability tap: a store layer watches for
/// successful installs (the CAS linearization points of KV PUTs and RS
/// writes) and logs them to its local segment log. The observer runs
/// after the engine under no engine locks, so it may read the arena.
pub trait ChainObserver: Send + Sync {
    /// Called once per executed chain, after the engine has run it.
    fn on_chain(&self, server: &PrismServer, chain: &[PrismOp], results: &[OpResult]);
}

/// On-NIC scratch region size (§4.2: 256 KB on ConnectX-5).
const ONNIC_SCRATCH: u64 = 256 * 1024;

/// A PRISM-capable host.
pub struct PrismServer {
    arena: Arc<MemoryArena>,
    regions: Arc<RegionTable>,
    freelists: Arc<FreeLists>,
    engine: PrismEngine,
    nic: RdmaNic,
    carver: Mutex<Carver>,
    conns: ConnectionTable,
    rpc: Mutex<Option<Arc<dyn RpcHandler>>>,
    observer: Mutex<Option<Arc<dyn ChainObserver>>>,
    /// Shard-map epoch this server believes is current. 0 = unsharded
    /// (no map installed); requests stamped 0 are never epoch-fenced.
    epoch: AtomicU64,
}

impl PrismServer {
    /// Creates a server with `mem_bytes` of registered-capable memory
    /// (beyond the on-NIC scratch region).
    pub fn new(mem_bytes: u64) -> Self {
        let arena = Arc::new(MemoryArena::new(mem_bytes + ONNIC_SCRATCH));
        let regions = Arc::new(RegionTable::new());
        let freelists = Arc::new(FreeLists::new());
        let engine = PrismEngine::new(
            Arc::clone(&arena),
            Arc::clone(&regions),
            Arc::clone(&freelists),
        );
        let nic = RdmaNic::with_shared(Arc::clone(&arena), Arc::clone(&regions));
        let mut carver = Carver::new(&arena);
        // Carve and register the on-NIC scratch region first so every
        // server exposes connection scratch space.
        let scratch_base = carver.carve(ONNIC_SCRATCH, 64);
        let scratch_rkey = regions.register(scratch_base, ONNIC_SCRATCH, AccessFlags::FULL);
        let conns = ConnectionTable::new(scratch_base, ONNIC_SCRATCH, scratch_rkey);
        PrismServer {
            arena,
            regions,
            freelists,
            engine,
            nic,
            carver: Mutex::new(carver),
            conns,
            rpc: Mutex::new(None),
            observer: Mutex::new(None),
            epoch: AtomicU64::new(0),
        }
    }

    /// The host memory.
    pub fn arena(&self) -> &Arc<MemoryArena> {
        &self.arena
    }

    /// The registration table.
    pub fn regions(&self) -> &Arc<RegionTable> {
        &self.regions
    }

    /// The classic one-sided verb plane (shares memory with PRISM).
    pub fn nic(&self) -> &RdmaNic {
        &self.nic
    }

    /// The PRISM chain engine.
    pub fn engine(&self) -> &PrismEngine {
        &self.engine
    }

    /// The server's free lists.
    pub fn freelists(&self) -> &Arc<FreeLists> {
        &self.freelists
    }

    /// Reserves `len` bytes of arena, aligned to `align` (setup only).
    pub fn carve(&self, len: u64, align: u64) -> u64 {
        self.carver.lock().carve(len, align)
    }

    /// Reserves and registers a region in one step; returns `(addr, rkey)`.
    pub fn carve_region(&self, len: u64, align: u64, flags: AccessFlags) -> (u64, Rkey) {
        let addr = self.carve(len, align);
        let rkey = self.regions.register(addr, len, flags);
        (addr, rkey)
    }

    /// Registers a free list of `count` buffers of `buf_len` bytes each,
    /// carved from the arena (64-byte aligned so buffers start on line
    /// boundaries). Returns the base address of the pool.
    pub fn setup_freelist(&self, id: FreeListId, buf_len: u64, count: u64) -> u64 {
        let stride = buf_len.next_multiple_of(64);
        let base = self.carve(stride * count, 64);
        self.freelists.register(id, buf_len);
        self.freelists
            .post(id, (0..count).map(|i| base + i * stride))
            .expect("freshly registered free list accepts posts");
        base
    }

    /// Reposts reclaimed buffers (the CPU-side path that takes the
    /// posting gate).
    pub fn repost(
        &self,
        id: FreeListId,
        addrs: impl IntoIterator<Item = u64>,
    ) -> Result<(), RdmaError> {
        self.freelists.post(id, addrs)
    }

    /// Opens a client connection with its scratch slot.
    pub fn open_connection(&self) -> Connection {
        let c = self.conns.open();
        debug_assert_eq!(SCRATCH_BYTES % 8, 0);
        c
    }

    /// Closes a client connection, recycling its scratch slot. Stale or
    /// double closes are typed rejections (see
    /// [`crate::conn::ConnectionTable::close`]).
    pub fn close_connection(&self, conn: Connection) -> Result<(), RdmaError> {
        self.conns.close(conn)
    }

    /// Closes every open connection — the bulk hangup a sweep uses
    /// between points. Returns how many were open.
    pub fn close_all_connections(&self) -> u64 {
        self.conns.close_all()
    }

    /// Whether `conn` is still the current tenant of its scratch slot.
    pub fn connection_is_current(&self, conn: Connection) -> bool {
        self.conns.is_current(conn)
    }

    /// Connections currently open.
    pub fn connections_open(&self) -> u64 {
        self.conns.opened()
    }

    /// The shard-map epoch this server currently enforces (0 =
    /// unsharded; see [`PrismServer::install_epoch`]).
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Installs a shard-map epoch, monotonically: the epoch only ever
    /// moves forward, so a straggling installer cannot roll the fence
    /// back. Returns the epoch in force afterwards.
    ///
    /// The migration driver installs the new epoch on every server
    /// *before* publishing the new map to clients, so a request stamped
    /// with an epoch **newer** than the server's is impossible in a
    /// correct deployment — servers only fence requests stamped older.
    pub fn install_epoch(&self, epoch: u64) -> u64 {
        self.epoch.fetch_max(epoch, Ordering::AcqRel).max(epoch)
    }

    /// Executes a PRISM chain on the data plane.
    pub fn execute_chain(&self, chain: &[PrismOp]) -> Vec<OpResult> {
        let results = self.engine.execute_chain(chain);
        self.notify_observer(chain, &results);
        results
    }

    /// Executes a PRISM chain into a reusable results vector — the
    /// zero-alloc fast path (see
    /// [`crate::engine::PrismEngine::execute_chain_into`]).
    pub fn execute_chain_into(&self, chain: &[PrismOp], results: &mut Vec<OpResult>) {
        self.engine.execute_chain_into(chain, results);
        self.notify_observer(chain, results);
    }

    fn notify_observer(&self, chain: &[PrismOp], results: &[OpResult]) {
        let observer = self.observer.lock().clone();
        if let Some(obs) = observer {
            obs.on_chain(self, chain, results);
        }
    }

    /// Installs the chain observer (the durable-store tap). One observer
    /// per server; installing again replaces it.
    pub fn set_chain_observer(&self, observer: Arc<dyn ChainObserver>) {
        *self.observer.lock() = Some(observer);
    }

    /// Models a **fail-stop-amnesia** restart: the host loses all of its
    /// memory (the arena is wiped) and comes back under a bumped
    /// incarnation, fencing every rkey issued before the crash
    /// ([`RdmaError::StaleIncarnation`]). Region *layout* survives —
    /// registrations are re-issued at the same addresses under the new
    /// incarnation, exactly what a recovering server re-registering the
    /// same carve plan would produce — so clients recover by restamping
    /// their cached rkeys ([`Rkey::restamped`]) after a re-handshake,
    /// not by relearning addresses. Returns the new incarnation.
    ///
    /// Control-plane only: the caller (the recovery protocol) must not
    /// be serving data-plane traffic while this runs.
    pub fn amnesia_restart(&self) -> u64 {
        self.arena.wipe();
        self.regions.bump_incarnation()
    }

    /// Installs the application's RPC handler.
    pub fn set_rpc_handler(&self, handler: Arc<dyn RpcHandler>) {
        *self.rpc.lock() = Some(handler);
    }

    /// Dispatches a two-sided RPC to the installed handler.
    ///
    /// # Panics
    ///
    /// Panics if no handler is installed — servers that receive RPCs must
    /// install one at setup.
    pub fn handle_rpc(&self, request: &[u8]) -> Vec<u8> {
        let handler = self
            .rpc
            .lock()
            .clone()
            .expect("no RPC handler installed on this server");
        handler.handle(request)
    }
}

impl std::fmt::Debug for PrismServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrismServer")
            .field("arena_len", &self.arena.len())
            .field("regions", &self.regions.count())
            .field("connections", &self.conns.opened())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ops;

    #[test]
    fn setup_and_one_sided_read() {
        let s = PrismServer::new(1 << 20);
        let (addr, rkey) = s.carve_region(4096, 64, AccessFlags::FULL);
        s.arena().write(addr, b"prism").unwrap();
        let out = s.nic().read(rkey, addr, 5).unwrap();
        assert_eq!(out, b"prism");
    }

    #[test]
    fn freelist_setup_posts_buffers() {
        let s = PrismServer::new(1 << 20);
        let id = FreeListId(1);
        s.setup_freelist(id, 512, 10);
        assert_eq!(s.freelists().available(id), 10);
    }

    #[test]
    fn chain_executes_against_real_memory() {
        let s = PrismServer::new(1 << 20);
        let (addr, rkey) = s.carve_region(4096, 64, AccessFlags::FULL);
        s.arena().write(addr, b"abcdefgh").unwrap();
        let results = s.execute_chain(&[ops::read(addr, 8, rkey.0)]);
        assert_eq!(results[0].expect_data().unwrap(), b"abcdefgh");
    }

    #[test]
    fn connections_get_distinct_scratch() {
        let s = PrismServer::new(1 << 20);
        let a = s.open_connection();
        let b = s.open_connection();
        assert_ne!(a.scratch_addr, b.scratch_addr);
        // Scratch is writable through the engine via its rkey.
        let r = s.execute_chain(&[ops::write(
            a.scratch_addr,
            b"tag-data".to_vec(),
            a.scratch_rkey.0,
        )]);
        assert!(r[0].succeeded());
    }

    #[test]
    fn connections_recycle_through_close() {
        let s = PrismServer::new(1 << 20);
        let a = s.open_connection();
        s.close_connection(a).unwrap();
        assert!(!s.connection_is_current(a));
        let b = s.open_connection();
        assert_eq!(b.id, a.id, "closed slot is reused");
        assert_ne!(b.gen, a.gen, "reused slot carries a new generation");
        assert!(s.close_connection(a).is_err(), "stale close is fenced");
        assert!(s.connection_is_current(b));
        assert_eq!(s.close_all_connections(), 1);
        assert_eq!(s.connections_open(), 0);
    }

    #[test]
    fn epoch_installs_are_monotonic() {
        let s = PrismServer::new(1 << 20);
        assert_eq!(s.current_epoch(), 0, "servers start unsharded");
        assert_eq!(s.install_epoch(3), 3);
        assert_eq!(s.install_epoch(2), 3, "epoch never rolls back");
        assert_eq!(s.current_epoch(), 3);
    }

    #[test]
    fn amnesia_restart_wipes_and_fences() {
        let s = PrismServer::new(1 << 20);
        let (addr, rkey) = s.carve_region(4096, 64, AccessFlags::FULL);
        s.arena().write(addr, b"survivor?").unwrap();
        assert_eq!(s.amnesia_restart(), 1);
        // Pre-crash rkey is fenced with a deterministic NACK.
        assert_eq!(
            s.nic().read(rkey, addr, 8).unwrap_err(),
            prism_rdma::RdmaError::StaleIncarnation {
                seen: 0,
                current: 1
            }
        );
        // A restamped key reads the wiped (zeroed) memory.
        let fresh = rkey.restamped(s.regions().current_incarnation());
        assert_eq!(s.nic().read(fresh, addr, 8).unwrap(), vec![0u8; 8]);
    }

    #[test]
    fn rpc_round_trip() {
        let s = PrismServer::new(1 << 20);
        s.set_rpc_handler(Arc::new(|req: &[u8]| {
            let mut v = req.to_vec();
            v.reverse();
            v
        }));
        assert_eq!(s.handle_rpc(b"abc"), b"cba");
    }

    #[test]
    #[should_panic(expected = "no RPC handler")]
    fn rpc_without_handler_panics() {
        let s = PrismServer::new(1 << 20);
        s.handle_rpc(b"x");
    }
}
