//! Transport-neutral request/reply messages.
//!
//! The application protocols (PRISM-KV, PRISM-RS, PRISM-TX and their
//! baselines) are written sans-I/O: client state machines emit
//! [`Request`]s and consume [`Reply`]s without knowing whether the
//! transport is a direct function call (live mode, unit tests), worker
//! threads, or the discrete-event simulator (figure regeneration). A
//! request is either a PRISM chain, a classic one-sided verb, or a
//! two-sided RPC — the three kinds of traffic in the paper's systems.

use crate::engine::{OpResult, OpStatus};
use crate::op::PrismOp;
use crate::wire;
use prism_rdma::RdmaError;

/// A classic one-sided RDMA verb (the baselines' vocabulary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verb {
    /// One-sided READ of `len` bytes.
    Read {
        /// Target address.
        addr: u64,
        /// Bytes to read.
        len: u32,
        /// Region key.
        rkey: u32,
    },
    /// One-sided WRITE.
    Write {
        /// Target address.
        addr: u64,
        /// Data to store.
        data: Vec<u8>,
        /// Region key.
        rkey: u32,
    },
    /// Classic 8-byte compare-and-swap.
    Cas64 {
        /// Target address (8-byte aligned).
        addr: u64,
        /// Expected value.
        compare: u64,
        /// Replacement value.
        swap: u64,
        /// Region key.
        rkey: u32,
    },
}

impl Verb {
    /// Request bytes on the wire (header + inline payload).
    pub fn request_len(&self) -> u64 {
        match self {
            Verb::Read { .. } => 28,
            Verb::Write { data, .. } => 28 + data.len() as u64,
            Verb::Cas64 { .. } => 44,
        }
    }

    /// Response payload bytes.
    pub fn response_len(&self) -> u64 {
        match self {
            Verb::Read { len, .. } => *len as u64,
            Verb::Write { .. } => 4,
            Verb::Cas64 { .. } => 8,
        }
    }
}

/// One message from a client to a server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// A PRISM chain, executed by the PRISM data plane.
    Chain(Vec<PrismOp>),
    /// A classic one-sided verb, executed by the (simulated) NIC.
    Verb(Verb),
    /// A two-sided RPC, executed by a server CPU core.
    Rpc(Vec<u8>),
    /// A doorbell batch: several requests posted in one submission and
    /// answered with one [`Reply::Batch`]. Mirrors RDMA doorbell
    /// batching, where a client rings the doorbell once for a list of
    /// work requests and drains their completions together.
    Batch(Vec<Request>),
}

/// Wire overhead of the doorbell-batch header (count + framing).
const BATCH_HEADER: u64 = 8;

impl Request {
    /// Request size for link-bandwidth accounting.
    pub fn wire_len(&self) -> u64 {
        match self {
            Request::Chain(c) => wire::request_len(c),
            Request::Verb(v) => v.request_len(),
            Request::Rpc(b) => b.len() as u64 + 8,
            Request::Batch(reqs) => BATCH_HEADER + reqs.iter().map(Request::wire_len).sum::<u64>(),
        }
    }

    /// Number of PRISM primitives (for dispatch-core occupancy); zero for
    /// verbs and RPCs.
    pub fn chain_ops(&self) -> u64 {
        match self {
            Request::Chain(c) => c.len() as u64,
            Request::Batch(reqs) => reqs.iter().map(Request::chain_ops).sum(),
            _ => 0,
        }
    }
}

/// The server's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Per-op results of a chain.
    Chain(Vec<OpResult>),
    /// Verb outcome: returned bytes (READ data, CAS old value) or error.
    Verb(Result<Vec<u8>, RdmaError>),
    /// RPC response bytes.
    Rpc(Vec<u8>),
    /// Per-request replies of a doorbell batch, in submission order.
    Batch(Vec<Reply>),
}

impl Reply {
    /// Response size for link-bandwidth accounting.
    pub fn wire_len(&self) -> u64 {
        match self {
            Reply::Chain(r) => wire::response_len(r),
            Reply::Verb(Ok(d)) => d.len() as u64 + 8,
            Reply::Verb(Err(_)) => 8,
            Reply::Rpc(b) => b.len() as u64 + 8,
            Reply::Batch(replies) => {
                BATCH_HEADER + replies.iter().map(Reply::wire_len).sum::<u64>()
            }
        }
    }

    /// The chain results, panicking on a type mismatch (protocol bugs,
    /// not runtime conditions).
    pub fn into_chain(self) -> Vec<OpResult> {
        match self {
            Reply::Chain(r) => r,
            other => panic!("expected chain reply, got {other:?}"),
        }
    }

    /// The RPC payload, panicking on a type mismatch.
    pub fn into_rpc(self) -> Vec<u8> {
        match self {
            Reply::Rpc(b) => b,
            other => panic!("expected RPC reply, got {other:?}"),
        }
    }

    /// The verb outcome, panicking on a type mismatch.
    pub fn into_verb(self) -> Result<Vec<u8>, RdmaError> {
        match self {
            Reply::Verb(r) => r,
            other => panic!("expected verb reply, got {other:?}"),
        }
    }

    /// The per-request batch replies, panicking on a type mismatch.
    pub fn into_batch(self) -> Vec<Reply> {
        match self {
            Reply::Batch(r) => r,
            other => panic!("expected batch reply, got {other:?}"),
        }
    }
}

/// Executes a request against a local server — the live-mode transport,
/// also used by every unit and integration test.
pub fn execute_local(server: &crate::server::PrismServer, req: &Request) -> Reply {
    match req {
        Request::Chain(chain) => Reply::Chain(server.execute_chain(chain)),
        Request::Verb(v) => Reply::Verb(match v {
            Verb::Read { addr, len, rkey } => {
                server
                    .nic()
                    .read(prism_rdma::Rkey(*rkey), *addr, *len as u64)
            }
            Verb::Write { addr, data, rkey } => server
                .nic()
                .write(prism_rdma::Rkey(*rkey), *addr, data)
                .map(|()| Vec::new()),
            Verb::Cas64 {
                addr,
                compare,
                swap,
                rkey,
            } => server
                .nic()
                .cas64(prism_rdma::Rkey(*rkey), *addr, *compare, *swap)
                .map(|old| old.to_le_bytes().to_vec()),
        }),
        Request::Rpc(bytes) => Reply::Rpc(server.handle_rpc(bytes)),
        Request::Batch(reqs) => {
            Reply::Batch(reqs.iter().map(|r| execute_local(server, r)).collect())
        }
    }
}

/// Whether every op in a chain reply succeeded.
pub fn chain_all_ok(results: &[OpResult]) -> bool {
    !results.is_empty() && results.iter().all(|r| r.status == OpStatus::Ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ops;
    use crate::server::PrismServer;
    use prism_rdma::region::AccessFlags;

    #[test]
    fn verb_sizes() {
        let w = Verb::Write {
            addr: 0,
            data: vec![0; 512],
            rkey: 1,
        };
        assert_eq!(w.request_len(), 540);
        assert_eq!(
            Verb::Read {
                addr: 0,
                len: 512,
                rkey: 1
            }
            .response_len(),
            512
        );
    }

    #[test]
    fn local_execution_of_all_request_kinds() {
        let s = PrismServer::new(1 << 20);
        let (addr, rkey) = s.carve_region(64, 64, AccessFlags::FULL);
        s.set_rpc_handler(std::sync::Arc::new(|req: &[u8]| req.to_vec()));

        // Verb write then chain read.
        let w = execute_local(
            &s,
            &Request::Verb(Verb::Write {
                addr,
                data: b"12345678".to_vec(),
                rkey: rkey.0,
            }),
        );
        assert!(w.into_verb().is_ok());
        let r = execute_local(&s, &Request::Chain(vec![ops::read(addr, 8, rkey.0)]));
        assert_eq!(r.into_chain()[0].data, b"12345678");

        // Classic CAS through the same memory.
        s.arena().write_u64(addr, 5).unwrap();
        let c = execute_local(
            &s,
            &Request::Verb(Verb::Cas64 {
                addr,
                compare: 5,
                swap: 6,
                rkey: rkey.0,
            }),
        );
        assert_eq!(c.into_verb().unwrap(), 5u64.to_le_bytes());

        // RPC echo.
        let rpc = execute_local(&s, &Request::Rpc(b"ping".to_vec()));
        assert_eq!(rpc.into_rpc(), b"ping");
    }

    #[test]
    fn doorbell_batch_executes_in_order() {
        let s = PrismServer::new(1 << 20);
        let (addr, rkey) = s.carve_region(64, 64, AccessFlags::FULL);
        let batch = Request::Batch(vec![
            Request::Verb(Verb::Write {
                addr,
                data: b"batched!".to_vec(),
                rkey: rkey.0,
            }),
            Request::Chain(vec![ops::read(addr, 8, rkey.0)]),
        ]);
        // Batch wire accounting: header plus the members' sizes; the
        // chain-op count sums across members.
        assert_eq!(
            batch.wire_len(),
            8 + Request::Verb(Verb::Write {
                addr,
                data: b"batched!".to_vec(),
                rkey: rkey.0
            })
            .wire_len()
                + Request::Chain(vec![ops::read(addr, 8, rkey.0)]).wire_len()
        );
        assert_eq!(batch.chain_ops(), 1);

        let replies = execute_local(&s, &batch).into_batch();
        assert_eq!(replies.len(), 2);
        assert!(matches!(&replies[0], Reply::Verb(Ok(_))));
        assert_eq!(replies[1].clone().into_chain()[0].data, b"batched!");
    }

    #[test]
    fn chain_all_ok_semantics() {
        assert!(!chain_all_ok(&[]));
        let ok = OpResult {
            status: OpStatus::Ok,
            data: vec![],
        };
        let failed = OpResult {
            status: OpStatus::CasFailed,
            data: vec![],
        };
        assert!(chain_all_ok(&[ok.clone()]));
        assert!(!chain_all_ok(&[ok, failed]));
    }
}
