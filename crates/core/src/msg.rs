//! Transport-neutral request/reply messages.
//!
//! The application protocols (PRISM-KV, PRISM-RS, PRISM-TX and their
//! baselines) are written sans-I/O: client state machines emit
//! [`Request`]s and consume [`Reply`]s without knowing whether the
//! transport is a direct function call (live mode, unit tests), worker
//! threads, or the discrete-event simulator (figure regeneration). A
//! request is either a PRISM chain, a classic one-sided verb, or a
//! two-sided RPC — the three kinds of traffic in the paper's systems.

use crate::engine::{OpResult, OpStatus};
use crate::op::PrismOp;
use crate::wire;
use prism_rdma::RdmaError;

/// A classic one-sided RDMA verb (the baselines' vocabulary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verb {
    /// One-sided READ of `len` bytes.
    Read {
        /// Target address.
        addr: u64,
        /// Bytes to read.
        len: u32,
        /// Region key.
        rkey: u32,
    },
    /// One-sided WRITE.
    Write {
        /// Target address.
        addr: u64,
        /// Data to store.
        data: Vec<u8>,
        /// Region key.
        rkey: u32,
    },
    /// Classic 8-byte compare-and-swap.
    Cas64 {
        /// Target address (8-byte aligned).
        addr: u64,
        /// Expected value.
        compare: u64,
        /// Replacement value.
        swap: u64,
        /// Region key.
        rkey: u32,
    },
}

impl Verb {
    /// Request bytes on the wire (header + inline payload).
    pub fn request_len(&self) -> u64 {
        match self {
            Verb::Read { .. } => 28,
            Verb::Write { data, .. } => 28 + data.len() as u64,
            Verb::Cas64 { .. } => 44,
        }
    }

    /// Response payload bytes.
    pub fn response_len(&self) -> u64 {
        match self {
            Verb::Read { len, .. } => *len as u64,
            Verb::Write { .. } => 4,
            Verb::Cas64 { .. } => 8,
        }
    }
}

/// One message from a client to a server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// A PRISM chain, executed by the PRISM data plane.
    Chain(Vec<PrismOp>),
    /// A classic one-sided verb, executed by the (simulated) NIC.
    Verb(Verb),
    /// A two-sided RPC, executed by a server CPU core.
    Rpc(Vec<u8>),
    /// A doorbell batch: several requests posted in one submission and
    /// answered with one [`Reply::Batch`]. Mirrors RDMA doorbell
    /// batching, where a client rings the doorbell once for a list of
    /// work requests and drains their completions together.
    Batch(Vec<Request>),
}

/// Wire overhead of the doorbell-batch header (count + framing).
const BATCH_HEADER: u64 = 8;

impl Request {
    /// Request size for link-bandwidth accounting.
    pub fn wire_len(&self) -> u64 {
        match self {
            Request::Chain(c) => wire::request_len(c),
            Request::Verb(v) => v.request_len(),
            Request::Rpc(b) => b.len() as u64 + 8,
            Request::Batch(reqs) => BATCH_HEADER + reqs.iter().map(Request::wire_len).sum::<u64>(),
        }
    }

    /// Number of PRISM primitives (for dispatch-core occupancy); zero for
    /// verbs and RPCs.
    pub fn chain_ops(&self) -> u64 {
        match self {
            Request::Chain(c) => c.len() as u64,
            Request::Batch(reqs) => reqs.iter().map(Request::chain_ops).sum(),
            _ => 0,
        }
    }
}

/// The server's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Per-op results of a chain.
    Chain(Vec<OpResult>),
    /// Verb outcome: returned bytes (READ data, CAS old value) or error.
    Verb(Result<Vec<u8>, RdmaError>),
    /// RPC response bytes.
    Rpc(Vec<u8>),
    /// Per-request replies of a doorbell batch, in submission order.
    Batch(Vec<Reply>),
}

impl Reply {
    /// Response size for link-bandwidth accounting.
    pub fn wire_len(&self) -> u64 {
        match self {
            Reply::Chain(r) => wire::response_len(r),
            Reply::Verb(Ok(d)) => d.len() as u64 + 8,
            Reply::Verb(Err(_)) => 8,
            Reply::Rpc(b) => b.len() as u64 + 8,
            Reply::Batch(replies) => {
                BATCH_HEADER + replies.iter().map(Reply::wire_len).sum::<u64>()
            }
        }
    }

    /// The chain results, panicking on a type mismatch (protocol bugs,
    /// not runtime conditions).
    pub fn into_chain(self) -> Vec<OpResult> {
        match self {
            Reply::Chain(r) => r,
            other => panic!("expected chain reply, got {other:?}"),
        }
    }

    /// The RPC payload, panicking on a type mismatch.
    pub fn into_rpc(self) -> Vec<u8> {
        match self {
            Reply::Rpc(b) => b,
            other => panic!("expected RPC reply, got {other:?}"),
        }
    }

    /// The verb outcome, panicking on a type mismatch.
    pub fn into_verb(self) -> Result<Vec<u8>, RdmaError> {
        match self {
            Reply::Verb(r) => r,
            other => panic!("expected verb reply, got {other:?}"),
        }
    }

    /// The per-request batch replies, panicking on a type mismatch.
    pub fn into_batch(self) -> Vec<Reply> {
        match self {
            Reply::Batch(r) => r,
            other => panic!("expected batch reply, got {other:?}"),
        }
    }

    /// The chain results, or `None` on a type mismatch. Protocol
    /// machines use this instead of [`Reply::into_chain`] once replies
    /// can be synthesized by the fault layer (a request timeout
    /// delivers a [`Reply::Verb`] transport error in place of whatever
    /// reply shape the request would have produced).
    pub fn chain_results(self) -> Option<Vec<OpResult>> {
        match self {
            Reply::Chain(r) => Some(r),
            _ => None,
        }
    }

    /// The verb outcome, or `None` on a type mismatch (see
    /// [`Reply::chain_results`]).
    pub fn verb_result(self) -> Option<Result<Vec<u8>, RdmaError>> {
        match self {
            Reply::Verb(r) => Some(r),
            _ => None,
        }
    }

    /// If the reply reports a fenced rkey anywhere
    /// ([`RdmaError::StaleIncarnation`] in a verb error, a chain op
    /// NACK, or any batch member), the server's current incarnation.
    /// Clients use this as the re-handshake trigger after an amnesia
    /// restart: the rkeys they cached belong to a dead incarnation and
    /// must be restamped before retrying.
    pub fn stale_incarnation(&self) -> Option<u64> {
        match self {
            Reply::Verb(Err(RdmaError::StaleIncarnation { current, .. })) => Some(*current),
            Reply::Verb(_) | Reply::Rpc(_) => None,
            Reply::Chain(results) => results.iter().find_map(|r| match r.status {
                OpStatus::Error(RdmaError::StaleIncarnation { current, .. }) => Some(current),
                _ => None,
            }),
            Reply::Batch(replies) => replies.iter().find_map(Reply::stale_incarnation),
        }
    }

    /// If the reply reports a stale-routed request anywhere
    /// ([`RdmaError::StaleEpoch`] in a verb error, a chain op NACK, or
    /// any batch member), the server's current shard-map epoch. The
    /// routing analog of [`Reply::stale_incarnation`]: clients use it
    /// as the refetch-and-reroute trigger after a live reshard — the
    /// shard map they routed with belongs to a dead epoch and the key
    /// may live on a different server now.
    pub fn stale_epoch(&self) -> Option<u64> {
        match self {
            Reply::Verb(Err(RdmaError::StaleEpoch { current, .. })) => Some(*current),
            Reply::Verb(_) | Reply::Rpc(_) => None,
            Reply::Chain(results) => results.iter().find_map(|r| match r.status {
                OpStatus::Error(RdmaError::StaleEpoch { current, .. }) => Some(current),
                _ => None,
            }),
            Reply::Batch(replies) => replies.iter().find_map(Reply::stale_epoch),
        }
    }
}

// ---------------------------------------------------------------------
// Message-level wire framing.
//
// `wire` encodes chain bodies; this layer frames whole requests and
// replies — including doorbell batches — so they round-trip as bytes.
// The format is one marker byte, then a kind-specific body; batches are
// a u16 count (checked, never truncated) of recursively framed members,
// with nesting rejected (a doorbell is one flat list of work requests).

const MSG_CHAIN: u8 = 0;
const MSG_VERB: u8 = 1;
const MSG_RPC: u8 = 2;
const MSG_BATCH: u8 = 3;

const VERB_READ: u8 = 0;
const VERB_WRITE: u8 = 1;
const VERB_CAS64: u8 = 2;

const REPLY_ERR: u8 = 0;
const REPLY_OK: u8 = 1;

use crate::buf::{Buf, BufMut};
use crate::crc;
use crate::wire::WireError;

/// Bytes of the CRC frame trailer every encoded message carries:
/// a header checksum (first [`FRAME_HDR`] body bytes, cheap to verify
/// before parsing) and a whole-body checksum. The trailer is part of
/// the *encoded* form only; [`Request::wire_len`]/[`Reply::wire_len`]
/// model the payload the cost accounting has always charged for, so
/// adding the trailer does not perturb simulated timings.
pub const FRAME_TRAILER: usize = 8;

/// Body prefix covered by the header checksum.
const FRAME_HDR: usize = 8;

/// Seals the frame that starts at `start` in `buf` — the append-style
/// encoders frame messages in place at the tail of a caller-owned
/// buffer, so the checksums must cover only the bytes written since
/// `start`, not whatever the caller had accumulated before.
fn seal_frame_at(buf: &mut Vec<u8>, start: usize) {
    let body = &buf[start..];
    let hdr = crc::crc32(&body[..body.len().min(FRAME_HDR)]);
    let whole = crc::crc32(body);
    buf.put_u32_le(hdr);
    buf.put_u32_le(whole);
}

fn open_frame(buf: &[u8]) -> Result<&[u8], WireError> {
    if buf.len() < FRAME_TRAILER {
        return Err(WireError("truncated frame trailer"));
    }
    let (body, trailer) = buf.split_at(buf.len() - FRAME_TRAILER);
    let hdr = u32::from_le_bytes(trailer[0..4].try_into().expect("4-byte slice"));
    let whole = u32::from_le_bytes(trailer[4..8].try_into().expect("4-byte slice"));
    if hdr != crc::crc32(&body[..body.len().min(FRAME_HDR)]) || whole != crc::crc32(body) {
        return Err(WireError::CORRUPT);
    }
    Ok(body)
}

fn put_bytes(buf: &mut Vec<u8>, data: &[u8]) -> Result<(), WireError> {
    buf.put_u32_le(wire::u32_len(data.len())?);
    buf.put_slice(data);
    Ok(())
}

/// Appends a u32-length-prefixed section whose body `fill` writes
/// directly into `buf`: a zero length slot is reserved, the body lands
/// in place, and the slot is backfilled. This is how chain bodies are
/// framed without materializing them in a throwaway `Vec` first.
fn put_len_prefixed(
    buf: &mut Vec<u8>,
    fill: impl FnOnce(&mut Vec<u8>) -> Result<(), WireError>,
) -> Result<(), WireError> {
    buf.put_u32_le(0);
    let start = buf.len();
    fill(buf)?;
    let len = wire::u32_len(buf.len() - start)?;
    buf[start - 4..start].copy_from_slice(&len.to_le_bytes());
    Ok(())
}

/// Borrows the next length-prefixed section out of the frame without
/// copying it — the decode-side twin of [`put_len_prefixed`]. Body
/// parsers consume the returned sub-slice directly.
fn get_slice<'a>(buf: &mut &'a [u8]) -> Result<&'a [u8], WireError> {
    if buf.remaining() < 4 {
        return Err(WireError("truncated length prefix"));
    }
    let len = buf.get_u32_le() as usize;
    crate::buf::take(buf, len).ok_or(WireError("truncated payload"))
}

impl Request {
    /// Encodes the request into its wire form, CRC-framed (header and
    /// whole-body checksums appended; see [`FRAME_TRAILER`]). Fails on
    /// counts or payloads that would overflow their length prefixes,
    /// and on nested batches (a doorbell is one flat submission list).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf)?;
        Ok(buf)
    }

    /// Appends the framed wire form to `buf` — byte-identical to
    /// [`Request::encode`], but reusing the caller's buffer so hot send
    /// paths can encode without allocating in steady state.
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> Result<(), WireError> {
        let start = buf.len();
        self.encode_body(buf, false)?;
        seal_frame_at(buf, start);
        Ok(())
    }

    fn encode_body(&self, buf: &mut Vec<u8>, in_batch: bool) -> Result<(), WireError> {
        match self {
            Request::Chain(chain) => {
                buf.put_u8(MSG_CHAIN);
                put_len_prefixed(buf, |b| wire::encode_chain_into(chain, b))?;
            }
            Request::Verb(v) => {
                buf.put_u8(MSG_VERB);
                match v {
                    Verb::Read { addr, len, rkey } => {
                        buf.put_u8(VERB_READ);
                        buf.put_u64_le(*addr);
                        buf.put_u32_le(*len);
                        buf.put_u32_le(*rkey);
                    }
                    Verb::Write { addr, data, rkey } => {
                        buf.put_u8(VERB_WRITE);
                        buf.put_u64_le(*addr);
                        buf.put_u32_le(*rkey);
                        put_bytes(buf, data)?;
                    }
                    Verb::Cas64 {
                        addr,
                        compare,
                        swap,
                        rkey,
                    } => {
                        buf.put_u8(VERB_CAS64);
                        buf.put_u64_le(*addr);
                        buf.put_u64_le(*compare);
                        buf.put_u64_le(*swap);
                        buf.put_u32_le(*rkey);
                    }
                }
            }
            Request::Rpc(bytes) => {
                buf.put_u8(MSG_RPC);
                put_bytes(buf, bytes)?;
            }
            Request::Batch(reqs) => {
                if in_batch {
                    return Err(WireError("nested batch"));
                }
                buf.put_u8(MSG_BATCH);
                buf.put_u16_le(wire::u16_count(reqs.len())?);
                for r in reqs {
                    r.encode_body(buf, true)?;
                }
            }
        }
        Ok(())
    }

    /// Decodes a request from its wire form. The frame checksums are
    /// verified first — a damaged frame yields [`WireError::CORRUPT`],
    /// never a panic or a silently truncated parse — then the body is
    /// parsed, rejecting trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<Request, WireError> {
        let mut buf = open_frame(buf)?;
        let req = Request::decode_from(&mut buf, false)?;
        if buf.remaining() > 0 {
            return Err(WireError("trailing bytes after request"));
        }
        Ok(req)
    }

    /// Encodes the request with the client's routing epoch in the wire
    /// frame: the body is `[epoch u64 LE][request body]`, sealed under
    /// the same CRC trailer as [`Request::encode`]. The epoch therefore
    /// sits inside the header-checksum window (it occupies the first
    /// [`FRAME_TRAILER`]-sized prefix the header CRC covers), so a
    /// flipped epoch is detected before the server compares it against
    /// its own. Epoch `0` means "not sharded" — servers skip the fence
    /// for it. Like the CRC trailer, the epoch word is part of the
    /// encoded form only; [`Request::wire_len`] is unchanged.
    pub fn encode_epoch(&self, epoch: u64) -> Result<Vec<u8>, WireError> {
        let mut buf = Vec::new();
        let start = buf.len();
        buf.extend_from_slice(&epoch.to_le_bytes());
        self.encode_body(&mut buf, false)?;
        seal_frame_at(&mut buf, start);
        Ok(buf)
    }

    /// Decodes an epoch-framed request (see [`Request::encode_epoch`]):
    /// verifies the frame checksums, then returns the routing epoch and
    /// the request, rejecting trailing bytes.
    pub fn decode_epoch(buf: &[u8]) -> Result<(u64, Request), WireError> {
        let mut buf = open_frame(buf)?;
        if buf.remaining() < 8 {
            return Err(WireError("truncated epoch word"));
        }
        let epoch = buf.get_u64_le();
        let req = Request::decode_from(&mut buf, false)?;
        if buf.remaining() > 0 {
            return Err(WireError("trailing bytes after request"));
        }
        Ok((epoch, req))
    }

    fn decode_from(buf: &mut &[u8], in_batch: bool) -> Result<Request, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError("truncated request marker"));
        }
        match buf.get_u8() {
            MSG_CHAIN => Ok(Request::Chain(wire::decode_chain(get_slice(buf)?)?)),
            MSG_VERB => {
                if buf.remaining() < 1 {
                    return Err(WireError("truncated verb kind"));
                }
                let kind = buf.get_u8();
                match kind {
                    VERB_READ => {
                        if buf.remaining() < 16 {
                            return Err(WireError("truncated READ verb"));
                        }
                        Ok(Request::Verb(Verb::Read {
                            addr: buf.get_u64_le(),
                            len: buf.get_u32_le(),
                            rkey: buf.get_u32_le(),
                        }))
                    }
                    VERB_WRITE => {
                        if buf.remaining() < 12 {
                            return Err(WireError("truncated WRITE verb"));
                        }
                        let addr = buf.get_u64_le();
                        let rkey = buf.get_u32_le();
                        let data = get_slice(buf)?.to_vec();
                        Ok(Request::Verb(Verb::Write { addr, data, rkey }))
                    }
                    VERB_CAS64 => {
                        if buf.remaining() < 28 {
                            return Err(WireError("truncated CAS verb"));
                        }
                        Ok(Request::Verb(Verb::Cas64 {
                            addr: buf.get_u64_le(),
                            compare: buf.get_u64_le(),
                            swap: buf.get_u64_le(),
                            rkey: buf.get_u32_le(),
                        }))
                    }
                    _ => Err(WireError("unknown verb kind")),
                }
            }
            MSG_RPC => Ok(Request::Rpc(get_slice(buf)?.to_vec())),
            MSG_BATCH => {
                if in_batch {
                    return Err(WireError("nested batch"));
                }
                if buf.remaining() < 2 {
                    return Err(WireError("truncated batch count"));
                }
                let count = buf.get_u16_le() as usize;
                let mut reqs = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    reqs.push(Request::decode_from(buf, true)?);
                }
                Ok(Request::Batch(reqs))
            }
            _ => Err(WireError("unknown request marker")),
        }
    }
}

impl Reply {
    /// Encodes the reply into its CRC-framed wire form (see
    /// [`Request::encode`]).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf)?;
        Ok(buf)
    }

    /// Appends the framed wire form to `buf` — byte-identical to
    /// [`Reply::encode`], but reusing the caller's buffer (see
    /// [`Request::encode_into`]).
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> Result<(), WireError> {
        let start = buf.len();
        self.encode_body(buf, false)?;
        seal_frame_at(buf, start);
        Ok(())
    }

    fn encode_body(&self, buf: &mut Vec<u8>, in_batch: bool) -> Result<(), WireError> {
        match self {
            Reply::Chain(results) => {
                buf.put_u8(MSG_CHAIN);
                put_len_prefixed(buf, |b| wire::encode_response_into(results, b))?;
            }
            Reply::Verb(outcome) => {
                buf.put_u8(MSG_VERB);
                match outcome {
                    Ok(data) => {
                        buf.put_u8(REPLY_OK);
                        put_bytes(buf, data)?;
                    }
                    Err(e) => {
                        buf.put_u8(REPLY_ERR);
                        buf.put_slice(&e.to_wire());
                    }
                }
            }
            Reply::Rpc(bytes) => {
                buf.put_u8(MSG_RPC);
                put_bytes(buf, bytes)?;
            }
            Reply::Batch(replies) => {
                if in_batch {
                    return Err(WireError("nested batch"));
                }
                buf.put_u8(MSG_BATCH);
                buf.put_u16_le(wire::u16_count(replies.len())?);
                for r in replies {
                    r.encode_body(buf, true)?;
                }
            }
        }
        Ok(())
    }

    /// Decodes a reply from its wire form, verifying the frame
    /// checksums first (see [`Request::decode`]) and rejecting
    /// trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<Reply, WireError> {
        let mut buf = open_frame(buf)?;
        let reply = Reply::decode_from(&mut buf, false)?;
        if buf.remaining() > 0 {
            return Err(WireError("trailing bytes after reply"));
        }
        Ok(reply)
    }

    fn decode_from(buf: &mut &[u8], in_batch: bool) -> Result<Reply, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError("truncated reply marker"));
        }
        match buf.get_u8() {
            MSG_CHAIN => Ok(Reply::Chain(wire::decode_response(get_slice(buf)?)?)),
            MSG_VERB => {
                if buf.remaining() < 1 {
                    return Err(WireError("truncated verb outcome flag"));
                }
                match buf.get_u8() {
                    REPLY_OK => Ok(Reply::Verb(Ok(get_slice(buf)?.to_vec()))),
                    REPLY_ERR => {
                        if buf.remaining() < prism_rdma::error::ERROR_WIRE_LEN {
                            return Err(WireError("truncated verb error"));
                        }
                        let mut bytes = [0u8; prism_rdma::error::ERROR_WIRE_LEN];
                        buf.copy_to_slice(&mut bytes);
                        let e = RdmaError::from_wire(&bytes)
                            .ok_or(WireError("unknown verb error code"))?;
                        Ok(Reply::Verb(Err(e)))
                    }
                    _ => Err(WireError("bad verb outcome flag")),
                }
            }
            MSG_RPC => Ok(Reply::Rpc(get_slice(buf)?.to_vec())),
            MSG_BATCH => {
                if in_batch {
                    return Err(WireError("nested batch"));
                }
                if buf.remaining() < 2 {
                    return Err(WireError("truncated batch count"));
                }
                let count = buf.get_u16_le() as usize;
                let mut replies = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    replies.push(Reply::decode_from(buf, true)?);
                }
                Ok(Reply::Batch(replies))
            }
            _ => Err(WireError("unknown reply marker")),
        }
    }
}

/// Executes a request against a local server — the live-mode transport,
/// also used by every unit and integration test.
pub fn execute_local(server: &crate::server::PrismServer, req: &Request) -> Reply {
    match req {
        Request::Chain(chain) => Reply::Chain(server.execute_chain(chain)),
        Request::Verb(v) => Reply::Verb(match v {
            Verb::Read { addr, len, rkey } => {
                server
                    .nic()
                    .read(prism_rdma::Rkey(*rkey), *addr, *len as u64)
            }
            Verb::Write { addr, data, rkey } => server
                .nic()
                .write(prism_rdma::Rkey(*rkey), *addr, data)
                .map(|()| Vec::new()),
            Verb::Cas64 {
                addr,
                compare,
                swap,
                rkey,
            } => server
                .nic()
                .cas64(prism_rdma::Rkey(*rkey), *addr, *compare, *swap)
                .map(|old| old.to_le_bytes().to_vec()),
        }),
        Request::Rpc(bytes) => Reply::Rpc(server.handle_rpc(bytes)),
        Request::Batch(reqs) => {
            Reply::Batch(reqs.iter().map(|r| execute_local(server, r)).collect())
        }
    }
}

/// Whether every op in a chain reply succeeded.
pub fn chain_all_ok(results: &[OpResult]) -> bool {
    !results.is_empty() && results.iter().all(|r| r.status == OpStatus::Ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ops;
    use crate::server::PrismServer;
    use prism_rdma::region::AccessFlags;

    #[test]
    fn verb_sizes() {
        let w = Verb::Write {
            addr: 0,
            data: vec![0; 512],
            rkey: 1,
        };
        assert_eq!(w.request_len(), 540);
        assert_eq!(
            Verb::Read {
                addr: 0,
                len: 512,
                rkey: 1
            }
            .response_len(),
            512
        );
    }

    #[test]
    fn local_execution_of_all_request_kinds() {
        let s = PrismServer::new(1 << 20);
        let (addr, rkey) = s.carve_region(64, 64, AccessFlags::FULL);
        s.set_rpc_handler(std::sync::Arc::new(|req: &[u8]| req.to_vec()));

        // Verb write then chain read.
        let w = execute_local(
            &s,
            &Request::Verb(Verb::Write {
                addr,
                data: b"12345678".to_vec(),
                rkey: rkey.0,
            }),
        );
        assert!(w.into_verb().is_ok());
        let r = execute_local(&s, &Request::Chain(vec![ops::read(addr, 8, rkey.0)]));
        assert_eq!(r.into_chain()[0].data, b"12345678");

        // Classic CAS through the same memory.
        s.arena().write_u64(addr, 5).unwrap();
        let c = execute_local(
            &s,
            &Request::Verb(Verb::Cas64 {
                addr,
                compare: 5,
                swap: 6,
                rkey: rkey.0,
            }),
        );
        assert_eq!(c.into_verb().unwrap(), 5u64.to_le_bytes());

        // RPC echo.
        let rpc = execute_local(&s, &Request::Rpc(b"ping".to_vec()));
        assert_eq!(rpc.into_rpc(), b"ping");
    }

    #[test]
    fn doorbell_batch_executes_in_order() {
        let s = PrismServer::new(1 << 20);
        let (addr, rkey) = s.carve_region(64, 64, AccessFlags::FULL);
        let batch = Request::Batch(vec![
            Request::Verb(Verb::Write {
                addr,
                data: b"batched!".to_vec(),
                rkey: rkey.0,
            }),
            Request::Chain(vec![ops::read(addr, 8, rkey.0)]),
        ]);
        // Batch wire accounting: header plus the members' sizes; the
        // chain-op count sums across members.
        assert_eq!(
            batch.wire_len(),
            8 + Request::Verb(Verb::Write {
                addr,
                data: b"batched!".to_vec(),
                rkey: rkey.0
            })
            .wire_len()
                + Request::Chain(vec![ops::read(addr, 8, rkey.0)]).wire_len()
        );
        assert_eq!(batch.chain_ops(), 1);

        let replies = execute_local(&s, &batch).into_batch();
        assert_eq!(replies.len(), 2);
        assert!(matches!(&replies[0], Reply::Verb(Ok(_))));
        assert_eq!(replies[1].clone().into_chain()[0].data, b"batched!");
    }

    #[test]
    fn request_and_reply_wire_framing_round_trips() {
        let reqs = [
            Request::Chain(vec![ops::read(0x10, 8, 1)]),
            Request::Verb(Verb::Cas64 {
                addr: 8,
                compare: 1,
                swap: 2,
                rkey: 3,
            }),
            Request::Rpc(vec![1, 2, 3]),
            Request::Batch(vec![
                Request::Rpc(vec![]),
                Request::Verb(Verb::Read {
                    addr: 0,
                    len: 64,
                    rkey: 9,
                }),
            ]),
        ];
        for r in &reqs {
            assert_eq!(&Request::decode(&r.encode().unwrap()).unwrap(), r);
        }
        let replies = [
            Reply::Chain(vec![OpResult {
                status: OpStatus::CasFailed,
                data: vec![7; 16],
            }]),
            Reply::Verb(Err(prism_rdma::RdmaError::ReceiverNotReady)),
            Reply::Verb(Ok(vec![])),
            Reply::Rpc(vec![0xAB]),
            Reply::Batch(vec![Reply::Rpc(vec![1]), Reply::Verb(Ok(vec![2]))]),
        ];
        for r in &replies {
            assert_eq!(&Reply::decode(&r.encode().unwrap()).unwrap(), r);
        }
    }

    #[test]
    fn encode_into_appends_framed_bytes_identically() {
        // The append-style encoders must frame at the buffer tail:
        // checksums cover only the new frame, the prefix survives, and
        // the appended bytes match the owned encoders exactly.
        let req = Request::Batch(vec![
            Request::Chain(vec![ops::read(0x10, 8, 1)]),
            Request::Rpc(vec![9; 3]),
        ]);
        let mut buf = b"prefix".to_vec();
        req.encode_into(&mut buf).unwrap();
        assert_eq!(&buf[..6], b"prefix");
        assert_eq!(&buf[6..], &req.encode().unwrap()[..]);
        assert_eq!(Request::decode(&buf[6..]).unwrap(), req);

        let reply = Reply::Chain(vec![OpResult {
            status: OpStatus::Ok,
            data: vec![3; 12],
        }]);
        let mut buf = vec![0xEE; 4];
        reply.encode_into(&mut buf).unwrap();
        assert_eq!(&buf[4..], &reply.encode().unwrap()[..]);
    }

    #[test]
    fn nested_batches_are_rejected_on_the_wire() {
        let nested = Request::Batch(vec![Request::Batch(vec![Request::Rpc(vec![])])]);
        assert!(nested.encode().is_err());
        let nested = Reply::Batch(vec![Reply::Batch(vec![Reply::Rpc(vec![])])]);
        assert!(nested.encode().is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Request::Rpc(vec![5]).encode().unwrap();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
        let mut bytes = Reply::Rpc(vec![5]).encode().unwrap();
        bytes.push(0);
        assert!(Reply::decode(&bytes).is_err());
    }

    #[test]
    fn flipped_frames_decode_to_typed_corrupt_errors() {
        let req = Request::Chain(vec![ops::read(0x10, 64, 1)]);
        let bytes = req.encode().unwrap();
        // Every single-bit flip — body or trailer — must surface as the
        // typed corrupt error, never a panic or a silently wrong parse.
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[byte] ^= 1 << bit;
                let err = Request::decode(&m).expect_err("flip must not decode");
                assert!(err.is_corrupt(), "flip at {byte}:{bit} gave {err:?}");
            }
        }
        let reply = Reply::Verb(Ok(vec![0xAA; 32]));
        let bytes = reply.encode().unwrap();
        for byte in 0..bytes.len() {
            let mut m = bytes.clone();
            m[byte] ^= 0x40;
            assert!(Reply::decode(&m)
                .expect_err("flip must not decode")
                .is_corrupt());
        }
    }

    #[test]
    fn frames_shorter_than_the_trailer_are_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[1, 2, 3]).is_err());
        assert!(Reply::decode(&[0; 7]).is_err());
    }

    #[test]
    fn epoch_framing_round_trips_and_flips_are_detected() {
        let reqs = [
            Request::Chain(vec![ops::read(0x10, 8, 1)]),
            Request::Rpc(vec![1, 2, 3]),
            Request::Batch(vec![Request::Rpc(vec![]), Request::Rpc(vec![9])]),
        ];
        for r in &reqs {
            for epoch in [0u64, 1, 7, u64::MAX] {
                let bytes = r.encode_epoch(epoch).unwrap();
                assert_eq!(Request::decode_epoch(&bytes).unwrap(), (epoch, r.clone()));
            }
        }
        // The epoch word rides inside the checksummed frame: every
        // single-bit flip — epoch bytes included — is a typed corrupt
        // error, so a damaged epoch can never masquerade as a stale
        // (or fresh) route.
        let bytes = reqs[0].encode_epoch(3).unwrap();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[byte] ^= 1 << bit;
                let err = Request::decode_epoch(&m).expect_err("flip must not decode");
                assert!(err.is_corrupt(), "flip at {byte}:{bit} gave {err:?}");
            }
        }
        // Trailing bytes are rejected the same way the plain framing
        // rejects them, and a plain frame is not an epoch frame.
        let mut extended = reqs[0].encode_epoch(3).unwrap();
        extended.insert(extended.len() - FRAME_TRAILER, 0);
        assert!(Request::decode_epoch(&extended).is_err());
    }

    #[test]
    fn stale_incarnation_is_found_in_any_reply_shape() {
        let stale = prism_rdma::RdmaError::StaleIncarnation {
            seen: 0,
            current: 3,
        };
        assert_eq!(Reply::Verb(Err(stale)).stale_incarnation(), Some(3));
        assert_eq!(
            Reply::Chain(vec![
                OpResult {
                    status: OpStatus::Ok,
                    data: vec![],
                },
                OpResult {
                    status: OpStatus::Error(stale),
                    data: vec![],
                },
            ])
            .stale_incarnation(),
            Some(3)
        );
        assert_eq!(
            Reply::Batch(vec![Reply::Rpc(vec![]), Reply::Verb(Err(stale))]).stale_incarnation(),
            Some(3)
        );
        assert_eq!(
            Reply::Verb(Err(prism_rdma::RdmaError::ReceiverNotReady)).stale_incarnation(),
            None
        );
        assert_eq!(Reply::Rpc(vec![1]).stale_incarnation(), None);
    }

    #[test]
    fn chain_all_ok_semantics() {
        assert!(!chain_all_ok(&[]));
        let ok = OpResult {
            status: OpStatus::Ok,
            data: vec![],
        };
        let failed = OpResult {
            status: OpStatus::CasFailed,
            data: vec![],
        };
        assert!(chain_all_ok(std::slice::from_ref(&ok)));
        assert!(!chain_all_ok(&[ok, failed]));
    }
}
