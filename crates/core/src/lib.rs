//! `prism-core` — the PRISM interface from *PRISM: Rethinking the RDMA
//! Interface for Distributed Systems* (SOSP 2021).
//!
//! PRISM extends RDMA's READ/WRITE interface with four primitives
//! (Table 1 of the paper):
//!
//! 1. **Indirection** (§3.1) — READ/WRITE/CAS targets may be pointers,
//!    optionally bounded `(ptr, bound)` pairs for variable-length data.
//! 2. **Allocation** (§3.2) — ALLOCATE pops a buffer from a registered
//!    free list, fills it, and returns its address.
//! 3. **Enhanced compare-and-swap** (§3.3) — up to 32 bytes, separate
//!    compare/swap bitmasks, arithmetic comparison modes, indirect
//!    operands.
//! 4. **Operation chaining** (§3.4) — conditional execution and output
//!    redirection let a chain like ALLOCATE → WRITE → CAS run in one
//!    round trip.
//!
//! This crate implements those primitives as a software data plane (the
//! paper's own prototype is software, §4.1) over the simulated RDMA
//! substrate in `prism-rdma`. The applications in `prism-kv`,
//! `prism-rs`, and `prism-tx` are built purely on this API.
//!
//! # Examples
//!
//! One-round-trip out-of-place update (the §3.5 pattern):
//!
//! ```
//! use prism_core::builder::{ops, ChainBuilder};
//! use prism_core::op::{full_mask, DataArg, FreeListId, Redirect};
//! use prism_core::server::PrismServer;
//! use prism_core::value::CasMode;
//! use prism_rdma::region::AccessFlags;
//!
//! let server = PrismServer::new(1 << 20);
//! let (slot, table_rkey) = server.carve_region(8, 8, AccessFlags::FULL);
//! server.setup_freelist(FreeListId(0), 64, 16);
//! let conn = server.open_connection();
//!
//! let scratch = Redirect { addr: conn.scratch_addr, rkey: conn.scratch_rkey.0 };
//! let chain = ChainBuilder::new()
//!     .then(ops::allocate(FreeListId(0), b"value-v1".to_vec()).redirect(scratch))
//!     .then(ops::cas_args(
//!         CasMode::Eq,
//!         slot,
//!         table_rkey.0,
//!         DataArg::Inline(0u64.to_le_bytes().to_vec()), // expect empty slot
//!         DataArg::Remote { addr: scratch.addr, rkey: scratch.rkey },
//!         8,
//!         full_mask(8),
//!         full_mask(8),
//!     ).conditional())
//!     .build();
//!
//! let results = server.execute_chain(&chain);
//! assert!(results.iter().all(|r| r.succeeded()));
//!
//! // The slot now points at the allocated buffer holding the value.
//! let ptr = server.arena().read_u64(slot).unwrap();
//! assert_eq!(server.arena().read(ptr, 8).unwrap(), b"value-v1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buf;
pub mod builder;
pub mod conn;
pub mod crc;
pub mod engine;
pub mod freelist;
pub mod integrity;
pub mod layout;
pub mod live;
pub mod msg;
pub mod op;
pub mod server;
pub mod value;
pub mod wire;

pub use builder::ChainBuilder;
pub use engine::{OpResult, OpStatus, PrismEngine};
pub use op::{DataArg, FreeListId, PrismOp, Redirect};
pub use server::{ChainObserver, PrismServer};
pub use value::CasMode;
