//! Value-layer integrity accounting.
//!
//! The fault fabric counts the corruptions it *injects*; the protocol
//! layers (PRISM-KV entry CRCs, Pilaf self-verifying structures,
//! PRISM-RS tagged-block checksums, TX staged-buffer checksums) count
//! what they *observe*: mismatches detected, operations that recovered
//! after a mismatch, and operations that aborted cleanly because the
//! damage persisted. The harness folds both sides into `RunResult` so
//! the corruption-matrix gate can assert conservation — every injected
//! corruption is detected+repaired, detected+aborted, or provably
//! overwritten, never a silent wrong answer.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared corruption counters, `Arc`-ed into protocol clients and
/// cluster-side scrubbers. All counters are monotonic within a run;
/// the harness resets them at the warmup/measure boundary.
#[derive(Debug, Default)]
pub struct IntegrityStats {
    detected: AtomicU64,
    repaired: AtomicU64,
    aborted: AtomicU64,
}

impl IntegrityStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// A checksum mismatch was observed (value layer).
    pub fn note_detected(&self) {
        self.detected.fetch_add(1, Ordering::Relaxed);
    }

    /// An operation completed cleanly after observing a mismatch
    /// (re-read succeeded, quorum healed the copy, or the damaged
    /// state was overwritten out from under the reader).
    pub fn note_repaired(&self) {
        self.repaired.fetch_add(1, Ordering::Relaxed);
    }

    /// An operation gave up cleanly because the mismatch persisted —
    /// a typed failure, never a silently wrong answer.
    pub fn note_aborted(&self) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Mismatches detected so far.
    pub fn detected(&self) -> u64 {
        self.detected.load(Ordering::Relaxed)
    }

    /// Clean recoveries so far.
    pub fn repaired(&self) -> u64 {
        self.repaired.load(Ordering::Relaxed)
    }

    /// Clean corruption-driven aborts so far.
    pub fn aborted(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Zero all counters (harness warmup/measure boundary).
    pub fn reset(&self) {
        self.detected.store(0, Ordering::Relaxed);
        self.repaired.store(0, Ordering::Relaxed);
        self.aborted.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IntegrityStats::new();
        s.note_detected();
        s.note_detected();
        s.note_repaired();
        s.note_aborted();
        assert_eq!((s.detected(), s.repaired(), s.aborted()), (2, 1, 1));
        s.reset();
        assert_eq!((s.detected(), s.repaired(), s.aborted()), (0, 0, 0));
    }
}
