//! Live mode: a threaded server front-end with dedicated dispatch
//! workers — the deployment shape of the paper's software prototype
//! (§4.1: "communicating via eRPC with a dedicated thread on the remote
//! side"; §6.2: "16 dedicated cores to handle RPCs and implement the
//! PRISM primitives").
//!
//! [`LiveServer::spawn`] starts N worker threads draining a request
//! channel; [`LiveClient`] submits [`Request`]s and waits for replies.
//! This is how multi-threaded examples and stress tests drive a server
//! through a realistic queue instead of calling into it directly, and
//! it doubles as a load generator for measuring the real dispatch cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use prism_rdma::sync::{bounded, Receiver, Sender};

use crate::msg::{execute_local, Reply, Request};
use crate::server::PrismServer;

enum Job {
    Work {
        req: Request,
        reply_to: Option<Sender<Reply>>,
    },
    /// Shutdown marker: exactly one per worker, sent by
    /// [`LiveServer::shutdown`]. Client handles may outlive the server,
    /// so channel closure alone cannot signal exit.
    Poison,
}

/// Counters published by a running live server.
#[derive(Debug, Default)]
pub struct LiveStats {
    /// PRISM chains executed.
    pub chains: AtomicU64,
    /// Classic verbs executed.
    pub verbs: AtomicU64,
    /// Two-sided RPCs executed (the server-CPU work PRISM eliminates
    /// from the data path).
    pub rpcs: AtomicU64,
}

/// Bumps the per-kind counters for one request; doorbell batches count
/// each inner request individually (a batch is a submission, not a new
/// kind of work).
fn count_request(stats: &LiveStats, req: &Request) {
    match req {
        Request::Chain(_) => {
            stats.chains.fetch_add(1, Ordering::Relaxed);
        }
        Request::Verb(_) => {
            stats.verbs.fetch_add(1, Ordering::Relaxed);
        }
        Request::Rpc(_) => {
            stats.rpcs.fetch_add(1, Ordering::Relaxed);
        }
        Request::Batch(reqs) => {
            for r in reqs {
                count_request(stats, r);
            }
        }
    }
}

/// A PRISM host served by a pool of dispatch threads.
pub struct LiveServer {
    tx: Sender<Job>,
    workers: Vec<std::thread::JoinHandle<()>>,
    stats: Arc<LiveStats>,
    server: Arc<PrismServer>,
}

impl LiveServer {
    /// Spawns `workers` dispatch threads over `server`. Queue depth is
    /// bounded (back-pressure, like a NIC's receive queue).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn spawn(server: Arc<PrismServer>, workers: usize) -> Self {
        assert!(workers > 0, "LiveServer: need at least one worker");
        let (tx, rx): (Sender<Job>, Receiver<Job>) = bounded(4096);
        let stats = Arc::new(LiveStats::default());
        let handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let server = Arc::clone(&server);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let (req, reply_to) = match job {
                            Job::Work { req, reply_to } => (req, reply_to),
                            Job::Poison => break,
                        };
                        count_request(&stats, &req);
                        let reply = execute_local(&server, &req);
                        if let Some(reply_to) = reply_to {
                            // A dropped receiver means the client gave up
                            // (fire-and-forget or shutdown): fine.
                            let _ = reply_to.send(reply);
                        }
                    }
                })
            })
            .collect();
        LiveServer {
            tx,
            workers: handles,
            stats,
            server,
        }
    }

    /// Opens a client handle to this server.
    pub fn client(&self) -> LiveClient {
        LiveClient {
            tx: self.tx.clone(),
        }
    }

    /// Execution counters.
    pub fn stats(&self) -> &LiveStats {
        &self.stats
    }

    /// The underlying host (for setup and assertions).
    pub fn server(&self) -> &Arc<PrismServer> {
        &self.server
    }

    /// Stops the workers after draining queued requests. Safe even while
    /// client handles are still alive (their later sends fail).
    pub fn shutdown(self) {
        for _ in 0..self.workers.len() {
            let _ = self.tx.send(Job::Poison);
        }
        drop(self.tx);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// A handle submitting requests to a [`LiveServer`].
#[derive(Debug, Clone)]
pub struct LiveClient {
    tx: Sender<Job>,
}

impl LiveClient {
    /// Sends a request and blocks for the reply — one "round trip".
    ///
    /// # Panics
    ///
    /// Panics if the server has shut down.
    pub fn call(&self, req: Request) -> Reply {
        let (rtx, rrx) = bounded(1);
        self.tx
            .send(Job::Work {
                req,
                reply_to: Some(rtx),
            })
            .expect("live server is running");
        rrx.recv().expect("worker replies before exiting")
    }

    /// Sends a fire-and-forget request (reclamation traffic).
    pub fn cast(&self, req: Request) {
        let _ = self.tx.send(Job::Work {
            req,
            reply_to: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ops;
    use prism_rdma::region::AccessFlags;

    fn live() -> (LiveServer, u64, u32) {
        let server = Arc::new(PrismServer::new(1 << 20));
        let (addr, rkey) = server.carve_region(4096, 64, AccessFlags::FULL);
        server.set_rpc_handler(Arc::new(|req: &[u8]| req.to_vec()));
        (LiveServer::spawn(server, 4), addr, rkey.0)
    }

    #[test]
    fn round_trips_through_workers() {
        let (srv, addr, rkey) = live();
        let client = srv.client();
        let w = client.call(Request::Chain(vec![ops::write(
            addr,
            b"live!".to_vec(),
            rkey,
        )]));
        assert!(w.into_chain()[0].succeeded());
        let r = client.call(Request::Chain(vec![ops::read(addr, 5, rkey)]));
        assert_eq!(r.into_chain()[0].data, b"live!");
        assert_eq!(srv.stats().chains.load(Ordering::Relaxed), 2);
        srv.shutdown();
    }

    #[test]
    fn many_threads_share_one_server() {
        let (srv, addr, rkey) = live();
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let client = srv.client();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        // Each thread owns an 8-byte cell; verbs and
                        // chains interleave through the same workers.
                        let cell = addr + t * 8;
                        let v = (t << 32 | i).to_le_bytes().to_vec();
                        client.call(Request::Chain(vec![ops::write(cell, v.clone(), rkey)]));
                        let r = client.call(Request::Verb(crate::msg::Verb::Read {
                            addr: cell,
                            len: 8,
                            rkey,
                        }));
                        let got = r.into_verb().unwrap();
                        let got = u64::from_le_bytes(got.try_into().unwrap());
                        // Last write wins; our own write is the only
                        // writer of this cell, so it must match.
                        assert_eq!(got, t << 32 | i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(srv.stats().chains.load(Ordering::Relaxed), 1600);
        assert_eq!(srv.stats().verbs.load(Ordering::Relaxed), 1600);
        srv.shutdown();
    }

    #[test]
    fn cast_is_fire_and_forget() {
        let (srv, _addr, _rkey) = live();
        let client = srv.client();
        for _ in 0..50 {
            client.cast(Request::Rpc(b"ping".to_vec()));
        }
        // Shutdown drains the queue; all RPCs must have been handled.
        srv.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let (srv, addr, rkey) = live();
        let client = srv.client();
        for i in 0..100u64 {
            client.cast(Request::Chain(vec![ops::write(
                addr + 64,
                i.to_le_bytes().to_vec(),
                rkey,
            )]));
        }
        let server = Arc::clone(srv.server());
        srv.shutdown();
        // The final queued write must have landed.
        assert_eq!(server.arena().read_u64(addr + 64).unwrap(), 99);
    }
}
