//! The PRISM operation descriptors — a direct transcription of Table 1.
//!
//! A client request is a *chain* of [`PrismOp`]s executed in order on the
//! server's data plane. Each op names a target address, an rkey, and the
//! flag bits the paper adds to the RDMA base transport header: two
//! indirection flags, a bounded-pointer flag, a conditional flag, and an
//! output-redirection flag (§4.2, "Wire Protocol Extensions").

use crate::value::CasMode;

/// Maximum operand length for the enhanced CAS (§3.3, matching Mellanox
/// extended atomics).
pub const MAX_CAS_LEN: usize = 32;

/// Identifies a free list (one per buffer size class) registered for
/// ALLOCATE (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FreeListId(pub u32);

/// Where a chained op's output goes instead of the response (§3.4,
/// "Output redirection").
///
/// The address is usually a per-connection scratch slot in on-NIC memory
/// (§4.2 sizes it at 32 B per connection). It carries its own rkey because
/// the scratch region is registered separately from application data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Redirect {
    /// Destination address for the op's output bytes.
    pub addr: u64,
    /// Key of the region covering `addr`.
    pub rkey: u32,
}

/// Source of the data argument for WRITE and CAS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataArg {
    /// Data carried in the request itself.
    Inline(Vec<u8>),
    /// `data_indirect` (§3.1): the argument is a server-side address; the
    /// operand is loaded from there. The rkey validates the load — the
    /// per-connection scratch region in the chained-op pattern.
    Remote {
        /// Server-side address holding the operand bytes.
        addr: u64,
        /// Key of the region covering `addr`.
        rkey: u32,
    },
}

impl DataArg {
    /// Bytes this argument contributes to the request message (inline data
    /// travels on the wire; a remote pointer is 12 bytes of header).
    pub fn wire_len(&self) -> usize {
        match self {
            DataArg::Inline(d) => d.len(),
            DataArg::Remote { .. } => 12,
        }
    }
}

/// One PRISM primitive, with its chaining flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrismOp {
    /// `READ(ptr addr, size len, bool indirect, bool bounded)` (Table 1).
    Read {
        /// Target address — the data itself, or a pointer to it when
        /// `indirect` is set.
        addr: u64,
        /// Number of bytes requested.
        len: u32,
        /// Region key for `addr` (and, for indirect reads, for the
        /// pointed-to target as well — §3.1's security rule).
        rkey: u32,
        /// Treat `addr` as the address of a pointer to the real target.
        indirect: bool,
        /// Treat the pointer as a `(ptr, bound)` pair and clamp the read
        /// length to `bound`.
        bounded: bool,
        /// Skip unless the previous op in the chain succeeded (§3.4).
        conditional: bool,
        /// Write the output to this server-side location instead of
        /// returning it (§3.4).
        redirect: Option<Redirect>,
    },
    /// `WRITE(ptr addr, byte[] data, size len, ...)` (Table 1).
    Write {
        /// Target address — direct, or a pointer when `addr_indirect`.
        addr: u64,
        /// Region key for `addr`.
        rkey: u32,
        /// The data to store (inline or loaded from a server-side
        /// address when `data_indirect` is set).
        data: DataArg,
        /// Number of bytes to write.
        len: u32,
        /// Treat `addr` as a pointer to the real target.
        addr_indirect: bool,
        /// Clamp the write length with the pointer's `bound` field.
        addr_bounded: bool,
        /// Skip unless the previous op succeeded.
        conditional: bool,
    },
    /// `ALLOCATE(qp freelist, byte[] data, size len) -> ptr` (Table 1).
    Allocate {
        /// Which free list (size class) to pop from.
        freelist: FreeListId,
        /// Data written into the fresh buffer.
        data: Vec<u8>,
        /// Skip unless the previous op succeeded.
        conditional: bool,
        /// Write the returned address here instead of to the response.
        redirect: Option<Redirect>,
    },
    /// `CAS(mode, ptr target, byte[] data, bitmask compare_mask,
    /// bitmask swap_mask, ...)` (Table 1).
    ///
    /// Table 1 abbreviates the operand as a single `data[]`; we follow
    /// the Mellanox extended-atomics interface the paper adopts (§3.3),
    /// which supplies *separate* compare and swap operands with their own
    /// masks. The paper's own applications require this: PRISM-KV's PUT
    /// (§6.1) compares the slot against the *old* address (known to the
    /// client) while swapping in the *new* address staged by ALLOCATE —
    /// two different values over the same bytes.
    Cas {
        /// Comparison operator (equality or arithmetic, §3.3).
        mode: CasMode,
        /// Target address — direct, or a pointer when `target_indirect`.
        target: u64,
        /// Region key for `target`.
        rkey: u32,
        /// Comparand: `(*target & compare_mask)` is compared with
        /// `(compare & compare_mask)` under `mode`.
        compare: DataArg,
        /// Swap value: on success,
        /// `*target = (*target & !swap_mask) | (swap & swap_mask)`.
        swap: DataArg,
        /// Operand length in bytes (≤ 32).
        len: u32,
        /// Bits of the operand that participate in the comparison.
        compare_mask: [u8; MAX_CAS_LEN],
        /// Bits of the target that are replaced on success.
        swap_mask: [u8; MAX_CAS_LEN],
        /// Treat `target` as a pointer to the real target (deref not
        /// atomic; only the CAS is — §3.3).
        target_indirect: bool,
        /// Skip unless the previous op succeeded.
        conditional: bool,
    },
}

impl PrismOp {
    /// Whether this op has the conditional flag set.
    pub fn is_conditional(&self) -> bool {
        match self {
            PrismOp::Read { conditional, .. }
            | PrismOp::Write { conditional, .. }
            | PrismOp::Allocate { conditional, .. }
            | PrismOp::Cas { conditional, .. } => *conditional,
        }
    }

    /// Short opcode name for logs and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            PrismOp::Read { .. } => "READ",
            PrismOp::Write { .. } => "WRITE",
            PrismOp::Allocate { .. } => "ALLOCATE",
            PrismOp::Cas { .. } => "CAS",
        }
    }
}

/// An all-ones mask covering the first `len` bytes — the common "compare
/// (or swap) the whole operand" case.
pub fn full_mask(len: usize) -> [u8; MAX_CAS_LEN] {
    assert!(len <= MAX_CAS_LEN, "mask longer than CAS operand maximum");
    let mut m = [0u8; MAX_CAS_LEN];
    m[..len].fill(0xFF);
    m
}

/// A mask covering `[start, start+len)` within the operand — for comparing
/// one field of a structure and swapping another (§3.3).
pub fn field_mask(start: usize, len: usize) -> [u8; MAX_CAS_LEN] {
    assert!(
        start + len <= MAX_CAS_LEN,
        "field extends past CAS operand maximum"
    );
    let mut m = [0u8; MAX_CAS_LEN];
    m[start..start + len].fill(0xFF);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_cover_requested_bytes() {
        let m = full_mask(8);
        assert!(m[..8].iter().all(|&b| b == 0xFF));
        assert!(m[8..].iter().all(|&b| b == 0));
        let f = field_mask(8, 8);
        assert!(f[..8].iter().all(|&b| b == 0));
        assert!(f[8..16].iter().all(|&b| b == 0xFF));
        assert!(f[16..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "longer than CAS operand")]
    fn oversized_full_mask_panics() {
        full_mask(33);
    }

    #[test]
    #[should_panic(expected = "past CAS operand")]
    fn oversized_field_mask_panics() {
        field_mask(30, 3);
    }

    #[test]
    fn conditional_flag_reported() {
        let op = PrismOp::Read {
            addr: 0,
            len: 8,
            rkey: 1,
            indirect: false,
            bounded: false,
            conditional: true,
            redirect: None,
        };
        assert!(op.is_conditional());
        assert_eq!(op.name(), "READ");
    }

    #[test]
    fn data_arg_wire_len() {
        assert_eq!(DataArg::Inline(vec![0; 100]).wire_len(), 100);
        assert_eq!(DataArg::Remote { addr: 0, rkey: 0 }.wire_len(), 12);
    }
}
