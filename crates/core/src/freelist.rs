//! Free-list management for the ALLOCATE primitive (§3.2, §4.2).
//!
//! Servers register one buffer queue per size class. The data plane pops
//! buffers while holding the *read* side of a posting gate; the CPU-side
//! repost path takes the *write* side, guaranteeing that "recycled buffers
//! only be added back to the free list when concurrent NIC operations are
//! complete" (§3.2). This is the one synchronization point between the
//! server CPU and the (simulated) NIC, deliberately off the regular path.

use std::collections::HashMap;
use std::sync::Arc;

use prism_rdma::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use prism_rdma::{BufferQueue, RdmaError};

use crate::op::FreeListId;

/// All free lists of one server, plus the posting gate.
#[derive(Debug, Default)]
pub struct FreeLists {
    gate: RwLock<()>,
    queues: RwLock<HashMap<FreeListId, Arc<BufferQueue>>>,
}

impl FreeLists {
    /// Creates an empty registry.
    pub fn new() -> Self {
        FreeLists::default()
    }

    /// Registers a free list whose buffers are `buf_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered — size classes are fixed at
    /// server setup.
    pub fn register(&self, id: FreeListId, buf_len: u64) {
        let mut queues = self.queues.write();
        let prev = queues.insert(id, Arc::new(BufferQueue::new(buf_len)));
        assert!(prev.is_none(), "free list {id:?} registered twice");
    }

    /// Rebuilds a free list from scratch after an amnesia restart: the
    /// old queue (whose contents described pre-crash ownership) is
    /// dropped and replaced by a fresh one holding exactly `addrs`.
    /// Takes the exclusive side of the posting gate so no in-flight
    /// chain can pop from the queue being replaced. Unlike
    /// [`FreeLists::register`], the id must already exist — recovery
    /// re-initializes, it does not invent size classes.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never registered.
    pub fn reset(&self, id: FreeListId, addrs: impl IntoIterator<Item = u64>) {
        let _excl = self.gate.write();
        let mut queues = self.queues.write();
        let old = queues.get(&id).expect("reset of unregistered free list");
        let fresh = Arc::new(BufferQueue::new(old.buf_len()));
        fresh.post_many(addrs);
        queues.insert(id, fresh);
    }

    /// Acquires the data-plane side of the posting gate. The PRISM engine
    /// holds this for the duration of a chain so reposts cannot interleave
    /// with in-flight allocations.
    pub fn gate_read(&self) -> RwLockReadGuard<'_, ()> {
        self.gate.read()
    }

    /// Pops a buffer from `id`, returning its address and size class.
    ///
    /// Caller must hold the read gate (the engine does).
    pub fn pop(&self, id: FreeListId) -> Result<(u64, u64), RdmaError> {
        let queues = self.queues.read();
        let q = queues.get(&id).ok_or(RdmaError::UnknownFreeList(id.0))?;
        let addr = q.pop()?;
        Ok((addr, q.buf_len()))
    }

    /// CPU-side repost: blocks until all in-flight chains finish, then
    /// returns the buffers to the queue.
    pub fn post(
        &self,
        id: FreeListId,
        addrs: impl IntoIterator<Item = u64>,
    ) -> Result<(), RdmaError> {
        let _excl = self.gate.write();
        let queues = self.queues.read();
        let q = queues.get(&id).ok_or(RdmaError::UnknownFreeList(id.0))?;
        q.post_many(addrs);
        Ok(())
    }

    /// Engine-internal undo: returns a just-popped buffer without taking
    /// the posting gate. Only the engine may call this — it already holds
    /// the read side as the in-flight operation whose pop it is undoing,
    /// so taking the write gate here would deadlock.
    pub(crate) fn repush_internal(&self, id: FreeListId, addr: u64) {
        if let Some(q) = self.queues.read().get(&id) {
            q.post(addr);
        }
    }

    /// Buffers currently available in `id`.
    pub fn available(&self, id: FreeListId) -> usize {
        self.queues
            .read()
            .get(&id)
            .map(|q| q.available())
            .unwrap_or(0)
    }

    /// Size class of `id`, if registered.
    pub fn buf_len(&self, id: FreeListId) -> Option<u64> {
        self.queues.read().get(&id).map(|q| q.buf_len())
    }

    /// Reposts a buffer while the caller holds [`FreeLists::gate_write`]
    /// (taking the gate again would self-deadlock). Posting is
    /// idempotent, so racing a late client free is harmless.
    pub fn repush_gc(&self, id: FreeListId, addr: u64) {
        if let Some(q) = self.queues.read().get(&id) {
            q.post(addr);
        }
    }

    /// Snapshot of `id`'s free addresses (for GC sweeps).
    pub fn snapshot(&self, id: FreeListId) -> Vec<u64> {
        self.queues
            .read()
            .get(&id)
            .map(|q| q.snapshot())
            .unwrap_or_default()
    }

    /// Acquires the exclusive side of the posting gate: blocks until all
    /// in-flight chains complete and holds off new ones. GC sweeps run
    /// under this guard so that "allocated but not yet installed" cannot
    /// exist while they scan (§3.2's GC alternative).
    pub fn gate_write(&self) -> RwLockWriteGuard<'_, ()> {
        self.gate.write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_pop_post_cycle() {
        let fl = FreeLists::new();
        let id = FreeListId(1);
        fl.register(id, 128);
        fl.post(id, [0x1000, 0x2000]).unwrap();
        assert_eq!(fl.available(id), 2);
        let _g = fl.gate_read();
        assert_eq!(fl.pop(id).unwrap(), (0x1000, 128));
        assert_eq!(fl.available(id), 1);
    }

    #[test]
    fn unknown_free_list_errors() {
        let fl = FreeLists::new();
        {
            let _g = fl.gate_read();
            assert_eq!(
                fl.pop(FreeListId(9)).unwrap_err(),
                RdmaError::UnknownFreeList(9)
            );
            // The guard must drop before posting: `post` takes the write
            // side of the gate, exactly like a real repost waiting for
            // in-flight chains.
        }
        assert_eq!(
            fl.post(FreeListId(9), [1]).unwrap_err(),
            RdmaError::UnknownFreeList(9)
        );
        assert_eq!(fl.buf_len(FreeListId(9)), None);
    }

    #[test]
    fn empty_queue_is_receiver_not_ready() {
        let fl = FreeLists::new();
        fl.register(FreeListId(1), 64);
        let _g = fl.gate_read();
        assert_eq!(
            fl.pop(FreeListId(1)).unwrap_err(),
            RdmaError::ReceiverNotReady
        );
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let fl = FreeLists::new();
        fl.register(FreeListId(1), 64);
        fl.register(FreeListId(1), 128);
    }

    #[test]
    fn reset_replaces_queue_contents() {
        let fl = FreeLists::new();
        let id = FreeListId(1);
        fl.register(id, 128);
        fl.post(id, [0x1000, 0x2000]).unwrap();
        fl.reset(id, [0x9000]);
        assert_eq!(fl.available(id), 1);
        assert_eq!(fl.buf_len(id), Some(128));
        let _g = fl.gate_read();
        assert_eq!(fl.pop(id).unwrap(), (0x9000, 128));
    }

    #[test]
    #[should_panic(expected = "reset of unregistered")]
    fn reset_requires_registration() {
        FreeLists::new().reset(FreeListId(9), [0x1000]);
    }

    #[test]
    fn post_waits_for_inflight_chains() {
        // The write gate must block while a read guard (an in-flight
        // chain) is held.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let fl = Arc::new(FreeLists::new());
        fl.register(FreeListId(1), 64);
        let posted = Arc::new(AtomicBool::new(false));
        let guard = fl.gate_read();
        let t = {
            let fl = Arc::clone(&fl);
            let posted = Arc::clone(&posted);
            std::thread::spawn(move || {
                fl.post(FreeListId(1), [0x1000]).unwrap();
                posted.store(true, Ordering::SeqCst);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(
            !posted.load(Ordering::SeqCst),
            "post must wait for the chain to finish"
        );
        drop(guard);
        t.join().unwrap();
        assert!(posted.load(Ordering::SeqCst));
        assert_eq!(fl.available(FreeListId(1)), 1);
    }
}
