//! Free-list management for the ALLOCATE primitive (§3.2, §4.2).
//!
//! Servers register one buffer queue per size class. The data plane pops
//! buffers while holding the *read* side of a posting gate; the CPU-side
//! repost path takes the *write* side, guaranteeing that "recycled buffers
//! only be added back to the free list when concurrent NIC operations are
//! complete" (§3.2). This is the one synchronization point between the
//! server CPU and the (simulated) NIC, deliberately off the regular path.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use prism_rdma::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use prism_rdma::{BufferQueue, RdmaError};

use crate::op::FreeListId;

/// Ids below this resolve through a lock-free dense table on the pop
/// fast path; higher ids fall back to the locked map. Size classes are
/// registered once at server setup with small consecutive ids, so in
/// practice everything is dense.
const DENSE_IDS: usize = 64;

/// A rejected [`FreeLists::free`]: the address is not a legal member of
/// the free list, or is already free. In debug builds the same
/// conditions `debug_assert` first — a double free is a protocol bug
/// during development, but in release it degrades to a typed error the
/// server can NACK instead of corrupting the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeError {
    /// The free-list id was never registered.
    Unregistered(u32),
    /// The address is outside the list's registered pool extent, or not
    /// aligned to its buffer stride.
    OutOfRange(u64),
    /// The address is already on the free list.
    AlreadyFree(u64),
}

impl std::fmt::Display for FreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FreeError::Unregistered(id) => write!(f, "free on unregistered list {id}"),
            FreeError::OutOfRange(addr) => write!(f, "free of out-of-range buffer {addr:#x}"),
            FreeError::AlreadyFree(addr) => write!(f, "double free of buffer {addr:#x}"),
        }
    }
}

impl std::error::Error for FreeError {}

/// The pool extent backing one free list: `count` buffers of `stride`
/// bytes starting at `base`. Registered once at server setup so
/// [`FreeLists::free`] can reject addresses that were never part of
/// the pool.
#[derive(Debug, Clone, Copy)]
struct PoolExtent {
    base: u64,
    stride: u64,
    count: u64,
}

impl PoolExtent {
    fn admits(&self, addr: u64) -> bool {
        addr >= self.base
            && addr < self.base + self.stride * self.count
            && (addr - self.base).is_multiple_of(self.stride)
    }
}

/// All free lists of one server, plus the posting gate.
#[derive(Debug)]
pub struct FreeLists {
    gate: RwLock<()>,
    /// Source of truth for every registered list.
    queues: RwLock<HashMap<FreeListId, Arc<BufferQueue>>>,
    /// Lock-free mirror of `queues` for ids below [`DENSE_IDS`]: the
    /// data plane resolves a size class with one atomic load and an
    /// index instead of a read lock and a hash probe. Registration is
    /// append-only and each `Arc` is stable for the server's lifetime
    /// (amnesia recovery resets queue *contents* in place), so a
    /// published entry never goes stale.
    dense: Box<[OnceLock<Arc<BufferQueue>>]>,
    extents: RwLock<HashMap<FreeListId, Vec<PoolExtent>>>,
}

impl Default for FreeLists {
    fn default() -> Self {
        FreeLists {
            gate: RwLock::new(()),
            queues: RwLock::new(HashMap::new()),
            dense: (0..DENSE_IDS).map(|_| OnceLock::new()).collect(),
            extents: RwLock::new(HashMap::new()),
        }
    }
}

impl FreeLists {
    /// Creates an empty registry.
    pub fn new() -> Self {
        FreeLists::default()
    }

    /// Fast-path lookup: dense table first, locked map for ids past
    /// the dense range.
    #[inline]
    fn dense_get(&self, id: FreeListId) -> Option<&Arc<BufferQueue>> {
        self.dense.get(id.0 as usize).and_then(OnceLock::get)
    }

    /// Slow-path lookup returning a clone for ids outside the dense
    /// range (or not yet registered → `None`).
    fn spill_get(&self, id: FreeListId) -> Option<Arc<BufferQueue>> {
        self.queues.read().get(&id).cloned()
    }

    fn lookup(&self, id: FreeListId) -> Option<Arc<BufferQueue>> {
        match self.dense_get(id) {
            Some(q) => Some(Arc::clone(q)),
            None => self.spill_get(id),
        }
    }

    /// Registers a free list whose buffers are `buf_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered — size classes are fixed at
    /// server setup.
    pub fn register(&self, id: FreeListId, buf_len: u64) {
        let mut queues = self.queues.write();
        let q = Arc::new(BufferQueue::new(buf_len));
        let prev = queues.insert(id, Arc::clone(&q));
        assert!(prev.is_none(), "free list {id:?} registered twice");
        if let Some(slot) = self.dense.get(id.0 as usize) {
            slot.set(q).expect("dense slot already published");
        }
    }

    /// Rebuilds a free list from scratch after an amnesia restart: the
    /// queue's contents (which described pre-crash ownership) are
    /// replaced in place by exactly `addrs`, restarting its posted
    /// counter. Takes the exclusive side of the posting gate so no
    /// in-flight chain can pop from the queue being reset. Unlike
    /// [`FreeLists::register`], the id must already exist — recovery
    /// re-initializes, it does not invent size classes.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never registered.
    pub fn reset(&self, id: FreeListId, addrs: impl IntoIterator<Item = u64>) {
        let _excl = self.gate.write();
        let q = self.lookup(id).expect("reset of unregistered free list");
        q.reset_in_place(addrs);
    }

    /// Acquires the data-plane side of the posting gate. The PRISM engine
    /// holds this for the duration of a chain so reposts cannot interleave
    /// with in-flight allocations.
    pub fn gate_read(&self) -> RwLockReadGuard<'_, ()> {
        self.gate.read()
    }

    /// Pops a buffer from `id`, returning its address and size class.
    ///
    /// Caller must hold the read gate (the engine does).
    pub fn pop(&self, id: FreeListId) -> Result<(u64, u64), RdmaError> {
        // Hot path: one atomic load, an index, and the queue's own
        // lock — no registry lock, no hash.
        if let Some(q) = self.dense_get(id) {
            let addr = q.pop()?;
            return Ok((addr, q.buf_len()));
        }
        let q = self.spill_get(id).ok_or(RdmaError::UnknownFreeList(id.0))?;
        let addr = q.pop()?;
        Ok((addr, q.buf_len()))
    }

    /// CPU-side repost: blocks until all in-flight chains finish, then
    /// returns the buffers to the queue.
    pub fn post(
        &self,
        id: FreeListId,
        addrs: impl IntoIterator<Item = u64>,
    ) -> Result<(), RdmaError> {
        let _excl = self.gate.write();
        let q = self.lookup(id).ok_or(RdmaError::UnknownFreeList(id.0))?;
        q.post_many(addrs);
        Ok(())
    }

    /// Records a pool extent backing `id` so [`FreeLists::free`] can
    /// validate addresses: `count` buffers of `stride` bytes from
    /// `base`. Servers call this when they carve the pool, and again
    /// for each refill carve — a list may be backed by several
    /// disjoint extents.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not registered or `stride`/`count` is zero.
    pub fn register_extent(&self, id: FreeListId, base: u64, stride: u64, count: u64) {
        assert!(stride > 0 && count > 0, "empty pool extent for {id:?}");
        assert!(
            self.queues.read().contains_key(&id),
            "extent for unregistered free list {id:?}"
        );
        self.extents
            .write()
            .entry(id)
            .or_default()
            .push(PoolExtent {
                base,
                stride,
                count,
            });
    }

    /// Checked client-driven free: returns `addr` to `id` after
    /// validating that it is a real member of the pool and not already
    /// free. Unlike the idempotent [`FreeLists::post`] (which GC
    /// sweeps and recovery use deliberately, where re-posting a free
    /// buffer is benign), this is the path for *ownership transfer* —
    /// a client saying "I held this buffer and give it back" — where a
    /// repeat or an out-of-range address is a bug: `debug_assert`s in
    /// debug builds, typed [`FreeError`] in release.
    ///
    /// Takes the exclusive side of the posting gate, like
    /// [`FreeLists::post`].
    pub fn free(&self, id: FreeListId, addr: u64) -> Result<(), FreeError> {
        let _excl = self.gate.write();
        let q = self.lookup(id).ok_or(FreeError::Unregistered(id.0))?;
        if let Some(extents) = self.extents.read().get(&id) {
            if !extents.iter().any(|e| e.admits(addr)) {
                debug_assert!(false, "free of out-of-range buffer {addr:#x} on {id:?}");
                return Err(FreeError::OutOfRange(addr));
            }
        }
        if q.contains(addr) {
            debug_assert!(false, "double free of buffer {addr:#x} on {id:?}");
            return Err(FreeError::AlreadyFree(addr));
        }
        q.post(addr);
        Ok(())
    }

    /// Engine-internal undo: returns a just-popped buffer without taking
    /// the posting gate. Only the engine may call this — it already holds
    /// the read side as the in-flight operation whose pop it is undoing,
    /// so taking the write gate here would deadlock.
    pub(crate) fn repush_internal(&self, id: FreeListId, addr: u64) {
        if let Some(q) = self.lookup(id) {
            q.post(addr);
        }
    }

    /// Buffers currently available in `id`.
    pub fn available(&self, id: FreeListId) -> usize {
        self.lookup(id).map(|q| q.available()).unwrap_or(0)
    }

    /// Size class of `id`, if registered.
    pub fn buf_len(&self, id: FreeListId) -> Option<u64> {
        self.lookup(id).map(|q| q.buf_len())
    }

    /// Reposts a buffer while the caller holds [`FreeLists::gate_write`]
    /// (taking the gate again would self-deadlock). Posting is
    /// idempotent, so racing a late client free is harmless.
    pub fn repush_gc(&self, id: FreeListId, addr: u64) {
        if let Some(q) = self.lookup(id) {
            q.post(addr);
        }
    }

    /// Snapshot of `id`'s free addresses (for GC sweeps).
    pub fn snapshot(&self, id: FreeListId) -> Vec<u64> {
        self.lookup(id).map(|q| q.snapshot()).unwrap_or_default()
    }

    /// Acquires the exclusive side of the posting gate: blocks until all
    /// in-flight chains complete and holds off new ones. GC sweeps run
    /// under this guard so that "allocated but not yet installed" cannot
    /// exist while they scan (§3.2's GC alternative).
    pub fn gate_write(&self) -> RwLockWriteGuard<'_, ()> {
        self.gate.write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_pop_post_cycle() {
        let fl = FreeLists::new();
        let id = FreeListId(1);
        fl.register(id, 128);
        fl.post(id, [0x1000, 0x2000]).unwrap();
        assert_eq!(fl.available(id), 2);
        let _g = fl.gate_read();
        assert_eq!(fl.pop(id).unwrap(), (0x1000, 128));
        assert_eq!(fl.available(id), 1);
    }

    #[test]
    fn unknown_free_list_errors() {
        let fl = FreeLists::new();
        {
            let _g = fl.gate_read();
            assert_eq!(
                fl.pop(FreeListId(9)).unwrap_err(),
                RdmaError::UnknownFreeList(9)
            );
            // The guard must drop before posting: `post` takes the write
            // side of the gate, exactly like a real repost waiting for
            // in-flight chains.
        }
        assert_eq!(
            fl.post(FreeListId(9), [1]).unwrap_err(),
            RdmaError::UnknownFreeList(9)
        );
        assert_eq!(fl.buf_len(FreeListId(9)), None);
    }

    #[test]
    fn empty_queue_is_receiver_not_ready() {
        let fl = FreeLists::new();
        fl.register(FreeListId(1), 64);
        let _g = fl.gate_read();
        assert_eq!(
            fl.pop(FreeListId(1)).unwrap_err(),
            RdmaError::ReceiverNotReady
        );
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let fl = FreeLists::new();
        fl.register(FreeListId(1), 64);
        fl.register(FreeListId(1), 128);
    }

    #[test]
    fn reset_replaces_queue_contents() {
        let fl = FreeLists::new();
        let id = FreeListId(1);
        fl.register(id, 128);
        fl.post(id, [0x1000, 0x2000]).unwrap();
        fl.reset(id, [0x9000]);
        assert_eq!(fl.available(id), 1);
        assert_eq!(fl.buf_len(id), Some(128));
        let _g = fl.gate_read();
        assert_eq!(fl.pop(id).unwrap(), (0x9000, 128));
    }

    #[test]
    #[should_panic(expected = "reset of unregistered")]
    fn reset_requires_registration() {
        FreeLists::new().reset(FreeListId(9), [0x1000]);
    }

    fn guarded() -> FreeLists {
        let fl = FreeLists::new();
        let id = FreeListId(1);
        fl.register(id, 64);
        fl.register_extent(id, 0x1000, 64, 4); // 0x1000..0x1100, stride 64
        fl.free(id, 0x1040).unwrap();
        fl
    }

    #[test]
    fn checked_free_accepts_pool_members() {
        let fl = guarded();
        let id = FreeListId(1);
        assert_eq!(fl.available(id), 1);
        fl.free(id, 0x1000).unwrap();
        assert_eq!(fl.available(id), 2);
        let _g = fl.gate_read();
        assert_eq!(fl.pop(id).unwrap(), (0x1040, 64));
    }

    #[test]
    fn checked_free_requires_registration() {
        let fl = FreeLists::new();
        assert_eq!(
            fl.free(FreeListId(9), 0x1000).unwrap_err(),
            FreeError::Unregistered(9)
        );
    }

    // The guard trips a debug_assert in debug builds and degrades to a
    // typed error in release: the same conditions, two enforcement
    // levels, so both cfgs carry a regression test.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics_in_debug() {
        let fl = guarded();
        let _ = fl.free(FreeListId(1), 0x1040);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out-of-range")]
    fn out_of_range_free_panics_in_debug() {
        let fl = guarded();
        let _ = fl.free(FreeListId(1), 0x1020); // misaligned: not a buffer start
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn double_free_is_a_typed_error_in_release() {
        let fl = guarded();
        assert_eq!(
            fl.free(FreeListId(1), 0x1040).unwrap_err(),
            FreeError::AlreadyFree(0x1040)
        );
        assert_eq!(
            fl.free(FreeListId(1), 0x1020).unwrap_err(),
            FreeError::OutOfRange(0x1020)
        );
        assert_eq!(
            fl.free(FreeListId(1), 0x9000).unwrap_err(),
            FreeError::OutOfRange(0x9000)
        );
        // The failed frees must not have perturbed the queue.
        assert_eq!(fl.available(FreeListId(1)), 1);
    }

    #[test]
    fn post_waits_for_inflight_chains() {
        // The write gate must block while a read guard (an in-flight
        // chain) is held.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let fl = Arc::new(FreeLists::new());
        fl.register(FreeListId(1), 64);
        let posted = Arc::new(AtomicBool::new(false));
        let guard = fl.gate_read();
        let t = {
            let fl = Arc::clone(&fl);
            let posted = Arc::clone(&posted);
            std::thread::spawn(move || {
                fl.post(FreeListId(1), [0x1000]).unwrap();
                posted.store(true, Ordering::SeqCst);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(
            !posted.load(Ordering::SeqCst),
            "post must wait for the chain to finish"
        );
        drop(guard);
        t.join().unwrap();
        assert!(posted.load(Ordering::SeqCst));
        assert_eq!(fl.available(FreeListId(1)), 1);
    }
}
