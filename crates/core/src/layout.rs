//! Server-side memory carving.
//!
//! Applications lay out their registered structures (hash tables,
//! metadata arrays, buffer pools, per-connection scratch space) inside
//! the host arena. [`Carver`] is the bump allocator that hands out
//! non-overlapping, aligned extents at setup time — it is control-plane
//! code, run by the server CPU, not part of the remote data path.

use prism_rdma::arena::MemoryArena;

/// A bump allocator over the arena's address space.
#[derive(Debug)]
pub struct Carver {
    next: u64,
    end: u64,
}

impl Carver {
    /// Creates a carver spanning the whole arena.
    pub fn new(arena: &MemoryArena) -> Self {
        Carver {
            next: MemoryArena::BASE,
            end: arena.end(),
        }
    }

    /// Reserves `len` bytes aligned to `align` and returns the base
    /// address.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or the arena is exhausted —
    /// both are setup-time configuration errors.
    pub fn carve(&mut self, len: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = self.next.next_multiple_of(align);
        let end = base.checked_add(len).expect("address overflow");
        assert!(
            end <= self.end,
            "arena exhausted: need [{base:#x}, {end:#x}) but arena ends at {:#x}",
            self.end
        );
        self.next = end;
        base
    }

    /// Bytes still available (ignoring alignment padding).
    pub fn remaining(&self) -> u64 {
        self.end - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carves_are_disjoint_and_aligned() {
        let arena = MemoryArena::new(4096);
        let mut c = Carver::new(&arena);
        let a = c.carve(100, 8);
        let b = c.carve(100, 64);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100, "extents must not overlap");
    }

    #[test]
    fn remaining_shrinks() {
        let arena = MemoryArena::new(4096);
        let mut c = Carver::new(&arena);
        let before = c.remaining();
        c.carve(128, 8);
        assert_eq!(c.remaining(), before - 128);
    }

    #[test]
    #[should_panic(expected = "arena exhausted")]
    fn exhaustion_panics() {
        let arena = MemoryArena::new(128);
        let mut c = Carver::new(&arena);
        c.carve(4096, 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        let arena = MemoryArena::new(128);
        let mut c = Carver::new(&arena);
        c.carve(8, 3);
    }
}
