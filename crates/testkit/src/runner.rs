//! The property runner: case generation, failure detection, bounded
//! choice-sequence shrinking, and replayable failure reports.

use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use prism_simnet::rng::SimRng;

use crate::gen::Gen;
use crate::source::{GiveUp, Source};

/// Environment variable replaying one exact case seed.
pub const SEED_ENV: &str = "PRISM_TEST_SEED";

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Upper bound on property re-executions spent shrinking a failure.
    pub max_shrink_iters: u32,
    /// Fixed case seed: run exactly one case with this seed. `None`
    /// derives seeds from the property name (or from [`SEED_ENV`] if
    /// set).
    pub seed: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_shrink_iters: 4096,
            seed: None,
        }
    }
}

impl Config {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// A property failure, fully described and replayable.
#[derive(Debug, Clone)]
pub struct Failure<T> {
    /// The case seed; `PRISM_TEST_SEED=<seed>` regenerates the identical
    /// original input.
    pub seed: u64,
    /// Zero-based index of the failing case.
    pub case: u32,
    /// The input as first generated.
    pub original: T,
    /// The input after shrinking (equal to `original` if shrinking found
    /// nothing smaller).
    pub minimal: T,
    /// Panic message of the minimal failure.
    pub message: String,
    /// Property executions spent shrinking.
    pub shrink_iters: u32,
}

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that stays silent while a
/// thread is executing a property under the runner, and defers to the
/// previous hook otherwise. Without this, shrinking would spray hundreds
/// of expected panic backtraces into the test output.
fn install_quiet_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// One execution against a given source. `Ok(None)`: property passed.
/// `Ok(Some(..))`: property failed with the recorded choices, value, and
/// message. `Err(())`: the case was abandoned by the generator (filter
/// give-up) and counts as skipped.
#[allow(clippy::type_complexity)]
fn execute<T: Debug + 'static>(
    gen: &Gen<T>,
    prop: &impl Fn(&T),
    mut src: Source,
) -> Result<Option<(Vec<u64>, T, String)>, ()> {
    QUIET.with(|q| q.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        let value = gen.generate(&mut src);
        let result = panic::catch_unwind(AssertUnwindSafe(|| prop(&value)));
        (src.into_recorded(), value, result)
    }));
    QUIET.with(|q| q.set(false));
    match outcome {
        // Generation itself panicked: a GiveUp skips the case, anything
        // else is a real bug in the generator — surface it.
        Err(payload) => {
            if payload.downcast_ref::<GiveUp>().is_some() {
                Err(())
            } else {
                panic::resume_unwind(payload)
            }
        }
        Ok((_, _, Ok(()))) => Ok(None),
        Ok((choices, value, Err(payload))) => {
            Ok(Some((choices, value, panic_message(payload.as_ref()))))
        }
    }
}

/// Shrink-order weight: fewer choices beat more, then a smaller sum.
fn weight(choices: &[u64]) -> (usize, u128) {
    (
        choices.len(),
        choices.iter().map(|&c| c as u128).sum::<u128>(),
    )
}

/// Candidate edits of a failing choice sequence, in decreasing
/// aggressiveness: chunk deletions first, then per-element zero / halve /
/// decrement.
fn candidates(choices: &[u64]) -> Vec<Vec<u64>> {
    let n = choices.len();
    let mut out = Vec::new();
    let mut chunk_sizes = vec![n / 2, 8, 4, 2, 1];
    chunk_sizes.dedup();
    for size in chunk_sizes {
        if size == 0 || size >= n {
            continue;
        }
        let mut start = 0;
        while start + size <= n {
            let mut c = Vec::with_capacity(n - size);
            c.extend_from_slice(&choices[..start]);
            c.extend_from_slice(&choices[start + size..]);
            out.push(c);
            start += size;
        }
    }
    for i in 0..n {
        if choices[i] == 0 {
            continue;
        }
        let mut zeroed = choices.to_vec();
        zeroed[i] = 0;
        out.push(zeroed);
        let mut halved = choices.to_vec();
        halved[i] /= 2;
        out.push(halved);
        let mut dec = choices.to_vec();
        dec[i] -= 1;
        out.push(dec);
    }
    out
}

/// Runs `prop` over generated inputs, returning the shrunk failure (if
/// any) instead of panicking. See [`for_all`] for the panicking variant.
pub fn for_all_result<T: Debug + 'static>(
    name: &str,
    cfg: &Config,
    gen: &Gen<T>,
    prop: impl Fn(&T),
) -> Option<Failure<T>> {
    install_quiet_hook();
    let env_seed = cfg.seed.or_else(|| {
        std::env::var(SEED_ENV).ok().and_then(|s| {
            let s = s.trim();
            s.strip_prefix("0x")
                .map_or_else(|| s.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
        })
    });
    let seeds: Vec<u64> = match env_seed {
        Some(s) => vec![s],
        None => {
            let mut r = SimRng::new(fnv1a(name.as_bytes()));
            (0..cfg.cases).map(|_| r.next_u64()).collect()
        }
    };

    for (case, &seed) in seeds.iter().enumerate() {
        let failed = match execute(gen, &prop, Source::new(seed)) {
            Err(()) => continue, // skipped case
            Ok(None) => continue,
            Ok(Some(f)) => f,
        };
        let (mut choices, original, mut message) = failed;
        // Regenerate the original (choices replay deterministically) so
        // we can keep both the original and the running minimal value.
        let mut minimal_choices = choices.clone();
        let mut iters = 0u32;
        'shrinking: loop {
            for cand in candidates(&choices) {
                if iters >= cfg.max_shrink_iters {
                    break 'shrinking;
                }
                iters += 1;
                if let Ok(Some((consumed, _, msg))) = execute(gen, &prop, Source::replaying(cand)) {
                    if weight(&consumed) < weight(&choices) {
                        choices = consumed.clone();
                        minimal_choices = consumed;
                        message = msg;
                        continue 'shrinking;
                    }
                }
            }
            break;
        }
        // Rebuild the minimal value once more from its choices.
        let minimal = {
            let mut src = Source::replaying(minimal_choices);
            QUIET.with(|q| q.set(true));
            let v = panic::catch_unwind(AssertUnwindSafe(|| gen.generate(&mut src)));
            QUIET.with(|q| q.set(false));
            match v {
                Ok(v) => v,
                Err(_) => {
                    // Shouldn't happen (these choices generated fine a
                    // moment ago), but never let reporting panic.
                    let mut src = Source::new(seed);
                    gen.generate(&mut src)
                }
            }
        };
        return Some(Failure {
            seed,
            case: case as u32,
            original,
            minimal,
            message,
            shrink_iters: iters,
        });
    }
    None
}

/// Runs `prop` over generated inputs and panics with a replayable report
/// on the first (shrunk) failure. This is the standard `#[test]` entry
/// point; see [`crate::prop_check!`] for macro sugar.
pub fn for_all<T: Debug + 'static>(name: &str, cfg: &Config, gen: &Gen<T>, prop: impl Fn(&T)) {
    if let Some(f) = for_all_result(name, cfg, gen, prop) {
        panic!(
            "\n[prism-testkit] property '{name}' FAILED\n  \
             case {case} (seed {seed})\n  \
             replay: {env}={seed} cargo test {name}\n  \
             original: {original:?}\n  \
             minimal ({iters} shrink iterations): {minimal:?}\n  \
             assertion: {message}\n",
            case = f.case,
            seed = f.seed,
            env = SEED_ENV,
            original = f.original,
            iters = f.shrink_iters,
            minimal = f.minimal,
            message = f.message,
        );
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gens;

    #[test]
    fn passing_property_returns_none() {
        let f = for_all_result(
            "passing_property_returns_none",
            &Config::with_cases(32),
            &gens::range_u64(0..100),
            |&x| assert!(x < 100),
        );
        assert!(f.is_none());
    }

    #[test]
    fn failing_property_reports_and_shrinks() {
        let f = for_all_result(
            "failing_property_reports_and_shrinks",
            &Config::with_cases(64),
            &gens::range_u64(0..1000),
            |&x| assert!(x < 100, "x too big: {x}"),
        )
        .expect("property must fail");
        assert!(f.original >= 100);
        assert_eq!(f.minimal, 100, "shrinking must converge to the boundary");
        assert!(f.message.contains("too big"));
    }

    #[test]
    fn fixed_seed_runs_single_case() {
        let cfg = Config {
            cases: 1000,
            seed: Some(7),
            ..Config::default()
        };
        let runs = std::cell::Cell::new(0u32);
        for_all_result("fixed_seed_runs_single_case", &cfg, &gens::u64s(), |_| {
            runs.set(runs.get() + 1);
        });
        assert_eq!(runs.get(), 1);
    }

    #[test]
    fn filter_give_up_skips_instead_of_failing() {
        let f = for_all_result(
            "filter_give_up_skips_instead_of_failing",
            &Config::with_cases(8),
            &gens::u64s().filter(|_| false),
            |_| panic!("property must never run"),
        );
        assert!(f.is_none());
    }
}
