//! Generator combinators.
//!
//! A [`Gen<T>`] is a (shared, cloneable) function from a [`Source`] of
//! choices to a value. Because every value is a pure function of the
//! drawn choice sequence, the runner shrinks *choices*, not values, and
//! every combinator — including [`Gen::map`] and [`gens::one_of`] —
//! shrinks for free: replaying a smaller choice sequence yields a
//! smaller value (choice 0 is always each combinator's minimum).

use std::ops::Range;
use std::rc::Rc;

use crate::source::{GiveUp, Source};

/// How many fresh draws [`Gen::filter`] attempts before abandoning the
/// case. Mirrors proptest's global filter give-up behavior.
const FILTER_RETRIES: usize = 100;

/// A generator of `T` values from a choice [`Source`].
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut Source) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            f: Rc::clone(&self.f),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a raw generation function.
    pub fn new(f: impl Fn(&mut Source) -> T + 'static) -> Self {
        Gen { f: Rc::new(f) }
    }

    /// Produces a value from `src`.
    pub fn generate(&self, src: &mut Source) -> T {
        (self.f)(src)
    }

    /// Transforms generated values. Shrinking passes through unchanged:
    /// the underlying choices shrink, and the mapped value follows.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::new(move |src| f(self.generate(src)))
    }

    /// Keeps only values satisfying `pred`, redrawing on rejection. After
    /// [`FILTER_RETRIES`] consecutive rejections the case is abandoned
    /// (skipped, not failed). Prefer `map`-based constructions where
    /// possible — filters slow generation and fight the shrinker.
    pub fn filter(self, pred: impl Fn(&T) -> bool + 'static) -> Gen<T> {
        Gen::new(move |src| {
            for _ in 0..FILTER_RETRIES {
                let v = self.generate(src);
                if pred(&v) {
                    return v;
                }
            }
            std::panic::panic_any(GiveUp("filter retries exhausted"));
        })
    }
}

/// The built-in generators.
pub mod gens {
    use super::*;

    /// Full-range `u64` (the raw choice).
    pub fn u64s() -> Gen<u64> {
        Gen::new(|src| src.draw())
    }

    /// Full-range `u32`.
    pub fn u32s() -> Gen<u32> {
        Gen::new(|src| src.draw() as u32)
    }

    /// Full-range `u8`.
    pub fn u8s() -> Gen<u8> {
        Gen::new(|src| src.draw() as u8)
    }

    /// `bool`, false at the minimal choice.
    pub fn bools() -> Gen<bool> {
        Gen::new(|src| src.draw() & 1 == 1)
    }

    /// `u64` in `[r.start, r.end)`.
    ///
    /// # Panics
    ///
    /// Panics at generation time if the range is empty.
    pub fn range_u64(r: Range<u64>) -> Gen<u64> {
        Gen::new(move |src| r.start + src.draw_below(r.end - r.start))
    }

    /// `u32` in `[r.start, r.end)`.
    pub fn range_u32(r: Range<u32>) -> Gen<u32> {
        range_u64(r.start as u64..r.end as u64).map(|v| v as u32)
    }

    /// `usize` in `[r.start, r.end)`.
    pub fn range_usize(r: Range<usize>) -> Gen<usize> {
        range_u64(r.start as u64..r.end as u64).map(|v| v as usize)
    }

    /// `f64` uniform in `[lo, hi)`, `lo` at the minimal choice.
    pub fn range_f64(lo: f64, hi: f64) -> Gen<f64> {
        Gen::new(move |src| {
            // 53 mantissa bits, exactly like SimRng::gen_f64.
            let unit = (src.draw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + unit * (hi - lo)
        })
    }

    /// Always `v`.
    pub fn constant<T: Clone + 'static>(v: T) -> Gen<T> {
        Gen::new(move |_| v.clone())
    }

    /// `Vec<T>` with a length drawn from `len` then that many elements.
    /// Shrinking zeroes trailing elements and shortens the length.
    pub fn vec<T: 'static>(elem: Gen<T>, len: Range<usize>) -> Gen<Vec<T>> {
        let len_gen = range_usize(len);
        Gen::new(move |src| {
            let n = len_gen.generate(src);
            (0..n).map(|_| elem.generate(src)).collect()
        })
    }

    /// `Vec<T>` of exactly `n` elements.
    pub fn vec_exact<T: 'static>(elem: Gen<T>, n: usize) -> Gen<Vec<T>> {
        Gen::new(move |src| (0..n).map(|_| elem.generate(src)).collect())
    }

    /// Picks one alternative uniformly; the first is the minimal one
    /// (shrinking steers toward it).
    ///
    /// # Panics
    ///
    /// Panics if `alts` is empty.
    pub fn one_of<T: 'static>(alts: Vec<Gen<T>>) -> Gen<T> {
        assert!(!alts.is_empty(), "one_of: no alternatives");
        Gen::new(move |src| {
            let i = src.draw_below(alts.len() as u64) as usize;
            alts[i].generate(src)
        })
    }

    /// Picks one of the listed values, the first being minimal.
    pub fn choice<T: Clone + 'static>(vals: Vec<T>) -> Gen<T> {
        assert!(!vals.is_empty(), "choice: no alternatives");
        Gen::new(move |src| vals[src.draw_below(vals.len() as u64) as usize].clone())
    }

    /// `Option<T>`: `None` at the minimal choice.
    pub fn option<T: 'static>(inner: Gen<T>) -> Gen<Option<T>> {
        Gen::new(move |src| {
            if src.draw() & 1 == 1 {
                Some(inner.generate(src))
            } else {
                None
            }
        })
    }

    macro_rules! tuple_gen {
        ($name:ident, $($g:ident: $T:ident),+) => {
            /// Tuple of independently generated components.
            #[allow(clippy::too_many_arguments)]
            pub fn $name<$($T: 'static),+>($($g: Gen<$T>),+) -> Gen<($($T),+)> {
                Gen::new(move |src| ($($g.generate(src)),+))
            }
        };
    }

    tuple_gen!(t2, a: A, b: B);
    tuple_gen!(t3, a: A, b: B, c: C);
    tuple_gen!(t4, a: A, b: B, c: C, d: D);
    tuple_gen!(t5, a: A, b: B, c: C, d: D, e: E);
    tuple_gen!(t6, a: A, b: B, c: C, d: D, e: E, f: F);
    tuple_gen!(t7, a: A, b: B, c: C, d: D, e: E, f: F, g: G);
    tuple_gen!(t8, a: A, b: B, c: C, d: D, e: E, f: F, g: G, h: H);
    tuple_gen!(t9, a: A, b: B, c: C, d: D, e: E, f: F, g: G, h: H, i: I);
    tuple_gen!(t10, a: A, b: B, c: C, d: D, e: E, f: F, g: G, h: H, i: I, j: J);
}

#[cfg(test)]
mod tests {
    use super::gens;
    use crate::source::Source;

    #[test]
    fn ranges_respect_bounds() {
        let g = gens::range_u64(10..20);
        let mut src = Source::new(1);
        for _ in 0..1000 {
            let v = g.generate(&mut src);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn zero_choices_give_minimal_values() {
        let mut src = Source::replaying(vec![]);
        assert_eq!(gens::range_u64(5..9).generate(&mut src), 5);
        assert!(!gens::bools().generate(&mut src));
        assert_eq!(gens::vec(gens::u8s(), 0..7).generate(&mut src), vec![]);
        assert_eq!(gens::range_f64(2.5, 9.0).generate(&mut src), 2.5);
    }

    #[test]
    fn map_and_one_of_compose() {
        let g = gens::one_of(vec![
            gens::range_u64(0..10).map(|v| v as i64),
            gens::range_u64(0..10).map(|v| -(v as i64)),
        ]);
        let mut src = Source::new(3);
        for _ in 0..100 {
            assert!(g.generate(&mut src).abs() < 10);
        }
    }

    #[test]
    fn same_seed_same_values() {
        let g = gens::vec(gens::u64s(), 1..50);
        let a = g.generate(&mut Source::new(9));
        let b = g.generate(&mut Source::new(9));
        assert_eq!(a, b);
    }
}
