//! Deterministic property testing for the PRISM reproduction.
//!
//! This crate replaces the external `proptest` dependency with a small,
//! fully in-repo harness built on the same splittable SplitMix64 RNG
//! that drives the discrete-event simulator ([`prism_simnet::rng::SimRng`]).
//! The design is the *choice sequence* style (as in Hypothesis): a
//! generator draws a stream of `u64` choices from a [`Source`]; the
//! source records every draw. Shrinking never touches values directly —
//! it edits the recorded choice sequence (deleting chunks, zeroing,
//! halving, decrementing) and re-runs the generator, so shrinking
//! composes automatically through `map`, `one_of`, and `vec` without any
//! per-type shrink logic. Exhausted replays return 0, which every
//! combinator maps to its minimal value.
//!
//! # Determinism and replay
//!
//! Case seeds are derived from the property name, so a test binary is a
//! pure function of the source tree: the same inputs are generated on
//! every run and on every machine. When a property fails, the harness
//! shrinks the failing input and prints the case seed:
//!
//! ```text
//! [prism-testkit] property 'wire_round_trips' FAILED
//!   seed: 1234567890123 (replay: PRISM_TEST_SEED=1234567890123 cargo test wire_round_trips)
//! ```
//!
//! Setting `PRISM_TEST_SEED` re-runs exactly that case: the identical
//! failing input is regenerated (byte for byte) and re-shrunk, so a CI
//! failure is reproducible locally with one environment variable.
//!
//! # Entry points
//!
//! * [`for_all`] — run a property, panic with a replayable report on
//!   failure (the normal `#[test]` entry point).
//! * [`for_all_result`] — same, but return the [`Failure`] instead of
//!   panicking (used by the testkit's own tests and by tooling).
//! * [`prop_check!`] — macro sugar defining a `#[test]` around
//!   [`for_all`].
//!
//! # Example
//!
//! ```
//! use prism_testkit::{for_all, gens, Config};
//!
//! for_all("vec_sum_is_linear", &Config::with_cases(64),
//!     &gens::vec(gens::range_u64(0..1000), 0..32),
//!     |xs: &Vec<u64>| {
//!         let doubled: u64 = xs.iter().map(|x| 2 * x).sum();
//!         assert_eq!(doubled, 2 * xs.iter().sum::<u64>());
//!     });
//! ```

pub mod gen;
pub mod runner;
pub mod source;

pub use gen::{gens, Gen};
pub use runner::{for_all, for_all_result, Config, Failure};
pub use source::Source;

/// Defines a `#[test]` function running a property through [`for_all`].
///
/// ```
/// prism_testkit::prop_check!(squares_are_nonneg, cases = 32,
///     prism_testkit::gens::range_u64(0..1000),
///     |x: &u64| assert!(x * x < 1_000_000));
/// ```
#[macro_export]
macro_rules! prop_check {
    ($name:ident, cases = $cases:expr, $gen:expr, $prop:expr) => {
        #[test]
        fn $name() {
            $crate::for_all(
                stringify!($name),
                &$crate::Config::with_cases($cases),
                &$gen,
                $prop,
            );
        }
    };
    ($name:ident, $gen:expr, $prop:expr) => {
        $crate::prop_check!($name, cases = 64, $gen, $prop);
    };
}
