//! The entropy source generators draw from: fresh SplitMix64 output in
//! normal runs, a recorded choice sequence during shrinking.

use prism_simnet::rng::SimRng;

/// Hard cap on choices per generated case. A generator that draws more
/// than this is looping; the case is abandoned (treated like a filter
/// give-up) instead of exhausting memory.
pub(crate) const MAX_CHOICES: usize = 1 << 20;

/// Panic payload used internally to abandon a case without failing the
/// property (filter retries exhausted, runaway generator). The runner
/// downcasts on this type and treats the case as skipped.
pub(crate) struct GiveUp(pub &'static str);

impl std::fmt::Debug for GiveUp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GiveUp({})", self.0)
    }
}

/// A recording stream of `u64` choices.
///
/// In *fresh* mode every [`Source::draw`] pulls from a seeded
/// [`SimRng`]; in *replay* mode draws come from a prior (possibly
/// shrunk) choice sequence, returning 0 once it is exhausted. All draws
/// are recorded, so the runner always knows the exact sequence that
/// produced a value.
pub struct Source {
    rng: SimRng,
    replay: Option<Vec<u64>>,
    pos: usize,
    recorded: Vec<u64>,
}

impl Source {
    /// A fresh source: all draws come from SplitMix64 seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Source {
            rng: SimRng::new(seed),
            replay: None,
            pos: 0,
            recorded: Vec::new(),
        }
    }

    /// A replaying source: draws come from `choices`; past the end,
    /// draws return 0 (the minimal choice).
    pub fn replaying(choices: Vec<u64>) -> Self {
        Source {
            rng: SimRng::new(0),
            replay: Some(choices),
            pos: 0,
            recorded: Vec::new(),
        }
    }

    /// Draws the next choice. Generators build every value out of these.
    pub fn draw(&mut self) -> u64 {
        if self.recorded.len() >= MAX_CHOICES {
            std::panic::panic_any(GiveUp("generator exceeded the choice budget"));
        }
        let v = match &self.replay {
            Some(r) => r.get(self.pos).copied().unwrap_or(0),
            None => self.rng.next_u64(),
        };
        self.pos += 1;
        self.recorded.push(v);
        v
    }

    /// Draws a choice reduced to `[0, bound)`. Modulo reduction is
    /// deliberate (not Lemire rejection): choice 0 maps to the minimum
    /// and smaller choices map to smaller values, which is what makes
    /// choice-sequence shrinking converge toward minimal cases.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn draw_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Source::draw_below: zero bound");
        self.draw() % bound
    }

    /// The choices drawn so far.
    pub fn recorded(&self) -> &[u64] {
        &self.recorded
    }

    /// Consumes the source, yielding the recorded choice sequence.
    pub fn into_recorded(self) -> Vec<u64> {
        self.recorded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_draws_are_deterministic_per_seed() {
        let mut a = Source::new(42);
        let mut b = Source::new(42);
        for _ in 0..100 {
            assert_eq!(a.draw(), b.draw());
        }
    }

    #[test]
    fn replay_returns_sequence_then_zeros() {
        let mut s = Source::replaying(vec![5, 6]);
        assert_eq!(s.draw(), 5);
        assert_eq!(s.draw(), 6);
        assert_eq!(s.draw(), 0);
        assert_eq!(s.recorded(), &[5, 6, 0]);
    }

    #[test]
    fn draw_below_is_minimal_at_zero_choice() {
        let mut s = Source::replaying(vec![0]);
        assert_eq!(s.draw_below(1000), 0);
    }
}
