//! PRISM_TEST_SEED end-to-end: setting the env var makes the runner
//! execute exactly one case whose input is the seed's. Kept as its own
//! integration binary because the env var is process-global — this file
//! must stay a single `#[test]` so no parallel test races the variable.

use prism_testkit::{for_all_result, gens, runner::SEED_ENV, Config, Source};

#[test]
fn env_seed_reproduces_identical_input() {
    let gen = gens::vec(gens::range_u64(0..100_000), 1..32);

    // First run, no env var: find a genuine failure and note its seed.
    std::env::remove_var(SEED_ENV);
    let f = for_all_result("seed_env_first_run", &Config::with_cases(64), &gen, |v| {
        assert!(v.iter().sum::<u64>() < 50_000)
    })
    .expect("property must fail");

    // Replay through the env var, decimal form, as the failure report
    // instructs. The runner must run exactly one case, with the same
    // original input and the same shrunk minimum.
    std::env::set_var(SEED_ENV, f.seed.to_string());
    let replay = for_all_result(
        "seed_env_replay_decimal",
        &Config::with_cases(64),
        &gen,
        |v| assert!(v.iter().sum::<u64>() < 50_000),
    )
    .expect("replay must fail");
    assert_eq!(replay.case, 0, "env seed runs a single case");
    assert_eq!(replay.seed, f.seed);
    assert_eq!(replay.original, f.original, "identical input bytes");
    assert_eq!(replay.minimal, f.minimal, "identical shrink result");

    // Hex form is accepted too.
    std::env::set_var(SEED_ENV, format!("{:#x}", f.seed));
    let hex = for_all_result("seed_env_replay_hex", &Config::with_cases(64), &gen, |v| {
        assert!(v.iter().sum::<u64>() < 50_000)
    })
    .expect("hex replay must fail");
    assert_eq!(hex.original, f.original);

    // A passing property under the env seed runs once and reports
    // nothing.
    std::env::set_var(SEED_ENV, f.seed.to_string());
    let pass = for_all_result("seed_env_passing", &Config::with_cases(64), &gen, |_| {});
    assert!(pass.is_none());

    std::env::remove_var(SEED_ENV);

    // Sanity: the seed alone regenerates the input without the runner.
    let direct = gen.generate(&mut Source::new(f.seed));
    assert_eq!(direct, f.original);
}
