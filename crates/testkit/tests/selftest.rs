//! Self-coverage for prism-testkit: determinism of generation and
//! convergence of choice-sequence shrinking, exercised through the
//! public API the property suites use.

use prism_testkit::{for_all_result, gens, Config, Source};

/// The same seed produces the byte-identical input on every run —
/// the whole replay story rests on this.
#[test]
fn same_seed_same_input_across_runs() {
    let gen = gens::t3(
        gens::vec(gens::u8s(), 0..64),
        gens::range_u64(10..10_000),
        gens::one_of(vec![
            gens::constant(String::from("left")),
            gens::range_u32(0..100).map(|v| format!("n{v}")),
        ]),
    );
    for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
        let a = gen.generate(&mut Source::new(seed));
        let b = gen.generate(&mut Source::new(seed));
        assert_eq!(a, b, "seed {seed} diverged between two generations");
    }
}

/// Recorded choices replay to the identical value: generate fresh,
/// replay the recording, compare.
#[test]
fn recorded_choices_replay_identically() {
    let gen = gens::vec(
        gens::t2(gens::range_u64(0..4096), gens::vec(gens::u8s(), 1..128)),
        1..32,
    );
    let mut src = Source::new(99);
    let fresh = gen.generate(&mut src);
    let mut replay = Source::replaying(src.into_recorded());
    let replayed = gen.generate(&mut replay);
    assert_eq!(fresh, replayed);
}

/// Documented minimal case: `range_u64(0..1000)` with the property
/// `x < 100` must shrink to exactly 100, the smallest counterexample.
#[test]
fn shrinks_scalar_to_boundary() {
    let f = for_all_result(
        "selftest_shrinks_scalar_to_boundary",
        &Config::with_cases(64),
        &gens::range_u64(0..1000),
        |&x| assert!(x < 100),
    )
    .expect("property must fail");
    assert_eq!(f.minimal, 100, "minimal counterexample is the boundary");
}

/// Shrinking composes through `vec` + `map`: a "vector contains a big
/// element" failure shrinks to a single-element vector holding the
/// smallest big element.
#[test]
fn shrinks_vec_to_single_minimal_element() {
    let f = for_all_result(
        "selftest_shrinks_vec_to_single_minimal_element",
        &Config::with_cases(64),
        &gens::vec(gens::range_u64(0..1000), 0..20),
        |v| assert!(v.iter().all(|&x| x < 500)),
    )
    .expect("property must fail");
    assert_eq!(
        f.minimal,
        vec![500],
        "minimal counterexample is one boundary element"
    );
}

/// Shrinking composes through `one_of`: the first alternative is the
/// minimal one, so a failure independent of the variant shrinks to it.
#[test]
fn shrinks_one_of_to_first_alternative() {
    #[derive(Debug, Clone, PartialEq)]
    enum E {
        A(u64),
        B(u64),
    }
    let gen = gens::one_of(vec![
        gens::range_u64(0..100).map(E::A),
        gens::range_u64(0..100).map(E::B),
    ]);
    let f = for_all_result(
        "selftest_shrinks_one_of_to_first_alternative",
        &Config::with_cases(64),
        &gen,
        |_| panic!("always fails"),
    )
    .expect("property must fail");
    assert_eq!(f.minimal, E::A(0), "one_of shrinks to variant 0, value 0");
}

/// The failure report carries a seed that regenerates the identical
/// original input (the programmatic face of PRISM_TEST_SEED replay).
#[test]
fn reported_seed_regenerates_original() {
    let gen = gens::vec(gens::range_u64(0..1_000_000), 1..16);
    let f = for_all_result(
        "selftest_reported_seed_regenerates_original",
        &Config::with_cases(64),
        &gen,
        |v| assert!(v.iter().sum::<u64>() < 500_000),
    )
    .expect("property must fail");
    let regenerated = gen.generate(&mut Source::new(f.seed));
    assert_eq!(regenerated, f.original);

    // And running the whole property under that fixed seed reproduces
    // the same original failure in case 0.
    let cfg = Config {
        seed: Some(f.seed),
        ..Config::default()
    };
    let again = for_all_result(
        "selftest_reported_seed_regenerates_original_replay",
        &cfg,
        &gen,
        |v| assert!(v.iter().sum::<u64>() < 500_000),
    )
    .expect("replay must fail too");
    assert_eq!(again.case, 0);
    assert_eq!(again.original, f.original);
    assert_eq!(again.minimal, f.minimal, "shrinking is deterministic");
}

/// Shrinking never exceeds its iteration budget.
#[test]
fn shrinking_respects_budget() {
    let cfg = Config {
        cases: 16,
        max_shrink_iters: 10,
        ..Config::default()
    };
    let f = for_all_result(
        "selftest_shrinking_respects_budget",
        &cfg,
        &gens::vec(gens::u64s(), 0..64),
        |_| panic!("always fails"),
    )
    .expect("property must fail");
    assert!(f.shrink_iters <= 10);
}
