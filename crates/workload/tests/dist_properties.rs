//! Property tests for the workload generators, on the deterministic
//! in-repo `prism-testkit` harness (seeded; replay any failure with
//! `PRISM_TEST_SEED=<seed>`).

use prism_simnet::rng::SimRng;
use prism_testkit::{for_all, gens, Config};
use prism_workload::dist::{KeyDist, ZipfGen};
use prism_workload::{TxnGen, YcsbConfig, YcsbGen};

/// Zipf samples always fall in range for any (n, theta).
#[test]
fn zipf_in_range() {
    let gen = gens::t3(
        gens::range_u64(1..100_000),
        // ZipfGen is undefined exactly at theta == 1 (the harmonic
        // special case); proptest used prop_assume, here the filter
        // redraws — rejection probability is ~1e-6.
        gens::range_f64(0.01, 1.8).filter(|theta| (theta - 1.0).abs() > 1e-6),
        gens::u64s(),
    );
    for_all(
        "zipf_in_range",
        &Config::with_cases(64),
        &gen,
        |&(n, theta, seed)| {
            let z = ZipfGen::new(n, theta);
            let mut rng = SimRng::new(seed);
            for _ in 0..200 {
                assert!(z.sample(&mut rng) < n);
            }
        },
    );
}

/// Higher theta concentrates more mass on rank 0.
#[test]
fn zipf_skew_monotone() {
    for_all(
        "zipf_skew_monotone",
        &Config::with_cases(64),
        &gens::u64s(),
        |&seed| {
            let n = 1000u64;
            let count_rank0 = |theta: f64| {
                let z = ZipfGen::new(n, theta);
                let mut rng = SimRng::new(seed);
                (0..20_000).filter(|_| z.sample(&mut rng) == 0).count()
            };
            let low = count_rank0(0.5);
            let high = count_rank0(1.4);
            assert!(high > low, "rank-0 hits: theta=0.5 {low}, theta=1.4 {high}");
        },
    );
}

/// YCSB op streams respect the configured read fraction within
/// statistical tolerance.
#[test]
fn ycsb_read_fraction() {
    let gen = gens::t2(gens::range_f64(0.0, 1.0), gens::u64s());
    for_all(
        "ycsb_read_fraction",
        &Config::with_cases(64),
        &gen,
        |&(frac, seed)| {
            let mut g = YcsbGen::new(
                YcsbConfig {
                    dist: KeyDist::uniform(100),
                    read_fraction: frac,
                    value_len: 8,
                },
                SimRng::new(seed),
            );
            let n = 5_000;
            let reads = (0..n).filter(|_| g.next_op().is_get()).count();
            let observed = reads as f64 / n as f64;
            assert!(
                (observed - frac).abs() < 0.05,
                "frac {frac} observed {observed}"
            );
        },
    );
}

/// Transactions always contain the requested number of distinct,
/// sorted, in-range keys.
#[test]
fn txn_keys_well_formed() {
    let gen = gens::t3(
        gens::range_u64(4..10_000),
        gens::range_usize(1..4),
        gens::u64s(),
    );
    for_all(
        "txn_keys_well_formed",
        &Config::with_cases(64),
        &gen,
        |&(n, k, seed)| {
            let mut g = TxnGen::new(KeyDist::uniform(n), k, 8, SimRng::new(seed));
            for _ in 0..50 {
                let t = g.next_txn();
                assert_eq!(t.keys.len(), k);
                for w in t.keys.windows(2) {
                    assert!(w[0] < w[1]);
                }
                assert!(t.keys.iter().all(|&key| key < n));
            }
        },
    );
}
