//! Property tests for the workload generators.

use proptest::prelude::*;

use prism_simnet::rng::SimRng;
use prism_workload::dist::{KeyDist, ZipfGen};
use prism_workload::{TxnGen, YcsbConfig, YcsbGen};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Zipf samples always fall in range for any (n, theta).
    #[test]
    fn zipf_in_range(n in 1u64..100_000, theta in 0.01f64..1.8, seed in any::<u64>()) {
        prop_assume!((theta - 1.0).abs() > 1e-6);
        let z = ZipfGen::new(n, theta);
        let mut rng = SimRng::new(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Higher theta concentrates more mass on rank 0.
    #[test]
    fn zipf_skew_monotone(seed in any::<u64>()) {
        let n = 1000u64;
        let count_rank0 = |theta: f64| {
            let z = ZipfGen::new(n, theta);
            let mut rng = SimRng::new(seed);
            (0..20_000).filter(|_| z.sample(&mut rng) == 0).count()
        };
        let low = count_rank0(0.5);
        let high = count_rank0(1.4);
        prop_assert!(high > low, "rank-0 hits: theta=0.5 {low}, theta=1.4 {high}");
    }

    /// YCSB op streams respect the configured read fraction within
    /// statistical tolerance.
    #[test]
    fn ycsb_read_fraction(frac in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut g = YcsbGen::new(
            YcsbConfig { dist: KeyDist::uniform(100), read_fraction: frac, value_len: 8 },
            SimRng::new(seed),
        );
        let n = 5_000;
        let reads = (0..n).filter(|_| g.next_op().is_get()).count();
        let observed = reads as f64 / n as f64;
        prop_assert!((observed - frac).abs() < 0.05, "frac {frac} observed {observed}");
    }

    /// Transactions always contain the requested number of distinct,
    /// sorted, in-range keys.
    #[test]
    fn txn_keys_well_formed(
        n in 4u64..10_000,
        k in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut g = TxnGen::new(KeyDist::uniform(n), k, 8, SimRng::new(seed));
        for _ in 0..50 {
            let t = g.next_txn();
            prop_assert_eq!(t.keys.len(), k);
            for w in t.keys.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            prop_assert!(t.keys.iter().all(|&key| key < n));
        }
    }
}
