//! YCSB-style key-value operation streams.
//!
//! Workload C is 100 % reads; workload A is a 50/50 read/update mix
//! (§6.2). Objects are 512 bytes with 8-byte keys in the paper's runs;
//! sizes are configurable here.

use prism_simnet::rng::SimRng;

use crate::dist::KeyDist;

/// One key-value operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Read the key.
    Get(u64),
    /// Overwrite the key with a fresh value.
    Put(u64),
}

impl KvOp {
    /// The key this operation touches.
    pub fn key(self) -> u64 {
        match self {
            KvOp::Get(k) | KvOp::Put(k) => k,
        }
    }

    /// Whether this is a read.
    pub fn is_get(self) -> bool {
        matches!(self, KvOp::Get(_))
    }
}

/// Parameters of a YCSB run.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Key popularity distribution.
    pub dist: KeyDist,
    /// Fraction of operations that are reads, in `[0, 1]`.
    pub read_fraction: f64,
    /// Value size in bytes (512 in the paper).
    pub value_len: usize,
}

impl YcsbConfig {
    /// YCSB-C: 100 % reads, uniform (§6.2, Figure 3).
    pub fn workload_c(n_keys: u64, value_len: usize) -> Self {
        YcsbConfig {
            dist: KeyDist::uniform(n_keys),
            read_fraction: 1.0,
            value_len,
        }
    }

    /// YCSB-A: 50 % reads / 50 % updates, uniform (§6.2, Figure 4).
    pub fn workload_a(n_keys: u64, value_len: usize) -> Self {
        YcsbConfig {
            dist: KeyDist::uniform(n_keys),
            read_fraction: 0.5,
            value_len,
        }
    }
}

/// A deterministic YCSB operation stream.
#[derive(Debug, Clone)]
pub struct YcsbGen {
    config: YcsbConfig,
    rng: SimRng,
}

impl YcsbGen {
    /// Creates a generator with its own RNG stream.
    pub fn new(config: YcsbConfig, rng: SimRng) -> Self {
        YcsbGen { config, rng }
    }

    /// The configuration.
    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> KvOp {
        let key = self.config.dist.sample(&mut self.rng);
        if self.rng.gen_bool(self.config.read_fraction) {
            KvOp::Get(key)
        } else {
            KvOp::Put(key)
        }
    }

    /// A fresh value for a PUT: `value_len` bytes derived from the key
    /// and a nonce so successive writes are distinguishable.
    pub fn value_for(&mut self, key: u64) -> Vec<u8> {
        let nonce = self.rng.next_u64();
        value_bytes(key, nonce, self.config.value_len)
    }
}

/// Deterministic value payload: repeating 16-byte pattern of
/// `key || nonce`, so tests can verify reads against writes.
pub fn value_bytes(key: u64, nonce: u64, len: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(len);
    while v.len() < len {
        v.extend_from_slice(&key.to_le_bytes());
        v.extend_from_slice(&nonce.to_le_bytes());
    }
    v.truncate(len);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_c_is_all_reads() {
        let mut g = YcsbGen::new(YcsbConfig::workload_c(100, 64), SimRng::new(1));
        for _ in 0..1_000 {
            assert!(g.next_op().is_get());
        }
    }

    #[test]
    fn workload_a_is_half_reads() {
        let mut g = YcsbGen::new(YcsbConfig::workload_a(100, 64), SimRng::new(2));
        let reads = (0..100_000).filter(|_| g.next_op().is_get()).count();
        assert!((45_000..55_000).contains(&reads), "reads {reads}");
    }

    #[test]
    fn keys_stay_in_range() {
        let mut g = YcsbGen::new(YcsbConfig::workload_a(17, 8), SimRng::new(3));
        for _ in 0..10_000 {
            assert!(g.next_op().key() < 17);
        }
    }

    #[test]
    fn values_have_requested_length_and_vary() {
        let mut g = YcsbGen::new(YcsbConfig::workload_a(10, 512), SimRng::new(4));
        let a = g.value_for(3);
        let b = g.value_for(3);
        assert_eq!(a.len(), 512);
        assert_ne!(a, b, "nonce must distinguish successive writes");
        assert_eq!(&a[..8], &3u64.to_le_bytes());
    }

    #[test]
    fn value_bytes_is_deterministic() {
        assert_eq!(value_bytes(7, 9, 40), value_bytes(7, 9, 40));
        assert_eq!(value_bytes(7, 9, 3).len(), 3);
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut g = YcsbGen::new(YcsbConfig::workload_a(1000, 8), SimRng::new(seed));
            (0..50).map(|_| g.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(mk(9), mk(9));
        assert_ne!(mk(9), mk(10));
    }
}
