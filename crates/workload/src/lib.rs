//! Workload generators for the PRISM reproduction's experiments.
//!
//! The paper evaluates on YCSB workloads A (50 % reads / 50 % writes) and
//! C (100 % reads) with 8 million 512-byte objects (§6.2), a 50 %-write
//! replicated block workload with uniform and Zipf key popularity (§7.4),
//! and YCSB-T read-modify-write transactions (§8.3). This crate provides
//! the key distributions and operation streams for all of them,
//! deterministic under [`prism_simnet::rng::SimRng`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod openloop;
pub mod ycsb;
pub mod ycsbt;

pub use dist::KeyDist;
pub use openloop::{ArrivalSpec, Arrivals, PoissonGen, TraceGen};
pub use ycsb::{KvOp, YcsbConfig, YcsbGen};
pub use ycsbt::{TxnGen, TxnSpec};
