//! YCSB-T transaction workload (§8.3).
//!
//! The paper evaluates PRISM-TX on YCSB-T "consisting of short
//! read-modify-write transactions" over 8 million 512-byte objects. A
//! transaction reads a small set of keys and writes them back; key
//! popularity follows the configured distribution. Figure 10 sweeps the
//! Zipf coefficient to vary contention.

use prism_simnet::rng::SimRng;

use crate::dist::KeyDist;

/// One transaction: read every key in `keys`, then write them all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnSpec {
    /// Distinct keys the transaction reads and then updates.
    pub keys: Vec<u64>,
}

impl TxnSpec {
    /// Number of operations (reads + writes) the transaction performs.
    pub fn op_count(&self) -> usize {
        self.keys.len() * 2
    }
}

/// Deterministic YCSB-T transaction stream.
#[derive(Debug, Clone)]
pub struct TxnGen {
    dist: KeyDist,
    keys_per_txn: usize,
    value_len: usize,
    rng: SimRng,
}

impl TxnGen {
    /// Creates a generator: `keys_per_txn` distinct keys per transaction
    /// (the "short" RMW transactions of §8.3 — we default to 2 in the
    /// harness), values of `value_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `keys_per_txn` is zero or exceeds the key space.
    pub fn new(dist: KeyDist, keys_per_txn: usize, value_len: usize, rng: SimRng) -> Self {
        assert!(keys_per_txn > 0, "TxnGen: empty transactions");
        assert!(
            (keys_per_txn as u64) <= dist.n(),
            "TxnGen: more keys per txn than keys"
        );
        TxnGen {
            dist,
            keys_per_txn,
            value_len,
            rng,
        }
    }

    /// Value length for writes.
    pub fn value_len(&self) -> usize {
        self.value_len
    }

    /// Draws the next transaction. Keys within one transaction are
    /// distinct and sorted (sorted access order is the standard deadlock-
    /// avoidance discipline; PRISM-TX does not need it for correctness
    /// but FaRM's lock phase benchmarks fairly with it).
    pub fn next_txn(&mut self) -> TxnSpec {
        let mut keys = Vec::with_capacity(self.keys_per_txn);
        while keys.len() < self.keys_per_txn {
            let k = self.dist.sample(&mut self.rng);
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        keys.sort_unstable();
        TxnSpec { keys }
    }

    /// A fresh value for one write.
    pub fn value_for(&mut self, key: u64) -> Vec<u8> {
        let nonce = self.rng.next_u64();
        crate::ycsb::value_bytes(key, nonce, self.value_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_distinct_and_sorted() {
        let mut g = TxnGen::new(KeyDist::uniform(100), 4, 64, SimRng::new(1));
        for _ in 0..1_000 {
            let t = g.next_txn();
            assert_eq!(t.keys.len(), 4);
            for w in t.keys.windows(2) {
                assert!(w[0] < w[1], "keys must be sorted and distinct");
            }
        }
    }

    #[test]
    fn op_count_counts_reads_and_writes() {
        let t = TxnSpec {
            keys: vec![1, 2, 3],
        };
        assert_eq!(t.op_count(), 6);
    }

    #[test]
    fn zipf_transactions_hit_hot_keys() {
        let mut g = TxnGen::new(KeyDist::zipf(1_000, 0.99), 2, 64, SimRng::new(2));
        let hot = (0..10_000)
            .filter(|_| g.next_txn().keys.iter().any(|&k| k < 10))
            .count();
        assert!(hot > 4_000, "hot-key transactions: {hot}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = |seed| {
            let mut g = TxnGen::new(KeyDist::uniform(50), 3, 8, SimRng::new(seed));
            (0..20).map(|_| g.next_txn()).collect::<Vec<_>>()
        };
        assert_eq!(mk(7), mk(7));
    }

    #[test]
    #[should_panic(expected = "more keys per txn")]
    fn oversized_txn_rejected() {
        TxnGen::new(KeyDist::uniform(2), 3, 8, SimRng::new(1));
    }
}
