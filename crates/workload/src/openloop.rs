//! Open-loop arrival processes for latency-under-load experiments.
//!
//! Closed-loop clients (the default harness drivers) issue the next
//! request only after the previous reply lands, so a slow server
//! silently throttles its own offered load and the measured latency
//! distribution suffers *coordinated omission*: the stalls that hurt
//! most are exactly the ones that suppress the samples that would have
//! recorded them. An open-loop generator fixes the offered load
//! independently of service times: every logical request has an
//! *intended* arrival instant drawn from an arrival process, and
//! latency is measured from that intended instant — even when the
//! request had to queue behind a stalled server before it could start.
//!
//! Two processes are provided, both deterministic under
//! [`SimRng`]-seeded replay:
//!
//! * [`PoissonGen`] — exponential inter-arrival gaps at a configured
//!   mean rate, the standard memoryless open-loop model.
//! * [`TraceGen`] — replay of an explicit inter-arrival-gap trace, for
//!   reproducing a recorded workload or constructing adversarial
//!   bursts.
//!
//! A simulation aggregates many logical clients into a few actor
//! objects (a million closed-loop actors would swamp the event queue;
//! a handful of open-loop aggregates will not). [`ArrivalSpec::build`]
//! partitions one *global* arrival process across `actors` aggregates:
//! Poisson processes split by thinning (each aggregate runs an
//! independent process at `rate / actors`, which recomposes exactly to
//! a Poisson process at `rate`), traces split by (offset, stride)
//! striping so the union of the aggregates' streams is the global
//! trace, each arrival exactly once.

use prism_simnet::rng::SimRng;

/// Configuration-level description of a global arrival process,
/// before it is partitioned across aggregate actors.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// Poisson arrivals at `rate_per_sec` aggregate offered load.
    Poisson {
        /// Global arrival rate, requests per simulated second.
        rate_per_sec: f64,
    },
    /// Replay of an explicit trace of inter-arrival gaps (nanoseconds
    /// between consecutive global arrivals; the first gap is measured
    /// from time zero).
    Trace {
        /// Inter-arrival gaps in nanoseconds.
        gaps: Vec<u64>,
    },
}

impl ArrivalSpec {
    /// Builds the arrival stream for aggregate actor `actor` of
    /// `actors`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `actors` is zero, `actor >= actors`, or a Poisson
    /// rate is not finite and positive.
    pub fn build(&self, actor: usize, actors: usize, seed: u64) -> Arrivals {
        assert!(actors > 0, "ArrivalSpec::build: zero actors");
        assert!(
            actor < actors,
            "ArrivalSpec::build: actor {actor} out of range ({actors} actors)"
        );
        match self {
            ArrivalSpec::Poisson { rate_per_sec } => {
                // Thinning: each aggregate runs an independent Poisson
                // process at 1/actors of the global rate. The per-actor
                // seed mix keeps the streams independent and replayable.
                let share = rate_per_sec / actors as f64;
                Arrivals::Poisson(PoissonGen::new(
                    share,
                    seed ^ 0xA221_1A7E ^ ((actor as u64 + 1) << 24),
                ))
            }
            ArrivalSpec::Trace { gaps } => {
                Arrivals::Trace(TraceGen::new(gaps.clone(), actor, actors))
            }
        }
    }
}

/// A partitioned arrival stream handed to one aggregate actor: yields
/// the absolute intended arrival time (nanoseconds since the stream
/// origin) of each successive logical request, or `None` when a finite
/// trace is exhausted.
#[derive(Debug, Clone)]
pub enum Arrivals {
    /// Seeded Poisson stream (infinite).
    Poisson(PoissonGen),
    /// Striped trace replay (finite).
    Trace(TraceGen),
}

impl Arrivals {
    /// The next intended arrival instant, in nanoseconds.
    pub fn next_arrival(&mut self) -> Option<u64> {
        match self {
            Arrivals::Poisson(g) => Some(g.next_arrival()),
            Arrivals::Trace(g) => g.next_arrival(),
        }
    }
}

/// Seeded Poisson arrival process: exponential inter-arrival gaps with
/// mean `1e9 / rate_per_sec` nanoseconds, accumulated on an integer
/// nanosecond clock (saturating at the far-future horizon) so replay
/// under the same seed is bit-exact.
#[derive(Debug, Clone)]
pub struct PoissonGen {
    rng: SimRng,
    mean_ns: f64,
    clock_ns: u64,
}

impl PoissonGen {
    /// Creates a process at `rate_per_sec` arrivals per simulated
    /// second.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is finite and positive.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "PoissonGen: invalid rate {rate_per_sec}"
        );
        PoissonGen {
            rng: SimRng::new(seed),
            mean_ns: 1.0e9 / rate_per_sec,
            clock_ns: 0,
        }
    }

    /// The next absolute arrival instant in nanoseconds.
    pub fn next_arrival(&mut self) -> u64 {
        let gap = self.rng.gen_exp(self.mean_ns).round();
        // Clamp to the u64 horizon before the cast: a pathological
        // draw (or a microscopic rate) must park at the horizon, not
        // wrap through the f64→u64 saturating cast on one platform and
        // UB-era semantics on another.
        let gap = if gap >= u64::MAX as f64 {
            u64::MAX
        } else {
            gap as u64
        };
        self.clock_ns = self.clock_ns.saturating_add(gap);
        self.clock_ns
    }
}

/// Replay of a recorded global arrival trace, striped across aggregate
/// actors: actor `k` of `n` receives global arrivals `k, k+n, k+2n, …`,
/// so the union of all actors' streams is the global trace with each
/// arrival delivered exactly once.
#[derive(Debug, Clone)]
pub struct TraceGen {
    /// Absolute arrival instants of the *global* trace (prefix sums of
    /// the configured gaps, saturating at the horizon).
    times: std::sync::Arc<Vec<u64>>,
    pos: usize,
    stride: usize,
}

impl TraceGen {
    /// Builds the stream for actor `offset` of `stride` over the given
    /// global inter-arrival gaps.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or `offset >= stride`.
    pub fn new(gaps: Vec<u64>, offset: usize, stride: usize) -> Self {
        assert!(stride > 0, "TraceGen: zero stride");
        assert!(
            offset < stride,
            "TraceGen: offset {offset} >= stride {stride}"
        );
        let mut clock = 0u64;
        let times = gaps
            .into_iter()
            .map(|g| {
                clock = clock.saturating_add(g);
                clock
            })
            .collect();
        TraceGen {
            times: std::sync::Arc::new(times),
            pos: offset,
            stride,
        }
    }

    /// The next absolute arrival instant, or `None` when this actor's
    /// slice of the trace is exhausted.
    pub fn next_arrival(&mut self) -> Option<u64> {
        let t = self.times.get(self.pos).copied()?;
        self.pos += self.stride;
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(mut a: Arrivals, n: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            match a.next_arrival() {
                Some(t) => out.push(t),
                None => break,
            }
        }
        out
    }

    /// Sample mean of the inter-arrival gaps lands within 5 % of the
    /// configured `1e9 / rate` over 50 000 draws.
    #[test]
    fn poisson_mean_matches_rate() {
        for &rate in &[1_000.0f64, 250_000.0, 2_000_000.0] {
            let mut g = PoissonGen::new(rate, 42);
            let n = 50_000u64;
            let mut prev = 0u64;
            let mut sum = 0u64;
            for _ in 0..n {
                let t = g.next_arrival();
                sum += t - prev;
                prev = t;
            }
            let mean = sum as f64 / n as f64;
            let want = 1.0e9 / rate;
            assert!(
                (mean - want).abs() / want < 0.05,
                "rate {rate}: mean gap {mean} vs expected {want}"
            );
        }
    }

    /// The gap distribution is exponential, not merely correct in mean:
    /// the squared coefficient of variation (variance / mean²) of an
    /// exponential is exactly 1; accept [0.9, 1.1] over 50 000 draws.
    #[test]
    fn poisson_gaps_are_exponential_by_cv2() {
        let mut g = PoissonGen::new(500_000.0, 7);
        let n = 50_000usize;
        let mut prev = 0u64;
        let mut gaps = Vec::with_capacity(n);
        for _ in 0..n {
            let t = g.next_arrival();
            gaps.push((t - prev) as f64);
            prev = t;
        }
        let mean = gaps.iter().sum::<f64>() / n as f64;
        let var = gaps.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let cv2 = var / (mean * mean);
        assert!((0.9..=1.1).contains(&cv2), "CV² {cv2} outside [0.9, 1.1]");
    }

    /// Same seed ⇒ bit-exact identical arrival stream; different seed ⇒
    /// a different stream.
    #[test]
    fn poisson_replay_is_bit_exact() {
        let spec = ArrivalSpec::Poisson {
            rate_per_sec: 100_000.0,
        };
        let a = collect(spec.build(0, 2, 99), 10_000);
        let b = collect(spec.build(0, 2, 99), 10_000);
        assert_eq!(a, b, "same seed must replay bit-exactly");
        let c = collect(spec.build(0, 2, 100), 10_000);
        assert_ne!(a, c, "different seeds must diverge");
        let d = collect(spec.build(1, 2, 99), 10_000);
        assert_ne!(a, d, "sibling aggregates must run independent streams");
    }

    /// Striped trace partitioning covers the global trace exactly: the
    /// union of all aggregates' streams is the full prefix-sum sequence,
    /// each arrival exactly once, in per-actor order.
    #[test]
    fn trace_stripes_partition_the_global_trace() {
        let gaps: Vec<u64> = (0..97).map(|i| (i * 13 + 1) % 50).collect();
        let mut clock = 0u64;
        let global: Vec<u64> = gaps
            .iter()
            .map(|&g| {
                clock += g;
                clock
            })
            .collect();
        let spec = ArrivalSpec::Trace { gaps };
        let actors = 4;
        let mut merged: Vec<(usize, u64)> = Vec::new();
        for a in 0..actors {
            for (k, t) in collect(spec.build(a, actors, 0), usize::MAX)
                .iter()
                .enumerate()
            {
                merged.push((a + k * actors, *t));
            }
        }
        merged.sort_unstable();
        let times: Vec<u64> = merged.iter().map(|&(_, t)| t).collect();
        let idxs: Vec<usize> = merged.iter().map(|&(i, _)| i).collect();
        assert_eq!(idxs, (0..global.len()).collect::<Vec<_>>());
        assert_eq!(times, global);
    }

    /// A finite trace ends cleanly with `None`; an empty trace yields
    /// nothing at all.
    #[test]
    fn trace_exhaustion_is_clean() {
        let spec = ArrivalSpec::Trace {
            gaps: vec![5, 5, 5],
        };
        let mut g = spec.build(1, 2, 0);
        assert_eq!(g.next_arrival(), Some(10));
        assert_eq!(g.next_arrival(), None);
        assert_eq!(g.next_arrival(), None);
        let mut empty = spec_build_empty();
        assert_eq!(empty.next_arrival(), None);
    }

    fn spec_build_empty() -> Arrivals {
        ArrivalSpec::Trace { gaps: Vec::new() }.build(0, 3, 0)
    }

    /// The integer clock saturates at the horizon instead of wrapping.
    #[test]
    fn poisson_clock_saturates() {
        let mut g = PoissonGen::new(1e-9, 3); // mean gap ~1e18 ns
        let mut last = 0;
        for _ in 0..64 {
            let t = g.next_arrival();
            assert!(t >= last, "clock went backwards");
            last = t;
        }
        assert_eq!(last, u64::MAX, "expected the clock parked at the horizon");
    }
}
