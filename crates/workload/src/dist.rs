//! Key popularity distributions: uniform and Zipfian.
//!
//! The Zipfian generator is the standard YCSB construction (Gray et al.,
//! "Quickly generating billion-record synthetic databases"): rank 0 is
//! the most popular key, and popularity decays as `1/rank^theta`. The
//! paper sweeps the Zipf coefficient from 0 (uniform) to ~1.5 in
//! Figures 7 and 10.

use prism_simnet::rng::SimRng;

/// A distribution over the key space `[0, n)`.
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform {
        /// Number of keys.
        n: u64,
    },
    /// Zipfian with the given coefficient.
    Zipf(ZipfGen),
}

impl KeyDist {
    /// Uniform distribution over `n` keys.
    pub fn uniform(n: u64) -> Self {
        KeyDist::Uniform { n }
    }

    /// Zipfian distribution over `n` keys with coefficient `theta`.
    /// `theta == 0` degenerates to uniform.
    pub fn zipf(n: u64, theta: f64) -> Self {
        if theta == 0.0 {
            KeyDist::Uniform { n }
        } else {
            KeyDist::Zipf(ZipfGen::new(n, theta))
        }
    }

    /// Number of keys in the space.
    pub fn n(&self) -> u64 {
        match self {
            KeyDist::Uniform { n } => *n,
            KeyDist::Zipf(z) => z.n,
        }
    }

    /// Samples one key.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        match self {
            KeyDist::Uniform { n } => rng.gen_range(*n),
            KeyDist::Zipf(z) => z.sample(rng),
        }
    }
}

/// YCSB-style Zipfian generator with precomputed constants.
#[derive(Debug, Clone)]
pub struct ZipfGen {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow_theta: f64,
}

impl ZipfGen {
    /// Builds a generator over `[0, n)` with coefficient `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `theta <= 0`, or `theta == 1` (the harmonic
    /// special case; pass 0.99 or 1.01 as YCSB does).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "ZipfGen: empty key space");
        assert!(
            theta > 0.0 && (theta - 1.0).abs() > 1e-9,
            "ZipfGen: theta must be positive and != 1"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfGen {
            n,
            theta,
            alpha,
            zetan,
            eta,
            half_pow_theta: 0.5f64.powf(theta),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for small n; Euler–Maclaurin tail approximation for
        // large n keeps construction fast for 8M-key spaces.
        const DIRECT: u64 = 1_000_000;
        if n <= DIRECT {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=DIRECT).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // integral_{DIRECT}^{n} x^-theta dx + midpoint correction
            let a = DIRECT as f64;
            let b = n as f64;
            let integral = (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
            head + integral + 0.5 * (b.powf(-theta) - a.powf(-theta))
        }
    }

    /// Samples a key rank (0 = most popular).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.half_pow_theta {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The Zipf coefficient.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_space_evenly() {
        let d = KeyDist::uniform(10);
        let mut rng = SimRng::new(1);
        let mut counts = [0u64; 10];
        for _ in 0..100_000 {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let d = KeyDist::zipf(1_000, 0.99);
        let mut rng = SimRng::new(2);
        let mut top = 0u64;
        let total = 100_000;
        for _ in 0..total {
            if d.sample(&mut rng) < 10 {
                top += 1;
            }
        }
        // With theta=0.99 over 1000 keys, the top-10 keys draw a large
        // constant fraction of accesses.
        assert!(
            top as f64 / total as f64 > 0.3,
            "top-10 fraction {}",
            top as f64 / total as f64
        );
    }

    #[test]
    fn zipf_rank_frequencies_decay() {
        let z = ZipfGen::new(100, 0.99);
        let mut rng = SimRng::new(3);
        let mut counts = vec![0u64; 100];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[4] > counts[40]);
        // Ratio of rank-0 to rank-9 should be near 10^0.99 ≈ 9.8.
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!((4.0..20.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zipf_stays_in_range() {
        for theta in [0.5, 0.9, 0.99, 1.2, 1.5] {
            let z = ZipfGen::new(37, theta);
            let mut rng = SimRng::new(4);
            for _ in 0..10_000 {
                assert!(z.sample(&mut rng) < 37);
            }
        }
    }

    #[test]
    fn zeta_tail_approximation_is_accurate() {
        // Compare the approximated zeta against a direct sum just above
        // the crossover.
        let direct: f64 = (1..=1_100_000u64)
            .map(|i| 1.0 / (i as f64).powf(0.99))
            .sum();
        let approx = ZipfGen::zeta(1_100_000, 0.99);
        assert!(
            ((direct - approx) / direct).abs() < 1e-6,
            "direct {direct} vs approx {approx}"
        );
    }

    #[test]
    fn theta_zero_is_uniform() {
        assert!(matches!(KeyDist::zipf(10, 0.0), KeyDist::Uniform { n: 10 }));
    }

    #[test]
    #[should_panic(expected = "theta must be positive and != 1")]
    fn theta_one_rejected() {
        ZipfGen::new(10, 1.0);
    }

    #[test]
    fn large_keyspace_constructs_quickly() {
        // 8M keys (the paper's object count) must not take seconds.
        let start = std::time::Instant::now();
        let z = ZipfGen::new(8_000_000, 0.99);
        assert!(start.elapsed().as_secs() < 2);
        let mut rng = SimRng::new(5);
        assert!(z.sample(&mut rng) < 8_000_000);
    }
}
