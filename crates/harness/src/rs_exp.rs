//! Figures 6 and 7: PRISM-RS vs lock-based ABD.
//!
//! Figure 6 sweeps closed-loop clients on a uniform 50 %-write workload
//! over 3 replicas (§7.4). Figure 7 fixes 100 clients and sweeps the
//! Zipf coefficient: PRISM-RS stays flat while ABDLOCK's lock
//! contention sends latency off the chart.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use prism_rs::abdlock::{AbdLockCluster, AbdLockConfig};
use prism_rs::prism_rs::{RsCluster, RsConfig};
use prism_simnet::fault::FaultPlan;
use prism_simnet::latency::CostModel;
use prism_simnet::time::SimDuration;
use prism_workload::KeyDist;

use crate::adapters::{AbdLockAdapter, PrismRsAdapter};
use crate::cluster::RsShards;
use crate::netsim::{run_closed_loop, ProtoAdapter, VerbPath};
use crate::openloop::{sweep_rates, AdapterFactory, OpenLoopKnobs, OpenLoopResult};
use crate::table::{f2, mops, Table};

/// Experiment parameters (§7.4 at reduced block count).
#[derive(Debug, Clone)]
pub struct RsExpConfig {
    /// Number of blocks per replica.
    pub n_blocks: u64,
    /// Block value size (512 in the paper).
    pub block_size: u64,
    /// Write fraction (0.5 in §7.4).
    pub write_fraction: f64,
    /// Client counts for the throughput sweep (Figure 6).
    pub clients: Vec<usize>,
    /// Zipf coefficients for the contention sweep (Figure 7).
    pub zipf: Vec<f64>,
    /// Clients used in the Zipf sweep (100 in the paper).
    pub zipf_clients: usize,
    /// Warm-up per point.
    pub warmup: SimDuration,
    /// Measurement per point.
    pub measure: SimDuration,
    /// Run seed.
    pub seed: u64,
    /// Fault plan applied to every sweep point (default: none).
    pub faults: FaultPlan,
}

impl RsExpConfig {
    /// Full-scale run.
    pub fn paper() -> Self {
        RsExpConfig {
            n_blocks: 65_536,
            block_size: 512,
            write_fraction: 0.5,
            clients: vec![1, 2, 4, 8, 16, 32, 64, 96, 128, 192, 256, 384],
            zipf: vec![0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.99, 1.1, 1.2],
            zipf_clients: 100,
            warmup: SimDuration::millis(2),
            measure: SimDuration::millis(20),
            seed: 43,
            faults: FaultPlan::default(),
        }
    }

    /// Reduced run for smoke tests. The top client count must push all
    /// three systems into saturation or the peak-throughput ordering
    /// cannot be observed.
    pub fn quick() -> Self {
        RsExpConfig {
            n_blocks: 512,
            block_size: 512,
            write_fraction: 0.5,
            clients: vec![1, 16, 192],
            zipf: vec![0.0, 0.99],
            zipf_clients: 24,
            warmup: SimDuration::micros(500),
            measure: crate::smoke::measure_window(4_000),
            seed: 43,
            faults: FaultPlan::default(),
        }
    }
}

struct Systems {
    prism: RsCluster,
    abd: AbdLockCluster,
}

fn build(cfg: &RsExpConfig) -> Systems {
    // Spare buffers must cover client-side free batching: every client
    // may hold up to a batch of reclaimed buffers per replica before
    // flushing.
    let max_clients = cfg
        .clients
        .iter()
        .copied()
        .max()
        .unwrap_or(0)
        .max(cfg.zipf_clients) as u64;
    let mut rs_config = RsConfig::paper(cfg.n_blocks, cfg.block_size);
    rs_config.spare_buffers += 32 * (max_clients + 16);
    Systems {
        prism: RsCluster::new(3, &rs_config),
        abd: AbdLockCluster::new(
            3,
            &AbdLockConfig {
                n_blocks: cfg.n_blocks,
                block_size: cfg.block_size,
            },
        ),
    }
}

fn prism_servers(s: &Systems) -> Vec<Arc<prism_core::PrismServer>> {
    (0..3)
        .map(|i| Arc::clone(s.prism.replica(i).server()))
        .collect()
}

fn abd_servers(s: &Systems) -> Vec<Arc<prism_core::PrismServer>> {
    (0..3)
        .map(|i| Arc::clone(s.abd.replica(i).server()))
        .collect()
}

/// Figure 6: throughput-latency sweep, uniform keys.
pub fn figure6(cfg: &RsExpConfig) -> (Table, [f64; 3]) {
    let model = CostModel::testbed();
    let mut t = Table::new(
        &format!(
            "Figure 6: PRISM-RS vs ABDLOCK, {:.0}% writes, uniform ({} blocks x {} B, 3 replicas)",
            cfg.write_fraction * 100.0,
            cfg.n_blocks,
            cfg.block_size
        ),
        &["system", "clients", "tput_Mops", "mean_us", "p99_us"],
    );
    let sys = build(cfg);
    let mut peaks = [0.0f64; 3];

    for &n in &cfg.clients {
        let r = run_closed_loop(
            &prism_servers(&sys),
            &model,
            VerbPath::Nic,
            n,
            &mut |_| {
                Box::new(PrismRsAdapter::new(
                    sys.prism.open_client(),
                    KeyDist::uniform(cfg.n_blocks),
                    cfg.block_size as usize,
                    cfg.write_fraction,
                ))
            },
            cfg.warmup,
            cfg.measure,
            cfg.seed ^ n as u64,
            &cfg.faults,
        );
        t.row(&[
            "PRISM-RS".into(),
            n.to_string(),
            mops(r.tput_ops),
            f2(r.mean_us),
            f2(r.p99_us),
        ]);
        peaks[0] = peaks[0].max(r.tput_ops);
    }

    for (slot, (label, path)) in [
        ("ABDLOCK", VerbPath::Nic),
        ("ABDLOCK (software RDMA)", VerbPath::Cpu),
    ]
    .into_iter()
    .enumerate()
    {
        for &n in &cfg.clients {
            // A measurement window's end abandons in-flight operations;
            // clear their leaked locks before the next point (lock-lease
            // recovery, §7.2).
            sys.abd.reset_locks();
            let seed = cfg.seed ^ (n as u64) << 8;
            let r = run_closed_loop(
                &abd_servers(&sys),
                &model,
                path,
                n,
                &mut |i| {
                    Box::new(AbdLockAdapter::new(
                        sys.abd.open_client(seed ^ i as u64),
                        KeyDist::uniform(cfg.n_blocks),
                        cfg.block_size as usize,
                        cfg.write_fraction,
                    ))
                },
                cfg.warmup,
                cfg.measure,
                seed,
                &cfg.faults,
            );
            t.row(&[
                label.into(),
                n.to_string(),
                mops(r.tput_ops),
                f2(r.mean_us),
                f2(r.p99_us),
            ]);
            peaks[slot + 1] = peaks[slot + 1].max(r.tput_ops);
        }
    }
    (t, peaks)
}

/// Figure 7: mean latency vs Zipf coefficient at fixed client count.
pub fn figure7(cfg: &RsExpConfig) -> Table {
    let model = CostModel::testbed();
    let mut t = Table::new(
        &format!(
            "Figure 7: latency vs contention, {} closed-loop clients",
            cfg.zipf_clients
        ),
        &["system", "zipf", "tput_Mops", "mean_us", "p99_us"],
    );
    let sys = build(cfg);
    for &z in &cfg.zipf {
        let r = run_closed_loop(
            &prism_servers(&sys),
            &model,
            VerbPath::Nic,
            cfg.zipf_clients,
            &mut |_| {
                Box::new(PrismRsAdapter::new(
                    sys.prism.open_client(),
                    KeyDist::zipf(cfg.n_blocks, z),
                    cfg.block_size as usize,
                    cfg.write_fraction,
                ))
            },
            cfg.warmup,
            cfg.measure,
            cfg.seed ^ (z * 100.0) as u64,
            &cfg.faults,
        );
        t.row(&[
            "PRISM-RS".into(),
            format!("{z:.2}"),
            mops(r.tput_ops),
            f2(r.mean_us),
            f2(r.p99_us),
        ]);
    }
    for &z in &cfg.zipf {
        sys.abd.reset_locks();
        let seed = cfg.seed ^ 0x5000 ^ (z * 100.0) as u64;
        let r = run_closed_loop(
            &abd_servers(&sys),
            &model,
            VerbPath::Nic,
            cfg.zipf_clients,
            &mut |i| {
                Box::new(AbdLockAdapter::new(
                    sys.abd.open_client(seed ^ i as u64),
                    KeyDist::zipf(cfg.n_blocks, z),
                    cfg.block_size as usize,
                    cfg.write_fraction,
                ))
            },
            cfg.warmup,
            cfg.measure,
            seed,
            &cfg.faults,
        );
        t.row(&[
            "ABDLOCK".into(),
            format!("{z:.2}"),
            mops(r.tput_ops),
            f2(r.mean_us),
            f2(r.p99_us),
        ]);
    }
    t
}

/// Open-loop latency-under-load sweep for PRISM-RS (uniform keys,
/// `cfg.write_fraction` writes, 3 replicas): the replicated-store
/// counterpart of [`crate::kv_exp::open_loop`].
pub fn open_loop(cfg: &RsExpConfig, knobs: &OpenLoopKnobs) -> (Table, Vec<(f64, OpenLoopResult)>) {
    let mut rs_config = RsConfig::paper(cfg.n_blocks, cfg.block_size);
    // Same spare sizing rationale as the KV open-loop sweep: provision
    // for the live slots, not the logical population.
    rs_config.spare_buffers += 32 * (knobs.live_slots() as u64 + 16);
    let n_blocks = cfg.n_blocks;
    let block_size = cfg.block_size as usize;
    let write_fraction = cfg.write_fraction;
    // One 3-replica cluster for the whole sweep: each point's adapters
    // reopen connections from the recycled slot pool (see
    // `sweep_rates`).
    let cluster = Rc::new(RsCluster::new(3, &rs_config));
    let servers: Vec<Arc<prism_core::PrismServer>> = (0..3)
        .map(|i| Arc::clone(cluster.replica(i).server()))
        .collect();
    let results = sweep_rates(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        knobs,
        cfg.seed,
        &cfg.faults,
        || {
            let cluster = Rc::clone(&cluster);
            Rc::new(RefCell::new(move |_i: usize| {
                Box::new(PrismRsAdapter::new(
                    cluster.open_client(),
                    KeyDist::uniform(n_blocks),
                    block_size,
                    write_fraction,
                )) as Box<dyn ProtoAdapter>
            })) as AdapterFactory
        },
    );
    let mut t = Table::new(
        &format!(
            "Open-loop PRISM-RS latency under load ({} logical clients on {} aggregates, {:.0}% writes, 3 replicas)",
            knobs.logical_clients,
            knobs.actors,
            cfg.write_fraction * 100.0
        ),
        &[
            "rate_Mops",
            "tput_Mops",
            "mean_us",
            "p50_us",
            "p99_us",
            "p999_us",
            "backlogged",
        ],
    );
    for (rate, r) in &results {
        t.row(&[
            mops(*rate),
            mops(r.tput_ops),
            f2(r.mean_us),
            f2(r.p50_us),
            f2(r.p99_us),
            f2(r.p999_us),
            r.backlogged.to_string(),
        ]);
    }
    (t, results)
}

/// Sharded open-loop sweep: S independent 3-replica groups behind one
/// seeded shard map ([`crate::cluster::RsShards`]). Each block's
/// quorum protocol runs entirely inside its home group; the sweep
/// measures how the replicated store's knee scales with group count
/// when routing is pure client-side.
pub fn open_loop_sharded(
    cfg: &RsExpConfig,
    knobs: &OpenLoopKnobs,
    groups: usize,
) -> (Table, Vec<(f64, OpenLoopResult)>) {
    let mut rs_config = RsConfig::paper(cfg.n_blocks, cfg.block_size);
    // Same spare sizing rationale as the KV open-loop sweep: provision
    // for the live slots, not the logical population.
    rs_config.spare_buffers += 32 * (knobs.live_slots() as u64 + 16);
    let seed = cfg.seed;
    let n_blocks = cfg.n_blocks;
    let block_size = cfg.block_size as usize;
    let write_fraction = cfg.write_fraction;
    // One sharded cluster for the whole sweep; points reopen recycled
    // connection slots (see `sweep_rates`).
    let shards = Rc::new(RsShards::new(groups, 3, &rs_config, seed));
    let servers = shards.servers();
    let results = sweep_rates(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        knobs,
        cfg.seed,
        &cfg.faults,
        || {
            let shards = Rc::clone(&shards);
            let map = shards.map();
            Rc::new(RefCell::new(move |_i: usize| {
                Box::new(PrismRsAdapter::sharded(
                    shards.open_clients(),
                    map.clone(),
                    KeyDist::uniform(n_blocks),
                    block_size,
                    write_fraction,
                )) as Box<dyn ProtoAdapter>
            })) as AdapterFactory
        },
    );
    let mut t = Table::new(
        &format!(
            "Open-loop PRISM-RS latency under load ({} groups x 3 replicas, {} logical clients on {} aggregates, {:.0}% writes)",
            groups,
            knobs.logical_clients,
            knobs.actors,
            cfg.write_fraction * 100.0
        ),
        &[
            "rate_Mops",
            "tput_Mops",
            "mean_us",
            "p50_us",
            "p99_us",
            "p999_us",
            "backlogged",
        ],
    );
    for (rate, r) in &results {
        t.row(&[
            mops(*rate),
            mops(r.tput_ops),
            f2(r.mean_us),
            f2(r.p50_us),
            f2(r.p99_us),
            f2(r.p999_us),
            r.backlogged.to_string(),
        ]);
    }
    (t, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latencies(t: &Table, system: &str) -> Vec<(f64, f64)> {
        // (x, mean_us) rows for one system.
        t.to_csv()
            .lines()
            .skip(1)
            .filter_map(|l| {
                let c: Vec<&str> = l.split(',').collect();
                (c[0] == system).then(|| (c[1].parse().unwrap(), c[3].parse().unwrap()))
            })
            .collect()
    }

    #[test]
    fn figure6_shape() {
        let cfg = RsExpConfig::quick();
        let (t, peaks) = figure6(&cfg);
        // PRISM-RS outperforms ABDLOCK in peak throughput, which in turn
        // beats the software-RDMA variant (Figure 6).
        assert!(
            peaks[0] > peaks[1],
            "PRISM {} vs ABDLOCK {}",
            peaks[0],
            peaks[1]
        );
        assert!(
            peaks[1] > peaks[2],
            "ABDLOCK HW {} vs SW {}",
            peaks[1],
            peaks[2]
        );
        // Unloaded latency: PRISM-RS (2 round trips) beats ABDLOCK (4).
        let p = latencies(&t, "PRISM-RS")[0].1;
        let a = latencies(&t, "ABDLOCK")[0].1;
        assert!(p < a, "PRISM-RS {p}us vs ABDLOCK {a}us at 1 client");
    }

    #[test]
    fn figure7_contention_shape() {
        let cfg = RsExpConfig::quick();
        let t = figure7(&cfg);
        let prism = latencies(&t, "PRISM-RS");
        let abd = latencies(&t, "ABDLOCK");
        // PRISM-RS stays roughly flat from uniform to high skew...
        let prism_growth = prism.last().unwrap().1 / prism[0].1;
        assert!(
            prism_growth < 2.0,
            "PRISM-RS grew {prism_growth}x under skew"
        );
        // ...while ABDLOCK degrades much more.
        let abd_growth = abd.last().unwrap().1 / abd[0].1;
        assert!(
            abd_growth > prism_growth * 1.5,
            "ABDLOCK growth {abd_growth}x vs PRISM {prism_growth}x"
        );
    }

    #[test]
    fn open_loop_rs_completes_offered_load() {
        let cfg = RsExpConfig::quick();
        let mut knobs = OpenLoopKnobs::quick();
        // Replicated writes cost more than KV GETs; keep the rates
        // comfortably below the 3-replica saturation point.
        knobs.rates_per_sec = vec![50_000.0, 200_000.0];
        let (_t, results) = open_loop(&cfg, &knobs);
        for (rate, r) in &results {
            assert!(r.completed > 0, "no completions at {rate} ops/s");
            let ratio = r.tput_ops / rate;
            assert!(
                (0.6..1.4).contains(&ratio),
                "offered {rate} vs delivered {} (ratio {ratio})",
                r.tput_ops
            );
        }
    }
}
