//! Chaos linearizability gate: history-recording adapters and a
//! bounded Wing–Gong checker.
//!
//! A chaos run (seeded crash/partition/loss schedule, see
//! [`prism_simnet::fault::FaultPlan::chaos`]) drives the real protocol
//! stacks through the DES while every operation's invocation time,
//! completion time, and observed/written value is appended to a shared
//! history. Afterwards [`check_history`] verifies the history is
//! linearizable per register: there exists a total order of operations,
//! consistent with real-time precedence, under which every read
//! returns the latest written value.
//!
//! Values are reduced to 64-bit nonces: each write stamps a globally
//! unique nonce into the first eight bytes of its value, so a read's
//! observation identifies exactly one write (nonce 0 is the initial,
//! never-written state). Operations cut short by client crashes,
//! give-ups, or the end of the run are *uncertain*: an unfinished read
//! observed nothing and is discarded, while an unfinished write may or
//! may not have taken effect, so the checker is free to place it
//! anywhere after its invocation — or nowhere at all.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Mutex};

use prism_core::msg::Reply;
use prism_kv::hash::key_bytes;
use prism_kv::prism_kv::{GetOp, PrismKvClient, PutOp};
use prism_kv::{KvOutcome, KvStep};
use prism_rs::prism_rs::{RsClient, RsOp};
use prism_rs::RsOutcome;
use prism_simnet::rng::SimRng;
use prism_simnet::time::{SimDuration, SimTime};

use crate::adapters::{kv_harvest, rs_harvest};
use crate::cluster::{MapHandle, ShardMap};
use crate::netsim::{AdapterStep, Outbound, ProtoAdapter};

/// Transport-retry policy of the chaos adapters (mirrors the
/// experiment adapters): reissue after a capped exponential backoff,
/// then give the operation up.
const RETRY_BUDGET: u32 = 6;

fn backoff(retry: u32) -> SimDuration {
    let exp = retry.saturating_sub(1).min(6);
    SimDuration::from_nanos((8_000u64 << exp).min(64_000))
}

fn tag(seq: u64, phase: u32, idx: u32) -> u64 {
    (seq << 32) | ((phase as u64) << 16) | idx as u64
}

fn untag(t: u64) -> (u64, u32, u32) {
    (t >> 32, ((t >> 16) & 0xFFFF) as u32, (t & 0xFFFF) as u32)
}

/// What one recorded operation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistKind {
    /// A read that observed `nonce` (0 = the initial value).
    Get {
        /// The nonce extracted from the value read.
        nonce: u64,
    },
    /// A write of `nonce`.
    Put {
        /// The nonce stamped into the value written.
        nonce: u64,
    },
}

/// One operation in a chaos history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistOp {
    /// Index of the invoking client.
    pub client: usize,
    /// The register operated on (block or key id).
    pub key: u64,
    /// Virtual time of the invocation.
    pub invoke: SimTime,
    /// Virtual time of the completion; `None` for an operation the
    /// client abandoned (crash, give-up, or run end) whose effect is
    /// therefore uncertain.
    pub complete: Option<SimTime>,
    /// What the operation did.
    pub kind: HistKind,
}

/// Shared sink the chaos adapters append to.
pub type History = Arc<Mutex<Vec<HistOp>>>;

/// A unique write nonce: client in the high bits, a per-client counter
/// below, never 0 (0 is the initial register value).
fn nonce(client: usize, ctr: u64) -> u64 {
    ((client as u64 + 1) << 40) | ctr
}

fn stamp(len: usize, nonce: u64) -> Vec<u8> {
    let mut v = vec![0u8; len.max(8)];
    v[..8].copy_from_slice(&nonce.to_le_bytes());
    v
}

fn read_nonce(value: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    let n = value.len().min(8);
    b[..n].copy_from_slice(&value[..n]);
    u64::from_le_bytes(b)
}

// ---------------------------------------------------------------------
// History-recording adapters
// ---------------------------------------------------------------------

/// Closed-loop PRISM-RS client that records a linearizability history.
///
/// Structurally a [`crate::adapters::PrismRsAdapter`]: quorum machines
/// outlive their completion point (stragglers feed reclamation), a
/// quorum failure retries the whole operation under a fresh sequence
/// number, and an exhausted retry budget gives the operation up. On top
/// of that it stamps every write with a unique nonce and appends
/// invoke/complete records to the shared history.
pub struct ChaosRsAdapter {
    clients: Vec<RsClient>,
    map: ShardMap,
    /// Live map source; `None` for a fixed-topology run.
    handle: Option<MapHandle>,
    /// Replicas per group (flat-index stride, see
    /// [`crate::cluster::RsShards`]).
    replicas: usize,
    /// Home group of the in-flight op.
    group: usize,
    id: usize,
    n_blocks: u64,
    block_size: usize,
    write_fraction: f64,
    seq: u64,
    nonce_ctr: u64,
    now: SimTime,
    current: Option<RsOp>,
    lingering: HashMap<u64, (RsOp, usize)>,
    outstanding: usize,
    op: Option<(u64, Option<Vec<u8>>)>,
    retries: u32,
    rec: Option<usize>,
    history: History,
}

impl ChaosRsAdapter {
    /// Creates the single-group adapter for client `id`.
    pub fn new(
        client: RsClient,
        id: usize,
        n_blocks: u64,
        block_size: usize,
        write_fraction: f64,
        history: History,
    ) -> Self {
        Self::sharded(
            vec![client],
            ShardMap::single(),
            id,
            n_blocks,
            block_size,
            write_fraction,
            history,
        )
    }

    /// Creates a routed adapter over one client per replica group:
    /// every block's quorum protocol runs inside its home group, and
    /// the recorded history spans the whole cluster.
    ///
    /// # Panics
    ///
    /// Panics if the client count does not match the map's shard count
    /// or the groups disagree on replica count.
    #[allow(clippy::too_many_arguments)]
    pub fn sharded(
        clients: Vec<RsClient>,
        map: ShardMap,
        id: usize,
        n_blocks: u64,
        block_size: usize,
        write_fraction: f64,
        history: History,
    ) -> Self {
        assert_eq!(
            clients.len(),
            map.shards(),
            "one client per replica group in group order"
        );
        let replicas = clients[0].n();
        assert!(
            clients.iter().all(|c| c.n() == replicas),
            "uniform replica count across groups"
        );
        ChaosRsAdapter {
            clients,
            map,
            handle: None,
            replicas,
            group: 0,
            id,
            n_blocks,
            block_size,
            write_fraction,
            seq: 0,
            nonce_ctr: 0,
            now: SimTime::ZERO,
            current: None,
            lingering: HashMap::new(),
            outstanding: 0,
            op: None,
            retries: 0,
            rec: None,
            history,
        }
    }

    /// Creates a routed adapter whose map can change under it: the
    /// cluster's [`MapHandle`] is refetched whenever a replica fences a
    /// request with [`prism_rdma::RdmaError::StaleEpoch`], and the
    /// in-flight operation is reissued against the block's new home
    /// group — with its history record still open, so the checker sees
    /// the reroute as ordinary concurrency. Clients must cover every
    /// group the map can grow into (standby groups included), in group
    /// order.
    #[allow(clippy::too_many_arguments)]
    pub fn sharded_live(
        clients: Vec<RsClient>,
        handle: MapHandle,
        id: usize,
        n_blocks: u64,
        block_size: usize,
        write_fraction: f64,
        history: History,
    ) -> Self {
        let map = handle.snapshot();
        assert!(
            clients.len() >= map.shards(),
            "clients must cover every group the map can grow into"
        );
        let replicas = clients[0].n();
        assert!(
            clients.iter().all(|c| c.n() == replicas),
            "uniform replica count across groups"
        );
        ChaosRsAdapter {
            clients,
            map,
            handle: Some(handle),
            replicas,
            group: 0,
            id,
            n_blocks,
            block_size,
            write_fraction,
            seq: 0,
            nonce_ctr: 0,
            now: SimTime::ZERO,
            current: None,
            lingering: HashMap::new(),
            outstanding: 0,
            op: None,
            retries: 0,
            rec: None,
            history,
        }
    }

    fn record(&mut self, key: u64, kind: HistKind) {
        let mut h = self.history.lock().expect("history lock");
        h.push(HistOp {
            client: self.id,
            key,
            invoke: self.now,
            complete: None,
            kind,
        });
        self.rec = Some(h.len() - 1);
    }

    fn close(&mut self, kind: Option<HistKind>) {
        if let Some(i) = self.rec.take() {
            let mut h = self.history.lock().expect("history lock");
            h[i].complete = Some(self.now);
            if let Some(kind) = kind {
                h[i].kind = kind;
            }
        }
    }

    fn issue(&mut self) -> Vec<Outbound> {
        self.seq += 1;
        self.outstanding = 0;
        let (block, value) = self.op.clone().expect("op set");
        self.group = self.map.shard_of_id(block);
        let (op, step) = match value {
            Some(v) => self.clients[self.group].put(block, v),
            None => self.clients[self.group].get(block),
        };
        self.current = Some(op);
        self.absorb(step).0
    }

    fn absorb(&mut self, step: prism_rs::prism_rs::RsStep) -> (Vec<Outbound>, Option<RsOutcome>) {
        let base = self.group * self.replicas;
        let mut sends = Vec::new();
        for (replica, phase, req) in step.send {
            self.outstanding += 1;
            sends.push(Outbound {
                server: base + replica,
                tag: tag(self.seq, phase, (base + replica) as u32),
                req,
                background: false,
                epoch: self.map.epoch(),
            });
        }
        for (replica, req) in step.background {
            sends.push(Outbound {
                server: base + replica,
                tag: 0,
                req,
                background: true,
                epoch: 0,
            });
        }
        (sends, step.done)
    }
}

impl ProtoAdapter for ChaosRsAdapter {
    fn start(&mut self, rng: &mut SimRng) -> Vec<Outbound> {
        // A record still open here was cut short by a client crash: its
        // `complete` stays `None` (unfinished read → discarded,
        // unfinished write → uncertain).
        self.rec = None;
        let block = rng.gen_range(self.n_blocks);
        let value = if rng.gen_bool(self.write_fraction) {
            self.nonce_ctr += 1;
            let n = nonce(self.id, self.nonce_ctr);
            self.record(block, HistKind::Put { nonce: n });
            Some(stamp(self.block_size, n))
        } else {
            self.record(block, HistKind::Get { nonce: 0 });
            None
        };
        self.op = Some((block, value));
        self.retries = 0;
        self.issue()
    }

    fn resume(&mut self) -> Vec<Outbound> {
        // Operation-level retry: same block, same value (and nonce),
        // fresh sequence number, but the *same* machine — a PUT whose
        // write phase already chose its tag must retry under that tag
        // (see RsOp::reissue), or the retry could resurrect its value
        // over a later write readers already observed. Stragglers of
        // the abandoned attempt are parked under the old seq so their
        // reclamation still lands.
        let Some(mut op) = self.current.take() else {
            return self.issue();
        };
        if self.outstanding > 0 {
            self.lingering
                .insert(self.seq, (op.clone(), self.outstanding));
        }
        self.seq += 1;
        self.outstanding = 0;
        // Re-route through the current map: a no-op unless a stale-epoch
        // fence refreshed it since the attempt started.
        let (block, _) = self.op.clone().expect("op set");
        self.group = self.map.shard_of_id(block);
        let step = op.reissue(&self.clients[self.group]);
        self.current = Some(op);
        self.absorb(step).0
    }

    fn note_time(&mut self, now: SimTime) {
        self.now = now;
    }

    fn on_reply(&mut self, t: u64, reply: Reply) -> AdapterStep {
        let (seq, phase, idx) = untag(t);
        // The tag carries the flat server index; decompose it so a
        // straggler from a previous op still lands in its own group.
        let group = idx as usize / self.replicas;
        let replica = idx as usize % self.replicas;
        if let Some(inc) = reply.stale_incarnation() {
            // An amnesia-restarted replica fenced our pre-crash rkeys:
            // restamp them so the operation-level retry reaches it.
            self.clients[group].refence(replica, inc);
        }
        if let Some(current_epoch) = reply.stale_epoch() {
            if seq == self.seq && self.current.is_some() {
                // A replica fenced this attempt under a newer shard-map
                // epoch: refetch the map and reissue the same machine
                // (same nonce, same history record — the reroute looks
                // like ordinary concurrency to the checker) against the
                // block's new home group. The fenced leg never executed;
                // stragglers park under the old seq as in resume().
                if let Some(h) = &self.handle {
                    let m = h.snapshot();
                    if m.epoch() > self.map.epoch() {
                        self.map = m;
                    }
                }
                self.outstanding -= 1;
                let mut op = self.current.take().expect("op in flight");
                if self.map.epoch() >= current_epoch {
                    if self.outstanding > 0 {
                        self.lingering
                            .insert(self.seq, (op.clone(), self.outstanding));
                    }
                    self.seq += 1;
                    self.outstanding = 0;
                    let (block, _) = self.op.clone().expect("op set");
                    self.group = self.map.shard_of_id(block);
                    let step = op.reissue(&self.clients[self.group]);
                    self.current = Some(op);
                    let (sends, _) = self.absorb(step);
                    return AdapterStep::Wait(sends);
                }
                // The fencing epoch is ahead of anything we can fetch:
                // fall back to an op-level retry with backoff.
                if self.retries >= RETRY_BUDGET {
                    if self.outstanding > 0 {
                        self.lingering.insert(self.seq, (op, self.outstanding));
                    }
                    self.rec = None; // abandoned → uncertain
                    return AdapterStep::GiveUp { sends: Vec::new() };
                }
                self.current = Some(op);
                self.retries += 1;
                return AdapterStep::Retry {
                    sends: Vec::new(),
                    wait: backoff(self.retries),
                };
            }
            // A fence NACK trailing an abandoned attempt falls through
            // to the straggler path: the machine counts it as a failed
            // leg, keeping the lingering bookkeeping exact.
        }
        if seq != self.seq || self.current.is_none() {
            // Straggler for a completed op: feed it for reclamation.
            let mut sends = Vec::new();
            let mut finished = false;
            let base = group * self.replicas;
            if let Some((op, remaining)) = self.lingering.get_mut(&seq) {
                let step = op.on_reply(&self.clients[group], phase, replica, reply);
                for (r, req) in step.background {
                    sends.push(Outbound {
                        server: base + r,
                        tag: 0,
                        req,
                        background: true,
                        epoch: 0,
                    });
                }
                *remaining -= 1;
                finished = *remaining == 0;
            }
            if finished {
                self.lingering.remove(&seq);
            }
            return AdapterStep::Wait(sends);
        }
        let mut op = self.current.take().expect("op in flight");
        self.outstanding -= 1;
        let step = op.on_reply(&self.clients[self.group], phase, replica, reply);
        let (sends, done) = self.absorb(step);
        match done {
            Some(outcome) => {
                if matches!(outcome, RsOutcome::Failed(_)) && self.retries < RETRY_BUDGET {
                    // Keep the machine for the reissue; until then it
                    // continues absorbing this attempt's stragglers.
                    self.current = Some(op);
                    self.retries += 1;
                    return AdapterStep::Retry {
                        sends,
                        wait: backoff(self.retries),
                    };
                }
                if self.outstanding > 0 {
                    self.lingering.insert(self.seq, (op, self.outstanding));
                }
                match outcome {
                    RsOutcome::Failed(_) => {
                        // Abandoned: the record stays open (uncertain).
                        self.rec = None;
                        AdapterStep::GiveUp { sends }
                    }
                    RsOutcome::Value(v) => {
                        self.close(Some(HistKind::Get {
                            nonce: read_nonce(&v),
                        }));
                        AdapterStep::Done {
                            sends,
                            client_compute: SimDuration::ZERO,
                            failed: false,
                        }
                    }
                    RsOutcome::Written => {
                        self.close(None);
                        AdapterStep::Done {
                            sends,
                            client_compute: SimDuration::ZERO,
                            failed: false,
                        }
                    }
                }
            }
            None => {
                self.current = Some(op);
                AdapterStep::Wait(sends)
            }
        }
    }

    fn on_stale_reply(&mut self, _tag: u64, server: usize, reply: Reply) -> Vec<Outbound> {
        rs_harvest(server, reply)
    }

    fn hedge_eligible(&self, t: u64) -> bool {
        // Quorum-read legs only (see PrismRsAdapter::hedge_eligible):
        // all GET phases are idempotent reads, so the race's loser is
        // just one more straggler.
        untag(t).0 == self.seq && self.current.is_some() && matches!(self.op, Some((_, None)))
    }

    fn abandon(&mut self) -> Vec<Outbound> {
        // Deadline shed mid-quorum: park the machine exactly as a
        // reissue would (stragglers still resolve and reclaim), and
        // leave the history record open — a shed PUT may have partially
        // executed, so the checker must treat it as uncertain.
        if let Some(op) = self.current.take() {
            if self.outstanding > 0 {
                self.lingering.insert(self.seq, (op, self.outstanding));
            }
        }
        self.outstanding = 0;
        self.op = None;
        self.retries = 0;
        self.rec = None;
        Vec::new()
    }
}

enum KvMachine {
    Get(GetOp),
    Put(PutOp),
}

/// Closed-loop PRISM-KV client that records a linearizability history.
///
/// Mirrors [`crate::adapters::PrismKvAdapter`]'s transport-retry policy
/// (a synthesized timeout reissues the op, an exhausted budget gives it
/// up) while stamping writes with unique nonces and recording history.
/// An absent key reads as nonce 0, so the store needs no preload.
pub struct ChaosKvAdapter {
    clients: Vec<PrismKvClient>,
    map: ShardMap,
    /// Live map source; `None` for a fixed-topology run.
    handle: Option<MapHandle>,
    /// Home shard of the in-flight op.
    shard: usize,
    id: usize,
    n_keys: u64,
    value_len: usize,
    write_fraction: f64,
    nonce_ctr: u64,
    now: SimTime,
    current: Option<KvMachine>,
    op: Option<(u64, Option<Vec<u8>>)>,
    retries: u32,
    rec: Option<usize>,
    history: History,
}

impl ChaosKvAdapter {
    /// Creates the single-server adapter for client `id`.
    pub fn new(
        client: PrismKvClient,
        id: usize,
        n_keys: u64,
        value_len: usize,
        write_fraction: f64,
        history: History,
    ) -> Self {
        Self::sharded(
            vec![client],
            ShardMap::single(),
            id,
            n_keys,
            value_len,
            write_fraction,
            history,
        )
    }

    /// Creates a routed adapter over one client per shard: operations
    /// run against each key's home shard while the recorded history
    /// spans the whole cluster.
    ///
    /// # Panics
    ///
    /// Panics if the client count does not match the map's shard count.
    #[allow(clippy::too_many_arguments)]
    pub fn sharded(
        clients: Vec<PrismKvClient>,
        map: ShardMap,
        id: usize,
        n_keys: u64,
        value_len: usize,
        write_fraction: f64,
        history: History,
    ) -> Self {
        assert_eq!(
            clients.len(),
            map.shards(),
            "one client per shard in shard order"
        );
        ChaosKvAdapter {
            clients,
            map,
            handle: None,
            shard: 0,
            id,
            n_keys,
            value_len,
            write_fraction,
            nonce_ctr: 0,
            now: SimTime::ZERO,
            current: None,
            op: None,
            retries: 0,
            rec: None,
            history,
        }
    }

    /// Creates a routed adapter whose map can change under it: the
    /// cluster's [`MapHandle`] is refetched whenever a server fences a
    /// request with [`prism_rdma::RdmaError::StaleEpoch`], and the
    /// in-flight operation restarts against the key's new home shard —
    /// with its history record still open, so the checker sees the
    /// reroute as ordinary concurrency. Clients must cover every shard
    /// the map can grow into (standby shards included), in shard order.
    #[allow(clippy::too_many_arguments)]
    pub fn sharded_live(
        clients: Vec<PrismKvClient>,
        handle: MapHandle,
        id: usize,
        n_keys: u64,
        value_len: usize,
        write_fraction: f64,
        history: History,
    ) -> Self {
        let map = handle.snapshot();
        assert!(
            clients.len() >= map.shards(),
            "clients must cover every shard the map can grow into"
        );
        ChaosKvAdapter {
            clients,
            map,
            handle: Some(handle),
            shard: 0,
            id,
            n_keys,
            value_len,
            write_fraction,
            nonce_ctr: 0,
            now: SimTime::ZERO,
            current: None,
            op: None,
            retries: 0,
            rec: None,
            history,
        }
    }

    fn record(&mut self, key: u64, kind: HistKind) {
        let mut h = self.history.lock().expect("history lock");
        h.push(HistOp {
            client: self.id,
            key,
            invoke: self.now,
            complete: None,
            kind,
        });
        self.rec = Some(h.len() - 1);
    }

    fn close(&mut self, kind: Option<HistKind>) {
        if let Some(i) = self.rec.take() {
            let mut h = self.history.lock().expect("history lock");
            h[i].complete = Some(self.now);
            if let Some(kind) = kind {
                h[i].kind = kind;
            }
        }
    }

    fn issue(&mut self) -> Vec<Outbound> {
        let (key, value) = self.op.clone().expect("op set");
        let kb = key_bytes(key);
        self.shard = self.map.shard_of(&kb);
        let client = &self.clients[self.shard];
        let (machine, req) = match value {
            Some(v) => {
                let (m, r) = client.put(&kb, &v);
                (KvMachine::Put(m), r)
            }
            None => {
                let (m, r) = client.get(&kb);
                (KvMachine::Get(m), r)
            }
        };
        self.current = Some(machine);
        vec![Outbound {
            server: self.shard,
            tag: 0,
            req,
            background: false,
            epoch: self.map.epoch(),
        }]
    }
}

impl ProtoAdapter for ChaosKvAdapter {
    fn start(&mut self, rng: &mut SimRng) -> Vec<Outbound> {
        // See ChaosRsAdapter::start: an open record here was cut short
        // by a client crash and stays uncertain.
        self.rec = None;
        let key = rng.gen_range(self.n_keys);
        let value = if rng.gen_bool(self.write_fraction) {
            self.nonce_ctr += 1;
            let n = nonce(self.id, self.nonce_ctr);
            self.record(key, HistKind::Put { nonce: n });
            Some(stamp(self.value_len, n))
        } else {
            self.record(key, HistKind::Get { nonce: 0 });
            None
        };
        self.op = Some((key, value));
        self.retries = 0;
        self.issue()
    }

    fn resume(&mut self) -> Vec<Outbound> {
        // Transport retry: re-arm the *same* machine (same nonce, same
        // entry version). A PUT whose install chain went unanswered may
        // already have published; re-running it blindly would resurrect
        // its nonce over a newer racing write — exactly the violation
        // the checker below exists to catch — so the machine's reissue
        // path re-reads the slot and decides.
        let client = &self.clients[self.shard];
        let req = match self.current.as_mut() {
            Some(KvMachine::Get(m)) => m.reissue(client),
            Some(KvMachine::Put(m)) => m.reissue(client),
            None => return self.issue(),
        };
        vec![Outbound {
            server: self.shard,
            tag: 0,
            req,
            background: false,
            epoch: self.map.epoch(),
        }]
    }

    fn note_time(&mut self, now: SimTime) {
        self.now = now;
    }

    fn on_reply(&mut self, _tag: u64, reply: Reply) -> AdapterStep {
        if let Some(inc) = reply.stale_incarnation() {
            // An amnesia-restarted shard fenced our pre-crash rkeys:
            // restamp them with its new incarnation (the rejoin replay
            // is server-side; the client only needs fresh capabilities)
            // and re-arm the same machine via resume() — the fenced
            // request never executed, and the history record stays open.
            self.clients[self.shard].refence(inc);
            if self.retries >= RETRY_BUDGET {
                self.current = None;
                self.op = None;
                self.rec = None; // abandoned → uncertain
                return AdapterStep::GiveUp { sends: Vec::new() };
            }
            self.retries += 1;
            return AdapterStep::Retry {
                sends: Vec::new(),
                wait: backoff(self.retries),
            };
        }
        if let Some(current) = reply.stale_epoch() {
            // The server fenced our request under a newer shard-map
            // epoch, so it never executed: refetch the map, reroute the
            // key, and restart the machine from a clean probe at the
            // key's (possibly new) home shard. The history record stays
            // open — same logical operation, same nonce.
            if let Some(h) = &self.handle {
                let m = h.snapshot();
                if m.epoch() > self.map.epoch() {
                    self.map = m;
                }
            }
            if self.map.epoch() >= current {
                self.current = None;
                return AdapterStep::Wait(self.issue());
            }
            // The fencing epoch is ahead of anything we can fetch: fall
            // back to a transport retry with backoff.
            self.current = None;
            if self.retries >= RETRY_BUDGET {
                self.op = None;
                self.rec = None; // abandoned → uncertain
                return AdapterStep::GiveUp { sends: Vec::new() };
            }
            self.retries += 1;
            return AdapterStep::Retry {
                sends: Vec::new(),
                wait: backoff(self.retries),
            };
        }
        if matches!(reply, Reply::Verb(Err(_))) {
            // Synthesized timeout from the fault layer. The machine is
            // kept: resume() re-arms it in place.
            if self.retries >= RETRY_BUDGET {
                self.current = None;
                self.op = None;
                self.rec = None; // abandoned → uncertain
                return AdapterStep::GiveUp { sends: Vec::new() };
            }
            self.retries += 1;
            return AdapterStep::Retry {
                sends: Vec::new(),
                wait: backoff(self.retries),
            };
        }
        let mut machine = self.current.take().expect("op in flight");
        let client = &self.clients[self.shard];
        let step = match &mut machine {
            KvMachine::Get(m) => m.on_reply(client, reply),
            KvMachine::Put(m) => m.on_reply(client, reply),
        };
        self.current = Some(machine);
        match step {
            KvStep::Send {
                request,
                background,
            } => {
                let mut sends = vec![Outbound {
                    server: self.shard,
                    tag: 0,
                    req: request,
                    background: false,
                    epoch: self.map.epoch(),
                }];
                sends.extend(background.map(|req| Outbound {
                    server: self.shard,
                    tag: 0,
                    req,
                    background: true,
                    epoch: 0,
                }));
                AdapterStep::Wait(sends)
            }
            KvStep::Done {
                outcome,
                background,
            } => {
                self.current = None;
                let sends: Vec<Outbound> = background
                    .map(|req| {
                        vec![Outbound {
                            server: self.shard,
                            tag: 0,
                            req,
                            background: true,
                            epoch: 0,
                        }]
                    })
                    .unwrap_or_default();
                let failed = match outcome {
                    KvOutcome::Value(v) => {
                        self.close(Some(HistKind::Get {
                            nonce: v.as_deref().map_or(0, read_nonce),
                        }));
                        false
                    }
                    KvOutcome::Written => {
                        self.close(None);
                        false
                    }
                    // A protocol-level failure (pool exhausted, retry
                    // budget spent): the record stays open — a failed
                    // PUT's chain may have partially executed.
                    KvOutcome::Failed(_) => {
                        self.rec = None;
                        true
                    }
                };
                AdapterStep::Done {
                    sends,
                    client_compute: SimDuration::ZERO,
                    failed,
                }
            }
        }
    }

    fn on_stale_reply(&mut self, _tag: u64, server: usize, reply: Reply) -> Vec<Outbound> {
        kv_harvest(server, reply)
    }

    fn hedge_eligible(&self, _tag: u64) -> bool {
        // GET machines only (see PrismKvAdapter::hedge_eligible): every
        // GET leg is an idempotent read; PUT chains allocate and CAS.
        matches!(self.current, Some(KvMachine::Get(_)))
    }

    fn abandon(&mut self) -> Vec<Outbound> {
        // Deadline shed: drop the machine (KV holds one request in
        // flight; raced-reply harvesting is stateless) and leave the
        // history record open — a shed PUT is uncertain.
        self.current = None;
        self.op = None;
        self.retries = 0;
        self.rec = None;
        Vec::new()
    }
}

// ---------------------------------------------------------------------
// Linearizability checker
// ---------------------------------------------------------------------

/// Checks a whole history for per-register linearizability.
///
/// Operations are grouped by `key` (each key is an independent
/// register) and each group is checked with a memoized Wing–Gong
/// search. Returns the first non-linearizable key and its operation
/// count on failure.
pub fn check_history(history: &[HistOp]) -> Result<(), String> {
    let mut by_key: BTreeMap<u64, Vec<&HistOp>> = BTreeMap::new();
    for op in history {
        // An unfinished read observed nothing and constrains nothing.
        if op.complete.is_none() && matches!(op.kind, HistKind::Get { .. }) {
            continue;
        }
        by_key.entry(op.key).or_default().push(op);
    }
    for (key, mut ops) in by_key {
        ops.sort_by_key(|o| (o.invoke, o.complete, o.client));
        if !check_register(&ops) {
            return Err(format!(
                "key {key}: history of {} ops is not linearizable",
                ops.len()
            ));
        }
    }
    Ok(())
}

/// Wing–Gong linearizability check for one register, with memoization
/// on (done-set, register-value) states.
///
/// An operation may be linearized next only if no other pending
/// operation completed before it was invoked (real-time order is
/// preserved); a read is valid only if its observed nonce equals the
/// register. Writes with `complete == None` are uncertain: they may be
/// linearized anywhere after their invocation or skipped entirely, so
/// the search succeeds once every *certain* operation is placed.
fn check_register(ops: &[&HistOp]) -> bool {
    let n = ops.len();
    let certain = ops.iter().filter(|o| o.complete.is_some()).count();
    let mut done = vec![0u64; n.div_ceil(64)];
    let mut seen: HashSet<(Vec<u64>, u64)> = HashSet::new();
    dfs(ops, &mut done, 0, certain, &mut seen)
}

fn dfs(
    ops: &[&HistOp],
    done: &mut Vec<u64>,
    reg: u64,
    certain_left: usize,
    seen: &mut HashSet<(Vec<u64>, u64)>,
) -> bool {
    if certain_left == 0 {
        return true;
    }
    if !seen.insert((done.clone(), reg)) {
        return false;
    }
    // The earliest completion among pending certain ops bounds which
    // ops may linearize next: anything invoked after it must come
    // later.
    let mut bound = None;
    for (i, op) in ops.iter().enumerate() {
        if done[i / 64] & (1 << (i % 64)) == 0 {
            if let Some(c) = op.complete {
                bound = Some(bound.map_or(c, |b: SimTime| b.min(c)));
            }
        }
    }
    for (i, op) in ops.iter().enumerate() {
        if done[i / 64] & (1 << (i % 64)) != 0 {
            continue;
        }
        if let Some(b) = bound {
            if op.invoke > b {
                // Ops are sorted by invoke; everything later is also
                // past the bound.
                break;
            }
        }
        let next_reg = match op.kind {
            HistKind::Get { nonce } => {
                if nonce != reg {
                    continue;
                }
                reg
            }
            HistKind::Put { nonce } => nonce,
        };
        done[i / 64] |= 1 << (i % 64);
        let left = certain_left - usize::from(op.complete.is_some());
        if dfs(ops, done, next_reg, left, seen) {
            return true;
        }
        done[i / 64] &= !(1 << (i % 64));
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(client: usize, invoke: u64, complete: Option<u64>, key: u64, kind: HistKind) -> HistOp {
        HistOp {
            client,
            key,
            invoke: SimTime::from_nanos(invoke),
            complete: complete.map(SimTime::from_nanos),
            kind,
        }
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let h = vec![
            op(0, 0, Some(10), 1, HistKind::Put { nonce: 7 }),
            op(0, 20, Some(30), 1, HistKind::Get { nonce: 7 }),
            op(1, 40, Some(50), 1, HistKind::Put { nonce: 9 }),
            op(1, 60, Some(70), 1, HistKind::Get { nonce: 9 }),
        ];
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn stale_read_after_overwrite_is_rejected() {
        // W(7) then W(9) complete strictly before the read, which
        // nevertheless observes 7: no valid order exists.
        let h = vec![
            op(0, 0, Some(10), 1, HistKind::Put { nonce: 7 }),
            op(0, 20, Some(30), 1, HistKind::Put { nonce: 9 }),
            op(1, 40, Some(50), 1, HistKind::Get { nonce: 7 }),
        ];
        assert!(check_history(&h).is_err());
    }

    #[test]
    fn stale_read_after_acked_write_is_rejected() {
        // The write is acknowledged (certain) strictly before the read
        // begins, yet the read observes the initial value: a lost
        // update no serial order can explain.
        let h = vec![
            op(0, 0, Some(10), 1, HistKind::Put { nonce: 7 }),
            op(1, 20, Some(30), 1, HistKind::Get { nonce: 0 }),
        ];
        assert!(check_history(&h).is_err());
    }

    #[test]
    fn split_brain_register_is_rejected() {
        // Two concurrent writes both complete; two later,
        // non-overlapping reads then observe *different* winners — each
        // side of a split brain believes its own write took effect. The
        // writes may linearize in either order, but the register cannot
        // hold 7 and then 9 (or 9 and then 7) with no write in between.
        let h = vec![
            op(0, 0, Some(10), 1, HistKind::Put { nonce: 7 }),
            op(1, 0, Some(10), 1, HistKind::Put { nonce: 9 }),
            op(0, 20, Some(30), 1, HistKind::Get { nonce: 7 }),
            op(1, 40, Some(50), 1, HistKind::Get { nonce: 9 }),
        ];
        assert!(check_history(&h).is_err());
    }

    #[test]
    fn concurrent_ops_may_linearize_in_either_order() {
        // Two overlapping writes, then reads observing each in turn —
        // valid because the second-observed write may linearize last.
        let h = vec![
            op(0, 0, Some(100), 1, HistKind::Put { nonce: 7 }),
            op(1, 0, Some(100), 1, HistKind::Put { nonce: 9 }),
            op(2, 110, Some(120), 1, HistKind::Get { nonce: 9 }),
        ];
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn read_of_initial_value_uses_nonce_zero() {
        let h = vec![
            op(0, 0, Some(10), 1, HistKind::Get { nonce: 0 }),
            op(0, 20, Some(30), 1, HistKind::Put { nonce: 7 }),
        ];
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn uncertain_write_may_take_effect_or_not() {
        // A crashed client's write has no completion; reads observing
        // it (or not) are both valid.
        let observed = vec![
            op(0, 0, None, 1, HistKind::Put { nonce: 7 }),
            op(1, 50, Some(60), 1, HistKind::Get { nonce: 7 }),
        ];
        assert!(check_history(&observed).is_ok());
        let unobserved = vec![
            op(0, 0, None, 1, HistKind::Put { nonce: 7 }),
            op(1, 50, Some(60), 1, HistKind::Get { nonce: 0 }),
        ];
        assert!(check_history(&unobserved).is_ok());
    }

    #[test]
    fn uncertain_write_cannot_linearize_before_its_invocation() {
        // The read completes before the uncertain write is even
        // invoked, yet observes its nonce: impossible.
        let h = vec![
            op(1, 0, Some(10), 1, HistKind::Get { nonce: 7 }),
            op(0, 50, None, 1, HistKind::Put { nonce: 7 }),
        ];
        assert!(check_history(&h).is_err());
    }

    #[test]
    fn unfinished_reads_are_discarded() {
        // An abandoned read's nonce field is meaningless; it must not
        // constrain the order.
        let h = vec![
            op(0, 0, Some(10), 1, HistKind::Put { nonce: 7 }),
            op(1, 20, None, 1, HistKind::Get { nonce: 999 }),
            op(0, 30, Some(40), 1, HistKind::Get { nonce: 7 }),
        ];
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn keys_are_independent_registers() {
        let h = vec![
            op(0, 0, Some(10), 1, HistKind::Put { nonce: 7 }),
            op(1, 0, Some(10), 2, HistKind::Put { nonce: 9 }),
            op(0, 20, Some(30), 2, HistKind::Get { nonce: 9 }),
            op(1, 20, Some(30), 1, HistKind::Get { nonce: 7 }),
        ];
        assert!(check_history(&h).is_ok());
    }
}
