//! Regenerates every figure of the paper in one run.
//!
//! Usage: `cargo run --release -p prism-harness --bin all_figures [--quick]`
//!
//! Output is the EXPERIMENTS.md measurement section.

use prism_harness::{kv_exp, micro, rs_exp, tx_exp};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "# PRISM reproduction: all figures ({} scale)\n",
        if quick { "quick" } else { "paper" }
    );

    for t in [
        micro::figure1(),
        micro::figure2(),
        micro::section2(),
        micro::chaining_ablation(),
    ] {
        println!("{}", t.render());
    }

    for f in [1.0, 0.5] {
        let cfg = if quick {
            kv_exp::KvExpConfig::quick(f)
        } else {
            kv_exp::KvExpConfig::paper(f)
        };
        let (t, _) = kv_exp::run(&cfg);
        println!("{}", t.render());
    }

    let cfg = if quick {
        rs_exp::RsExpConfig::quick()
    } else {
        rs_exp::RsExpConfig::paper()
    };
    let (t6, _) = rs_exp::figure6(&cfg);
    println!("{}", t6.render());
    println!("{}", rs_exp::figure7(&cfg).render());

    let cfg = if quick {
        tx_exp::TxExpConfig::quick()
    } else {
        tx_exp::TxExpConfig::paper()
    };
    let (t9, _) = tx_exp::figure9(&cfg);
    println!("{}", t9.render());
    println!("{}", tx_exp::figure10(&cfg).render());
}
