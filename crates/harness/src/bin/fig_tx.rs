//! Regenerates Figures 9 and 10 (PRISM-TX vs FaRM).
//!
//! Usage: `cargo run --release -p prism-harness --bin fig_tx [--quick] [--csv] [--zipf-sweep]`

use prism_harness::tx_exp::{self, TxExpConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let only_zipf = args.iter().any(|a| a == "--zipf-sweep");
    let cfg = if quick {
        TxExpConfig::quick()
    } else {
        TxExpConfig::paper()
    };
    let print = |t: &prism_harness::table::Table| {
        if csv {
            println!("{}", t.to_csv());
        } else {
            println!("{}", t.render());
        }
    };
    if !only_zipf {
        let (t, peaks) = tx_exp::figure9(&cfg);
        print(&t);
        eprintln!(
            "peaks (Mtxn): PRISM-TX {:.3}  FaRM {:.3}  FaRM-sw {:.3}",
            peaks[0] / 1e6,
            peaks[1] / 1e6,
            peaks[2] / 1e6
        );
    }
    print(&tx_exp::figure10(&cfg));
}
