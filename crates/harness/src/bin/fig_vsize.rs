//! Extension experiment: GET cost vs value size (bounded indirect reads
//! vs Pilaf's two READs + CRC).
//!
//! Usage: `cargo run --release -p prism-harness --bin fig_vsize [--quick] [--csv]`

use prism_harness::vsize_exp::{self, VsizeConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = if args.iter().any(|a| a == "--quick") {
        VsizeConfig::quick()
    } else {
        VsizeConfig::paper()
    };
    let t = vsize_exp::run(&cfg);
    if args.iter().any(|a| a == "--csv") {
        println!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
}
