//! Open-loop latency-under-load curves: coordinated-omission-free
//! latency vs offered Poisson arrival rate for PRISM-KV, PRISM-RS, and
//! PRISM-TX, with up to 10⁵+ multiplexed logical clients.
//!
//! Usage: `cargo run --release -p prism-harness --bin fig_openloop
//! [--quick] [--csv] [--system kv|rs|tx] [--million] [--scaling]`
//!
//! `--million` runs a single PRISM-KV point with 10⁶ logical clients
//! multiplexed over the on-NIC connection budget and reports engine
//! throughput (completed sim-ops per wall-clock second) alongside the
//! CO-free latency quantiles.
//!
//! `--scaling` sweeps PRISM-KV shard counts 1/2/4/8 (the BENCH_04
//! scale-out curve): per shard count the offered-rate grid scales
//! with the shard count so the knee stays in frame, and each point
//! prints a machine-readable `scaling ...` line for results assembly.

use prism_harness::kv_exp::{self, KvExpConfig};
use prism_harness::openloop::{OpenLoopKnobs, CONNECTION_BUDGET};
use prism_harness::rs_exp::{self, RsExpConfig};
use prism_harness::table::Table;
use prism_harness::tx_exp::{self, TxExpConfig};
use prism_simnet::time::SimDuration;

fn emit(t: &Table, csv: bool) {
    if csv {
        println!("{}", t.to_csv());
    } else {
        println!("{}", t.render());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let system = args
        .iter()
        .position(|a| a == "--system")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if args.iter().any(|a| a == "--million") {
        // One sustained point with a 10⁶-logical-client population
        // multiplexed over the on-NIC connection budget, offered below
        // the ~8.2 Mops single-server knee so the run is stable. The
        // window is sized so the population's aggregate stream
        // delivers over a million measured arrivals.
        let cfg = KvExpConfig::paper(1.0);
        let knobs = OpenLoopKnobs {
            rates_per_sec: vec![6e6],
            logical_clients: 1_000_000,
            max_inflight: CONNECTION_BUDGET,
            actors: 16,
            warmup: SimDuration::millis(1),
            measure: SimDuration::millis(200),
        };
        let t0 = std::time::Instant::now();
        let (t, results) = kv_exp::open_loop(&cfg, &knobs);
        let wall = t0.elapsed();
        emit(&t, csv);
        let r = &results[0].1;
        println!(
            "million_clients completed={} backlogged={} wall_s={:.2} sim_ops_per_wall_sec={:.0}",
            r.completed,
            r.backlogged,
            wall.as_secs_f64(),
            r.completed as f64 / wall.as_secs_f64()
        );
        return;
    }
    if args.iter().any(|a| a == "--scaling") {
        // Shard-count scaling sweep at 10⁵ logical clients. The
        // per-server connection budget is respected at every shard
        // count (each live slot opens one connection per shard, so a
        // server's table never exceeds the live-slot cap); the offered
        // grid brackets the expected knee at ~8.2 Mops per shard.
        let cfg = if quick {
            KvExpConfig::quick(1.0)
        } else {
            KvExpConfig::paper(1.0)
        };
        for shards in [1usize, 2, 4, 8] {
            let mut knobs = if quick {
                OpenLoopKnobs::quick()
            } else {
                OpenLoopKnobs::paper()
            };
            if !quick {
                knobs.rates_per_sec = [2e6, 4e6, 6e6, 8e6, 10e6, 12e6]
                    .iter()
                    .map(|r| r * shards as f64)
                    .collect();
            }
            let t0 = std::time::Instant::now();
            let (t, results) = kv_exp::open_loop_sharded(&cfg, &knobs, shards);
            let wall = t0.elapsed();
            emit(&t, csv);
            for (rate, r) in &results {
                println!(
                    "scaling shards={} rate_mops={:.2} tput_mops={:.3} mean_us={:.2} \
                     p50_us={:.2} p99_us={:.2} p999_us={:.2} completed={} backlogged={}",
                    shards,
                    rate / 1e6,
                    r.tput_ops / 1e6,
                    r.mean_us,
                    r.p50_us,
                    r.p99_us,
                    r.p999_us,
                    r.completed,
                    r.backlogged
                );
            }
            println!("scaling shards={shards} wall_s={:.1}", wall.as_secs_f64());
        }
        return;
    }
    let knobs = if quick {
        OpenLoopKnobs::quick()
    } else {
        OpenLoopKnobs::paper()
    };
    let want = |s: &str| system.as_deref().is_none_or(|w| w == s);
    if want("kv") {
        let cfg = if quick {
            KvExpConfig::quick(1.0)
        } else {
            KvExpConfig::paper(1.0)
        };
        let (t, _) = kv_exp::open_loop(&cfg, &knobs);
        emit(&t, csv);
    }
    if want("rs") {
        let cfg = if quick {
            RsExpConfig::quick()
        } else {
            RsExpConfig::paper()
        };
        // Replicated writes saturate earlier than KV reads; sweep a
        // proportionally lower rate range so the knee stays in frame.
        let mut k = knobs.clone();
        k.rates_per_sec = k.rates_per_sec.iter().map(|r| r / 4.0).collect();
        let (t, _) = rs_exp::open_loop(&cfg, &k);
        emit(&t, csv);
    }
    if want("tx") {
        let cfg = if quick {
            TxExpConfig::quick()
        } else {
            TxExpConfig::paper()
        };
        let mut k = knobs.clone();
        k.rates_per_sec = k.rates_per_sec.iter().map(|r| r / 4.0).collect();
        let (t, _) = tx_exp::open_loop(&cfg, &k);
        emit(&t, csv);
    }
}
