//! Hedged-vs-unhedged tail curves with one degraded shard — the
//! BENCH_06 experiment. A two-shard PRISM-KV cluster serves a GET-only
//! closed loop under background loss and delivery jitter while shard 1
//! is stretched by a gray straggler window of increasing severity
//! (1x = healthy, then 2x/4x/8x). Each severity runs twice on the same
//! seed: once with the tail policy off (fixed timeouts, no hedging) and
//! once with adaptive timeouts + hedged reads armed. The unhedged tail
//! pins to the fixed timeout as soon as the straggler bites; the hedged
//! tail stays within a small multiple of the healthy baseline because a
//! copy issued after the tracked p99 covers the slow shard, and every
//! losing copy is harvested through the stale-reply path.
//!
//! Usage: `cargo run --release -p prism-harness --bin fig_hedge
//! [--quick] [--seed <n>]`
//!
//! Each point prints a machine-readable `hedge ...` line for results
//! assembly (results/BENCH_06.json).

use std::sync::{Arc, Mutex};

use prism_harness::chaos::ChaosKvAdapter;
use prism_harness::cluster::KvCluster;
use prism_harness::netsim::{run_closed_loop, RunResult, VerbPath};
use prism_kv::prism_kv::PrismKvConfig;
use prism_simnet::fault::{FaultPlan, TailPolicy};
use prism_simnet::latency::CostModel;
use prism_simnet::time::{SimDuration, SimTime};

const BLOCKS: u64 = 8;
const VALUE: usize = 64;

fn tail_run(
    seed: u64,
    factor: u32,
    tail: TailPolicy,
    warmup: SimDuration,
    measure: SimDuration,
) -> RunResult {
    let config = PrismKvConfig::paper(BLOCKS, VALUE);
    let cluster = Arc::new(KvCluster::new(2, &config, seed));
    let servers = cluster.servers();
    let history = Arc::new(Mutex::new(Vec::new()));
    let horizon = warmup + measure + SimDuration::micros(400);
    // Loss gives hedging its opening (a dropped leg otherwise waits out
    // the fixed timeout); jitter keeps some live primaries past the
    // tracked p99 so hedge races — and loser harvesting — are real.
    let mut plan = FaultPlan::seeded(seed)
        .with_loss(0.05, 0.0)
        .with_jitter(8_000)
        .with_tail_policy(tail);
    if factor >= 2 {
        plan = plan.with_slowdown(1, SimTime::ZERO, SimTime::ZERO + horizon, factor);
    }
    plan.timeout = SimDuration::micros(60);
    run_closed_loop(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        4,
        &mut |i| {
            Box::new(ChaosKvAdapter::sharded(
                (0..2).map(|s| cluster.shard(s).open_client()).collect(),
                cluster.map().clone(),
                i,
                BLOCKS,
                VALUE,
                0.0,
                Arc::clone(&history),
            ))
        },
        warmup,
        measure,
        seed,
        &plan,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x64A9_0003u64);
    let (warmup, measure) = if quick {
        (SimDuration::micros(400), SimDuration::micros(2_400))
    } else {
        (SimDuration::millis(1), SimDuration::millis(10))
    };
    let hedged_policy = TailPolicy {
        adaptive_timeout: true,
        hedge: true,
        admission_ns: 0,
        retry_deadline: SimDuration::ZERO,
    };
    println!(
        "fig_hedge: 2-shard KV, GET-only, loss=0.05 jitter=8us timeout=60us, \
         shard 1 straggling (seed={seed:#x})"
    );
    for factor in [1u32, 2, 4, 8] {
        for (mode, tail) in [
            ("unhedged", TailPolicy::default()),
            ("hedged", hedged_policy.clone()),
        ] {
            let r = tail_run(seed, factor, tail, warmup, measure);
            println!(
                "hedge factor={factor} mode={mode} tput_ops={:.0} mean_us={:.2} \
                 p99_us={:.2} timeouts={} retries={} hedges={} wins={} stale={}",
                r.tput_ops,
                r.mean_us,
                r.p99_us,
                r.timeouts,
                r.retries,
                r.hedges,
                r.hedge_wins,
                r.stale_harvested,
            );
        }
    }
}
