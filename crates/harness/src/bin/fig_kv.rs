//! Regenerates Figures 3 and 4 (PRISM-KV vs Pilaf).
//!
//! Usage: `cargo run --release -p prism-harness --bin fig_kv [--quick] [--csv] [--reads 100|50]`

use prism_harness::kv_exp::{self, KvExpConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let reads: Option<f64> = args
        .iter()
        .position(|a| a == "--reads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .map(|p| p / 100.0);
    let fractions = match reads {
        Some(f) => vec![f],
        None => vec![1.0, 0.5], // Figure 3 then Figure 4
    };
    for f in fractions {
        let cfg = if quick {
            KvExpConfig::quick(f)
        } else {
            KvExpConfig::paper(f)
        };
        let (t, peaks) = kv_exp::run(&cfg);
        if csv {
            println!("{}", t.to_csv());
        } else {
            println!("{}", t.render());
        }
        eprintln!(
            "peaks (Mops): PRISM-KV {:.3}  Pilaf {:.3}  Pilaf-sw {:.3}",
            peaks[0] / 1e6,
            peaks[1] / 1e6,
            peaks[2] / 1e6
        );
    }
}
